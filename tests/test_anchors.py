"""Unit tests for anchor-point handling (paper §V-A)."""

import numpy as np

from repro.core.ginterp.anchors import (anchor_count, apply_anchors,
                                        extract_anchors)


class TestAnchors:
    def test_extract_shape(self):
        data = np.arange(17 * 9 * 9, dtype=np.float64).reshape(17, 9, 9)
        anchors = extract_anchors(data, 8)
        assert anchors.shape == (3, 2, 2)
        assert anchors.dtype == np.float32

    def test_extract_values(self):
        data = np.arange(9, dtype=np.float64)
        np.testing.assert_array_equal(extract_anchors(data, 8), [0.0, 8.0])

    def test_extract_float64(self):
        data = np.arange(9, dtype=np.float64) + 0.123456789012345
        anchors = extract_anchors(data, 8, dtype=np.float64)
        assert anchors.dtype == np.float64
        np.testing.assert_array_equal(anchors, data[::8])

    def test_apply_seeds_exactly(self):
        work = np.zeros((9, 9))
        anchors = np.full((2, 2), 3.25, dtype=np.float32)
        apply_anchors(work, anchors, 8)
        assert work[0, 0] == 3.25 and work[8, 8] == 3.25
        assert work[4, 4] == 0.0  # non-anchor untouched

    def test_roundtrip_float32_exact(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(17, 17)).astype(np.float64)
        anchors = extract_anchors(data, 8)
        work = np.zeros_like(data)
        apply_anchors(work, anchors, 8)
        # the seeded values are the float32 roundtrip of the originals
        np.testing.assert_array_equal(
            work[::8, ::8], data[::8, ::8].astype(np.float32))

    def test_anchor_count(self):
        assert anchor_count((17, 9, 9), 8) == 3 * 2 * 2
        assert anchor_count((16, 9), 8) == 2 * 2
        assert anchor_count((5,), 8) == 1

    def test_anchor_fraction_is_paper_overhead(self):
        # §V-A: ~1 of 512 elements becomes an anchor for 3D stride 8
        n = anchor_count((257, 257, 257), 8)
        assert n / 257 ** 3 < 1 / 512 * 1.1
