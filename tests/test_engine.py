"""Unit + property tests for the interpolation engine (paper §V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_error_bounded, rough_field, smooth_field
from repro.common.errors import ConfigError
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp import (InterpSpec, interp_compress,
                                interp_decompress, level_error_bounds,
                                pass_plan)
from repro.core.ginterp.splines import CUBIC_NAT


class TestInterpSpec:
    def test_bad_anchor_stride(self):
        with pytest.raises(ConfigError):
            InterpSpec(anchor_stride=6)
        with pytest.raises(ConfigError):
            InterpSpec(anchor_stride=1)

    def test_bad_alpha(self):
        with pytest.raises(ConfigError):
            InterpSpec(alpha=0.5)

    def test_n_levels(self):
        assert InterpSpec(anchor_stride=8).n_levels == 3
        assert InterpSpec(anchor_stride=64).n_levels == 6

    def test_resolved_defaults(self):
        spec = InterpSpec(anchor_stride=8).resolved(3)
        assert spec.cubic_variant == (0, 0, 0)
        assert spec.axis_order == (0, 1, 2)

    def test_resolved_rejects_bad_order(self):
        with pytest.raises(ConfigError):
            InterpSpec(anchor_stride=8, axis_order=(0, 0, 1),
                       cubic_variant=(0, 0, 0)).resolved(3)

    def test_resolved_rejects_rank_mismatch(self):
        with pytest.raises(ConfigError):
            InterpSpec(anchor_stride=8, window_shape=(9, 9)).resolved(3)

    def test_meta_roundtrip(self):
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33),
                          cubic_variant=(0, 1, 0), axis_order=(2, 0, 1),
                          alpha=1.5, beta=4.0)
        back = InterpSpec.from_meta(spec.to_meta())
        assert back == spec

    def test_meta_roundtrip_infinite_beta(self):
        spec = InterpSpec(anchor_stride=16).resolved(2)
        back = InterpSpec.from_meta(spec.to_meta())
        assert back == spec


class TestPassPlan:
    def test_level_strides(self):
        spec = InterpSpec(anchor_stride=8).resolved(3)
        plan = pass_plan(3, spec)
        assert [p.stride for p in plan] == [4, 4, 4, 2, 2, 2, 1, 1, 1]

    def test_axis_order_respected(self):
        spec = InterpSpec(anchor_stride=4, axis_order=(2, 0, 1),
                          cubic_variant=(0, 0, 0)).resolved(3)
        plan = pass_plan(3, spec)
        assert [p.axis for p in plan[:3]] == [2, 0, 1]

    def test_steps_tighten_within_level(self):
        spec = InterpSpec(anchor_stride=4).resolved(2)
        plan = pass_plan(2, spec)
        assert plan[0].steps == (4, 4)
        assert plan[1].steps == (2, 4)   # axis 0 now refined

    def test_targets_cover_everything_once(self):
        # union of all pass targets + anchors == all points, no repeats
        from repro.core.ginterp.engine import _axis_indices
        shape = (13, 10, 17)
        spec = InterpSpec(anchor_stride=8).resolved(3)
        seen = np.zeros(shape, dtype=int)
        seen[::8, ::8, ::8] += 1  # anchors
        for p in pass_plan(3, spec):
            idx = _axis_indices(shape, p)
            grid = np.ix_(*idx)
            seen[grid] += 1
        assert (seen == 1).all()


class TestLevelErrorBounds:
    def test_alpha_one_uniform(self):
        spec = InterpSpec(anchor_stride=8, alpha=1.0)
        ebs = level_error_bounds(0.1, spec)
        assert all(v == 0.1 for v in ebs.values())

    def test_alpha_reduces_high_levels(self):
        spec = InterpSpec(anchor_stride=8, alpha=2.0)
        ebs = level_error_bounds(0.1, spec)
        assert ebs[1] == 0.1
        assert ebs[2] == pytest.approx(0.05)
        assert ebs[3] == pytest.approx(0.025)

    def test_beta_caps_reduction(self):
        spec = InterpSpec(anchor_stride=64, alpha=2.0, beta=4.0)
        ebs = level_error_bounds(0.1, spec)
        assert min(ebs.values()) == pytest.approx(0.1 / 4.0)


class TestRoundTrip:
    @pytest.mark.parametrize("shape,stride,window", [
        ((33, 25, 17), 8, (9, 9, 33)),
        ((40, 44, 36), 8, None),
        ((65, 30), 16, (17, 65)),
        ((600,), 512, (2049,)),
        ((20, 20, 20), 4, None),
    ])
    def test_exact_replay(self, shape, stride, window):
        data = smooth_field(shape, seed=3)
        eb = 1e-3 * float(data.max() - data.min())
        spec = InterpSpec(anchor_stride=stride, window_shape=window,
                          alpha=1.25)
        res = interp_compress(data, spec, eb)
        dec = interp_decompress(shape, spec, eb, res.codes, res.outliers,
                                res.anchors)
        np.testing.assert_array_equal(dec, res.reconstructed)

    def test_error_bound_smooth(self):
        data = smooth_field(seed=4)
        eb = 1e-3 * float(data.max() - data.min())
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
        res = interp_compress(data, spec, eb)
        assert_error_bounded(data, res.reconstructed.astype(np.float32), eb)

    def test_error_bound_rough(self):
        data = rough_field(seed=5)
        eb = 1e-4 * float(data.max() - data.min())
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
        res = interp_compress(data, spec, eb)
        assert_error_bounded(data, res.reconstructed.astype(np.float32), eb)

    def test_code_count_matches_non_anchor_points(self):
        data = smooth_field((17, 17, 17), seed=6)
        spec = InterpSpec(anchor_stride=8)
        res = interp_compress(data, spec, 0.01)
        n_anchors = 3 ** 3
        assert res.codes.size == data.size - n_anchors

    def test_natural_cubic_variant_changes_codes(self):
        data = smooth_field(seed=7)
        eb = 1e-3 * float(data.max() - data.min())
        a = interp_compress(data, InterpSpec(
            anchor_stride=8, cubic_variant=(0, 0, 0),
            axis_order=(0, 1, 2)), eb)
        b = interp_compress(data, InterpSpec(
            anchor_stride=8, cubic_variant=(CUBIC_NAT,) * 3,
            axis_order=(0, 1, 2)), eb)
        assert not np.array_equal(a.codes, b.codes)

    def test_window_confinement_reduces_accuracy(self):
        # the paper's accuracy-parallelism tradeoff (§V-A): confined
        # interpolation cannot beat global interpolation in nonzero codes
        data = rough_field((48, 48, 48), seed=8)
        eb = 1e-3 * float(data.max() - data.min())
        win = interp_compress(data, InterpSpec(
            anchor_stride=8, window_shape=(9, 9, 33)), eb)
        glob = interp_compress(data, InterpSpec(
            anchor_stride=8, window_shape=None), eb)
        nz_win = (win.codes != 512).sum()
        nz_glob = (glob.codes != 512).sum()
        assert nz_glob <= nz_win

    def test_outliers_replayed(self):
        # rough data at tight eb creates outliers; replay must stay exact
        data = rough_field((24, 24, 24), seed=9) * 1000
        eb = 1e-7
        spec = InterpSpec(anchor_stride=8)
        quant = LinearQuantizer(16)
        res = interp_compress(data, spec, eb, quant)
        assert res.outliers.size > 0
        dec = interp_decompress(data.shape, spec, eb, res.codes,
                                res.outliers, res.anchors, quant)
        np.testing.assert_array_equal(dec, res.reconstructed)

    def test_deterministic(self):
        data = smooth_field(seed=10)
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
        a = interp_compress(data, spec, 0.001)
        b = interp_compress(data, spec, 0.001)
        np.testing.assert_array_equal(a.codes, b.codes)

    @given(st.integers(0, 10**6), st.sampled_from([1e-2, 1e-3, 1e-4]))
    @settings(max_examples=15, deadline=None)
    def test_bound_property(self, seed, rel_eb):
        data = smooth_field((24, 20, 18), seed=seed)
        rng = float(data.max() - data.min())
        eb = rel_eb * rng if rng > 0 else rel_eb
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33),
                          alpha=1.5)
        res = interp_compress(data, spec, eb)
        dec = interp_decompress(data.shape, spec, eb, res.codes,
                                res.outliers, res.anchors)
        np.testing.assert_array_equal(dec, res.reconstructed)
        assert_error_bounded(data, dec.astype(np.float32), eb)
