"""Unit + property tests for the container format and lossless wrap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.container import (build_container, container_overhead,
                                    parse_container)
from repro.common.errors import ContainerError
from repro.common.lossless_wrap import (peek_codec, unwrap_lossless,
                                        wrap_lossless)


class TestContainer:
    def test_roundtrip(self):
        meta = {"shape": [4, 5], "eb": 1e-3, "name": "x"}
        segs = {"a": b"hello", "b": b"", "c": bytes(range(256))}
        blob = build_container("codec1", meta, segs)
        codec, m, s = parse_container(blob)
        assert codec == "codec1"
        assert m == meta
        assert s == {k: bytes(v) if isinstance(v, bytes) else v
                     for k, v in segs.items()}

    def test_ndarray_segment(self):
        arr = np.arange(10, dtype=np.uint32)
        blob = build_container("c", {}, {"arr": arr})
        _, _, segs = parse_container(blob)
        np.testing.assert_array_equal(
            np.frombuffer(segs["arr"], np.uint32), arr)

    def test_bad_magic(self):
        with pytest.raises(ContainerError):
            parse_container(b"XXXX" + b"\x00" * 20)

    def test_truncated(self):
        blob = build_container("c", {"k": 1}, {"s": b"abc"})
        with pytest.raises(ContainerError):
            parse_container(blob[:-1])

    def test_trailing_garbage(self):
        blob = build_container("c", {}, {"s": b"abc"})
        with pytest.raises(ContainerError):
            parse_container(blob + b"\x00")

    def test_non_json_meta_rejected(self):
        with pytest.raises(ContainerError):
            build_container("c", {"bad": object()}, {})

    def test_nan_meta_rejected(self):
        with pytest.raises(ContainerError):
            build_container("c", {"v": float("nan")}, {})

    def test_empty_codec_rejected(self):
        with pytest.raises(ContainerError):
            build_container("", {}, {})

    def test_overhead_accounting(self):
        over = container_overhead("c", {"k": 12}, ["a", "b"])
        blob = build_container("c", {"k": 12}, {"a": b"x" * 100,
                                                "b": b"y" * 50})
        assert len(blob) == over + 150

    @given(st.dictionaries(st.text(min_size=1, max_size=20),
                           st.binary(max_size=500), max_size=5),
           st.dictionaries(st.text(max_size=10),
                           st.integers(-10**6, 10**6), max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, segments, meta):
        # segment names must be 1..255 utf-8 bytes
        segments = {k: v for k, v in segments.items()
                    if 1 <= len(k.encode()) <= 255}
        blob = build_container("prop", meta, segments)
        codec, m, s = parse_container(blob)
        assert codec == "prop" and m == meta and s == segments


class TestLosslessWrap:
    @pytest.mark.parametrize("name", ["none", "gle", "zlib"])
    def test_roundtrip(self, name):
        inner = build_container("c", {"x": 1}, {"s": b"\x00" * 1000})
        blob = wrap_lossless(inner, name)
        assert unwrap_lossless(blob) == inner

    def test_peek_codec(self):
        inner = build_container("mycodec", {}, {})
        assert peek_codec(wrap_lossless(inner, "gle")) == "mycodec"

    def test_missing_frame(self):
        with pytest.raises(ContainerError):
            unwrap_lossless(b"nope")

    def test_gle_actually_shrinks_redundant_container(self):
        inner = build_container("c", {}, {"s": b"\x00" * 100000})
        wrapped = wrap_lossless(inner, "gle")
        assert len(wrapped) < len(inner) // 100
