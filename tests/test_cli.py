"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from conftest import smooth_field
from repro.cli import main


@pytest.fixture
def raw_file(tmp_path):
    data = smooth_field((20, 24, 16), seed=60)
    path = tmp_path / "field.f32"
    data.tofile(path)
    return path, data


class TestCLI:
    def test_compress_decompress_cycle(self, raw_file, tmp_path, capsys):
        path, data = raw_file
        comp = tmp_path / "field.rp"
        out = tmp_path / "out.f32"
        assert main(["compress", str(path), str(comp),
                     "--dims", "20,24,16", "--eb", "1e-3"]) == 0
        assert main(["decompress", str(comp), str(out)]) == 0
        recon = np.fromfile(out, dtype=np.float32).reshape(20, 24, 16)
        rng = float(data.max() - data.min())
        assert np.abs(recon - data).max() <= 1e-3 * rng * 1.001
        captured = capsys.readouterr().out
        assert "CR" in captured

    def test_compress_wrong_dims(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        rc = main(["compress", str(path), str(tmp_path / "x.rp"),
                   "--dims", "10,10,10"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_info(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        comp = tmp_path / "f.rp"
        main(["compress", str(path), str(comp), "--dims", "20,24,16"])
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "codec:    cuszi" in out
        assert "segments:" in out

    def test_cuzfp_rate_path(self, raw_file, tmp_path):
        path, data = raw_file
        comp = tmp_path / "f.zfp"
        out = tmp_path / "o.f32"
        assert main(["compress", str(path), str(comp),
                     "--dims", "20,24,16", "--codec", "cuzfp",
                     "--rate", "8"]) == 0
        assert main(["decompress", str(comp), str(out)]) == 0
        recon = np.fromfile(out, dtype=np.float32)
        assert recon.size == data.size

    def test_gen(self, tmp_path):
        out = tmp_path / "m.f32"
        assert main(["gen", "miranda", "density", str(out)]) == 0
        data = np.fromfile(out, dtype=np.float32)
        assert data.size == 64 * 96 * 96

    def test_gen_bad_field(self, tmp_path):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["gen", "miranda", "nothere", str(tmp_path / "x")])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cuszi" in out and "jhtdb" in out

    def test_codec_selection(self, raw_file, tmp_path):
        path, _ = raw_file
        for codec in ("cusz", "fzgpu"):
            comp = tmp_path / f"f.{codec}"
            assert main(["compress", str(path), str(comp),
                         "--dims", "20,24,16", "--codec", codec]) == 0
