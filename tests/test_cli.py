"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from conftest import smooth_field
from repro.cli import main


@pytest.fixture
def raw_file(tmp_path):
    data = smooth_field((20, 24, 16), seed=60)
    path = tmp_path / "field.f32"
    data.tofile(path)
    return path, data


class TestCLI:
    def test_compress_decompress_cycle(self, raw_file, tmp_path, capsys):
        path, data = raw_file
        comp = tmp_path / "field.rp"
        out = tmp_path / "out.f32"
        assert main(["compress", str(path), str(comp),
                     "--dims", "20,24,16", "--eb", "1e-3"]) == 0
        assert main(["decompress", str(comp), str(out)]) == 0
        recon = np.fromfile(out, dtype=np.float32).reshape(20, 24, 16)
        rng = float(data.max() - data.min())
        assert np.abs(recon - data).max() <= 1e-3 * rng * 1.001
        captured = capsys.readouterr().out
        assert "CR" in captured

    def test_compress_wrong_dims(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        rc = main(["compress", str(path), str(tmp_path / "x.rp"),
                   "--dims", "10,10,10"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_info(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        comp = tmp_path / "f.rp"
        main(["compress", str(path), str(comp), "--dims", "20,24,16"])
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "codec:    cuszi" in out
        assert "segments:" in out

    def test_cuzfp_rate_path(self, raw_file, tmp_path):
        path, data = raw_file
        comp = tmp_path / "f.zfp"
        out = tmp_path / "o.f32"
        assert main(["compress", str(path), str(comp),
                     "--dims", "20,24,16", "--codec", "cuzfp",
                     "--rate", "8"]) == 0
        assert main(["decompress", str(comp), str(out)]) == 0
        recon = np.fromfile(out, dtype=np.float32)
        assert recon.size == data.size

    def test_gen(self, tmp_path):
        out = tmp_path / "m.f32"
        assert main(["gen", "miranda", "density", str(out)]) == 0
        data = np.fromfile(out, dtype=np.float32)
        assert data.size == 64 * 96 * 96

    def test_gen_bad_field(self, tmp_path):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["gen", "miranda", "nothere", str(tmp_path / "x")])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cuszi" in out and "jhtdb" in out

    def test_codec_selection(self, raw_file, tmp_path):
        path, _ = raw_file
        for codec in ("cusz", "fzgpu"):
            comp = tmp_path / f"f.{codec}"
            assert main(["compress", str(path), str(comp),
                         "--dims", "20,24,16", "--codec", codec]) == 0


class TestDecompressDtype:
    """Regression: decompress must write the container's dtype, not
    unconditionally float32."""

    def test_float64_archive_written_as_float64(self, tmp_path, capsys):
        from repro import compress as api_compress
        data = smooth_field((16, 16, 12), seed=61).astype(np.float64)
        comp = tmp_path / "f64.rp"
        comp.write_bytes(api_compress(data, codec="cuszi", eb=1e-3,
                                      mode="rel"))
        out = tmp_path / "o.bin"
        assert main(["decompress", str(comp), str(out)]) == 0
        assert "float64" in capsys.readouterr().out
        assert out.stat().st_size == data.size * 8
        recon = np.fromfile(out, dtype=np.float64).reshape(data.shape)
        rng = float(data.max() - data.min())
        assert np.abs(recon - data).max() <= 1e-3 * rng * 1.001

    def test_float32_archive_unchanged(self, tmp_path):
        from repro import compress as api_compress
        data = smooth_field((16, 16, 12), seed=62)
        comp = tmp_path / "f32.rp"
        comp.write_bytes(api_compress(data, codec="cuszi", eb=1e-3))
        out = tmp_path / "o.f32"
        assert main(["decompress", str(comp), str(out)]) == 0
        assert out.stat().st_size == data.size * 4


class TestTraceCLI:
    def test_compress_trace_and_pretty_print(self, raw_file, tmp_path,
                                             capsys):
        path, _ = raw_file
        comp = tmp_path / "f.rp"
        trace = tmp_path / "trace.jsonl"
        assert main(["compress", str(path), str(comp),
                     "--dims", "20,24,16", "--trace", str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        for stage in ("compress", "predict", "quantize", "huffman",
                      "lossless"):
            assert stage in out

    def test_trace_crosscheck(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        comp = tmp_path / "f.rp"
        trace = tmp_path / "trace.jsonl"
        main(["compress", str(path), str(comp), "--dims", "20,24,16",
              "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", str(trace), "--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "modelled A100" in out and "modelled A40" in out

    def test_trace_prom_format(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        comp = tmp_path / "f.rp"
        trace = tmp_path / "t.jsonl"
        main(["compress", str(path), str(comp), "--dims", "20,24,16",
              "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", str(trace), "--format", "prom"]) == 0
        assert "repro_span_duration_seconds_sum" in \
            capsys.readouterr().out

    def test_traced_blob_identical_to_untraced(self, raw_file, tmp_path):
        path, _ = raw_file
        plain = tmp_path / "plain.rp"
        traced = tmp_path / "traced.rp"
        assert main(["compress", str(path), str(plain),
                     "--dims", "20,24,16"]) == 0
        assert main(["compress", str(path), str(traced),
                     "--dims", "20,24,16",
                     "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert plain.read_bytes() == traced.read_bytes()

    def test_decompress_trace(self, raw_file, tmp_path):
        path, _ = raw_file
        comp = tmp_path / "f.rp"
        out = tmp_path / "o.f32"
        trace = tmp_path / "d.jsonl"
        main(["compress", str(path), str(comp), "--dims", "20,24,16"])
        assert main(["decompress", str(comp), str(out),
                     "--trace", str(trace)]) == 0
        assert trace.exists()

    def test_trace_crosscheck_without_pipeline_root_errors(
            self, tmp_path, capsys):
        from repro.telemetry import exporters, recording, span
        with recording() as reg:
            with span("unrelated"):
                pass
        trace = tmp_path / "t.jsonl"
        trace.write_text(exporters.to_jsonl(reg))
        assert main(["trace", str(trace), "--crosscheck"]) == 1
        assert "cannot cross-check" in capsys.readouterr().err
