"""Unit tests for the synthetic dataset generators and registry."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.datasets import (DATASETS, dataset_names, get_dataset,
                            load_field)
from repro.datasets.registry import rtm_steps
from repro.datasets.synthetic import (intermittency_envelope, rtm_field,
                                      spectral_field)


class TestSpectralField:
    def test_normalized(self):
        f = spectral_field((48, 48, 48), 4.0, 0.3, seed=1)
        assert abs(f.mean()) < 1e-8
        assert f.std() == pytest.approx(1.0)

    def test_deterministic(self):
        a = spectral_field((32, 32), 3.0, 0.4, seed=7)
        b = spectral_field((32, 32), 3.0, 0.4, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_field(self):
        a = spectral_field((32, 32), 3.0, 0.4, seed=7)
        b = spectral_field((32, 32), 3.0, 0.4, seed=8)
        assert not np.array_equal(a, b)

    def test_band_limit_enforced(self):
        f = spectral_field((64, 64), 3.0, kmax_frac=0.25, seed=2)
        spec = np.abs(np.fft.rfftn(f))
        ky = np.fft.fftfreq(64)[:, None] * 64
        kx = np.fft.rfftfreq(64)[None, :] * 64
        kk = np.sqrt(ky ** 2 + kx ** 2)
        beyond = spec[kk > 0.25 * 32 + 1e-9]
        assert beyond.max() < 1e-8 * spec.max()

    def test_steeper_slope_is_smoother(self):
        rough = spectral_field((64, 64, 64), 2.0, 0.5, seed=3)
        smooth = spectral_field((64, 64, 64), 6.0, 0.5, seed=3)
        g_rough = np.abs(np.diff(rough, axis=0)).mean()
        g_smooth = np.abs(np.diff(smooth, axis=0)).mean()
        assert g_smooth < g_rough

    def test_bad_kmax(self):
        with pytest.raises(ConfigError):
            spectral_field((16, 16), 3.0, 1.5, seed=0)

    def test_envelope_positive_and_wide(self):
        env = intermittency_envelope((48, 48, 48), 2.0, seed=4)
        assert (env > 0).all()
        assert env.max() / env.min() > 10  # orders-of-magnitude contrast


class TestRegistry:
    def test_six_datasets(self):
        assert dataset_names() == ["jhtdb", "miranda", "nyx", "qmcpack",
                                   "rtm", "s3d"]

    def test_table2_shapes_recorded(self):
        assert DATASETS["jhtdb"].paper_shape == (512, 512, 512)
        assert DATASETS["rtm"].paper_shape == (449, 449, 235)
        assert DATASETS["s3d"].paper_total_gb == pytest.approx(5.1)

    @pytest.mark.parametrize("name", ["jhtdb", "miranda", "nyx",
                                      "qmcpack", "rtm", "s3d"])
    def test_all_fields_generate(self, name):
        info = get_dataset(name)
        for fld in info.fields:
            data = info.load(fld, shape=(24, 20, 22))
            assert data.shape == (24, 20, 22)
            assert data.dtype == np.float32
            assert np.isfinite(data).all()

    def test_default_shapes(self):
        d = load_field("miranda", "density")
        assert d.shape == DATASETS["miranda"].default_shape

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            get_dataset("exa-foo")

    def test_unknown_field(self):
        with pytest.raises(ConfigError):
            load_field("jhtdb", "vorticity")

    def test_deterministic_across_calls(self):
        a = load_field("nyx", "baryon_density", shape=(16, 16, 16))
        b = load_field("nyx", "baryon_density", shape=(16, 16, 16))
        np.testing.assert_array_equal(a, b)

    def test_fields_differ(self):
        u = load_field("jhtdb", "u", shape=(16, 16, 16))
        v = load_field("jhtdb", "v", shape=(16, 16, 16))
        assert not np.array_equal(u, v)


class TestDatasetStatistics:
    """The properties that make each dataset play its Table III role."""

    def test_nyx_density_lognormal_range(self):
        d = load_field("nyx", "baryon_density", shape=(48, 48, 48))
        assert d.min() > 0
        assert d.max() / np.median(d) > 50  # filamentary contrast

    def test_rtm_early_snapshot_mostly_quiet(self):
        early = rtm_field((48, 48, 32), step=600)
        late = rtm_field((48, 48, 32), step=3400)
        assert (early == 0).mean() > 0.15
        assert (late == 0).mean() < (early == 0).mean()

    def test_rtm_steps_sampling(self):
        steps = rtm_steps(n=37)
        assert len(steps) == 37
        assert steps[0] >= 300          # initialization skipped
        assert all(s < 3700 for s in steps)

    def test_rtm_bad_step(self):
        with pytest.raises(ConfigError):
            rtm_field(step=-5)

    def test_s3d_species_floor(self):
        d = load_field("s3d", "CO", shape=(48, 48, 48))
        assert (d == 0).mean() > 0.1    # exact zero floor off the sheet

    def test_miranda_density_has_interface_jump(self):
        d = load_field("miranda", "density", shape=(48, 48, 48))
        grad = np.abs(np.diff(d, axis=0))
        assert grad.max() > 10 * np.median(grad)  # sharp sheet

    def test_jhtdb_velocity_intermittent(self):
        d = load_field("jhtdb", "u", shape=(64, 64, 64)).astype(np.float64)
        kurtosis = ((d - d.mean()) ** 4).mean() / d.var() ** 2
        assert kurtosis > 4.0  # heavier-tailed than Gaussian (3.0)
