"""Unit tests for the compressor registry and public API."""

import numpy as np
import pytest

from conftest import assert_error_bounded, smooth_field
from repro import available, compress, decompress, get_compressor
from repro.common.errors import ConfigError
from repro.registry import Compressor, register


class TestRegistry:
    def test_all_paper_codecs_registered(self):
        names = available()
        for expected in ("cuszi", "cusz", "cuszp", "cuszx", "fzgpu",
                         "cuzfp", "sz3", "qoz"):
            assert expected in names

    def test_get_unknown(self):
        with pytest.raises(ConfigError):
            get_compressor("magic")

    def test_instances_satisfy_protocol(self):
        for name in available():
            assert isinstance(get_compressor(name), Compressor)

    def test_double_registration_rejected(self):
        class Fake:
            name = "cuszi"
        with pytest.raises(ConfigError):
            register(Fake)

    def test_register_requires_name(self):
        class Nameless:
            pass
        with pytest.raises(ConfigError):
            register(Nameless)


class TestPublicAPI:
    def test_compress_decompress_default(self):
        data = smooth_field((24, 24, 24), seed=50)
        rng = float(data.max() - data.min())
        blob = compress(data, eb=1e-3, mode="rel")
        out = decompress(blob)
        assert_error_bounded(data, out, 1e-3 * rng)

    @pytest.mark.parametrize("codec", ["cusz", "fzgpu", "sz3"])
    def test_decompress_routes_by_header(self, codec):
        data = smooth_field((20, 20, 20), seed=51)
        rng = float(data.max() - data.min())
        blob = compress(data, codec=codec, eb=1e-2, mode="rel")
        out = decompress(blob)
        assert_error_bounded(data, out, 1e-2 * rng)

    def test_decompress_cuzfp_blob(self):
        data = smooth_field((20, 20, 20), seed=52)
        blob = compress(data, codec="cuzfp", rate=8.0)
        out = decompress(blob)
        assert out.shape == data.shape

    def test_decompress_garbage(self):
        with pytest.raises(Exception):
            decompress(b"RPW1\x03gle but not really")

    def test_kwargs_forwarded(self):
        data = smooth_field((24, 24, 24), seed=53)
        small = compress(data, codec="cuszi", eb=1e-1, mode="rel")
        large = compress(data, codec="cuszi", eb=1e-5, mode="rel")
        assert len(small) < len(large)
