"""Fault-injection tests: corrupted archives must fail loudly.

The container CRC (and the Huffman payload CRC) turn any bit flip into a
:class:`~repro.common.errors.ReproError` instead of a silently wrong
reconstruction — checked here for every codec and several corruption
positions.
"""

import numpy as np
import pytest

from conftest import smooth_field
from repro.common.errors import ReproError
from repro.registry import available, get_compressor


def _flip(blob: bytes, pos: int) -> bytes:
    arr = bytearray(blob)
    arr[pos] ^= 0x55
    return bytes(arr)


@pytest.fixture(scope="module")
def blobs():
    data = smooth_field((24, 24, 24), seed=100)
    out = {}
    for codec in available():
        if codec == "cuzfp":
            comp = get_compressor(codec, rate=4.0, lossless="none")
        else:
            comp = get_compressor(codec, eb=1e-3, mode="rel",
                                  lossless="none")
        out[codec] = (comp, comp.compress(data))
    return out


@pytest.mark.parametrize("codec", ["cuszi", "cusz", "cuszp", "cuszx",
                                   "fzgpu", "cuzfp", "sz3", "qoz", "sz14"])
class TestCorruption:
    @pytest.mark.parametrize("where", ["header", "early", "middle",
                                       "late"])
    def test_flip_detected(self, blobs, codec, where):
        comp, blob = blobs[codec]
        pos = {"header": 8,
               "early": len(blob) // 4,
               "middle": len(blob) // 2,
               "late": len(blob) - 3}[where]
        with pytest.raises(ReproError):
            comp.decompress(_flip(blob, pos))

    def test_truncation_detected(self, blobs, codec):
        comp, blob = blobs[codec]
        with pytest.raises(ReproError):
            comp.decompress(blob[: len(blob) // 2])

    def test_extension_detected(self, blobs, codec):
        comp, blob = blobs[codec]
        with pytest.raises(ReproError):
            comp.decompress(blob + b"\x00\x01\x02\x03")


class TestCorruptionWithGLE:
    def test_flip_inside_gle_frame_never_silently_wrong(self):
        # a flip must either be detected or land in dead padding bits
        # (e.g. the pack stage's block padding) and change nothing
        data = smooth_field((20, 20, 20), seed=101)
        comp = get_compressor("cuszi", eb=1e-2, mode="rel",
                              lossless="gle")
        blob = comp.compress(data)
        clean = comp.decompress(blob)
        for pos in (10, len(blob) // 3, len(blob) // 2, len(blob) - 2):
            try:
                out = comp.decompress(_flip(blob, pos))
            except ReproError:
                continue
            np.testing.assert_array_equal(out, clean)
