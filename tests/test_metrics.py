"""Unit tests for repro.common.metrics."""

import math

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.common.metrics import (bit_rate, compression_ratio, max_abs_error,
                                  mse, nrmse, psnr, ssim_3d)


class TestPSNR:
    def test_identical_is_inf(self):
        d = np.linspace(0, 1, 100).astype(np.float32)
        assert psnr(d, d) == math.inf

    def test_known_value(self):
        # range 1, uniform error 0.1 -> psnr = -10 log10(0.01) = 20 dB
        d = np.linspace(0, 1, 10000)
        r = d + 0.1
        assert psnr(d, r) == pytest.approx(20.0, abs=1e-6)

    def test_smaller_error_higher_psnr(self):
        d = np.linspace(0, 1, 1000)
        assert psnr(d, d + 1e-4) > psnr(d, d + 1e-2)

    def test_constant_field_mismatch(self):
        d = np.full(10, 2.0)
        assert psnr(d, d + 1.0) == -math.inf

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            psnr(np.zeros(3), np.zeros(4))


class TestErrorMetrics:
    def test_mse(self):
        assert mse(np.zeros(4), np.full(4, 2.0)) == 4.0

    def test_max_abs_error(self):
        d = np.array([0.0, 1.0, 2.0])
        r = np.array([0.5, 1.0, 1.0])
        assert max_abs_error(d, r) == 1.0

    def test_nrmse(self):
        d = np.array([0.0, 2.0])
        r = np.array([1.0, 3.0])
        assert nrmse(d, r) == pytest.approx(0.5)

    def test_nrmse_constant_exact(self):
        d = np.full(5, 1.0)
        assert nrmse(d, d) == 0.0


class TestSizeMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_compression_ratio_zero_size(self):
        with pytest.raises(DataError):
            compression_ratio(10, 0)

    def test_bit_rate_float32_identity(self):
        # uncompressed float32 is 32 bits/element
        assert bit_rate(100, 400) == 32.0

    def test_bit_rate_matches_paper_relation(self):
        # paper: bit rate = 32 / CR for float32 inputs
        n, comp = 1 << 20, 123456
        assert bit_rate(n, comp) == pytest.approx(
            32.0 / compression_ratio(4 * n, comp))


class TestSSIM:
    def test_identical(self):
        rng = np.random.default_rng(0)
        d = rng.random((16, 16, 16))
        assert ssim_3d(d, d) == pytest.approx(1.0)

    def test_degrades_with_noise(self):
        rng = np.random.default_rng(0)
        d = rng.random((21, 21, 21))
        light = ssim_3d(d, d + rng.normal(0, 0.01, d.shape))
        heavy = ssim_3d(d, d + rng.normal(0, 0.3, d.shape))
        assert heavy < light <= 1.0

    def test_window_too_large(self):
        # non-constant field smaller than the window has no valid blocks
        d = np.arange(9, dtype=np.float64).reshape(3, 3)
        with pytest.raises(DataError):
            ssim_3d(d, d, window=7)

    def test_constant_field_shortcut(self):
        d = np.zeros((3, 3))
        assert ssim_3d(d, d, window=7) == 1.0
        assert ssim_3d(d, d + 1.0, window=7) == 0.0
