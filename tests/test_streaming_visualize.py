"""Unit tests for slab streaming and the PGM visualization writer."""

import os

import numpy as np
import pytest

from conftest import assert_error_bounded, smooth_field
from repro.common.errors import ConfigError, ContainerError, DataError
from repro.experiments.visualize import slice_to_pgm
from repro.streaming import (SlabReader, SlabWriter, compress_slabs,
                             decompress_slabs)


class TestStreaming:
    def test_roundtrip(self):
        data = smooth_field((40, 32, 28), seed=120)
        stream = compress_slabs(data, slab_planes=8, codec="cuszi",
                                eb=0.01, mode="abs")
        back = decompress_slabs(stream)
        assert back.shape == data.shape
        assert_error_bounded(data, back, 0.01)

    def test_uneven_last_slab(self):
        data = smooth_field((19, 16, 16), seed=121)
        stream = compress_slabs(data, slab_planes=8, eb=0.01, mode="abs")
        assert len(SlabReader(stream)) == 3
        np.testing.assert_array_equal(decompress_slabs(stream).shape,
                                      data.shape)

    def test_random_slab_access(self):
        data = smooth_field((24, 20, 20), seed=122)
        stream = compress_slabs(data, slab_planes=6, eb=0.01, mode="abs")
        reader = SlabReader(stream)
        slab2 = reader.read_slab(2)
        assert_error_bounded(data[12:18], slab2, 0.01)

    def test_rel_mode_needs_range(self):
        with pytest.raises(ConfigError):
            SlabWriter(eb=1e-3, mode="rel")

    def test_rel_mode_with_known_range(self):
        data = smooth_field((16, 16, 16), seed=123)
        rng = float(data.max() - data.min())
        w = SlabWriter(eb=1e-3, mode="rel", value_range=rng)
        w.append(data[:8])
        w.append(data[8:])
        back = decompress_slabs(w.finish())
        assert_error_bounded(data, back, 1e-3 * rng)

    def test_cross_section_mismatch(self):
        w = SlabWriter(eb=0.01)
        w.append(np.zeros((4, 8, 8), np.float32) + 1)
        with pytest.raises(ConfigError):
            w.append(np.zeros((4, 8, 9), np.float32))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            SlabWriter(eb=0.01).finish()

    def test_garbage_stream_rejected(self):
        with pytest.raises(ContainerError):
            SlabReader(b"???")
        data = smooth_field((8, 8, 8), seed=124)
        stream = compress_slabs(data, slab_planes=4, eb=0.01)
        with pytest.raises(ContainerError):
            SlabReader(stream[:-5])

    def test_per_slab_codec_choice(self):
        data = smooth_field((16, 12, 12), seed=125)
        stream = compress_slabs(data, slab_planes=8, codec="cusz",
                                eb=0.01, mode="abs")
        back = decompress_slabs(stream)
        assert_error_bounded(data, back, 0.01)


class TestPGM:
    def test_writes_valid_header(self, tmp_path):
        arr = np.linspace(0, 1, 12).reshape(3, 4)
        path = tmp_path / "x.pgm"
        slice_to_pgm(arr, str(path))
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n4 3\n255\n")
        assert len(raw) == len(b"P5\n4 3\n255\n") + 12

    def test_value_mapping(self, tmp_path):
        arr = np.array([[0.0, 1.0]])
        path = tmp_path / "y.pgm"
        slice_to_pgm(arr, str(path))
        pixels = path.read_bytes()[-2:]
        assert pixels == bytes([0, 255])

    def test_constant_slice(self, tmp_path):
        path = tmp_path / "z.pgm"
        slice_to_pgm(np.full((2, 2), 5.0), str(path))
        assert path.read_bytes()[-4:] == bytes(4)

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(DataError):
            slice_to_pgm(np.zeros((2, 2, 2)), str(tmp_path / "n.pgm"))

    def test_fig8_slice_dump(self, tmp_path):
        from repro.experiments import fig8
        from repro.experiments.visualize import save_fig8_slices
        result = fig8.run(scale="small", save_slices=True)
        written = save_fig8_slices(result, str(tmp_path))
        assert any("original" in p for p in written)
        assert any("_error" in p for p in written)
        for p in written:
            assert os.path.getsize(p) > 100
