"""Unit tests for the telemetry core, exporters, and crosscheck."""

import json
import threading
import time

import pytest

from repro import telemetry
from repro.telemetry import Registry, exporters


@pytest.fixture(autouse=True)
def _clean_state():
    """Telemetry must never leak enabled-state between tests."""
    yield
    telemetry.disable()


class TestSpans:
    def test_disabled_is_noop(self):
        assert not telemetry.enabled()
        before = len(telemetry.get_registry().spans)
        with telemetry.span("x", a=1) as sp:
            sp.set(b=2)
        telemetry.incr("c")
        telemetry.observe("h", 1.0)
        assert telemetry.record_span("y", 0.5) is None
        assert len(telemetry.get_registry().spans) == before

    def test_disabled_overhead_is_negligible(self):
        def loop(n):
            t0 = time.perf_counter()
            for _ in range(n):
                with telemetry.span("x"):
                    pass
            return time.perf_counter() - t0

        loop(1000)  # warm up
        # sub-microsecond per disabled span: the flag check + a shared
        # no-op object; generous 10us/span bound keeps CI noise out
        assert loop(5000) / 5000 < 10e-6

    def test_nesting_and_attrs(self):
        with telemetry.recording() as reg:
            with telemetry.span("outer", who="me") as outer:
                with telemetry.span("inner") as inner:
                    inner.set(bytes_out=7)
                outer.set(done=True)
        assert [s.name for s in reg.spans] == ["inner", "outer"]
        by_name = {s.name: s for s in reg.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].attrs == {"bytes_out": 7}
        assert by_name["outer"].attrs == {"who": "me", "done": True}
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s

    def test_sibling_spans_share_parent(self):
        with telemetry.recording() as reg:
            with telemetry.span("root") as root:
                with telemetry.span("a"):
                    pass
                with telemetry.span("b"):
                    pass
        kids = [s for s in reg.spans if s.parent_id == root.span_id]
        assert sorted(s.name for s in kids) == ["a", "b"]

    def test_error_status_propagates(self):
        with telemetry.recording() as reg:
            with pytest.raises(ValueError):
                with telemetry.span("boom"):
                    raise ValueError("nope")
        (sp,) = reg.spans
        assert sp.status == "error"
        assert sp.attrs["error"] == "ValueError"

    def test_record_span_parenting(self):
        with telemetry.recording() as reg:
            with telemetry.span("live"):
                auto = telemetry.record_span("modelled", 1.5, cost=3)
            explicit = telemetry.record_span(
                "child", 0.5, parent_id=auto.span_id)
        by_name = {s.name: s for s in reg.spans}
        assert auto.duration_s == 1.5
        assert auto.parent_id == by_name["live"].span_id
        assert explicit.parent_id == auto.span_id

    def test_counters_and_histograms(self):
        with telemetry.recording() as reg:
            telemetry.incr("runs")
            telemetry.incr("runs", 2)
            telemetry.observe("sizes", 10.0)
            telemetry.observe("sizes", 20.0)
        assert reg.counters == {"runs": 3.0}
        assert reg.histograms == {"sizes": [10.0, 20.0]}

    def test_recording_restores_prior_registry(self):
        outer = telemetry.enable(Registry())
        with telemetry.recording() as inner:
            with telemetry.span("inside"):
                pass
        assert telemetry.enabled()
        assert telemetry.get_registry() is outer
        assert [s.name for s in inner.spans] == ["inside"]
        assert outer.spans == []
        telemetry.disable()

    def test_thread_stacks_are_independent(self):
        errors = []

        def worker(idx):
            try:
                with telemetry.span(f"t{idx}") as sp:
                    time.sleep(0.002)
                    with telemetry.span(f"t{idx}.child"):
                        pass
                    assert sp.parent_id is None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with telemetry.recording() as reg:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(reg.spans) == 8
        by_name = {s.name: s for s in reg.spans}
        for i in range(4):
            child = by_name[f"t{i}.child"]
            assert child.parent_id == by_name[f"t{i}"].span_id


class TestExporters:
    def _sample_registry(self):
        with telemetry.recording() as reg:
            with telemetry.span("compress", codec="cuszi") as sp:
                with telemetry.span("huffman", bytes_in=100) as h:
                    h.set(bytes_out=40)
                sp.set(compressed_nbytes=40, n_elements=25)
            telemetry.incr("outliers", 3)
            telemetry.observe("pass_targets", 12.0)
            telemetry.observe("pass_targets", 1200.0)
        return reg

    def test_jsonl_round_trip(self):
        reg = self._sample_registry()
        text = exporters.to_jsonl(reg)
        for line in text.strip().splitlines():
            json.loads(line)  # every line is standalone JSON
        back = exporters.from_jsonl(text)
        assert len(back.spans) == len(reg.spans)
        for a, b in zip(reg.spans, back.spans):
            assert (a.name, a.span_id, a.parent_id, a.attrs,
                    a.status) == (b.name, b.span_id, b.parent_id,
                                  b.attrs, b.status)
            assert a.duration_s == pytest.approx(b.duration_s)
        assert back.counters == reg.counters
        assert back.histograms == reg.histograms

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError):
            exporters.from_jsonl("not json at all\n")
        with pytest.raises(ValueError):
            exporters.from_jsonl('{"type": "mystery"}\n')

    def test_render_tree_shape(self):
        reg = self._sample_registry()
        tree = exporters.render_tree(reg.spans)
        lines = tree.splitlines()
        assert lines[0].startswith("compress")
        assert lines[1].startswith("  huffman")
        assert "bytes_out=40" in lines[1]
        assert exporters.render_tree(reg.spans, max_depth=1) == lines[0]

    def test_stage_breakdown_aggregates(self):
        reg = self._sample_registry()
        text = exporters.stage_breakdown(reg.spans)
        assert "huffman" in text and "compress" in text

    def test_prometheus_format(self):
        reg = self._sample_registry()
        text = exporters.to_prometheus(reg)
        assert "# TYPE repro_outliers_total counter" in text
        assert "repro_outliers_total 3" in text
        assert 'repro_pass_targets_bucket{le="+Inf"} 2' in text
        assert "repro_pass_targets_count 2" in text
        assert 'repro_span_duration_seconds_count{span="huffman"} 1' \
            in text

    def test_prometheus_help_lines(self):
        text = exporters.to_prometheus(self._sample_registry())
        assert '# HELP repro_outliers_total telemetry counter ' \
               '"outliers"' in text
        assert "# HELP repro_pass_targets telemetry histogram" in text
        assert "# HELP repro_span_duration_seconds" in text
        # every TYPE line is preceded by its HELP line
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE"):
                metric = line.split()[2]
                assert lines[i - 1].startswith(f"# HELP {metric} ")

    def test_degenerate_histogram_gets_spread_buckets(self):
        # identical observations used to produce a single bucket edge
        assert exporters._histogram_buckets([1.0, 1.0]) == \
            [0.1, 1.0, 10.0]
        # float overshoot of the top decade still lands in a bucket
        vals = [10.000001]
        buckets = exporters._histogram_buckets(vals)
        assert max(vals) <= max(buckets)
        # all non-positive: one fallback bucket
        assert exporters._histogram_buckets([0.0, -1.0]) == [1.0]
        with telemetry.recording() as reg:
            telemetry.observe("h", 5.0)
            telemetry.observe("h", 5.0)
        text = exporters.to_prometheus(reg)
        finite = [ln for ln in text.splitlines()
                  if "repro_h_bucket" in ln and "+Inf" not in ln]
        assert len(finite) >= 2

    def test_prometheus_cache_gauges(self):
        from repro.telemetry import caches
        caches.register("test.export", lambda: {
            "hits": 7, "misses": 3, "size": 2, "limit": 8,
            "size_bytes": 640})
        try:
            text = exporters.to_prometheus(Registry())
            assert "# TYPE repro_cache_hits_total counter" in text
            assert "# TYPE repro_cache_size_bytes gauge" in text
            assert 'repro_cache_hits_total{cache="test.export"} 7' \
                in text
            assert 'repro_cache_size_bytes{cache="test.export"} 640' \
                in text
            assert 'repro_cache_hit_ratio{cache="test.export"} 0.7' \
                in text
            # the four built-in cache families all export series
            for cache in ("ginterp.plan", "ginterp.autotune",
                          "huffman.codebook", "huffman.table",
                          "lossless.orchestrator_plan"):
                assert f'repro_cache_size{{cache="{cache}"}}' in text
            off = exporters.to_prometheus(Registry(),
                                          include_caches=False)
            assert "repro_cache_" not in off
        finally:
            caches.unregister("test.export")


class TestCrosscheck:
    def test_crosscheck_against_model(self):
        import numpy as np
        from conftest import smooth_field
        from repro.core.pipeline import CuSZi
        from repro.telemetry.crosscheck import crosscheck

        field = smooth_field((24, 24, 24), seed=7)
        with telemetry.recording() as reg:
            CuSZi(eb=1e-3).compress_detailed(field)
        for device in ("a100", "a40"):
            report = crosscheck(reg.spans, device)
            assert report.codec == "cuszi"
            assert report.direction == "compress"
            assert [r.stage for r in report.rows] == \
                ["predict", "huffman", "lossless"]
            shares = [r.measured_share for r in report.rows]
            assert sum(shares) == pytest.approx(1.0)
            assert sum(r.modelled_share for r in report.rows) == \
                pytest.approx(1.0)
            assert np.isfinite(report.max_skew)
            assert "cross-check" in report.format()

    def test_crosscheck_decompress_direction(self):
        from conftest import smooth_field
        from repro.core.pipeline import CuSZi
        from repro.telemetry.crosscheck import crosscheck

        codec = CuSZi(eb=1e-3)
        blob = codec.compress(smooth_field((24, 24, 24), seed=7))
        with telemetry.recording() as reg:
            codec.decompress(blob)
        report = crosscheck(reg.spans, "a100")
        assert report.direction == "decompress"
        assert sum(r.measured_share for r in report.rows) == \
            pytest.approx(1.0)

    def test_crosscheck_needs_root(self):
        from repro.common.errors import ConfigError
        from repro.telemetry.crosscheck import crosscheck

        with telemetry.recording() as reg:
            with telemetry.span("unrelated"):
                pass
        with pytest.raises(ConfigError):
            crosscheck(reg.spans)
