"""Unit tests for the GPU performance model (the Fig. 9 substrate)."""

import pytest

from repro.common.errors import ConfigError
from repro.gpu import (A40_JLSE, A100_THETA, DEVICES, Kernel,
                       estimate_throughput, kernel_time, pipeline_kernels)


class TestDevices:
    def test_table1_specs(self):
        assert A100_THETA.mem_bw == 1555.0
        assert A100_THETA.fp32_peak == 19.49
        assert A40_JLSE.mem_bw == pytest.approx(695.8)
        assert A40_JLSE.fp32_peak == pytest.approx(37.42)
        assert set(DEVICES) == {"a100", "a40"}


class TestKernelModel:
    def test_memory_bound(self):
        k = Kernel(name="stream", bytes_read=1e9, bytes_written=0,
                   mem_eff=1.0)
        t = kernel_time(k, A100_THETA)
        assert t == pytest.approx(1e9 / 1555e9, rel=0.05)

    def test_compute_bound(self):
        k = Kernel(name="math", bytes_read=8, bytes_written=8,
                   flops=1e12, flop_eff=1.0)
        t = kernel_time(k, A100_THETA)
        assert t == pytest.approx(1e12 / 19.49e12, rel=0.05)

    def test_launch_overhead_floor(self):
        k = Kernel(name="tiny", bytes_read=8, bytes_written=8)
        assert kernel_time(k, A100_THETA) \
            >= A100_THETA.kernel_overhead_us * 1e-6

    def test_launch_multiplier(self):
        k1 = Kernel(name="one", bytes_read=8, bytes_written=0, launches=1)
        k9 = Kernel(name="nine", bytes_read=8, bytes_written=0, launches=9)
        assert kernel_time(k9, A100_THETA) \
            > 8 * kernel_time(k1, A100_THETA) * 0.9

    def test_bad_efficiency(self):
        with pytest.raises(ConfigError):
            Kernel(name="bad", bytes_read=1, bytes_written=0, mem_eff=0.0)
        with pytest.raises(ConfigError):
            Kernel(name="bad", bytes_read=-1, bytes_written=0)


class TestPipelines:
    N = 512 ** 3
    CB = N * 4 // 25

    @pytest.mark.parametrize("codec", ["cusz", "cuszi", "cuszp", "cuszx",
                                       "fzgpu", "cuzfp"])
    @pytest.mark.parametrize("direction", ["compress", "decompress"])
    def test_inventories_exist(self, codec, direction):
        ks = pipeline_kernels(codec, direction, self.N, self.CB)
        assert ks
        t = estimate_throughput(codec, direction, self.N, self.CB,
                                A100_THETA)
        assert 10 < t.throughput_gbps < 2000

    def test_unknown_codec(self):
        with pytest.raises(ConfigError):
            pipeline_kernels("sz3", "compress", self.N, self.CB)

    def test_bad_direction(self):
        with pytest.raises(ConfigError):
            pipeline_kernels("cusz", "sideways", self.N, self.CB)

    def test_paper_ratio_cuszi_vs_cusz_a100_compress(self):
        # §VII-C.4: "approximately 60% of cuSZ's compression throughput"
        ci = estimate_throughput("cuszi", "compress", self.N, self.CB,
                                 A100_THETA).throughput_gbps
        cz = estimate_throughput("cusz", "compress", self.N, self.CB,
                                 A100_THETA).throughput_gbps
        assert 0.45 <= ci / cz <= 0.7

    def test_paper_ratio_cuszi_vs_cusz_a100_decompress(self):
        # §VII-C.4: "80% to 90% of cuSZ's decompression throughput"
        ci = estimate_throughput("cuszi", "decompress", self.N, self.CB,
                                 A100_THETA).throughput_gbps
        cz = estimate_throughput("cusz", "decompress", self.N, self.CB,
                                 A100_THETA).throughput_gbps
        assert 0.7 <= ci / cz <= 0.95

    def test_paper_ratio_closer_on_a40(self):
        # §VII-C.4: cuSZ-i performs closer to cuSZ on the A40
        def ratio(dev):
            ci = estimate_throughput("cuszi", "compress", self.N, self.CB,
                                     dev).throughput_gbps
            cz = estimate_throughput("cusz", "compress", self.N, self.CB,
                                     dev).throughput_gbps
            return ci / cz
        assert ratio(A40_JLSE) > ratio(A100_THETA)
        assert 0.65 <= ratio(A40_JLSE) <= 0.9

    def test_speed_ordering_matches_fig9(self):
        # throughput-oriented codecs beat cuSZ; cuSZ beats cuSZ-i
        names = ["cuszx", "cuszp", "cuzfp", "fzgpu", "cusz", "cuszi"]
        tps = {c: estimate_throughput(c, "compress", self.N, self.CB,
                                      A100_THETA).throughput_gbps
               for c in names}
        assert tps["cuszx"] > tps["cusz"]
        assert tps["cuszp"] > tps["cusz"]
        assert tps["fzgpu"] > tps["cusz"]
        assert tps["cuzfp"] > tps["cusz"]
        assert tps["cusz"] > tps["cuszi"]

    def test_gle_overhead_negligible(self):
        # §VII-C.4: "adding Bitcomp-lossless brings negligible overhead"
        plain = estimate_throughput("cuszi", "compress", self.N, self.CB,
                                    A100_THETA).throughput_gbps
        wrapped = estimate_throughput("cuszi", "compress", self.N, self.CB,
                                      A100_THETA,
                                      lossless="gle").throughput_gbps
        assert wrapped >= plain * 0.9

    def test_throughput_scales_with_bandwidth_for_streaming(self):
        a100 = estimate_throughput("cuszx", "compress", self.N, self.CB,
                                   A100_THETA).throughput_gbps
        a40 = estimate_throughput("cuszx", "compress", self.N, self.CB,
                                  A40_JLSE).throughput_gbps
        assert a40 / a100 == pytest.approx(695.8 / 1555.0, rel=0.1)

    def test_unknown_lossless(self):
        with pytest.raises(ConfigError):
            pipeline_kernels("cusz", "compress", self.N, self.CB,
                             lossless="zstd")
