"""Unit tests for the profiling-based auto-tuner (paper §V-C)."""

import numpy as np
import pytest

from conftest import smooth_field
from repro.core.ginterp.autotune import (alpha_from_eb, autotune,
                                         profile_cubic_errors)
from repro.core.ginterp.splines import CUBIC_NAK, CUBIC_NAT


class TestAlphaFromEb:
    """Eq. 1's piecewise-linear map, checked at every knot and segment."""

    @pytest.mark.parametrize("eb,expect", [
        (0.5, 2.0),
        (1e-1, 2.0),
        (1e-2, 1.75),
        (1e-3, 1.5),
        (1e-4, 1.25),
        (1e-5, 1.0),
        (1e-6, 1.0),
    ])
    def test_knots(self, eb, expect):
        assert alpha_from_eb(eb) == pytest.approx(expect)

    def test_midpoints_interpolate(self):
        mid = (1e-2 + 1e-1) / 2
        assert alpha_from_eb(mid) == pytest.approx(
            1.75 + 0.25 * (mid - 1e-2) / (1e-1 - 1e-2))

    def test_monotone_nondecreasing(self):
        ebs = np.logspace(-7, 0, 200)
        alphas = [alpha_from_eb(e) for e in ebs]
        assert all(b >= a - 1e-12 for a, b in zip(alphas, alphas[1:]))

    def test_range(self):
        for e in np.logspace(-8, 1, 50):
            assert 1.0 <= alpha_from_eb(e) <= 2.0


class TestProfiling:
    def test_error_matrix_shape(self):
        data = smooth_field((20, 24, 28), seed=0)
        errors = profile_cubic_errors(data)
        assert errors.shape == (3, 2)
        assert (errors >= 0).all()

    def test_detects_least_smooth_axis(self):
        # make axis 0 much rougher than the others
        rng = np.random.default_rng(0)
        base = smooth_field((32, 32, 32), seed=1).astype(np.float64)
        base += 0.5 * np.sin(np.arange(32) * 2.9)[:, None, None]
        report = autotune(base.astype(np.float32), 1e-3)
        assert report.axis_order[0] == 0

    def test_tiny_axes_survive(self):
        data = smooth_field((5, 40), seed=2)
        errors = profile_cubic_errors(data)
        assert errors.shape == (2, 2)

    def test_report_fields(self):
        data = smooth_field(seed=3)
        rng = float(data.max() - data.min())
        report = autotune(data, 1e-3 * rng)
        assert report.alpha == pytest.approx(alpha_from_eb(1e-3), rel=1e-6)
        assert sorted(report.axis_order) == [0, 1, 2]
        assert all(v in (CUBIC_NAK, CUBIC_NAT)
                   for v in report.cubic_variant)
        assert report.value_range == pytest.approx(rng)

    def test_deterministic(self):
        data = smooth_field(seed=4)
        a = autotune(data, 1e-3)
        b = autotune(data, 1e-3)
        assert a == b

    def test_constant_field(self):
        data = np.full((16, 16, 16), 2.0, dtype=np.float32)
        report = autotune(data, 1e-3)
        assert report.value_range == 0.0
        assert report.alpha >= 1.0
