"""Unit tests for the cuZFP fixed-rate codec."""

import numpy as np
import pytest

from conftest import rough_field, smooth_field
from repro.baselines.cuzfp import CuZFP, fwd_lift, inv_lift, sequency_order
from repro.baselines.cuzfp.codec import _decode_planes, _encode_planes
from repro.baselines.cuzfp.transform import fwd_transform, inv_transform
from repro.common.errors import ConfigError, ReproError
from repro.common.metrics import psnr


class TestTransform:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_near_invertible(self, ndim, rng):
        blocks = rng.integers(-2**30, 2**30,
                              size=(200,) + (4,) * ndim).astype(np.int64)
        orig = blocks.copy()
        fwd_transform(blocks)
        inv_transform(blocks)
        # lossy by design: each >>1 stage may drop one unit
        assert np.abs(blocks - orig).max() <= 32

    def test_decorrelates_smooth_blocks(self, rng):
        # a linear ramp concentrates energy in low-sequency coefficients
        ramp = np.arange(4, dtype=np.int64) * 1000
        block = np.broadcast_to(ramp, (1, 4, 4, 4)).copy()
        fwd_transform(block)
        coefs = np.abs(block.reshape(-1)[sequency_order(3)])
        assert coefs[:4].sum() > coefs[32:].sum()

    def test_single_lift_axis_independence(self, rng):
        b = rng.integers(-1000, 1000, (5, 4, 4)).astype(np.int64)
        b2 = b.copy()
        fwd_lift(b, 1)
        fwd_lift(b, 2)
        fwd_lift(b2, 1)
        # axis-2 lift must not change what axis-1 already produced along 1
        inv_lift(b, 2)
        assert np.abs(b - b2).max() <= 4

    @pytest.mark.parametrize("ndim,expect_first", [(1, 0), (2, 0), (3, 0)])
    def test_sequency_order_starts_at_dc(self, ndim, expect_first):
        order = sequency_order(ndim)
        assert order[0] == expect_first
        assert sorted(order) == list(range(4 ** ndim))

    def test_sequency_order_monotone_degree(self):
        order = sequency_order(3)
        coords = np.indices((4, 4, 4)).reshape(3, -1)
        degrees = coords.sum(axis=0)[order]
        assert (np.diff(degrees) >= 0).all()


class TestPlaneCoder:
    def test_roundtrip_exact_when_budget_ample(self, rng):
        neg = rng.integers(0, 2**20, (50, 64)).astype(np.uint64)
        maxbits = 64 * 32  # enough for everything
        bitbuf = _encode_planes(neg, maxbits)
        back = _decode_planes(bitbuf, 64)
        np.testing.assert_array_equal(back, neg)

    def test_truncation_never_invents_bits(self, rng):
        neg = rng.integers(0, 2**20, (50, 64)).astype(np.uint64)
        bitbuf = _encode_planes(neg, 256)
        back = _decode_planes(bitbuf, 64)
        # truncated reconstruction only drops bits, never invents them,
        # so it is elementwise <= the original and loses only low planes
        assert (back & ~neg).max() == 0
        assert (back <= neg).all()
        # and on average most of the magnitude survives the budget
        assert back.sum(dtype=np.float64) > 0.5 * neg.sum(dtype=np.float64)

    def test_zero_blocks_cost_one_bit_per_plane(self):
        neg = np.zeros((10, 64), dtype=np.uint64)
        bitbuf = _encode_planes(neg, 128)
        # each plane writes exactly one 0 flag
        assert bitbuf.sum() == 0


class TestCodec:
    def test_rate_respected(self):
        data = smooth_field((40, 40, 40), seed=30)
        for rate in (1.0, 4.0):
            blob = CuZFP(rate=rate).compress(data)
            bpe = 8 * len(blob) / data.size
            assert bpe == pytest.approx(rate, rel=0.05)

    def test_psnr_increases_with_rate(self):
        data = smooth_field((40, 40, 40), seed=31)
        psnrs = []
        for rate in (1.0, 2.0, 4.0, 8.0):
            c = CuZFP(rate=rate)
            psnrs.append(psnr(data, c.decompress(c.compress(data))))
        assert psnrs == sorted(psnrs)

    def test_high_rate_near_lossless(self):
        data = smooth_field((24, 24, 24), seed=32)
        c = CuZFP(rate=28.0)
        out = c.decompress(c.compress(data))
        rng = float(data.max() - data.min())
        assert np.abs(out - data).max() < 1e-5 * rng

    @pytest.mark.parametrize("shape", [(100,), (33, 45), (17, 19, 23)])
    def test_odd_shapes(self, shape):
        data = smooth_field(shape, seed=33)
        c = CuZFP(rate=8.0)
        out = c.decompress(c.compress(data))
        assert out.shape == shape
        assert psnr(data, out) > 40

    def test_rough_data_lower_quality(self):
        smooth = smooth_field((32, 32, 32), seed=34)
        rough = rough_field((32, 32, 32), seed=34)
        c = CuZFP(rate=4.0)
        p_smooth = psnr(smooth, c.decompress(c.compress(smooth)))
        p_rough = psnr(rough, c.decompress(c.compress(rough)))
        assert p_smooth > p_rough + 10

    def test_rate_too_small_rejected(self):
        with pytest.raises(ConfigError):
            CuZFP(rate=0.1).compress(smooth_field((8, 8, 8)))
        with pytest.raises(ConfigError):
            CuZFP(rate=-1)

    def test_huge_dynamic_range_blocks(self):
        data = smooth_field((16, 16, 16), seed=35)
        data[:8] *= 1e20
        data[8:] *= 1e-20
        c = CuZFP(rate=8.0)
        out = c.decompress(c.compress(data))
        # block-local exponents keep each regime's relative error sane
        assert psnr(data, out) > 40

    def test_zero_field(self):
        data = np.zeros((16, 16, 16), dtype=np.float32)
        c = CuZFP(rate=2.0)
        np.testing.assert_array_equal(c.decompress(c.compress(data)), data)

    def test_wrong_blob_rejected(self):
        with pytest.raises(ReproError):
            CuZFP().decompress(b"nope")

    def test_gle_wrap(self):
        data = smooth_field((20, 20, 20), seed=36)
        c = CuZFP(rate=4.0, lossless="gle")
        out = c.decompress(c.compress(data))
        assert psnr(data, out) > 60
