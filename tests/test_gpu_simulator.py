"""Unit tests for the transaction/occupancy-level GPU simulator."""

import pytest

from repro.common.errors import ConfigError
from repro.gpu import A40_JLSE, A100_THETA
from repro.gpu.simulator import (SM_CONFIGS, KernelLaunch, occupancy,
                                 pipeline_launches, simulate_kernel,
                                 simulate_pipeline)


def _launch(**overrides):
    base = dict(name="k", grid_blocks=1000, threads_per_block=256,
                regs_per_thread=32, shared_bytes_per_block=0,
                sectors_loaded_per_block=64.0,
                sectors_stored_per_block=64.0)
    base.update(overrides)
    return KernelLaunch(**base)


class TestOccupancy:
    SM = SM_CONFIGS["A100"]

    def test_thread_limited(self):
        # 256-thread blocks, tiny footprint -> 2048/256 = 8 blocks
        assert occupancy(_launch(), self.SM) == 8

    def test_shared_memory_limited(self):
        launch = _launch(shared_bytes_per_block=40 * 1024)
        assert occupancy(launch, self.SM) == 4  # 164KB / 40KB

    def test_register_limited(self):
        launch = _launch(regs_per_thread=128)
        # 65536 / (128 * 256) = 2
        assert occupancy(launch, self.SM) == 2

    def test_block_limited(self):
        launch = _launch(threads_per_block=32, regs_per_thread=8)
        assert occupancy(launch, self.SM) == self.SM.max_blocks_per_sm

    def test_cannot_fit_rejected(self):
        launch = _launch(shared_bytes_per_block=200 * 1024)
        with pytest.raises(ConfigError):
            occupancy(launch, self.SM)

    def test_a40_tighter_than_a100(self):
        launch = _launch(shared_bytes_per_block=30 * 1024)
        assert occupancy(launch, SM_CONFIGS["A40"]) \
            <= occupancy(launch, SM_CONFIGS["A100"])


class TestSimulateKernel:
    SM = SM_CONFIGS["A100"]

    def test_memory_bound_streaming(self):
        launch = _launch(grid_blocks=100000)
        t = simulate_kernel(launch, A100_THETA, self.SM)
        ideal = 100000 * 128 * 32 / A100_THETA.mem_bw_bytes
        assert ideal <= t <= ideal * 2

    def test_low_occupancy_slows_kernel(self):
        fat = _launch(grid_blocks=100000, regs_per_thread=128)
        slim = _launch(grid_blocks=100000, regs_per_thread=32)
        assert simulate_kernel(fat, A100_THETA, self.SM) \
            > simulate_kernel(slim, A100_THETA, self.SM)

    def test_stages_add_latency(self):
        one = _launch(grid_blocks=100000)
        nine = _launch(grid_blocks=100000, stages=9)
        assert simulate_kernel(nine, A100_THETA, self.SM) \
            > simulate_kernel(one, A100_THETA, self.SM)

    def test_contention_multiplies(self):
        quiet = _launch(grid_blocks=50000)
        loud = _launch(grid_blocks=50000, contention="bit-merge")
        assert simulate_kernel(loud, A100_THETA, self.SM) \
            > 3 * simulate_kernel(quiet, A100_THETA, self.SM)

    def test_unknown_contention_rejected(self):
        with pytest.raises(ConfigError):
            _launch(contention="banked")

    def test_oversized_block_rejected(self):
        with pytest.raises(ConfigError):
            _launch(threads_per_block=2048)


class TestEmergentRatios:
    """§VII-C.4's throughput ratios must *emerge* from the geometry."""

    N = 512 ** 3
    CB = N * 4 // 25

    def _ratio(self, device):
        t_i = simulate_pipeline("cuszi", self.N, self.CB, device)
        t_z = simulate_pipeline("cusz", self.N, self.CB, device)
        return t_z / t_i  # throughput ratio cuszi/cusz

    def test_a100_ratio(self):
        assert 0.4 <= self._ratio(A100_THETA) <= 0.75

    def test_a40_closer(self):
        r100 = self._ratio(A100_THETA)
        r40 = self._ratio(A40_JLSE)
        assert r40 > r100
        assert 0.6 <= r40 <= 0.95

    def test_magnitudes_match_roofline_model(self):
        # the two hardware substitutes must agree within ~2x
        from repro.gpu.perfmodel import estimate_throughput
        for codec in ("cusz", "cuszi"):
            sim = self.N * 4 / simulate_pipeline(codec, self.N, self.CB,
                                                 A100_THETA) / 1e9
            roof = estimate_throughput(codec, "compress", self.N, self.CB,
                                       A100_THETA).throughput_gbps
            assert 0.5 <= sim / roof <= 2.0, codec

    def test_spline_occupancy_is_the_bottleneck(self):
        sm = SM_CONFIGS["A100"]
        launches = {k.name: k for k in pipeline_launches(
            "cuszi", self.N, self.CB)}
        spline_occ = occupancy(launches["ginterp-spline"], sm)
        lorenzo_occ = occupancy(pipeline_launches(
            "cusz", self.N, self.CB)[0], sm)
        assert spline_occ < lorenzo_occ

    def test_unknown_codec(self):
        with pytest.raises(ConfigError):
            pipeline_launches("cuszp", self.N, self.CB)

    def test_unknown_device(self):
        from dataclasses import replace
        dev = replace(A100_THETA, name="H100")
        with pytest.raises(ConfigError):
            simulate_pipeline("cusz", self.N, self.CB, dev)
