"""Compiled pass plans: bit-exact equivalence, cache behavior, stream guards.

The compiled path must be indistinguishable from the reference traversal
in every emitted byte — these tests compare full streams with
``tobytes()``, not ``allclose``.
"""

import concurrent.futures
import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import rough_field, smooth_field
from repro.common.errors import (ConfigError, CorruptStreamError, DataError)
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp import (InterpSpec, clear_plan_cache, compile_plan,
                                get_plan, interp_compress, interp_decompress,
                                plan_cache_stats, set_plan_cache_limit)
from repro.core.ginterp.autotune import autotune, profile_cubic_errors
from repro.core.ginterp.splines import CUBIC_NAK, CUBIC_NAT, SPLINE_WEIGHTS


def _field(shape, seed=0):
    rng = np.random.default_rng(seed)
    mesh = np.meshgrid(*[np.linspace(0, 3, n) for n in shape],
                       indexing="ij")
    return (np.sin(np.add.reduce(mesh))
            + 0.05 * rng.standard_normal(shape)).astype(np.float32)


def _assert_equivalent(shape, spec, seed=0, quantizer=None):
    data = _field(shape, seed)
    eb = 1e-3 * float(data.max() - data.min())
    ref = interp_compress(data, spec, eb, quantizer, compiled=False)
    cmp_ = interp_compress(data, spec, eb, quantizer, compiled=True)
    assert ref.codes.tobytes() == cmp_.codes.tobytes()
    assert ref.outliers.tobytes() == cmp_.outliers.tobytes()
    assert ref.anchors.tobytes() == cmp_.anchors.tobytes()
    assert ref.reconstructed.tobytes() == cmp_.reconstructed.tobytes()
    assert ref.pass_sizes == cmp_.pass_sizes
    dref = interp_decompress(shape, spec, eb, ref.codes, ref.outliers,
                             ref.anchors, quantizer, compiled=False)
    dcmp = interp_decompress(shape, spec, eb, cmp_.codes, cmp_.outliers,
                             cmp_.anchors, quantizer, compiled=True)
    assert dref.tobytes() == dcmp.tobytes()
    assert dref.tobytes() == ref.reconstructed.tobytes()


class TestBitExactEquivalence:
    """Compiled vs reference: every stream byte-identical."""

    @pytest.mark.parametrize("shape,spec", [
        ((257,), InterpSpec(anchor_stride=64)),
        ((101,), InterpSpec(anchor_stride=16)),
        ((2049,), InterpSpec(anchor_stride=512, window_shape=(2049,))),
        ((65, 33), InterpSpec(anchor_stride=16)),
        ((67, 129), InterpSpec(anchor_stride=16, window_shape=(17, 65))),
        ((5, 7), InterpSpec(anchor_stride=16)),       # smaller than stride
        ((33, 17, 25), InterpSpec(anchor_stride=8)),
        ((64, 64, 64), InterpSpec(anchor_stride=8,
                                  window_shape=(9, 9, 33))),
        ((40, 28, 36), InterpSpec(anchor_stride=8,
                                  cubic_variant=(CUBIC_NAT,) * 3)),
        ((32, 48, 20), InterpSpec(anchor_stride=8, axis_order=(2, 0, 1))),
        ((20, 20, 20), InterpSpec(anchor_stride=32,
                                  window_shape=(9, 9, 9))),
    ], ids=["1d", "1d-odd", "1d-window", "2d", "2d-window", "2d-tiny",
            "3d-odd", "3d-window", "3d-natural", "3d-axis-order",
            "3d-nearest-classes"])
    def test_streams_identical(self, shape, spec):
        _assert_equivalent(shape, spec)

    def test_identical_with_outliers(self):
        # small radius forces the outlier path through both traversals
        shape = (48, 40, 32)
        data = rough_field(shape)
        eb = 1e-4 * float(data.max() - data.min())
        q = LinearQuantizer(radius=8)
        ref = interp_compress(data, InterpSpec(anchor_stride=8), eb, q,
                              compiled=False)
        cmp_ = interp_compress(data, InterpSpec(anchor_stride=8), eb, q,
                               compiled=True)
        assert ref.outliers.size > 0
        assert ref.codes.tobytes() == cmp_.codes.tobytes()
        assert ref.outliers.tobytes() == cmp_.outliers.tobytes()
        assert ref.reconstructed.tobytes() == cmp_.reconstructed.tobytes()

    def test_explicit_plan_matches_implicit(self):
        shape = (33, 29)
        spec = InterpSpec(anchor_stride=8)
        data = _field(shape)
        eb = 1e-3
        plan = get_plan(shape, spec.resolved(2))
        a = interp_compress(data, spec, eb, plan=plan)
        b = interp_compress(data, spec, eb)
        assert a.codes.tobytes() == b.codes.tobytes()
        assert a.reconstructed.tobytes() == b.reconstructed.tobytes()

    def test_mismatched_plan_rejected(self):
        spec = InterpSpec(anchor_stride=8)
        plan = get_plan((16, 16), spec.resolved(2))
        with pytest.raises(ConfigError):
            interp_compress(_field((32, 32)), spec, 1e-3, plan=plan)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(5, 200), stride=st.sampled_from([4, 8, 16]),
           seed=st.integers(0, 5))
    def test_property_1d(self, n, stride, seed):
        _assert_equivalent((n,), InterpSpec(anchor_stride=stride), seed)

    @settings(max_examples=25, deadline=None)
    @given(h=st.integers(4, 48), w=st.integers(4, 48),
           stride=st.sampled_from([4, 8]),
           windowed=st.booleans(), seed=st.integers(0, 3))
    def test_property_2d(self, h, w, stride, windowed, seed):
        spec = InterpSpec(anchor_stride=stride,
                          window_shape=(9, 17) if windowed else None)
        _assert_equivalent((h, w), spec, seed)


class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def teardown_method(self):
        clear_plan_cache()

    def test_hit_and_identity(self):
        spec = InterpSpec(anchor_stride=8).resolved(2)
        p1 = get_plan((32, 32), spec)
        p2 = get_plan((32, 32), spec)
        assert p1 is p2
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_alpha_beta_excluded_from_key(self):
        base = InterpSpec(anchor_stride=8).resolved(2)
        tuned = InterpSpec(anchor_stride=8, alpha=1.75,
                           beta=4.0).resolved(2)
        assert get_plan((32, 32), base) is get_plan((32, 32), tuned)

    def test_geometry_changes_key(self):
        a = get_plan((32, 32), InterpSpec(anchor_stride=8).resolved(2))
        b = get_plan((32, 32), InterpSpec(anchor_stride=16).resolved(2))
        c = get_plan((32, 32), InterpSpec(
            anchor_stride=8, window_shape=(9, 17)).resolved(2))
        assert a is not b and a is not c

    def test_lru_eviction(self):
        old = set_plan_cache_limit(2)
        try:
            spec = InterpSpec(anchor_stride=8)
            get_plan((16, 16), spec.resolved(2))
            get_plan((24, 24), spec.resolved(2))
            get_plan((32, 32), spec.resolved(2))   # evicts (16, 16)
            assert plan_cache_stats()["size"] == 2
            before = plan_cache_stats()["misses"]
            get_plan((16, 16), spec.resolved(2))
            assert plan_cache_stats()["misses"] == before + 1
        finally:
            set_plan_cache_limit(old)

    def test_bad_limit_rejected(self):
        with pytest.raises(ConfigError):
            set_plan_cache_limit(0)

    def test_compress_then_decompress_share_plan(self):
        spec = InterpSpec(anchor_stride=8)
        data = _field((40, 40))
        res = interp_compress(data, spec, 1e-3)
        before = plan_cache_stats()["hits"]
        interp_decompress(data.shape, spec, 1e-3, res.codes, res.outliers,
                          res.anchors)
        after = plan_cache_stats()
        assert after["hits"] == before + 1 and after["misses"] == 1

    def test_retune_at_new_eb_hits(self):
        # alpha changes with eb but addressing does not: the re-tuned
        # compress must reuse the compiled plan
        data = _field((40, 40))
        interp_compress(data, InterpSpec(anchor_stride=8, alpha=1.5), 1e-3)
        before = plan_cache_stats()
        interp_compress(data, InterpSpec(anchor_stride=8, alpha=1.9), 1e-2)
        after = plan_cache_stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1

    def test_compile_plan_uncached(self):
        spec = InterpSpec(anchor_stride=8).resolved(2)
        a = compile_plan((32, 32), spec)
        b = compile_plan((32, 32), spec)
        assert a is not b
        assert plan_cache_stats()["size"] == 0


def _worker_probe(shape):
    """Runs in a forked worker: fresh cache, two compressions."""
    clear_plan_cache()
    data = _field(shape)
    interp_compress(data, InterpSpec(anchor_stride=8), 1e-3)
    interp_compress(data, InterpSpec(anchor_stride=8), 1e-3)
    return plan_cache_stats()


class TestCrossProcessReuse:
    def test_worker_compiles_once_then_reuses(self):
        clear_plan_cache()
        ctx = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=1, mp_context=ctx) as pool:
            stats = pool.submit(_worker_probe, (40, 40)).result(timeout=60)
        assert stats["misses"] == 1 and stats["hits"] == 1
        # worker caches are per-process: the parent saw none of it
        assert plan_cache_stats()["size"] == 0


class TestCorruptStreams:
    @pytest.fixture
    def archive(self):
        spec = InterpSpec(anchor_stride=8)
        data = rough_field((24, 24, 24))
        eb = 1e-4 * float(data.max() - data.min())
        q = LinearQuantizer(radius=8)
        res = interp_compress(data, spec, eb, q, compiled=True)
        assert res.outliers.size > 0
        return data.shape, spec, eb, q, res

    @pytest.mark.parametrize("compiled", [True, False])
    def test_truncated_codes(self, archive, compiled):
        shape, spec, eb, q, res = archive
        with pytest.raises(CorruptStreamError, match="exhausted"):
            interp_decompress(shape, spec, eb, res.codes[:-7], res.outliers,
                              res.anchors, q, compiled=compiled)

    @pytest.mark.parametrize("compiled", [True, False])
    def test_trailing_codes(self, archive, compiled):
        shape, spec, eb, q, res = archive
        padded = np.concatenate([res.codes,
                                 np.zeros(3, dtype=res.codes.dtype)])
        with pytest.raises(CorruptStreamError, match="trailing"):
            interp_decompress(shape, spec, eb, padded, res.outliers,
                              res.anchors, q, compiled=compiled)

    @pytest.mark.parametrize("compiled", [True, False])
    def test_truncated_outliers(self, archive, compiled):
        shape, spec, eb, q, res = archive
        with pytest.raises(CorruptStreamError, match="outlier"):
            interp_decompress(shape, spec, eb, res.codes,
                              res.outliers[:res.outliers.size // 2],
                              res.anchors, q, compiled=compiled)

    def test_dequantize_direct_guard(self):
        q = LinearQuantizer(radius=8)
        codes = np.zeros(5, dtype=np.uint32)     # five outlier codes
        preds = np.zeros(5)
        with pytest.raises(CorruptStreamError):
            q.dequantize(codes, preds, 1e-3,
                         np.zeros(2, dtype=np.float32), 0)


class TestNonFiniteGuards:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("compiled", [True, False])
    def test_compress_rejects(self, bad, compiled):
        data = _field((24, 24))
        data[3, 7] = bad
        with pytest.raises(DataError, match="non-finite"):
            interp_compress(data, InterpSpec(anchor_stride=8), 1e-3,
                            compiled=compiled)

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_autotune_rejects(self, bad):
        data = smooth_field((24, 24, 24))
        data[1, 2, 3] = bad
        with pytest.raises(DataError, match="non-finite"):
            autotune(data, 1e-3)


class TestProfileGatherMicroFix:
    def test_matches_per_offset_reference(self):
        """The single advanced-index gather must reproduce the old
        four-copies-per-axis neighbor matrix bit for bit."""
        data = smooth_field((20, 24, 16), seed=3)
        got = profile_cubic_errors(data)

        ndim = data.ndim
        ref = np.zeros((ndim, 2), dtype=np.float64)
        margin, samples = 3, 4
        coords = []
        for n in data.shape:
            lo, hi = margin, n - 1 - margin
            coords.append(np.unique(np.linspace(lo, hi, samples)
                                    .astype(np.int64)))
        grids = np.meshgrid(*coords, indexing="ij")
        flat_pts = np.stack([g.ravel() for g in grids], axis=1)
        values = data[tuple(flat_pts.T)].astype(np.float64)
        for ax in range(ndim):
            n = data.shape[ax]
            pos = flat_pts[:, ax]
            ok = (pos + 3 <= n - 1) & (pos - 3 >= 0)
            pts = flat_pts[ok]
            vals = values[ok]
            neigh = np.empty((pts.shape[0], 4), dtype=np.float64)
            for j, off in enumerate((-3, -1, 1, 3)):
                moved = pts.copy()
                moved[:, ax] += off
                neigh[:, j] = data[tuple(moved.T)].astype(np.float64)
            ref[ax, 0] = np.abs(neigh @ SPLINE_WEIGHTS[CUBIC_NAK]
                                - vals).sum()
            ref[ax, 1] = np.abs(neigh @ SPLINE_WEIGHTS[CUBIC_NAT]
                                - vals).sum()
        assert got.tobytes() == ref.tobytes()
