"""Unit tests for the SLO / error-budget engine
(:mod:`repro.telemetry.slo`) and its doctor integration."""

import json

import pytest

from repro.telemetry import doctor, slo
from repro.telemetry.recorder import RunRecord


def _record(**kw) -> RunRecord:
    base = dict(seq=1, kind="compress", ts=0.0, wall_s=0.01,
                codec="cuszi")
    base.update(kw)
    return RunRecord(**base)


def _status(records, spec):
    (st,) = slo.evaluate(records, [spec])
    return st


class TestSpec:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            slo.SLOSpec("x", objective="vibes")

    def test_rejects_bad_budget_and_window(self):
        with pytest.raises(ValueError, match="budget"):
            slo.SLOSpec("x", objective="errors", budget=0.0)
        with pytest.raises(ValueError, match="budget"):
            slo.SLOSpec("x", objective="errors", budget=1.5)
        with pytest.raises(ValueError, match="window"):
            slo.SLOSpec("x", objective="errors", window=0)

    def test_latency_and_ratio_need_positive_target(self):
        with pytest.raises(ValueError, match="target"):
            slo.SLOSpec("x", objective="latency")
        with pytest.raises(ValueError, match="target"):
            slo.SLOSpec("x", objective="ratio")

    def test_kind_matching(self):
        exact = slo.SLOSpec("x", objective="errors", kind="compress")
        prefix = slo.SLOSpec("x", objective="errors", kind="runtime.*")
        anything = slo.SLOSpec("x", objective="errors", kind="*")
        rec = _record(kind="runtime.map_compress")
        assert not exact.matches(rec)
        assert prefix.matches(rec)
        assert anything.matches(rec)
        assert exact.matches(_record(kind="compress"))

    def test_codec_filter(self):
        spec = slo.SLOSpec("x", objective="errors", codec="cuszi")
        assert spec.matches(_record(codec="cuszi"))
        assert not spec.matches(_record(codec="cuzfp"))


class TestEvaluate:
    def test_latency_violations_and_worst(self):
        spec = slo.SLOSpec("lat", objective="latency", target=0.1,
                           budget=0.5)
        recs = [_record(seq=i, wall_s=w)
                for i, w in enumerate([0.05, 0.2, 0.05, 0.3])]
        st = _status(recs, spec)
        assert (st.n, st.violations) == (4, 2)
        assert st.worst == pytest.approx(0.3)
        assert st.compliance == pytest.approx(0.5)
        assert st.budget_consumed == pytest.approx(1.0)
        assert st.exhausted

    def test_stage_latency_skips_records_without_stage(self):
        spec = slo.SLOSpec("lat", objective="latency", target=0.1,
                           stage="huffman")
        recs = [_record(seq=1, stages={"huffman": 0.2}),
                _record(seq=2, stages={"predict": 9.9})]
        st = _status(recs, spec)
        assert (st.n, st.violations) == (1, 1)

    def test_ratio_floor(self):
        spec = slo.SLOSpec("cr", objective="ratio", target=2.0,
                           budget=0.5)
        recs = [_record(seq=1, attrs={"bytes_in": 100, "bytes_out": 20}),
                _record(seq=2, attrs={"bytes_in": 100, "bytes_out": 80}),
                _record(seq=3)]               # no bytes: unjudgeable
        st = _status(recs, spec)
        assert (st.n, st.violations) == (2, 1)
        assert st.worst == pytest.approx(1.25)   # worst ratio is the min

    def test_error_objective(self):
        spec = slo.SLOSpec("err", objective="errors", budget=0.5)
        recs = [_record(seq=1), _record(seq=2, status="error")]
        st = _status(recs, spec)
        assert (st.n, st.violations) == (2, 1)
        assert st.budget_consumed == pytest.approx(1.0)

    def test_quality_judges_only_audited_runs(self):
        spec = slo.SLOSpec("q", objective="quality")
        recs = [_record(seq=1),
                _record(seq=2, attrs={"quality": {"eb_exceeded": 0}}),
                _record(seq=3, attrs={"quality": {"eb_exceeded": 2}})]
        st = _status(recs, spec)
        assert (st.n, st.violations) == (2, 1)

    def test_window_truncates_oldest(self):
        spec = slo.SLOSpec("err", objective="errors", budget=0.9,
                           window=2)
        recs = [_record(seq=1, status="error"), _record(seq=2),
                _record(seq=3)]
        st = _status(recs, spec)
        assert (st.n, st.violations) == (2, 0)

    def test_burn_rate_reacts_to_recent_slice(self):
        # 80 clean runs then 20 errors: the whole-window consumption is
        # moderate but the recent slice burns far over budget
        spec = slo.SLOSpec("err", objective="errors", budget=0.25,
                           window=160)
        recs = [_record(seq=i) for i in range(80)] + \
               [_record(seq=80 + i, status="error") for i in range(20)]
        st = _status(recs, spec)
        assert st.recent_n == 20                 # window // 8
        assert st.burn_rate == pytest.approx(4.0)
        assert st.budget_consumed == pytest.approx(0.8)
        assert not st.exhausted

    def test_empty_window_owes_nothing(self):
        st = _status([], slo.SLOSpec("err", objective="errors"))
        assert st.n == 0 and st.compliance == 1.0
        assert st.budget_consumed == 0.0 and st.burn_rate == 0.0
        assert not st.exhausted

    def test_default_specs_cover_errors_and_latency(self):
        names = {s.name for s in slo.DEFAULT_SLOS}
        assert {"run_errors", "compress_wall_p99",
                "compress_ratio_floor",
                "quality_eb_violations"} <= names
        statuses = slo.evaluate([_record()])
        assert len(statuses) == len(slo.DEFAULT_SLOS)


class TestConfig:
    def test_parse_round_trip(self):
        doc = {"slos": [{"name": "lat", "objective": "latency",
                         "target": 0.5, "budget": 0.05,
                         "kind": "compress", "stage": "huffman",
                         "window": 100}]}
        (spec,) = slo.parse_slos(doc)
        assert spec.to_dict() == {
            "name": "lat", "objective": "latency", "target": 0.5,
            "budget": 0.05, "kind": "compress", "codec": None,
            "stage": "huffman", "window": 100}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="slos"):
            slo.parse_slos({"objectives": []})
        with pytest.raises(ValueError, match="not an object"):
            slo.parse_slos({"slos": ["x"]})
        with pytest.raises(ValueError, match="unknown field"):
            slo.parse_slos({"slos": [{"name": "a", "objective": "errors",
                                      "threshold": 1}]})
        with pytest.raises(ValueError, match="missing"):
            slo.parse_slos({"slos": [{"name": "a"}]})
        with pytest.raises(ValueError, match="duplicate"):
            slo.parse_slos({"slos": [
                {"name": "a", "objective": "errors"},
                {"name": "a", "objective": "errors"}]})

    def test_load_slos_from_file(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps(
            {"slos": [{"name": "a", "objective": "errors"}]}))
        (spec,) = slo.load_slos(str(path))
        assert spec.name == "a"
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not JSON"):
            slo.load_slos(str(bad))


class TestRendering:
    def test_metrics_lines_schema(self):
        spec = slo.SLOSpec("err", objective="errors", budget=0.5)
        statuses = slo.evaluate([_record(status="error")], [spec])
        lines = slo.metrics_lines(statuses)
        text = "\n".join(lines)
        for metric in ("repro_slo_target", "repro_slo_compliance",
                       "repro_slo_error_budget_consumed",
                       "repro_slo_error_budget_remaining",
                       "repro_slo_burn_rate", "repro_slo_window_runs",
                       "repro_slo_violations", "repro_slo_exhausted"):
            assert f"# TYPE {metric} gauge" in text
            assert f'{metric}{{slo="err"}}' in text
        assert 'repro_slo_exhausted{slo="err"} 1' in text

    def test_metrics_labels_are_escaped(self):
        spec = slo.SLOSpec('we"ird\\name', objective="errors")
        lines = slo.metrics_lines(slo.evaluate([], [spec]))
        assert any('slo="we\\"ird\\\\name"' in line for line in lines)

    def test_format_statuses_marks_state(self):
        ok = slo.SLOSpec("fine", objective="errors", budget=0.9)
        blown = slo.SLOSpec("blown", objective="errors", budget=0.001)
        statuses = slo.evaluate(
            [_record(seq=1), _record(seq=2, status="error")],
            [ok, blown])
        text = "\n".join(slo.format_statuses(statuses))
        assert "[       ok] fine" in text
        assert "[EXHAUSTED] blown" in text


class TestDoctorIntegration:
    def test_exhausted_budget_gates(self):
        recs = [_record(seq=i, status="error") for i in range(5)]
        diag = doctor.diagnose(recs, slos=slo.DEFAULT_SLOS)
        slo_checks = {c.name: c for c in diag.checks
                      if c.name.startswith("slo ")}
        assert not slo_checks["slo run_errors"].ok
        assert slo_checks["slo run_errors"].gating
        assert not diag.healthy

    def test_burning_budget_warns_without_gating(self):
        # enough clean history that the window budget holds, but the
        # recent slice is all errors
        spec = slo.SLOSpec("err", objective="errors", budget=0.2,
                           window=80)
        recs = [_record(seq=i) for i in range(70)] + \
               [_record(seq=70 + i, status="error") for i in range(10)]
        diag = doctor.diagnose(recs, slos=[spec])
        check = next(c for c in diag.checks if c.name == "slo err")
        assert not check.ok and not check.gating
        assert "burning over budget" in check.detail
        # every other structural check still sees the error records
        assert not diag.healthy          # run-errors check gates anyway

    def test_unjudgeable_window_is_informational(self):
        spec = slo.SLOSpec("q", objective="quality")
        diag = doctor.diagnose([_record()], slos=[spec])
        check = next(c for c in diag.checks if c.name == "slo q")
        assert check.ok and not check.gating

    def test_no_slos_means_no_slo_checks(self):
        diag = doctor.diagnose([_record()])
        assert not any(c.name.startswith("slo ") for c in diag.checks)
