"""Pareto experiment tests + golden regression anchors.

The golden tests pin compression ratios on fixed seeds within loose bands:
they catch accidental algorithm changes (a broken spline, a quantizer
off-by-one) without being brittle to minor refactors.
"""

import numpy as np
import pytest

from conftest import smooth_field
from repro.experiments.pareto import pareto_front, run as pareto_run
from repro.registry import get_compressor


class TestParetoFront:
    def test_simple_domination(self):
        pts = {"a": (10.0, 10.0), "b": (5.0, 5.0), "c": (20.0, 1.0)}
        front = pareto_front(pts)
        assert front == {"a", "c"}

    def test_ties_both_kept(self):
        pts = {"a": (10.0, 10.0), "b": (10.0, 10.0)}
        assert pareto_front(pts) == {"a", "b"}

    def test_single_point(self):
        assert pareto_front({"a": (1.0, 1.0)}) == {"a"}

    def test_cuszi_always_on_front(self):
        # §VII-C.4's closing claim: best-ratio corner of the front
        result = pareto_run(scale="small")
        for key, front in result.fronts.items():
            assert "cuszi" in front, key
            ds, eb = key
            ratios = {c: result.points[(ds, eb, c)][1]
                      for c in ("cuszi", "cusz", "cuszp", "cuszx",
                                "fzgpu")}
            assert max(ratios, key=ratios.get) == "cuszi"

    def test_format_renders(self):
        result = pareto_run(scale="small", ebs=(1e-2,))
        text = result.format()
        assert "on front" in text and "cuszi" in text


class TestGoldenRatios:
    """Seeded fields; CR must stay inside a generous band. A failure here
    means the algorithm changed behaviour, not that the band is wrong."""

    FIELD = staticmethod(lambda: smooth_field((48, 48, 48), seed=4242,
                                              scale=5.0))

    # (codec, lossless, rel_eb) -> (lo, hi) CR band
    BANDS = {
        ("cuszi", "none", 1e-3): (7.0, 15.0),
        ("cuszi", "gle", 1e-2): (17.0, 38.0),
        ("cusz", "none", 1e-3): (7.0, 15.0),
        ("cuszp", "none", 1e-3): (3.0, 7.0),
        ("cuszx", "none", 1e-3): (2.5, 6.0),
        ("fzgpu", "none", 1e-3): (4.5, 10.5),
        ("sz3", "zlib", 1e-3): (10.0, 22.0),
        ("qoz", "zlib", 1e-3): (10.0, 22.0),
        ("sz14", "zlib", 1e-3): (7.0, 16.0),
    }

    @pytest.mark.parametrize("key", sorted(BANDS))
    def test_ratio_band(self, key):
        codec, lossless, eb = key
        data = self.FIELD()
        comp = get_compressor(codec, eb=eb, mode="rel", lossless=lossless)
        cr = data.nbytes / len(comp.compress(data))
        lo, hi = self.BANDS[key]
        assert lo <= cr <= hi, f"{key}: CR {cr:.2f} outside [{lo}, {hi}]"

    def test_cuzfp_band(self):
        data = self.FIELD()
        comp = get_compressor("cuzfp", rate=4.0)
        blob = comp.compress(data)
        from repro.common.metrics import psnr
        quality = psnr(data, comp.decompress(blob))
        assert 60.0 <= quality <= 110.0

    def test_ordering_stable(self):
        # the qualitative ordering the whole reproduction rests on
        data = self.FIELD()
        sizes = {}
        for codec in ("cuszi", "cusz", "cuszx"):
            comp = get_compressor(codec, eb=1e-3, mode="rel",
                                  lossless="gle")
            sizes[codec] = len(comp.compress(data))
        assert sizes["cuszi"] < sizes["cuszx"]
        assert sizes["cusz"] < sizes["cuszx"]
