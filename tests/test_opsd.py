"""Integration tests for the live ops plane
(:mod:`repro.telemetry.opsd`): endpoint contracts, SSE streaming,
concurrent access during an active workload, and the serve-ops CLI
wiring."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from conftest import smooth_field
from repro.telemetry import opsd, quality, recorder
from repro.telemetry.recorder import RunRecord


@pytest.fixture(autouse=True)
def _clean_recorder():
    recorder.clear()
    recorder.enable()
    yield
    quality.disable()
    recorder.clear()
    recorder.enable()


@pytest.fixture
def server():
    srv = opsd.start_ops_server(port=0)
    yield srv
    srv.stop()


def _get(srv, path, timeout=10.0):
    with urllib.request.urlopen(srv.url + path, timeout=timeout) as r:
        return r.status, r.read().decode()


def _get_json(srv, path):
    status, body = _get(srv, path)
    return status, json.loads(body)


def _record(**kw) -> RunRecord:
    base = dict(seq=1, kind="compress", ts=0.0, wall_s=0.01,
                codec="cuszi")
    base.update(kw)
    return RunRecord(**base)


def _run_once():
    with recorder.capture("compress", codec="cuszi") as cap:
        cap.set(bytes_in=100, bytes_out=25)


class _SSEClient:
    """Minimal SSE consumer collecting ``event: run`` payloads."""

    def __init__(self, srv, replay=0, want=1):
        self.events = []
        self.connected = threading.Event()
        self.want = want
        self.thread = threading.Thread(
            target=self._consume,
            args=(f"{srv.url}/runs/stream?replay={replay}",),
            daemon=True)
        self.thread.start()

    def _consume(self, url):
        with urllib.request.urlopen(url, timeout=30) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            self.connected.set()
            data = None
            for raw in resp:
                line = raw.decode().rstrip("\n")
                if line.startswith("data: "):
                    data = json.loads(line[6:])
                elif line == "" and data is not None:
                    self.events.append(data)
                    data = None
                    if len(self.events) >= self.want:
                        return

    def wait(self, timeout=15.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "SSE client did not finish"
        return self.events


class TestEndpoints:
    def test_index_lists_endpoints(self, server):
        status, doc = _get_json(server, "/")
        assert status == 200
        assert "/metrics" in doc["endpoints"]

    def test_ready(self, server):
        status, doc = _get_json(server, "/ready")
        assert status == 200
        assert doc["status"] == "ready"
        assert doc["recorder_enabled"] is True

    def test_health_healthy_then_unhealthy(self, server):
        status, doc = _get_json(server, "/health")
        assert status == 200 and doc["status"] == "healthy"
        # an error record flips the doctor's run-errors check
        recorder._append(_record(status="error"))
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/health")
        assert err.value.code == 503
        doc = json.loads(err.value.read().decode())
        assert doc["status"] == "unhealthy"
        assert "run errors" in doc["anomalies"]

    def test_health_gates_on_exhausted_slo_budget(self):
        from repro.telemetry import slo
        blown = slo.SLOSpec("always", objective="errors", budget=0.001)
        srv = opsd.start_ops_server(
            port=0, slos=[blown],
            base_records=[_record(status="error")])
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(srv, "/health")
            assert err.value.code == 503
            doc = json.loads(err.value.read().decode())
            assert "slo always" in doc["anomalies"]
        finally:
            srv.stop()

    def test_metrics_exposition(self, server):
        _run_once()
        status, body = _get(server, "/metrics")
        assert status == 200
        assert "# TYPE repro_build_info gauge" in body
        assert "repro_slo_error_budget_remaining" in body
        assert "repro_slo_burn_rate" in body
        assert "repro_ops_requests_total" in body
        assert "repro_ops_ledger_records 1" in body

    def test_runs_tail(self, server):
        for i in range(5):
            _run_once()
        status, doc = _get_json(server, "/runs?n=3")
        assert status == 200
        assert doc["n_total"] == 5
        assert len(doc["records"]) == 3
        assert all(r["kind"] == "compress" for r in doc["records"])
        assert all(r.get("trace_id") for r in doc["records"])

    def test_base_records_serve_ahead_of_ring(self):
        srv = opsd.start_ops_server(
            port=0, base_records=[_record(seq=77, kind="decompress")])
        try:
            _run_once()
            _, doc = _get_json(srv, "/runs?n=10")
            assert [r["kind"] for r in doc["records"]] == \
                ["decompress", "compress"]
        finally:
            srv.stop()

    def test_slo_endpoint(self, server):
        _run_once()
        status, doc = _get_json(server, "/slo")
        assert status == 200
        names = {s["slo"]["name"] for s in doc["slos"]}
        assert "run_errors" in names

    def test_profile_collapsed_stacks(self, server):
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(range(1000))

        t = threading.Thread(target=busy, daemon=True)
        t.start()
        try:
            status, body = _get(server, "/profile?seconds=0.3&hz=50")
        finally:
            stop.set()
            t.join()
        assert status == 200
        head = body.splitlines()[0]
        assert head.startswith("# sampling profile:")
        # the busy thread's collapsed stack must appear with a count
        assert any(line.rsplit(" ", 1)[-1].isdigit()
                   for line in body.splitlines()[1:])

    def test_bad_requests(self, server):
        for path, code in (("/nope", 404), ("/runs?n=x", 400),
                           ("/profile?seconds=999", 400),
                           ("/runs/stream?replay=x", 400)):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server, path)
            assert err.value.code == code, path

    def test_post_is_rejected(self, server):
        req = urllib.request.Request(server.url + "/metrics",
                                     data=b"x", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 405


class TestStreaming:
    def test_sse_receives_records_from_another_thread(self, server):
        client = _SSEClient(server, want=2)
        assert client.connected.wait(10)
        time.sleep(0.2)          # let the queue register

        def produce():
            _run_once()
            with recorder.capture("decompress", codec="cuszi"):
                pass

        t = threading.Thread(target=produce)
        t.start()
        t.join()
        events = client.wait()
        assert [e["kind"] for e in events] == ["compress", "decompress"]
        assert all(e.get("run_id") for e in events)

    def test_sse_replay_catches_up_late_joiners(self, server):
        _run_once()
        _run_once()
        events = _SSEClient(server, replay=2, want=2).wait()
        assert len(events) == 2
        assert all(e["kind"] == "compress" for e in events)


class TestConcurrency:
    def test_parallel_scrapes_during_active_workload(self, server):
        """Satellite: concurrent /metrics + /health + /runs requests
        while a compression workload appends records must all succeed
        and stay internally consistent."""
        from repro.registry import get_compressor
        data = smooth_field((16, 16, 16), seed=11)
        comp = get_compressor("cuszi", eb=1e-3, mode="abs")
        stop = threading.Event()
        errors = []

        def workload():
            while not stop.is_set():
                comp.decompress(comp.compress(data))

        def scraper(path, parse):
            try:
                for _ in range(8):
                    status, body = _get(server, path)
                    assert status == 200
                    parse(body)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append((path, exc))

        def check_metrics(body):
            assert "repro_build_info" in body
            for line in body.splitlines():
                assert line.startswith("#") or " " in line

        w = threading.Thread(target=workload, daemon=True)
        w.start()
        threads = [
            threading.Thread(target=scraper,
                             args=("/metrics", check_metrics)),
            threading.Thread(target=scraper,
                             args=("/metrics", check_metrics)),
            threading.Thread(target=scraper,
                             args=("/health", json.loads)),
            threading.Thread(target=scraper,
                             args=("/runs?n=20", json.loads)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        stop.set()
        w.join(10)
        assert not errors, errors
        assert recorder.records(), "workload recorded nothing"

    def test_sse_client_during_workload_sees_live_traces(self, server):
        from repro.registry import get_compressor
        data = smooth_field((12, 12, 12), seed=5)
        comp = get_compressor("cuszi", eb=1e-3, mode="abs")
        client = _SSEClient(server, want=2)
        assert client.connected.wait(10)
        time.sleep(0.2)
        comp.compress(data)
        comp.compress(data)
        events = client.wait()
        assert len(events) == 2
        assert all(e["kind"] == "compress" for e in events)
        assert all(e.get("trace_id") for e in events)


class TestPersistence:
    def test_records_persist_with_rotation(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        srv = opsd.start_ops_server(port=0, persist_path=str(path),
                                    persist_max_bytes=1, persist_keep=8)
        try:
            for _ in range(3):
                _run_once()
        finally:
            srv.stop()
        # max_bytes=1 forces a rotation before every append after the
        # first, so each record lands in its own segment
        recs = recorder.read_ledger(str(path), include_rotated=True)
        assert len(recs) == 3
        assert (tmp_path / "ops.jsonl.1").exists()

    def test_stop_unsubscribes(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        srv = opsd.start_ops_server(port=0, persist_path=str(path))
        srv.stop()
        _run_once()
        assert not path.exists()


class TestLifecycle:
    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_bind_failure_raises_in_caller(self, server):
        with pytest.raises(OSError):
            opsd.start_ops_server(port=server.port)

    def test_stop_is_idempotent(self):
        srv = opsd.start_ops_server(port=0)
        srv.stop()
        srv.stop()


class TestServeOpsCLI:
    def test_serve_ops_for_seconds(self, tmp_path, capsys):
        from repro.cli import main
        ledger = tmp_path / "seed.jsonl"
        recorder.write_ledger(str(ledger), [_record(seq=9)])
        rc_holder = {}

        def run():
            rc_holder["rc"] = main(
                ["serve-ops", "--port", "0", "--ledger", str(ledger),
                 "--for-seconds", "1.5"])

        t = threading.Thread(target=run)
        t.start()
        t.join(15)
        assert not t.is_alive()
        assert rc_holder["rc"] == 0
        out = capsys.readouterr().out
        assert "1 ledger record(s) loaded" in out
        assert "ops server stopped" in out

    def test_serve_ops_rejects_bad_slo_file(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["serve-ops", "--port", "0",
                     "--slo", str(bad)]) == 1
        assert "cannot load SLOs" in capsys.readouterr().err


class TestAnalyticsEndpoint:
    def test_analytics_report_shape(self, server):
        for _ in range(3):
            _run_once()
        status, doc = _get_json(server, "/analytics")
        assert status == 200
        assert doc["n_records"] == 3
        assert doc["n_cohorts"] == 1
        assert doc["verdict"]["healthy"]
        (entry,) = doc["cohorts"].values()
        assert entry["key"]["kind"] == "compress"
        assert "ratio" in entry["baselines"]

    def test_analytics_empty_ledger(self, server):
        status, doc = _get_json(server, "/analytics")
        assert status == 200
        assert doc["n_records"] == 0
        assert doc["change_points"] == []

    def test_index_lists_analytics(self, server):
        _, doc = _get_json(server, "/")
        assert "/analytics" in doc["endpoints"]

    def test_metrics_include_drift_series(self, server):
        _run_once()
        _, body = _get(server, "/metrics")
        assert "repro_drift_change_points" in body
        assert "repro_anomaly_runs_total" in body

    def test_analytics_under_concurrent_appends(self, server):
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                _run_once()
                time.sleep(0.001)

        def scraper():
            try:
                for _ in range(25):
                    status, doc = _get_json(server, "/analytics")
                    assert status == 200
                    assert doc["schema"] == 1
                    assert doc["n_records"] >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        wt = threading.Thread(target=writer)
        scrapers = [threading.Thread(target=scraper) for _ in range(3)]
        wt.start()
        for t in scrapers:
            t.start()
        for t in scrapers:
            t.join(30)
        stop.set()
        wt.join(10)
        assert not errors
        assert not any(t.is_alive() for t in scrapers)
