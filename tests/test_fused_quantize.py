"""Fused predict–quantize bit-exactness (PR 9 tentpole).

The compiled traversal can emit quant-codes straight from the prediction
pass (``fused=True``, the default) instead of materializing residuals and
concatenating per-pass code arrays. The contract: fused, unfused, and the
uncompiled reference traversal are byte-identical — codes, outliers,
anchors, and reconstruction — and therefore so is every downstream blob
on every execution path (pipeline, slab stream, tiled file, worker pool).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import smooth_field
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp import InterpSpec, interp_compress, interp_decompress
from repro.core.pipeline import CuSZi
from repro.runtime.pool import map_compress, map_decompress
from repro.runtime.tiled import tiled_compress_file
from repro.streaming import compress_slabs, decompress_slabs

EB = 1e-3


def _triple(data, spec, eb=EB, quantizer=None):
    fused = interp_compress(data, spec, eb, quantizer, fused=True)
    plain = interp_compress(data, spec, eb, quantizer, fused=False)
    ref = interp_compress(data, spec, eb, quantizer, compiled=False)
    for other in (plain, ref):
        assert np.array_equal(fused.codes, other.codes)
        assert np.array_equal(fused.outliers, other.outliers)
        assert np.array_equal(fused.anchors, other.anchors)
        assert np.array_equal(fused.reconstructed, other.reconstructed)
    return fused


class TestEngineEquivalence:
    def test_3d(self):
        _triple(smooth_field((32, 36, 40)), InterpSpec(anchor_stride=8))

    def test_3d_windowed(self):
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
        _triple(smooth_field((24, 24, 48)), spec)

    def test_2d(self):
        _triple(smooth_field((33, 47)), InterpSpec(anchor_stride=8))

    def test_1d(self):
        _triple(smooth_field((129,)), InterpSpec(anchor_stride=8))

    def test_tiny_field(self):
        _triple(smooth_field((8, 8, 8)), InterpSpec(anchor_stride=4))

    def test_f64_values(self):
        data = smooth_field((24, 28, 20)).astype(np.float64)
        q = LinearQuantizer(value_dtype=np.float64)
        _triple(data, InterpSpec(anchor_stride=8), quantizer=q)

    def test_alpha_beta_levels(self):
        spec = InterpSpec(anchor_stride=8, alpha=1.5, beta=3.0)
        _triple(smooth_field((32, 32, 32)), spec)

    def test_decompress_replays_fused_stream(self):
        data = smooth_field((32, 36, 40))
        spec = InterpSpec(anchor_stride=8)
        res = _triple(data, spec)
        out = interp_decompress(data.shape, spec, EB, res.codes,
                                res.outliers, res.anchors)
        assert np.array_equal(out, res.reconstructed)
        assert np.max(np.abs(out - data.astype(np.float64))) <= EB * 1.001


class TestQuantizeInto:
    def test_matches_quantize_lane_for_lane(self, rng):
        q = LinearQuantizer()
        values = rng.normal(0, 1, size=(31, 17)).astype(np.float32)
        preds = values.astype(np.float64) \
            + rng.normal(0, 5e-3, size=values.shape)
        # sprinkle outliers: both the radius overflow and the
        # value-dtype round-trip failure lanes
        preds.ravel()[::97] += 10.0
        ref = q.quantize(values, preds, EB)
        codes = np.empty(values.size, dtype=np.uint32)
        q_buf = np.empty(values.size, dtype=np.float64)
        r_buf = np.empty(values.size, dtype=np.float64)
        recon, outliers = q.quantize_into(values, preds.ravel(), EB,
                                          codes, q_buf=q_buf, r_buf=r_buf)
        assert np.array_equal(codes, ref.codes)
        assert np.array_equal(recon.ravel(), ref.reconstructed)
        assert np.array_equal(outliers, ref.outlier_values)

    def test_strided_view_input(self, rng):
        # fused passes hand quantize_into a strided n-d view of the field;
        # code order must match the flattened reference order
        q = LinearQuantizer()
        base = rng.normal(0, 1, size=(16, 16, 16)).astype(np.float32)
        view = base[1::2, :, 3::4]
        preds = np.zeros(view.size, dtype=np.float64)
        ref = q.quantize(np.ascontiguousarray(view), preds, 0.5)
        codes = np.empty(view.size, dtype=np.uint32)
        scratch = np.empty(view.size, dtype=np.float64)
        recon, outliers = q.quantize_into(
            view, preds, 0.5, codes,
            q_buf=scratch, r_buf=scratch.copy())
        assert np.array_equal(codes, ref.codes)
        assert np.array_equal(outliers, ref.outlier_values)

    def test_rejects_bad_eb(self):
        q = LinearQuantizer()
        from repro.common.errors import ConfigError
        buf = np.empty(4, dtype=np.float64)
        with pytest.raises(ConfigError):
            q.quantize_into(np.zeros(4, np.float32), buf, 0.0,
                            np.empty(4, np.uint32), q_buf=buf,
                            r_buf=buf.copy())


class TestEnvToggle:
    def test_env_disables_fusion(self, monkeypatch):
        data = smooth_field((32, 32, 32))
        spec = InterpSpec(anchor_stride=8)
        default = interp_compress(data, spec, EB)
        monkeypatch.setenv("REPRO_FUSED_QUANTIZE", "0")
        unfused = interp_compress(data, spec, EB)
        assert np.array_equal(default.codes, unfused.codes)
        assert np.array_equal(default.reconstructed,
                              unfused.reconstructed)


class TestCrossPathBlobIdentity:
    """The fused emission must never change a serialized byte anywhere."""

    def test_pipeline_blob(self, monkeypatch):
        data = smooth_field((32, 36, 40))
        fused_blob = CuSZi(eb=EB, mode="abs").compress(data)
        monkeypatch.setenv("REPRO_FUSED_QUANTIZE", "0")
        plain_blob = CuSZi(eb=EB, mode="abs").compress(data)
        assert fused_blob == plain_blob
        out = CuSZi(eb=EB, mode="abs").decompress(fused_blob)
        assert np.max(np.abs(out.astype(np.float64)
                             - data.astype(np.float64))) <= EB * 1.001

    def test_slab_stream(self, monkeypatch):
        data = smooth_field((24, 20, 20))
        fused_stream = compress_slabs(data, 8, eb=EB)
        monkeypatch.setenv("REPRO_FUSED_QUANTIZE", "0")
        plain_stream = compress_slabs(data, 8, eb=EB)
        assert fused_stream == plain_stream
        out = decompress_slabs(fused_stream)
        assert out.shape == data.shape
        assert np.max(np.abs(out.astype(np.float64)
                             - data.astype(np.float64))) <= EB * 1.001

    def test_tiled_file(self, tmp_path, monkeypatch):
        data = smooth_field((24, 16, 16))
        raw = tmp_path / "field.raw"
        raw.write_bytes(data.tobytes())
        a = tmp_path / "fused.rsz"
        b = tmp_path / "plain.rsz"
        tiled_compress_file(raw, data.shape, out_path=a,
                            tile_planes=8, eb=EB)
        monkeypatch.setenv("REPRO_FUSED_QUANTIZE", "0")
        tiled_compress_file(raw, data.shape, out_path=b,
                            tile_planes=8, eb=EB)
        assert a.read_bytes() == b.read_bytes()

    def test_worker_pool_blobs(self):
        # pool workers run with fusion at its default; their blobs must
        # match the serial fused path byte for byte
        fields = [smooth_field((16, 16, 16), seed=s) for s in range(3)]
        serial = map_compress(fields, "cuszi", eb=EB, mode="abs",
                              workers=1)
        pooled = map_compress(fields, "cuszi", eb=EB, mode="abs",
                              workers=2)
        assert serial == pooled
        out = map_decompress(pooled, workers=1)
        for got, want in zip(out, fields):
            assert np.max(np.abs(got.astype(np.float64)
                                 - want.astype(np.float64))) <= EB * 1.001
