"""Segment-aware lossless orchestration: frame, cost model, plan cache,
backward compatibility, and adversarial round trips."""

import struct
import zlib

import numpy as np
import pytest

from repro.common.errors import ConfigError, CorruptStreamError
from repro.lossless import (OrchestratorCodec, get_lossless, gle_compress,
                            orchestrate_compress, orchestrate_decompress)
from repro.lossless import orchestrator as orc
from repro.lossless.orchestrator import (backend_names, choose_backend,
                                         split_streams, stream_stats)

from conftest import smooth_field


@pytest.fixture(scope="module")
def container():
    """A real RPRC container (pipeline output with the wrap stripped)."""
    from repro.core.pipeline import CuSZi
    blob = CuSZi(eb=1e-3, lossless="none").compress(
        smooth_field((32, 32, 32), seed=11))
    inner = bytes(blob[5 + blob[4]:])
    assert inner[:4] == b"RPRC"
    return inner


ADVERSARIAL = [
    b"",                                   # empty stream
    b"ab",                                 # sub-4-byte tail only
    b"\x07\x00\x00\x00" * 4096,            # one word repeated (all runs)
    bytes(3),                              # tiny, below MIN_MODEL_BYTES
    b"run" * 5 + b"x",                     # unaligned tail after pattern
]


class TestRoundTrip:
    @pytest.mark.parametrize("idx", range(len(ADVERSARIAL)))
    def test_adversarial_cases(self, idx):
        data = ADVERSARIAL[idx]
        blob = orchestrate_compress(data)
        assert orchestrate_decompress(blob) == data

    def test_incompressible_random(self, rng):
        data = rng.integers(0, 256, 100_000, dtype=np.uint8).tobytes()
        blob = orchestrate_compress(data)
        assert orchestrate_decompress(blob) == data
        # the model must refuse to expand noise beyond the frame overhead
        assert len(blob) <= len(data) + 64

    def test_container_byte_identical(self, container):
        for profile in ("fast", "balanced", "ratio"):
            blob = orchestrate_compress(container, profile=profile)
            assert orchestrate_decompress(blob) == container

    def test_numpy_and_memoryview_inputs(self, rng):
        arr = rng.integers(0, 50, 4096, dtype=np.uint32)
        ref = orchestrate_compress(arr.tobytes())
        assert orchestrate_compress(arr) == ref
        assert orchestrate_compress(memoryview(arr.tobytes())) == ref

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            orchestrate_compress(b"x" * 100, profile="turbo")
        with pytest.raises(ConfigError):
            choose_backend(stream_stats(b"x" * 100), "turbo")


class TestBackwardCompat:
    """The decoder must accept every pre-orchestrator single-codec blob."""

    def test_bare_gle_frame(self, container):
        assert orchestrate_decompress(gle_compress(container)) == container

    def test_stored_container(self, container):
        assert orchestrate_decompress(container) == container

    def test_zlib_stream(self, container):
        assert orchestrate_decompress(zlib.compress(container)) == container

    def test_garbage_rejected(self):
        with pytest.raises(CorruptStreamError):
            orchestrate_decompress(b"\x99" * 40)


class TestCorruption:
    def test_truncated_frame(self, container):
        blob = orchestrate_compress(container)
        for cut in (3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CorruptStreamError):
                orchestrate_decompress(blob[:cut])

    def test_crc_mismatch(self, rng):
        data = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        blob = bytearray(orchestrate_compress(data))
        blob[-1] ^= 0xFF               # flip payload; frame CRC must catch
        with pytest.raises(CorruptStreamError):
            orchestrate_decompress(bytes(blob))

    def test_external_crc_verified(self, container):
        # container inputs delegate to the RPRC checksum (EXTCRC flag);
        # corrupting a stored segment must still be caught on decode
        blob = bytearray(orchestrate_compress(container))
        flags = blob[5]
        assert flags & 1, "container input should set the EXTCRC flag"
        blob[-1] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            orchestrate_decompress(bytes(blob))

    def test_unknown_backend_id(self, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        blob = bytearray(orchestrate_compress(data))
        # first stream table entry: after header, namelen + name
        pos = struct.calcsize("<4sBBIB")
        pos += 1 + blob[pos]
        blob[pos] = 200                 # out-of-registry backend id
        with pytest.raises(CorruptStreamError):
            orchestrate_decompress(bytes(blob))


class TestSplitStreams:
    def test_concat_reproduces_input(self, container):
        streams = split_streams(container)
        assert b"".join(bytes(sv) for _, sv in streams) == container
        names = [name for name, _ in streams]
        assert names[0] == "header"
        assert "huffman.payload" in names

    def test_non_container_is_raw(self):
        streams = split_streams(b"not a container at all")
        assert [name for name, _ in streams] == ["raw"]

    def test_truncated_container_falls_back_to_raw(self, container):
        streams = split_streams(container[:len(container) // 2])
        assert [name for name, _ in streams] == ["raw"]


class TestCostModel:
    def test_tiny_streams_store(self):
        assert choose_backend(stream_stats(b"x" * 32)) == "store"

    def test_runs_pick_gle_family(self):
        data = b"\x05\x00\x00\x00" * 50_000
        assert choose_backend(stream_stats(data)) in ("gle", "gle-rle")

    def test_noise_stores(self, rng):
        data = rng.integers(0, 256, 50_000, dtype=np.uint8).tobytes()
        assert choose_backend(stream_stats(data)) == "store"

    def test_small_low_entropy_zlib_balanced(self):
        # a skewed byte distribution (H ~ 0.8 bits) clears the balanced
        # profile's deflate gate; size sits under the zlib cap
        data = b"aaab" * 1000
        assert choose_backend(stream_stats(data)) == "zlib"

    def test_fast_profile_never_zlib(self):
        data = b"abcab" * 500
        assert choose_backend(stream_stats(data), "fast") != "zlib"

    def test_narrow_bytes_pick_pack(self, rng):
        data = rng.integers(0, 4, 60_000, dtype=np.uint8).tobytes()
        assert choose_backend(stream_stats(data)) in ("gle", "gle-pack")

    def test_oversized_stream_promotes_to_blocks(self):
        stats = stream_stats(b"\x05\x00\x00\x00" * 8192)
        stats.n = orc.PARALLEL_MIN_BYTES       # pretend it is huge
        assert choose_backend(stats) == "gle-blocks"

    def test_decide_matches_eager_model(self, container, rng):
        streams = list(split_streams(container))
        streams.append(("noise", memoryview(
            rng.integers(0, 256, 30_000, dtype=np.uint8).tobytes())))
        streams.append(("runs", memoryview(b"\x09\x00\x00\x00" * 9000)))
        for profile in ("fast", "balanced", "ratio"):
            for name, sv in streams:
                assert orc._decide(sv, profile) == \
                    choose_backend(stream_stats(sv), profile), (name, profile)

    def test_backend_names_stable(self):
        assert backend_names() == ["store", "gle", "gle-rle", "gle-pack",
                                   "zlib", "gle-blocks"]


class TestPlanCache:
    def test_warm_bytes_identical_to_cold(self, container):
        codec = OrchestratorCodec()
        cold = codec.compress_bytes(container)
        warm = codec.compress_bytes(container)
        assert cold == warm
        assert codec.decompress_bytes(warm) == container

    def test_fingerprint_miss_on_different_content(self, container):
        # same length, different bytes: the header probe must miss and the
        # result must still round-trip (a stale split would be safe, but a
        # miss re-samples)
        codec = OrchestratorCodec()
        codec.compress_bytes(container)
        other = bytearray(container)
        other[0] = 0x00                     # break the magic -> raw stream
        blob = codec.compress_bytes(bytes(other))
        assert codec.decompress_bytes(blob) == bytes(other)

    def test_cache_bounded(self, rng):
        codec = OrchestratorCodec()
        for i in range(2 * orc._PLAN_CACHE_MAX):
            data = rng.integers(0, 256, 100 + i, dtype=np.uint8).tobytes()
            codec.compress_bytes(data)
        assert len(codec._plan_cache) <= orc._PLAN_CACHE_MAX

    def test_cache_disabled(self, container):
        codec = OrchestratorCodec(plan_cache=False)
        assert codec._plan_cache is None
        blob = codec.compress_bytes(container)
        assert codec.decompress_bytes(blob) == container


class TestParallelBlocks:
    def test_blocks_route(self, rng, monkeypatch):
        monkeypatch.setattr(orc, "PARALLEL_MIN_BYTES", 64 * 1024)
        monkeypatch.setattr(orc, "PARALLEL_BLOCK", 16 * 1024)
        words = rng.integers(0, 30, 40_000, dtype=np.uint32)
        words[:10_000] = 3
        data = words.tobytes()
        blob = orchestrate_compress(data)
        assert orchestrate_decompress(blob) == data

    def test_pool_and_serial_byte_identical(self, rng, monkeypatch):
        monkeypatch.setattr(orc, "PARALLEL_BLOCK", 16 * 1024)
        data = (b"\x04\x00\x00\x00" * 30_000
                + rng.integers(0, 256, 8192, dtype=np.uint8).tobytes())
        e1 = orc._blocks_encode(memoryview(data), False, 1)
        e2 = orc._blocks_encode(memoryview(data), False, 2)
        assert bytes(e1) == bytes(e2)
        assert orc._blocks_decode(e2) == data


class TestRegistryAndWrap:
    def test_auto_registered(self):
        codec = get_lossless("auto", profile="fast")
        assert codec.name == "auto"
        assert codec.profile == "fast"

    def test_wrap_unwrap_auto(self, container):
        from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
        blob = wrap_lossless(container, "auto")
        assert unwrap_lossless(blob) == container

    def test_wrap_reuses_codec_instances(self):
        from repro.common import lossless_wrap as lw
        lw.wrap_lossless(b"RPRCxxxx" + bytes(100), "auto")
        first = lw._INSTANCES["auto"]
        lw.wrap_lossless(b"RPRCxxxx" + bytes(100), "auto")
        assert lw._INSTANCES["auto"] is first

    def test_pipeline_default_is_auto(self, field3d):
        from repro.core.pipeline import CuSZi
        codec = CuSZi(eb=1e-3)
        assert codec.lossless == "auto"
        blob = codec.compress(field3d)
        recon = codec.decompress(blob)
        assert np.abs(recon - field3d).max() <= codec.eb * \
            float(field3d.max() - field3d.min()) * 1.001


class TestZlibZeroCopy:
    def test_buffer_inputs_equivalent(self, rng):
        codec = get_lossless("zlib")
        arr = rng.integers(0, 100, 4096, dtype=np.uint8)
        ref = codec.compress_bytes(arr.tobytes())
        assert codec.compress_bytes(arr) == ref
        assert codec.compress_bytes(memoryview(arr.tobytes())) == ref
        assert codec.compress_bytes(bytearray(arr.tobytes())) == ref
        assert codec.decompress_bytes(bytearray(ref)) == arr.tobytes()

    def test_multidim_and_noncontiguous(self, rng):
        codec = get_lossless("zlib")
        arr = rng.integers(0, 100, (64, 64), dtype=np.uint8)
        ref = codec.compress_bytes(arr.tobytes())
        assert codec.compress_bytes(arr) == ref             # 2-D C-order
        sliced = arr[::2]                                   # non-contiguous
        assert codec.compress_bytes(sliced) == \
            codec.compress_bytes(sliced.copy())
