"""Unit tests for the ledger analytics engine
(:mod:`repro.telemetry.analytics`): cohort keying, baseline scoring,
change-point detection with stage attribution, baseline persistence,
ledger schema stamping, fingerprint threading, and the ``repro
analyze`` CLI surface."""

import json

import numpy as np
import pytest

from conftest import smooth_field
from repro.cli import main
from repro.core.ginterp.autotune import autotune, field_fingerprint
from repro.core.pipeline import CuSZi
from repro.telemetry import analytics, doctor, quality, recorder
from repro.telemetry.analytics import AnalyticsEngine
from repro.telemetry.recorder import RunRecord


@pytest.fixture(autouse=True)
def _clean_recorder():
    recorder.clear()
    recorder.enable()
    yield
    quality.disable()
    recorder.clear()
    recorder.enable()


def _rec(seq, wall, stages=None, *, kind="compress", codec="cuszi",
         fp="f0", attrs=None, caches=None, quality_attrs=None):
    a = {"fingerprint": fp, "abs_eb": 1e-3,
         "bytes_in": 1_000_000, "bytes_out": 50_000}
    if attrs:
        a.update(attrs)
    if quality_attrs:
        a["quality"] = quality_attrs
    return RunRecord(seq=seq, kind=kind, ts=float(seq), wall_s=wall,
                     codec=codec, stages=dict(stages or {}),
                     attrs=a, caches=dict(caches or {}),
                     trace_id=f"t{seq:04d}")


def _stationary_ledger(n=40, seed=0, wall=7e-3):
    """n same-cohort compress runs with +-2% deterministic noise."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        noise = 1.0 + 0.02 * float(rng.uniform(-1, 1))
        w = wall * noise
        out.append(_rec(i + 1, w, stages={
            "predict": 4e-3 * noise, "huffman": 2e-3 * noise,
            "lossless": 1e-3 * noise}))
    return out


def _regression_ledger(n=40, step_at=20, seed=1):
    """Huffman stage doubles (2ms -> 4ms) from run ``step_at + 1`` on."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        noise = 1.0 + 0.02 * float(rng.uniform(-1, 1))
        huff = (4e-3 if i >= step_at else 2e-3) * noise
        predict = 4e-3 * noise
        lossless = 1e-3 * noise
        out.append(_rec(i + 1, predict + huff + lossless, stages={
            "predict": predict, "huffman": huff, "lossless": lossless}))
    return out


class TestCohortKeying:
    def test_key_fields(self):
        rec = _rec(1, 0.01, attrs={"transport": "shm"})
        key = analytics.cohort_key(rec)
        assert key == ("compress", "f0", "cuszi", "e-3", "shm")
        assert analytics.cohort_label(key) == "compress|f0|cuszi|e-3|shm"

    def test_missing_fingerprint_and_transport_tolerated(self):
        rec = RunRecord(seq=1, kind="decompress", ts=0.0, wall_s=0.01)
        assert analytics.cohort_key(rec) == \
            ("decompress", "-", "-", "-", "serial")

    def test_fingerprintless_records_fall_back_to_shape(self):
        # decompress records carry no content fingerprint: the shape
        # signature keeps 64^3 and 128^3 runs out of one baseline
        small = RunRecord(seq=1, kind="decompress", ts=0.0, wall_s=0.01,
                          codec="cuszi", attrs={"shape": [64, 64, 64]})
        big = RunRecord(seq=2, kind="decompress", ts=1.0, wall_s=0.1,
                        codec="cuszi", attrs={"shape": [128, 128, 128]})
        assert analytics.cohort_key(small)[1] == "64x64x64"
        assert analytics.cohort_key(big)[1] == "128x128x128"
        assert analytics.cohort_key(small) != analytics.cohort_key(big)

    def test_eb_decade_buckets(self):
        lo = _rec(1, 0.01, attrs={"abs_eb": 1.2e-4})
        hi = _rec(2, 0.01, attrs={"abs_eb": 9.9e-4})
        other = _rec(3, 0.01, attrs={"abs_eb": 1.0e-3})
        assert analytics.cohort_key(lo)[3] == "e-4"
        assert analytics.cohort_key(hi)[3] == "e-4"
        assert analytics.cohort_key(other)[3] == "e-3"

    def test_cohorts_split_by_fingerprint(self):
        engine = AnalyticsEngine()
        for i in range(4):
            engine.observe(_rec(i + 1, 0.01, fp="fA"))
            engine.observe(_rec(i + 5, 0.02, fp="fB"))
        report = engine.report()
        assert report["n_cohorts"] == 2


class TestRecordMetrics:
    def test_core_metrics(self):
        rec = _rec(1, 0.01, stages={"huffman": 2e-3},
                   caches={"c": {"hits": 3, "misses": 1}})
        m = analytics.record_metrics(rec)
        assert m["wall_s"] == 0.01
        assert m["stage.huffman"] == 2e-3
        assert m["ratio"] == 20.0
        assert m["cache_hit_ratio"] == 0.75
        assert m["throughput_mb_s"] > 0

    def test_quality_metrics(self):
        rec = _rec(1, 0.01, quality_attrs={
            "psnr_db": 62.0, "abs_eb": 1e-3, "max_abs_error": 8e-4,
            "outlier_rate": 0.01})
        m = analytics.record_metrics(rec)
        assert m["quality.psnr_db"] == 62.0
        assert m["quality.max_err_rel"] == pytest.approx(0.8)
        assert m["quality.outlier_rate"] == 0.01


class TestBaselineScoring:
    def test_stationary_noise_flags_nothing(self):
        engine = AnalyticsEngine()
        scores = [engine.observe(r) for r in _stationary_ledger()]
        assert not any(s.anomalous for s in scores)
        assert engine.anomalies() == []
        assert engine.change_points() == []
        report = engine.report()
        assert report["verdict"]["healthy"]
        assert report["verdict"]["anomalous_runs"] == 0

    def test_single_outlier_is_flagged(self):
        engine = AnalyticsEngine()
        for r in _stationary_ledger(n=20):
            engine.observe(r)
        score = engine.observe(_rec(99, 20e-3, stages={
            "predict": 4e-3, "huffman": 15e-3, "lossless": 1e-3}))
        assert score.anomalous
        metrics = {a.metric for a in score.anomalies}
        assert "wall_s" in metrics and "stage.huffman" in metrics

    def test_improvement_direction_not_flagged(self):
        engine = AnalyticsEngine()
        for r in _stationary_ledger(n=20):
            engine.observe(r)
        # twice as fast: a large |z| in the *good* direction
        score = engine.observe(_rec(99, 3.5e-3))
        assert not score.anomalous

    def test_baseline_needs_min_runs(self):
        engine = AnalyticsEngine()
        for i in range(analytics.MIN_BASELINE - 1):
            engine.observe(_rec(i + 1, 7e-3))
        score = engine.observe(_rec(99, 1.0))  # wild, but too early
        assert score.n_scored == 0 and not score.anomalous


class TestChangePoints:
    def test_huffman_step_detected_and_attributed(self):
        engine = AnalyticsEngine()
        records = _regression_ledger()
        for r in records:
            engine.observe(r)
        cps = engine.change_points()
        lat = [cp for cp in cps if cp.kind == "latency_regression"]
        assert len(lat) == 1
        cp = lat[0]
        assert cp.metric == "wall_s"
        assert cp.stage == "huffman"
        assert cp.since_seq == 21
        assert cp.since_trace_id == "t0021"
        assert cp.rel == pytest.approx(2.0 / 7.0, rel=0.25)
        assert cp.stage_share == pytest.approx(1.0, abs=0.25)
        assert cp.stage_before == pytest.approx(2e-3, rel=0.1)
        assert cp.stage_after == pytest.approx(4e-3, rel=0.1)

    def test_step_runs_also_scored_anomalous(self):
        engine = AnalyticsEngine()
        flagged = [engine.observe(r).anomalous
                   for r in _regression_ledger()]
        assert flagged[20]          # the first 2x-huffman run
        assert not any(flagged[:20])

    def test_quality_drift_detected(self):
        engine = AnalyticsEngine()
        rng = np.random.default_rng(2)
        for i in range(40):
            psnr = (62.0 if i < 20 else 40.0) \
                + float(rng.uniform(-0.3, 0.3))
            engine.observe(_rec(i + 1, 7e-3, quality_attrs={
                "psnr_db": psnr, "abs_eb": 1e-3,
                "max_abs_error": 5e-4}))
        kinds = {cp.kind for cp in engine.change_points()}
        assert "quality_drift" in kinds
        assert "latency_regression" not in kinds

    def test_cold_to_warm_improvement_not_a_regression(self):
        engine = AnalyticsEngine()
        for i in range(40):
            wall = 10e-3 if i < 10 else 5e-3
            engine.observe(_rec(i + 1, wall))
        assert engine.change_points() == []

    def test_report_verdict_counts(self):
        report = analytics.analyze(_regression_ledger())
        assert report["verdict"]["latency_regressions"] == 1
        assert not report["verdict"]["healthy"]
        assert report["change_points"][0]["stage"] == "huffman"

    def test_short_cohorts_never_scanned(self):
        engine = AnalyticsEngine()
        for i in range(2 * analytics.MIN_SEGMENT - 1):
            engine.observe(_rec(i + 1, 7e-3 * (1 + i)))
        assert engine.change_points() == []


class TestDoctorIntegration:
    def test_regression_ledger_fails_doctor(self):
        diag = doctor.diagnose(_regression_ledger())
        bad = [c for c in diag.checks
               if c.name == "analytics latency drift"]
        assert len(bad) == 1 and not bad[0].ok and bad[0].gating
        assert "huffman" in bad[0].detail
        assert not diag.healthy

    def test_stationary_ledger_stays_healthy(self):
        diag = doctor.diagnose(_stationary_ledger())
        assert diag.healthy
        names = {c.name for c in diag.checks}
        assert "analytics latency drift" in names
        assert "analytics run anomalies" in names

    def test_analytics_opt_out(self):
        diag = doctor.diagnose(_regression_ledger(), analytics=False)
        names = {c.name for c in diag.checks}
        assert "analytics latency drift" not in names


class TestBaselinePersistence:
    def test_save_load_compare_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        report = analytics.analyze(_stationary_ledger())
        analytics.save_baselines(report, str(path))
        doc = analytics.load_baselines(str(path))
        assert doc["schema"] == analytics.BASELINE_SCHEMA
        # same workload: nothing regressed
        findings = analytics.compare_baselines(report, doc)
        assert findings and not any(f["regressed"] for f in findings)
        # 2x slower workload: wall regressed vs the saved reference
        slow = analytics.analyze(_stationary_ledger(wall=14e-3))
        findings = analytics.compare_baselines(slow, doc)
        walls = [f for f in findings if f["metric"] == "wall_s"]
        assert walls and walls[0]["regressed"]

    def test_load_rejects_future_schema_and_junk(self, tmp_path):
        future = tmp_path / "future.json"
        future.write_text(json.dumps(
            {"schema": analytics.BASELINE_SCHEMA + 1, "cohorts": {}}))
        with pytest.raises(ValueError, match="newer"):
            analytics.load_baselines(str(future))
        junk = tmp_path / "junk.json"
        junk.write_text(json.dumps({"not": "a baseline"}))
        with pytest.raises(ValueError):
            analytics.load_baselines(str(junk))


class TestPrometheusLines:
    def test_drift_and_anomaly_series(self):
        report = analytics.analyze(_regression_ledger())
        text = "\n".join(analytics.metrics_lines(report))
        assert "repro_anomaly_runs_total" in text
        assert "repro_drift_change_points 1" in text
        assert 'repro_drift_rel{cohort=' in text
        assert 'stage="huffman"' in text

    def test_stationary_report_exports_zeroes(self):
        report = analytics.analyze(_stationary_ledger())
        text = "\n".join(analytics.metrics_lines(report))
        assert "repro_drift_change_points 0" in text
        assert "repro_anomaly_runs_total 0" in text


class TestLedgerSchema:
    def test_records_are_stamped(self):
        doc = _rec(1, 0.01).to_dict()
        assert doc["schema"] == recorder.LEDGER_SCHEMA

    def test_unversioned_and_legacy_lines_accepted(self):
        old = json.dumps({"seq": 1, "kind": "compress", "ts": 0.0,
                          "wall_s": 0.01})
        legacy = json.dumps({"v": 2, "seq": 2, "kind": "compress",
                             "ts": 0.0, "wall_s": 0.01})
        recs = recorder.from_jsonl(old + "\n" + legacy + "\n")
        assert [r.seq for r in recs] == [1, 2]

    def test_future_schema_rejected_with_clear_error(self, tmp_path):
        line = json.dumps({"schema": recorder.LEDGER_SCHEMA + 1,
                           "seq": 1, "kind": "compress", "ts": 0.0,
                           "wall_s": 0.01})
        with pytest.raises(ValueError, match="newer than"):
            recorder.from_jsonl(line)
        path = tmp_path / "future.jsonl"
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match="upgrade"):
            recorder.read_ledger(str(path))

    def test_non_numeric_schema_rejected(self):
        line = json.dumps({"schema": "three", "seq": 1,
                           "kind": "compress", "ts": 0.0, "wall_s": 0.0})
        with pytest.raises(ValueError, match="not a number"):
            recorder.from_jsonl(line)

    def test_percentiles_defined_for_tiny_groups(self):
        assert recorder._percentiles([])["n"] == 0
        assert recorder._percentiles([1.0])["p99"] == 1.0
        agg = recorder.aggregate([_rec(1, 0.01), _rec(2, 0.02)])
        label = "compress[cuszi]"
        assert agg[label]["wall_s"]["n"] == 2


class TestFingerprintThreading:
    def test_autotune_report_carries_fingerprint(self):
        data = smooth_field((12, 14, 10), seed=3)
        report = autotune(data, 1e-3)
        assert report.fingerprint == field_fingerprint(data)
        assert len(report.fingerprint) == 16
        int(report.fingerprint, 16)      # valid hex

    def test_fingerprint_distinguishes_content(self):
        a = smooth_field((12, 14, 10), seed=3)
        b = smooth_field((12, 14, 10), seed=4)
        assert field_fingerprint(a) != field_fingerprint(b)
        assert field_fingerprint(a) == field_fingerprint(a.copy())

    def test_compress_record_carries_fingerprint(self):
        # 17 = 2 * anchor_stride + 1: pad_to_grid is a no-op, so the
        # recorded fingerprint is the hash of the input field itself
        data = smooth_field((17, 17, 17), seed=5)
        CuSZi(eb=1e-3, tune=True).compress(data)
        rec = [r for r in recorder.records()
               if r.kind == "compress"][-1]
        assert rec.fingerprint == field_fingerprint(data)
        # tune=False hashes on demand (same sampled key)
        CuSZi(eb=1e-2, tune=False).compress(data)
        rec2 = [r for r in recorder.records()
                if r.kind == "compress"][-1]
        assert rec2.fingerprint == rec.fingerprint
        # ledger round trip preserves it
        back = recorder.from_jsonl(recorder.to_jsonl([rec]))
        assert back[0].fingerprint == rec.fingerprint

    def test_same_field_two_ebs_same_fingerprint_cohort_splits(self):
        data = smooth_field((12, 12, 12), seed=6)
        CuSZi(eb=1e-3, mode="abs").compress(data)
        CuSZi(eb=1e-4, mode="abs").compress(data)
        recs = [r for r in recorder.records() if r.kind == "compress"]
        keys = [analytics.cohort_key(r) for r in recs]
        assert keys[0][1] == keys[1][1]          # same fingerprint
        assert keys[0][3] != keys[1][3]          # different eb decade


class TestAnalyzeCLI:
    def _write(self, tmp_path, records, name="ledger.jsonl"):
        path = tmp_path / name
        recorder.write_ledger(str(path), records)
        return str(path)

    def test_missing_ledger_exits_1(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_empty_ledger_exits_0(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["analyze", str(path)]) == 0
        assert "no run records" in capsys.readouterr().out

    def test_text_and_json_reports(self, tmp_path, capsys):
        path = self._write(tmp_path, _regression_ledger())
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "latency_regression" in out and "huffman" in out
        assert main(["analyze", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == analytics.REPORT_SCHEMA
        assert doc["verdict"]["latency_regressions"] == 1

    def test_check_gates_on_regression(self, tmp_path, capsys):
        good = self._write(tmp_path, _stationary_ledger(), "good.jsonl")
        bad = self._write(tmp_path, _regression_ledger(), "bad.jsonl")
        assert main(["analyze", good, "--check"]) == 0
        assert main(["analyze", bad, "--check"]) == 1
        capsys.readouterr()

    def test_baseline_save_and_compare(self, tmp_path, capsys):
        path = self._write(tmp_path, _stationary_ledger())
        ref = tmp_path / "ref.json"
        assert main(["analyze", path, "--save-baseline", str(ref)]) == 0
        assert ref.exists()
        slow = self._write(tmp_path, _stationary_ledger(wall=14e-3),
                           "slow.jsonl")
        assert main(["analyze", slow, "--baseline", str(ref),
                     "--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_stats_empty_ledger_exits_0(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["stats", str(path)]) == 0
        assert "no run records" in capsys.readouterr().out
        assert main(["stats", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_records"] == 0

    def test_doctor_empty_ledger_exits_0(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["doctor", str(path), "--check"]) == 0
        assert "0 run record(s)" in capsys.readouterr().out


class TestOverheadAccounting:
    def test_observe_is_cheap_and_accounted(self):
        engine = AnalyticsEngine()
        for r in _stationary_ledger(n=100, seed=7):
            engine.observe(r)
        over = engine.overhead()
        assert over["scored_runs"] == 100
        assert over["score_total_s"] > 0
        # generous CI bound: well under a millisecond per run
        assert over["score_mean_us"] < 1000
