"""Unit tests for the prebuilt (static) Huffman codebooks."""

import numpy as np
import pytest

from repro.common.errors import CodecError
from repro.huffman import (STATIC_SPREADS, best_static_profile,
                           huffman_decode, huffman_encode, static_lengths)
from repro.huffman.canonical import MAX_CODE_LEN


class TestStaticLengths:
    def test_all_symbols_coded(self):
        lengths = static_lengths(1024, 512, 2.0)
        assert (lengths > 0).all()
        assert lengths.max() <= MAX_CODE_LEN

    def test_center_shortest(self):
        lengths = static_lengths(1024, 512, 2.0)
        assert lengths[512] == lengths.min()
        assert lengths[0] >= lengths[512]

    def test_kraft_valid(self):
        for spread in STATIC_SPREADS:
            lengths = static_lengths(1024, 512, spread)
            assert np.sum(2.0 ** -lengths.astype(float)) <= 1 + 1e-12

    def test_wider_spread_flatter_code(self):
        tight = static_lengths(1024, 512, 0.5)
        wide = static_lengths(1024, 512, 64.0)
        # the wide profile spends more bits at the center bin and fewer on
        # near-center neighbors (which the tight profile already floors)
        assert wide[512] >= tight[512]
        assert wide[500] <= tight[500]

    def test_bad_params(self):
        with pytest.raises(CodecError):
            static_lengths(16, 20, 1.0)
        with pytest.raises(CodecError):
            static_lengths(16, 8, 0.0)


class TestStaticEncode:
    def test_roundtrip(self, rng):
        codes = (512 + np.clip(rng.normal(0, 2, 50000), -500, 500)
                 .round()).astype(np.uint32)
        lengths = static_lengths(1024, 512, 2.0)
        stream = huffman_encode(codes, 1024, lengths=lengths)
        np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_close_to_dynamic(self, rng):
        codes = (512 + np.clip(rng.normal(0, 2, 100000), -500, 500)
                 .round()).astype(np.uint32)
        spread = best_static_profile(codes, 1024, 512)
        static = huffman_encode(codes, 1024,
                                lengths=static_lengths(1024, 512, spread))
        dynamic = huffman_encode(codes, 1024)
        assert static.nbytes <= dynamic.nbytes * 1.15

    def test_profile_picks_matching_spread(self, rng):
        tight = (512 + np.clip(rng.normal(0, 0.4, 20000), -500, 500)
                 .round()).astype(np.uint32)
        wide = (512 + np.clip(rng.normal(0, 30, 20000), -500, 500)
                .round()).astype(np.uint32)
        assert best_static_profile(tight, 1024, 512) \
            < best_static_profile(wide, 1024, 512)

    def test_profile_empty_stream(self):
        assert best_static_profile(np.array([], np.uint32), 1024, 512) \
            in STATIC_SPREADS

    def test_wrong_size_rejected(self):
        with pytest.raises(CodecError):
            huffman_encode(np.zeros(4, np.uint32), 1024,
                           lengths=np.ones(512, np.int64))

    def test_cuszi_static_option(self):
        import sys
        sys.path.insert(0, "tests")
        from conftest import smooth_field
        from repro.core.pipeline import CuSZi
        data = smooth_field((32, 32, 32), seed=110)
        rng_ = float(data.max() - data.min())
        dyn = CuSZi(eb=1e-3, mode="rel", codebook="dynamic")
        sta = CuSZi(eb=1e-3, mode="rel", codebook="static")
        blob_d = dyn.compress(data)
        blob_s = sta.compress(data)
        out = CuSZi().decompress(blob_s)  # self-describing either way
        assert np.abs(out.astype(np.float64)
                      - data.astype(np.float64)).max() <= 1e-3 * rng_
        assert len(blob_s) <= len(blob_d) * 1.2

    def test_cuszi_bad_codebook_name(self):
        from repro.common.errors import ConfigError
        from repro.core.pipeline import CuSZi
        with pytest.raises(ConfigError):
            CuSZi(codebook="magic")
