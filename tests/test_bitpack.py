"""Unit + property tests for repro.common.bitpack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitpack import (bit_length, min_bit_width, pack_uint,
                                  unpack_uint, zigzag_decode, zigzag_encode)
from repro.common.errors import CodecError


class TestPackUnpack:
    @pytest.mark.parametrize("width", [1, 3, 7, 8, 13, 16, 31, 32, 57, 64])
    def test_roundtrip_random(self, width, rng):
        hi = (1 << width) - 1
        vals = rng.integers(0, hi, 257, dtype=np.uint64,
                            endpoint=True)
        packed = pack_uint(vals, width)
        assert packed.size == -(-257 * width // 8)
        back = unpack_uint(packed, width, 257)
        np.testing.assert_array_equal(back, vals)

    @pytest.mark.parametrize("width", [1, 2, 4, 8, 16, 24, 32])
    def test_fast_paths_match_dense_reference(self, width, rng):
        # byte-aligned widths take dedicated copy/fold paths; their bytes
        # must equal the generic MSB-first dense-bit-matrix layout
        vals = rng.integers(0, 2 ** min(width, 32), 300).astype(np.uint64)
        packed = pack_uint(vals, width)
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = ((vals[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        assert np.array_equal(packed, np.packbits(bits.ravel()))
        assert np.array_equal(unpack_uint(packed, width, vals.size), vals)

    def test_width_zero_all_zero(self):
        packed = pack_uint(np.zeros(10, np.uint64), 0)
        assert packed.size == 0
        np.testing.assert_array_equal(unpack_uint(packed, 0, 10),
                                      np.zeros(10))

    def test_width_zero_nonzero_rejected(self):
        with pytest.raises(CodecError):
            pack_uint(np.array([1], np.uint64), 0)

    def test_value_overflow_rejected(self):
        with pytest.raises(CodecError):
            pack_uint(np.array([4], np.uint64), 2)

    def test_empty(self):
        assert pack_uint(np.array([], np.uint64), 5).size == 0
        assert unpack_uint(np.array([], np.uint8), 5, 0).size == 0

    def test_truncated_stream_rejected(self):
        packed = pack_uint(np.arange(16, dtype=np.uint64), 5)
        with pytest.raises(CodecError):
            unpack_uint(packed[:-1], 5, 16)

    def test_bad_width(self):
        with pytest.raises(CodecError):
            pack_uint(np.array([1], np.uint64), 65)
        with pytest.raises(CodecError):
            unpack_uint(np.zeros(8, np.uint8), -1, 4)

    @given(st.lists(st.integers(0, 2**20 - 1), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        vals = np.array(values, dtype=np.uint64)
        width = max(min_bit_width(vals), 1)
        back = unpack_uint(pack_uint(vals, width), width, vals.size)
        np.testing.assert_array_equal(back, vals)


class TestZigzag:
    def test_known_mapping(self):
        v = np.array([0, -1, 1, -2, 2, -3], dtype=np.int64)
        np.testing.assert_array_equal(zigzag_encode(v),
                                      [0, 1, 2, 3, 4, 5])

    def test_roundtrip_extremes(self):
        v = np.array([0, 1, -1, 2**62, -2**62], dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(v)), v)

    @given(st.lists(st.integers(-2**40, 2**40), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        v = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(v)), v)

    def test_small_magnitude_stays_small(self):
        v = np.array([-4, 4], dtype=np.int64)
        assert zigzag_encode(v).max() <= 8


class TestBitLength:
    def test_zero(self):
        assert bit_length(np.array([0], np.uint64))[0] == 0

    @pytest.mark.parametrize("value,expect", [(1, 1), (2, 2), (3, 2),
                                              (255, 8), (256, 9),
                                              (2**32 - 1, 32), (2**52, 53),
                                              (2**63, 64)])
    def test_known_values(self, value, expect):
        assert bit_length(np.array([value], np.uint64))[0] == expect

    def test_matches_python(self, rng):
        vals = rng.integers(0, 2**63, 1000, dtype=np.uint64)
        got = bit_length(vals)
        expect = np.array([int(v).bit_length() for v in vals])
        np.testing.assert_array_equal(got, expect)

    def test_min_bit_width(self):
        assert min_bit_width(np.array([0, 0])) == 0
        assert min_bit_width(np.array([5])) == 3
        assert min_bit_width(np.array([], np.uint64)) == 0
