"""Integration tests: traced pipelines emit the documented span taxonomy
and tracing never perturbs the compressed output."""

import numpy as np
import pytest

from conftest import smooth_field
from repro import telemetry
from repro.core.pipeline import CuSZi


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    telemetry.disable()


def _children_of(spans, parent):
    return [s for s in spans if s.parent_id == parent.span_id]


class TestCompressTrace:
    def test_span_tree_covers_pipeline_stages(self):
        field = smooth_field((32, 28, 24), seed=11)
        codec = CuSZi(eb=1e-3)
        with telemetry.recording() as reg:
            _blob, stats = codec.compress_detailed(field)
        roots = [s for s in reg.spans if s.parent_id is None]
        assert [r.name for r in roots] == ["compress"]
        root = roots[0]
        children = {s.name for s in _children_of(reg.spans, root)}
        assert {"tune", "predict", "quantize", "huffman",
                "container", "lossless"} <= children
        assert root.attrs["codec"] == "cuszi"
        assert root.attrs["n_elements"] == field.size
        assert root.attrs["compressed_nbytes"] == stats.compressed_nbytes

    def test_segment_byte_attrs_sum_to_stats(self):
        field = smooth_field((32, 28, 24), seed=11)
        codec = CuSZi(eb=1e-3)
        with telemetry.recording() as reg:
            _blob, stats = codec.compress_detailed(field)
        per_segment = {s.attrs["segment"]: s.attrs["segment_nbytes"]
                       for s in reg.spans if "segment" in s.attrs}
        assert per_segment == {"anchors": stats.segment_nbytes["anchors"],
                               "outliers":
                                   stats.segment_nbytes["outliers"],
                               "huffman":
                                   stats.segment_nbytes["huffman"]}
        assert sum(per_segment.values()) == \
            sum(stats.segment_nbytes.values())

    def test_ginterp_passes_mirror_kernel_launches(self):
        field = smooth_field((32, 28, 24), seed=11)
        with telemetry.recording() as reg:
            CuSZi(eb=1e-3).compress_detailed(field)
        passes = [s for s in reg.spans if s.name == "ginterp.pass"]
        # 3D, anchor stride 8 -> 3 levels x 3 axes = 9 passes (Fig. 2)
        assert len(passes) == 9
        predict = next(s for s in reg.spans if s.name == "predict")
        for p in passes:
            assert {"level", "axis", "stride"} <= set(p.attrs)
            assert p.parent_id == predict.span_id
        # every interior target is quantized exactly once: pass target
        # counts sum to the quant-code count
        n_targets = sum(p.attrs["targets"] for p in passes)
        assert n_targets == predict.attrs["codes_nbytes"] // 4

    def test_tracing_does_not_change_the_blob(self):
        field = smooth_field((32, 28, 24), seed=12)
        codec = CuSZi(eb=1e-3)
        plain = codec.compress(field)
        with telemetry.recording():
            traced = codec.compress(field)
        assert traced == plain
        again = codec.compress(field)
        assert again == plain  # and disabling leaves no residue

    def test_decompress_trace_roundtrip(self):
        field = smooth_field((32, 28, 24), seed=13)
        codec = CuSZi(eb=1e-3)
        blob = codec.compress(field)
        with telemetry.recording() as reg:
            recon = codec.decompress(blob)
        assert recon.shape == field.shape
        roots = [s for s in reg.spans if s.parent_id is None]
        assert [r.name for r in roots] == ["decompress"]
        children = {s.name for s in _children_of(reg.spans, roots[0])}
        assert {"lossless", "container", "huffman", "predict"} <= children

    def test_error_inside_pipeline_closes_spans(self):
        with telemetry.recording() as reg:
            with pytest.raises(Exception):
                CuSZi(eb=1e-3).compress_detailed(
                    np.full((8, 8, 8), np.nan, dtype=np.float32))
        roots = [s for s in reg.spans if s.parent_id is None]
        assert [r.name for r in roots] == ["compress"]
        assert roots[0].status == "error"


class TestSubsystemTraces:
    def test_streaming_spans(self):
        from repro.streaming import SlabReader, compress_slabs

        field = smooth_field((12, 16, 16), seed=14)
        with telemetry.recording() as reg:
            stream = compress_slabs(field, 4, codec="cuszi", eb=1e-3,
                                    mode="abs")
            reader = SlabReader(stream)
            reader.read_slab(1)
        appends = [s for s in reg.spans if s.name == "slab.append"]
        assert len(appends) == 3
        assert [s.attrs["index"] for s in appends] == [0, 1, 2]
        reads = [s for s in reg.spans if s.name == "slab.read"]
        assert len(reads) == 1 and reads[0].attrs["bytes_out"] > 0

    def test_transfer_records_modelled_stage_spans(self):
        from repro.transfer.pipeline import FileSpec, pipelined_transfer

        files = [FileSpec(f"f{i}", 1 << 20, 1 << 18) for i in range(3)]
        with telemetry.recording() as reg:
            schedule = pipelined_transfer("cuszi", files)
        file_spans = [s for s in reg.spans if s.name == "transfer.file"]
        assert len(file_spans) == 3
        for fsp in file_spans:
            stages = [s for s in reg.spans
                      if s.parent_id == fsp.span_id]
            assert sorted(s.name for s in stages) == \
                ["transfer.compress", "transfer.decompress",
                 "transfer.wire"]
            assert fsp.duration_s == pytest.approx(
                sum(s.duration_s for s in stages))
        root = next(s for s in reg.spans
                    if s.name == "transfer.pipeline")
        assert root.attrs["makespan_s"] == pytest.approx(
            schedule.makespan)

    def test_harness_spans(self):
        from repro.experiments.harness import run_codec

        field = smooth_field((16, 16, 16), seed=15)
        with telemetry.recording() as reg:
            run_codec("cuszi", field, eb=1e-3)
        names = [s.name for s in reg.spans]
        assert "experiment.compress" in names
        assert "experiment.decompress" in names
        assert reg.counters.get("experiment.runs") == 1.0
        # the pipeline's own root spans nest under the harness spans
        exp = next(s for s in reg.spans
                   if s.name == "experiment.compress")
        inner = [s for s in reg.spans if s.parent_id == exp.span_id]
        assert [s.name for s in inner] == ["compress"]
