"""Unit tests for repro.common.arrayutils."""

import numpy as np
import pytest

from repro.common.arrayutils import (blocks_along, crop_to_shape, pad_to_grid,
                                     validate_field, value_range)
from repro.common.errors import DataError


class TestValidateField:
    def test_accepts_float32_3d(self):
        d = np.zeros((4, 5, 6), dtype=np.float32)
        out = validate_field(d)
        assert out.shape == (4, 5, 6)

    def test_accepts_float64(self):
        out = validate_field(np.ones(10))
        assert out.dtype == np.float64

    def test_rejects_non_array(self):
        with pytest.raises(DataError):
            validate_field([1.0, 2.0])

    def test_rejects_int_dtype(self):
        with pytest.raises(DataError):
            validate_field(np.zeros(4, dtype=np.int32))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            validate_field(np.zeros((0, 3), dtype=np.float32))

    def test_rejects_nan(self):
        d = np.zeros(8, dtype=np.float32)
        d[3] = np.nan
        with pytest.raises(DataError):
            validate_field(d)

    def test_rejects_inf(self):
        d = np.zeros(8, dtype=np.float32)
        d[0] = np.inf
        with pytest.raises(DataError):
            validate_field(d)

    def test_rejects_4d(self):
        with pytest.raises(DataError):
            validate_field(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_makes_contiguous(self):
        d = np.zeros((6, 6), dtype=np.float32)[::2]
        out = validate_field(d)
        assert out.flags.c_contiguous


class TestPadToGrid:
    def test_already_aligned(self):
        d = np.zeros((9, 17), dtype=np.float32)
        out = pad_to_grid(d, 8)
        assert out is d  # untouched

    def test_pads_up(self):
        d = np.arange(10, dtype=np.float32)
        out = pad_to_grid(d, 8)
        assert out.shape == (17,)
        assert out[-1] == d[-1]  # edge replication

    def test_pad_multiple_axes(self):
        # 5 and 9 are already k*4+1; 12 pads up to 13
        d = np.zeros((5, 9, 12), dtype=np.float32)
        out = pad_to_grid(d, 4)
        assert out.shape == (5, 9, 13)

    def test_stride_one(self):
        d = np.zeros(7, dtype=np.float32)
        assert pad_to_grid(d, 1).shape == (7,)

    def test_invalid_stride(self):
        with pytest.raises(DataError):
            pad_to_grid(np.zeros(4), 0)

    def test_crop_inverts_pad(self):
        d = np.random.default_rng(0).random((6, 11)).astype(np.float32)
        padded = pad_to_grid(d, 8)
        back = crop_to_shape(padded, d.shape)
        np.testing.assert_array_equal(back, d)

    def test_crop_rank_mismatch(self):
        with pytest.raises(DataError):
            crop_to_shape(np.zeros((4, 4)), (4,))


class TestHelpers:
    def test_value_range(self):
        assert value_range(np.array([-2.0, 5.0, 1.0])) == 7.0

    def test_value_range_constant(self):
        assert value_range(np.full(5, 3.3)) == 0.0

    def test_blocks_along(self):
        assert blocks_along(10, 4) == 3
        assert blocks_along(8, 4) == 2
        assert blocks_along(1, 4) == 1
