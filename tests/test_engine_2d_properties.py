"""Extra property tests: the interpolation engine on 1D/2D grids and the
exactness properties the spline design promises."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_error_bounded
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp import InterpSpec, interp_compress, interp_decompress


def polynomial_field_2d(shape, degree):
    """A low-degree polynomial surface (exactly interpolable by cubics)."""
    y, x = np.meshgrid(np.linspace(-1, 1, shape[0]),
                       np.linspace(-1, 1, shape[1]), indexing="ij")
    out = np.zeros(shape)
    for p in range(degree + 1):
        for q in range(degree + 1 - p):
            out += ((-0.5) ** (p + q)) * y ** p * x ** q
    return out.astype(np.float32)


class TestPolynomialExactness:
    @pytest.mark.parametrize("degree,limit", [(0, 0.001), (1, 0.001),
                                              (2, 0.02), (3, 0.3)])
    def test_global_cubic_nearly_exact_on_low_degree(self, degree, limit):
        # global cubic interpolation reproduces degree<=2 polynomials to
        # quantization precision everywhere (boundary quadratics are exact
        # too); degree 3 stays exact only where all four neighbors exist,
        # so boundary fallbacks and level-to-level quantization feedback
        # leave a bounded fraction of small nonzero codes
        data = polynomial_field_2d((33, 33), degree)
        eb = 1e-5 * float(data.max() - data.min() + 1)
        spec = InterpSpec(anchor_stride=32, window_shape=None, alpha=1.0)
        res = interp_compress(data, spec, eb, LinearQuantizer(512))
        nz = (res.codes != 512).mean()
        assert nz < limit, f"degree {degree}: nz={nz:.3f}"

    def test_windowed_linear_exact_on_affine(self):
        data = polynomial_field_2d((33, 33), 1)
        eb = 1e-6
        spec = InterpSpec(anchor_stride=16, window_shape=(17, 65),
                          alpha=1.0)
        res = interp_compress(data, spec, eb, LinearQuantizer(512))
        # affine data is exact under every spline class (incl. linear)
        assert (res.codes != 512).mean() < 0.02


class TestLowDimProperties:
    @given(st.integers(0, 10 ** 6),
           st.sampled_from([(65,), (130,), (257,)]),
           st.sampled_from([1e-2, 1e-4]))
    @settings(max_examples=12, deadline=None)
    def test_1d_roundtrip_property(self, seed, shape, rel_eb):
        rng = np.random.default_rng(seed)
        t = np.linspace(0, 4 * np.pi, shape[0])
        data = (np.sin(t) + 0.1 * rng.standard_normal(shape)
                ).astype(np.float32)
        vr = float(data.max() - data.min())
        eb = rel_eb * vr
        spec = InterpSpec(anchor_stride=64, window_shape=(257,),
                          alpha=1.25)
        res = interp_compress(data, spec, eb)
        dec = interp_decompress(shape, spec, eb, res.codes, res.outliers,
                                res.anchors)
        np.testing.assert_array_equal(dec, res.reconstructed)
        assert_error_bounded(data, dec.astype(np.float32), eb)

    @given(st.integers(0, 10 ** 6),
           st.sampled_from([(20, 50), (48, 31), (17, 17)]))
    @settings(max_examples=12, deadline=None)
    def test_2d_roundtrip_property(self, seed, shape):
        rng = np.random.default_rng(seed)
        from scipy.ndimage import zoom
        coarse = rng.standard_normal((max(2, shape[0] // 6),
                                      max(2, shape[1] // 6)))
        data = zoom(coarse, (shape[0] / coarse.shape[0],
                             shape[1] / coarse.shape[1]),
                    order=3)[:shape[0], :shape[1]].astype(np.float32)
        vr = float(data.max() - data.min()) or 1.0
        eb = 1e-3 * vr
        spec = InterpSpec(anchor_stride=16, window_shape=(17, 65),
                          alpha=1.5)
        res = interp_compress(data, spec, eb)
        dec = interp_decompress(data.shape, spec, eb, res.codes,
                                res.outliers, res.anchors)
        np.testing.assert_array_equal(dec, res.reconstructed)
        assert_error_bounded(data, dec.astype(np.float32), eb)

    def test_axis_of_length_one(self):
        # degenerate axes must not crash the traversal
        data = np.random.default_rng(0).standard_normal(
            (1, 40)).astype(np.float32)
        spec = InterpSpec(anchor_stride=16, window_shape=None)
        res = interp_compress(data, spec, 0.01)
        dec = interp_decompress(data.shape, spec, 0.01, res.codes,
                                res.outliers, res.anchors)
        np.testing.assert_array_equal(dec, res.reconstructed)
        assert_error_bounded(data, dec.astype(np.float32), 0.01)
