"""Unit tests for the dual-quant Lorenzo primitive."""

import numpy as np
import pytest

from conftest import EB_SLACK, smooth_field
from repro.baselines.lorenzo import (lorenzo_delta, lorenzo_prequantize,
                                     lorenzo_reconstruct, merge_outliers,
                                     split_outliers)
from repro.common.errors import ConfigError


class TestDualQuant:
    @pytest.mark.parametrize("shape", [(100,), (20, 30), (10, 12, 14)])
    def test_roundtrip_exact_integers(self, shape, rng):
        data = rng.normal(0, 5, shape)
        eb = 0.01
        p = lorenzo_prequantize(data, eb)
        delta = lorenzo_delta(p)
        recon = lorenzo_reconstruct(delta, eb)
        # scan exactly inverts the difference: recon == 2eb * p
        np.testing.assert_allclose(recon, 2 * eb * p, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("shape", [(500,), (30, 40), (16, 18, 20)])
    def test_error_bound(self, shape, rng):
        data = rng.normal(0, 5, shape)
        eb = 0.003
        recon = lorenzo_reconstruct(
            lorenzo_delta(lorenzo_prequantize(data, eb)), eb)
        assert np.abs(recon - data).max() <= eb * EB_SLACK

    def test_smooth_data_concentrates_deltas(self):
        data = smooth_field((32, 32, 32), seed=0).astype(np.float64)
        eb = 1e-2 * (data.max() - data.min())
        delta = lorenzo_delta(lorenzo_prequantize(data, eb))
        # dual-quant lattice noise keeps ~half the deltas at +-1, but the
        # distribution must be tightly centered (smoothness pays off)
        assert (np.abs(delta) <= 1).mean() > 0.9
        assert (delta == 0).mean() > 0.3

    def test_delta_is_integer_exact(self, rng):
        p = rng.integers(-1000, 1000, (8, 9, 10))
        delta = lorenzo_delta(p)
        # sum of all deltas telescopes back to the corner-sum identity
        q = delta.copy()
        for ax in range(3):
            q = np.cumsum(q, axis=ax)
        np.testing.assert_array_equal(q, p)

    def test_bad_eb(self):
        with pytest.raises(ConfigError):
            lorenzo_prequantize(np.zeros(4), 0.0)
        with pytest.raises(ConfigError):
            lorenzo_reconstruct(np.zeros(4, np.int64), -1.0)


class TestOutliers:
    def test_split_merge_roundtrip(self, rng):
        delta = rng.integers(-2000, 2000, 5000)
        codes, outliers = split_outliers(delta, 512)
        back = merge_outliers(codes, outliers, 512)
        np.testing.assert_array_equal(back, delta)

    def test_reserved_code_zero(self):
        delta = np.array([0, 511, -511, 512, -512, 100000])
        codes, outliers = split_outliers(delta, 512)
        np.testing.assert_array_equal(codes, [512, 1023, 1, 0, 0, 0])
        np.testing.assert_array_equal(outliers, [512, -512, 100000])

    def test_no_outliers(self):
        delta = np.arange(-10, 10)
        codes, outliers = split_outliers(delta, 512)
        assert outliers.size == 0
        np.testing.assert_array_equal(merge_outliers(codes, outliers, 512),
                                      delta)

    def test_merge_count_mismatch_rejected(self):
        codes = np.array([0, 512], np.uint32)
        with pytest.raises(ConfigError):
            merge_outliers(codes, np.array([], np.int64), 512)
