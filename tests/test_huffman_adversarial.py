"""Adversarial + cross-engine equivalence tests for the Huffman engine.

The ``lut`` (multi-symbol probe, chunk-parallel) and ``loop`` (one
codeword per lookup) decoders must agree byte-for-byte on every valid
stream and raise :class:`~repro.common.errors.CorruptStreamError` —
never mis-decode — on every corrupt one. These tests drive both engines
through degenerate codebooks (single symbol, maximally skewed trees),
codewords wider than the LUT probe, hostile chunk tables, and the full
pipeline across dtypes, shapes and the slab / tiled / shm transports.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

import repro.huffman.canonical as canonical
from repro.common.errors import CodecError, CorruptStreamError
from repro.huffman import (MAX_CODE_LEN, HuffmanStream, build_lut_tables,
                           code_lengths, huffman_decode, huffman_encode)
from repro.huffman.canonical import (LUT_CACHE_BYTES,
                                     clear_codebook_caches,
                                     codebook_cache_stats)

from conftest import smooth_field

ENGINES = ("lut", "loop")


def _reencode(stream, payload=None, chunk_bits=None):
    """Clone a stream with substituted parts, keeping the CRC honest so
    corruption must be caught by *decoding*, not the checksum."""
    payload = stream.payload if payload is None else payload
    return HuffmanStream(
        n_symbols=stream.n_symbols, alphabet_size=stream.alphabet_size,
        chunk_size=stream.chunk_size, lengths=stream.lengths,
        chunk_bits=stream.chunk_bits if chunk_bits is None else chunk_bits,
        payload=payload, crc32=zlib.crc32(payload.tobytes()))


def _assert_both_engines_equal(stream, expected):
    for engine in ENGINES:
        np.testing.assert_array_equal(
            huffman_decode(stream, engine=engine), expected)


def _assert_both_engines_raise(stream):
    for engine in ENGINES:
        with pytest.raises(CorruptStreamError):
            huffman_decode(stream, engine=engine)


class TestDegenerateCodebooks:
    @pytest.mark.parametrize("n", [1, 2, 255, 256, 257, 4096])
    def test_single_symbol_stream(self, n):
        codes = np.full(n, 3, dtype=np.uint32)
        stream = huffman_encode(codes, 8, chunk_size=64)
        _assert_both_engines_equal(stream, codes)

    def test_maximally_skewed_tree(self):
        # Fibonacci-ish frequencies drive the unbalanced tree to the
        # MAX_CODE_LEN rebalancing limit; every symbol must round-trip
        freqs = np.ones(24, dtype=np.int64)
        for i in range(2, 24):
            freqs[i] = freqs[i - 1] + freqs[i - 2]
        lengths = code_lengths(freqs, MAX_CODE_LEN)
        assert lengths.max() == MAX_CODE_LEN
        rng = np.random.default_rng(0)
        codes = rng.choice(24, size=5000,
                           p=freqs / freqs.sum()).astype(np.uint32)
        codes[:24] = np.arange(24)          # force every codeword to occur
        stream = huffman_encode(codes, 24, chunk_size=97)
        _assert_both_engines_equal(stream, codes)

    def test_two_symbol_alternation(self):
        codes = (np.arange(3000) & 1).astype(np.uint32)
        stream = huffman_encode(codes, 2, chunk_size=128)
        _assert_both_engines_equal(stream, codes)


class TestNarrowProbeFallback:
    """Codewords wider than the probe exercise the flat-table fallback
    (the full-width default probe never needs it)."""

    @pytest.mark.parametrize("probe_bits", [1, 2, 4, 8])
    def test_decodes_codes_wider_than_probe(self, monkeypatch, probe_bits):
        rng = np.random.default_rng(7)
        codes = (rng.zipf(1.2, size=20000).astype(np.uint32) % 512)
        codes[:512] = np.arange(512)
        stream = huffman_encode(codes, 512, chunk_size=256)
        expected = huffman_decode(stream, engine="loop")
        monkeypatch.setattr(canonical, "LUT_PROBE_BITS", probe_bits)
        clear_codebook_caches()
        try:
            np.testing.assert_array_equal(
                huffman_decode(stream, engine="lut"), expected)
            np.testing.assert_array_equal(expected, codes)
        finally:
            clear_codebook_caches()

    def test_lut_marks_overwide_first_codeword(self):
        # alphabet of 256 equal symbols -> every code is 8 bits; a 4-bit
        # probe can never contain a complete codeword
        lengths = code_lengths(np.ones(256, dtype=np.int64), MAX_CODE_LEN)
        count, cum, syms = build_lut_tables(lengths, probe_bits=4)
        assert count.max() == 0
        assert cum.shape[0] == 16 and syms.shape[0] == 16

    def test_probe_width_bounds_rejected(self):
        lengths = code_lengths(np.array([3, 1]), MAX_CODE_LEN)
        with pytest.raises(CodecError):
            build_lut_tables(lengths, probe_bits=0)
        with pytest.raises(CodecError):
            build_lut_tables(lengths, probe_bits=MAX_CODE_LEN + 1)


class TestLutTableInvariants:
    def test_cum_bits_leading_zero_column(self):
        lengths = code_lengths(np.array([8, 4, 2, 1, 1]), MAX_CODE_LEN)
        count, cum, syms = build_lut_tables(lengths, probe_bits=6)
        assert np.all(cum[:, 0] == 0)
        # within each row's emitted prefix, every codeword advances the
        # cursor by >= 1 bit and never past the probe width (entries
        # beyond count[w] are padding and carry no meaning)
        diffs = np.diff(cum.astype(np.int64), axis=1)
        valid = np.arange(diffs.shape[1])[None, :] < count[:, None]
        assert np.all(diffs[valid] >= 1)
        assert cum.max() <= 6
        # a row's own count indexes its final cumulative advance
        rows = np.arange(count.size)
        assert np.all(cum[rows, count] == cum.max(axis=1))

    def test_syms_dtype_tracks_alphabet(self):
        small = code_lengths(np.ones(16, dtype=np.int64), MAX_CODE_LEN)
        _, _, syms = build_lut_tables(small, probe_bits=8)
        assert syms.dtype == np.uint16

    def test_tables_are_readonly(self):
        lengths = code_lengths(np.array([4, 2, 1, 1]), MAX_CODE_LEN)
        for arr in build_lut_tables(lengths, probe_bits=5):
            assert not arr.flags.writeable


class TestHostileStreams:
    @pytest.fixture
    def stream(self, rng):
        codes = rng.integers(0, 3, 2000).astype(np.uint32)
        # three 2-bit codes leave the fourth 2-bit prefix unused, so
        # hostile payload bytes can hit an invalid codeword
        return huffman_encode(codes, 3, chunk_size=128)

    def test_truncated_header(self, stream):
        with pytest.raises(CorruptStreamError):
            HuffmanStream.from_bytes(stream.to_bytes()[:4])

    def test_truncated_tables(self, stream):
        blob = stream.to_bytes()
        with pytest.raises(CorruptStreamError):
            HuffmanStream.from_bytes(blob[:16 + stream.lengths.size // 2])

    def test_truncated_payload(self, stream):
        half = HuffmanStream.from_bytes(
            stream.to_bytes()[:-stream.payload.size // 2])
        _assert_both_engines_raise(half)

    def test_garbage_payload_invalid_codeword(self, stream):
        bad = _reencode(stream,
                        payload=np.full_like(stream.payload, 0xFF))
        _assert_both_engines_raise(bad)

    def test_chunk_bits_stretched(self, stream):
        # one extra bit in a chunk's budget must surface as a corrupt
        # stream (cursor/bit-count mismatch), never as wrong symbols
        bits = stream.chunk_bits.copy()
        bits[0] += 1
        _assert_both_engines_raise(_reencode(stream, chunk_bits=bits))

    def test_chunk_bits_shrunk(self, stream):
        bits = stream.chunk_bits.copy()
        bits[1] -= 1
        _assert_both_engines_raise(_reencode(stream, chunk_bits=bits))

    def test_chunk_table_garbage(self, stream):
        bits = np.full_like(stream.chunk_bits, 0xFFFF)
        _assert_both_engines_raise(_reencode(stream, chunk_bits=bits))

    def test_chunk_count_mismatch(self, stream):
        bad = _reencode(stream)
        bad.n_symbols += stream.chunk_size
        _assert_both_engines_raise(bad)

    def test_flipped_payload_byte_fails_checksum(self, stream):
        payload = stream.payload.copy()
        payload[len(payload) // 2] ^= 0x40
        bad = HuffmanStream(
            n_symbols=stream.n_symbols,
            alphabet_size=stream.alphabet_size,
            chunk_size=stream.chunk_size, lengths=stream.lengths,
            chunk_bits=stream.chunk_bits, payload=payload,
            crc32=stream.crc32)          # stale CRC kept on purpose
        _assert_both_engines_raise(bad)


class TestLutCacheByteBudget:
    def test_eviction_under_byte_pressure(self, monkeypatch, rng):
        clear_codebook_caches()
        # one full-width LUT is ~3 MiB; a tiny budget forces eviction on
        # every second insert while always keeping the newest entry
        monkeypatch.setitem(canonical._BYTE_BUDGETS, "lut", 4 << 20)
        try:
            for alph in (16, 17, 18, 19):
                # one dominant symbol -> 1-bit code -> up to 16 symbols
                # per probe row, so each LUT is ~3 MiB
                freqs = np.ones(alph, dtype=np.int64)
                freqs[0] = 1 << 20
                build_lut_tables(code_lengths(freqs, MAX_CODE_LEN))
            stats = codebook_cache_stats()
            assert stats["lut_evictions"] >= 2
            assert len(canonical._lut_cache) >= 1
            assert canonical._cache_bytes["lut"] <= 4 << 20
        finally:
            clear_codebook_caches()

    def test_default_budget_is_advertised(self):
        assert canonical._BYTE_BUDGETS["lut"] == LUT_CACHE_BYTES


class TestPipelineCrossEngine:
    """The two engines must reconstruct byte-identical fields through
    every transport the pipeline ships streams over."""

    @pytest.mark.parametrize("shape", [(300,), (64, 48), (40, 44, 36)])
    def test_shapes(self, monkeypatch, shape):
        from repro.registry import get_compressor
        data = smooth_field(shape, seed=3)
        comp = get_compressor("cuszi", eb=1e-3, mode="rel")
        blob = comp.compress(data)
        outs = {}
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_HUFFMAN_ENGINE", engine)
            outs[engine] = comp.decompress(blob)
        assert outs["lut"].tobytes() == outs["loop"].tobytes()

    def test_float64(self, monkeypatch):
        from repro.registry import get_compressor
        data = smooth_field((32, 32, 32), seed=5).astype(np.float64)
        comp = get_compressor("cuszi", eb=1e-4, mode="abs")
        blob = comp.compress(data)
        outs = {}
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_HUFFMAN_ENGINE", engine)
            outs[engine] = comp.decompress(blob)
        assert outs["lut"].tobytes() == outs["loop"].tobytes()

    def test_slab_stream(self, monkeypatch):
        from repro.streaming import compress_slabs, decompress_slabs
        data = smooth_field((32, 40, 36), seed=11)
        stream = compress_slabs(data, 8, codec="cuszi", eb=1e-3,
                                mode="rel")
        outs = {}
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_HUFFMAN_ENGINE", engine)
            outs[engine] = decompress_slabs(stream)
        assert outs["lut"].tobytes() == outs["loop"].tobytes()

    def test_tiled_out_of_core(self, monkeypatch, tmp_path):
        from repro.runtime.tiled import (tiled_compress_file,
                                         tiled_decompress_file)
        field = smooth_field((24, 20, 16), seed=13)
        raw = tmp_path / "field.raw"
        field.tofile(raw)
        stream = tmp_path / "field.slabs"
        tiled_compress_file(str(raw), field.shape, out_path=str(stream),
                            tile_planes=8, codec="cuszi", eb=1e-3,
                            mode="rel")
        outs = {}
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_HUFFMAN_ENGINE", engine)
            out = tmp_path / f"out_{engine}.raw"
            tiled_decompress_file(str(stream), str(out))
            outs[engine] = out.read_bytes()
        assert outs["lut"] == outs["loop"]

    def test_shm_parallel_matches_serial_loop(self, monkeypatch):
        # the pooled shm decompress (workers decode with the default
        # lut engine) must agree byte-for-byte with an in-process
        # loop-engine decode of the same archive
        from repro.runtime import (parallel_decompress_slabs,
                                   resolve_workers)
        from repro.streaming import compress_slabs, decompress_slabs
        data = smooth_field((16, 24, 20), seed=17)
        stream = compress_slabs(data, 4, codec="cuszi", eb=1e-3,
                                mode="rel")
        pooled = parallel_decompress_slabs(
            stream, workers=min(2, max(2, resolve_workers("auto"))))
        monkeypatch.setenv("REPRO_HUFFMAN_ENGINE", "loop")
        serial = decompress_slabs(stream)
        assert pooled.tobytes() == serial.tobytes()
