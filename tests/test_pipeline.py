"""Unit tests for the cuSZ-i end-to-end pipeline specifics."""

import numpy as np
import pytest

from conftest import assert_error_bounded, smooth_field
from repro.common.container import parse_container
from repro.common.errors import ConfigError
from repro.common.lossless_wrap import unwrap_lossless
from repro.core.pipeline import (CuSZi, DEFAULT_ANCHOR_STRIDE,
                                 DEFAULT_WINDOW, resolve_eb)


class TestResolveEb:
    def test_abs_passthrough(self):
        assert resolve_eb(np.array([0.0, 10.0]), 0.5, "abs") == 0.5

    def test_rel_scales_by_range(self):
        assert resolve_eb(np.array([0.0, 10.0]), 0.01, "rel") \
            == pytest.approx(0.1)

    def test_rel_constant_field(self):
        assert resolve_eb(np.full(4, 2.0), 0.01, "rel") == 0.01

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            resolve_eb(np.zeros(4), 0.1, "psnr")

    def test_bad_eb(self):
        with pytest.raises(ConfigError):
            resolve_eb(np.zeros(4), -1.0, "abs")


class TestGeometry:
    def test_paper_defaults(self):
        assert DEFAULT_ANCHOR_STRIDE == {1: 512, 2: 16, 3: 8}
        assert DEFAULT_WINDOW[3] == (9, 9, 33)

    def test_custom_stride_derives_window(self):
        c = CuSZi(anchor_stride=16)
        stride, window = c._geometry(3)
        assert stride == 16
        assert window == (17, 17, 65)

    def test_windows_disabled(self):
        stride, window = CuSZi(use_windows=False)._geometry(3)
        assert window is None


class TestPipeline:
    def test_stats_accounting(self):
        data = smooth_field(seed=40)
        c = CuSZi(eb=1e-3, mode="rel", lossless="gle")
        blob, stats = c.compress_detailed(data)
        assert stats.compressed_nbytes == len(blob)
        assert stats.original_nbytes == data.nbytes
        assert stats.ratio == pytest.approx(data.nbytes / len(blob))
        assert stats.bit_rate == pytest.approx(8 * len(blob) / data.size)
        assert set(stats.segment_nbytes) == {"huffman", "outliers",
                                             "anchors"}
        assert 0 <= stats.nonzero_code_fraction <= 1
        assert stats.tuning["alpha"] >= 1.0

    def test_header_records_tuning(self):
        data = smooth_field(seed=41)
        c = CuSZi(eb=1e-3, mode="rel")
        blob = c.compress(data)
        codec, meta, _ = parse_container(unwrap_lossless(blob))
        assert codec == "cuszi"
        spec = meta["spec"]
        assert spec["anchor_stride"] == 8
        assert sorted(spec["axis_order"]) == [0, 1, 2]
        assert spec["alpha"] >= 1.0

    def test_window_geometry_forces_wide_axis_last(self):
        # Fig. 2-5: the 33-window axis is interpolated last
        data = smooth_field(seed=42)
        c = CuSZi(eb=1e-3, mode="rel")
        blob = c.compress(data)
        _, meta, _ = parse_container(unwrap_lossless(blob))
        assert meta["spec"]["axis_order"][-1] == 2

    def test_decompress_needs_no_params(self):
        data = smooth_field(seed=43)
        rng = float(data.max() - data.min())
        blob = CuSZi(eb=1e-4, mode="rel", lossless="gle",
                     alpha=1.8).compress(data)
        out = CuSZi().decompress(blob)   # default-constructed decoder
        assert_error_bounded(data, out, 1e-4 * rng)

    def test_tune_off_still_bounded(self):
        data = smooth_field(seed=44)
        rng = float(data.max() - data.min())
        c = CuSZi(eb=1e-3, mode="rel", tune=False)
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-3 * rng)

    def test_pad_variant(self):
        data = smooth_field((30, 30, 30), seed=45)
        rng = float(data.max() - data.min())
        c = CuSZi(eb=1e-3, mode="rel", pad=True)
        out = c.decompress(c.compress(data))
        assert out.shape == data.shape
        assert_error_bounded(data, out, 1e-3 * rng)

    def test_4d_rejected(self):
        from repro.common.errors import ReproError
        with pytest.raises(ReproError):
            CuSZi().compress(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_alpha_override_recorded(self):
        data = smooth_field(seed=46)
        c = CuSZi(eb=1e-3, mode="rel", alpha=1.9)
        blob = c.compress(data)
        _, meta, _ = parse_container(unwrap_lossless(blob))
        assert meta["spec"]["alpha"] == pytest.approx(1.9)

    def test_gle_never_larger_than_none_plus_frame(self):
        data = smooth_field(seed=47)
        plain = CuSZi(eb=1e-2, mode="rel", lossless="none").compress(data)
        packed = CuSZi(eb=1e-2, mode="rel", lossless="gle").compress(data)
        assert len(packed) <= len(plain) + 16

    def test_anchor_segment_size(self):
        data = smooth_field((33, 33, 33), seed=48)
        c = CuSZi(eb=1e-3, mode="rel", lossless="none")
        _, stats = c.compress_detailed(data)
        assert stats.segment_nbytes["anchors"] == 5 * 5 * 5 * 4


class TestStatsDegenerateInputs:
    """Regression: ratio/bit_rate must not raise on degenerate sizes."""

    def test_empty_stats_do_not_divide_by_zero(self):
        from repro.core.pipeline import CompressionStats
        s = CompressionStats(n_elements=0, original_nbytes=0,
                             compressed_nbytes=0)
        assert s.ratio == 1.0
        assert s.bit_rate == 0.0

    def test_zero_compressed_bytes_gives_inf_ratio(self):
        from repro.core.pipeline import CompressionStats
        s = CompressionStats(n_elements=10, original_nbytes=40,
                             compressed_nbytes=0)
        assert s.ratio == float("inf")

    def test_one_element_field_roundtrip(self):
        c = CuSZi(eb=1e-3, mode="abs")
        data = np.array([3.25], dtype=np.float32)
        blob, stats = c.compress_detailed(data)
        assert np.isfinite(stats.ratio) and np.isfinite(stats.bit_rate)
        assert stats.nonzero_code_fraction == 0.0
        recon = c.decompress(blob)
        assert recon.shape == (1,)
        assert abs(float(recon[0]) - 3.25) <= 1e-3

    def test_one_element_2d_field_roundtrip(self):
        c = CuSZi(eb=1e-3, mode="abs", lossless="none")
        data = np.array([[7.5]], dtype=np.float32)
        recon = c.decompress(c.compress(data))
        assert recon.shape == (1, 1)
        assert abs(float(recon[0, 0]) - 7.5) <= 1e-3
