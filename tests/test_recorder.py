"""Unit tests for the flight recorder, quality auditor, sentinel,
doctor, and the ``repro stats`` / ``repro doctor`` CLI surface."""

import json
import time

import numpy as np
import pytest

from conftest import smooth_field
from repro.telemetry import caches, doctor, quality, recorder, sentinel
from repro.telemetry.recorder import RunRecord


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Recorder state must never leak between tests."""
    recorder.clear()
    recorder.enable()
    yield
    quality.disable()
    recorder.clear()
    recorder.enable()


def _record(**kw) -> RunRecord:
    base = dict(seq=1, kind="compress", ts=0.0, wall_s=0.01)
    base.update(kw)
    return RunRecord(**base)


class TestRecorderCore:
    def test_capture_builds_record(self):
        with recorder.capture("compress", codec="cuszi", eb=1e-3) as cap:
            with cap.stage("predict"):
                pass
            with cap.stage("predict"):     # re-entry accumulates
                pass
            cap.set(bytes_in=100, bytes_out=25)
            cap.count("events", 2)
        recs = recorder.records()
        assert len(recs) == 1
        rec = recs[0]
        assert rec.kind == "compress" and rec.codec == "cuszi"
        assert rec.status == "ok"
        assert rec.attrs["eb"] == 1e-3
        assert rec.stages["predict"] >= 0.0
        assert rec.counters == {"events": 2}
        assert rec.ratio == 4.0
        assert rec.memory["peak_rss_kb"] > 0

    def test_error_status_and_nesting(self):
        with pytest.raises(ValueError):
            with recorder.capture("outer"):
                with recorder.capture("inner"):
                    raise ValueError("boom")
        inner, outer = recorder.records()
        assert (inner.kind, inner.status) == ("inner", "error")
        assert (outer.kind, outer.status) == ("outer", "error")

    def test_disabled_appends_nothing(self):
        recorder.disable()
        cap = recorder.capture("compress")
        assert cap is recorder.capture("decompress")   # shared no-op
        with cap:
            with cap.stage("x"):
                pass
            cap.set(a=1).count("c")
        assert recorder.records() == []

    def test_disabled_overhead_is_negligible(self):
        recorder.disable()

        def loop(n):
            t0 = time.perf_counter()
            for _ in range(n):
                with recorder.capture("compress", codec="x") as cap:
                    cap.set(bytes_in=1)
            return time.perf_counter() - t0

        loop(1000)  # warm up
        # the disabled path is one flag check returning a shared no-op
        # capture; sub-microsecond per append (generous 10us CI bound)
        assert loop(5000) / 5000 < 10e-6

    def test_suppressed_blocks_records(self):
        with recorder.suppressed():
            with recorder.capture("compress"):
                pass
        assert recorder.records() == []
        with recorder.capture("compress"):      # suppression lifted
            pass
        assert len(recorder.records()) == 1

    def test_annotate_and_count_reach_current_capture(self):
        recorder.annotate(orphan=True)          # no capture: no-op
        recorder.count("orphan")
        with recorder.capture("compress"):
            recorder.annotate(lossless_plan="gle")
            recorder.count("runtime.serial_fallback.size_floor")
        rec = recorder.records()[-1]
        assert rec.attrs["lossless_plan"] == "gle"
        assert rec.counters["runtime.serial_fallback.size_floor"] == 1

    def test_ring_capacity_keeps_newest(self):
        old = recorder.set_capacity(4)
        try:
            for i in range(10):
                with recorder.capture("compress", i=i):
                    pass
            recs = recorder.records()
            assert len(recs) == 4
            assert [r.attrs["i"] for r in recs] == [6, 7, 8, 9]
            with pytest.raises(ValueError):
                recorder.set_capacity(0)
        finally:
            recorder.set_capacity(old)

    def test_ratio_is_direction_aware(self):
        comp = _record(kind="compress", attrs={"bytes_in": 80,
                                               "bytes_out": 20})
        dec = _record(kind="decompress", attrs={"bytes_in": 20,
                                                "bytes_out": 80})
        load = _record(kind="archive.load", attrs={"bytes_in": 20,
                                                   "bytes_out": 80})
        assert comp.ratio == dec.ratio == load.ratio == 4.0
        assert comp.raw_bytes == dec.raw_bytes == 80


class TestLedger:
    def test_write_read_round_trip(self, tmp_path):
        with recorder.capture("compress", codec="cuszi") as cap:
            cap.set(bytes_in=10, bytes_out=5)
        path = tmp_path / "ledger.jsonl"
        assert recorder.write_ledger(str(path)) == 1
        back = recorder.read_ledger(str(path))
        assert len(back) == 1
        assert back[0].to_dict() == recorder.records()[0].to_dict()

    def test_append_mode(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with recorder.capture("compress"):
            pass
        recorder.write_ledger(str(path))
        recorder.write_ledger(str(path), append=True)
        assert len(recorder.read_ledger(str(path))) == 2

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="not JSON"):
            recorder.from_jsonl("{broken\n")
        with pytest.raises(ValueError, match="expected an object"):
            recorder.from_jsonl("[1, 2]\n")


class TestAggregate:
    def test_percentiles_and_grouping(self):
        recs = [_record(seq=i, codec="cuszi", wall_s=w,
                        stages={"huffman": w / 2},
                        attrs={"bytes_in": 100, "bytes_out": 50,
                               "workers": 2})
                for i, w in enumerate([0.010, 0.020, 0.030, 0.040])]
        recs.append(_record(seq=99, kind="decompress", wall_s=0.05))
        agg = recorder.aggregate(recs)
        assert set(agg) == {"compress[cuszi]", "decompress"}
        entry = agg["compress[cuszi]"]
        assert entry["n"] == 4 and entry["errors"] == 0
        assert entry["wall_s"]["min"] == 0.010
        assert entry["wall_s"]["max"] == 0.040
        assert entry["wall_s"]["p50"] == pytest.approx(0.025)
        assert entry["stages"]["huffman"]["p50"] == pytest.approx(0.0125)
        assert entry["ratio"]["p50"] == 2.0
        assert entry["workers"] == 2

    def test_cache_hit_ratio(self):
        recs = [_record(caches={"c": {"hits": 3, "misses": 1}})]
        agg = recorder.aggregate(recs)
        assert agg["compress"]["cache_hit_ratio"] == 0.75


class TestPipelineIntegration:
    def test_compress_decompress_records_and_identical_bytes(self):
        from repro.registry import get_compressor
        data = smooth_field((16, 16, 16), seed=7)
        comp = get_compressor("cuszi", eb=1e-3, mode="abs")
        blob_on = comp.compress(data)
        recorder.disable()
        blob_off = comp.compress(data)
        recorder.enable()
        # the recorder must never perturb the archive bytes
        assert blob_on == blob_off
        out = comp.decompress(blob_on)
        assert out.shape == data.shape
        kinds = [r.kind for r in recorder.records()]
        assert kinds == ["compress", "decompress"]
        c, d = recorder.records()
        assert c.codec == d.codec == "cuszi"
        assert c.attrs["bytes_in"] == data.nbytes
        assert c.attrs["bytes_out"] == len(blob_on)
        assert d.attrs["bytes_in"] == len(blob_on)
        for stage in ("tune", "predict", "quantize", "huffman",
                      "container", "lossless"):
            assert stage in c.stages, f"missing compress stage {stage}"
        assert {"huffman", "predict", "container"} <= set(d.stages)
        assert c.attrs["shape"] == [16, 16, 16]
        assert c.attrs["eb"] == 1e-3

    def test_worker_merge_under_process_pool(self):
        from repro.runtime import map_compress
        fields = [smooth_field((12, 12, 12), seed=s) for s in (0, 1)]
        blobs = map_compress(fields, "cuszi", eb=1e-3, mode="abs",
                             workers=2)
        assert len(blobs) == 2
        runtime = [r for r in recorder.records()
                   if r.kind == "runtime.map_compress"]
        assert len(runtime) == 1
        w = runtime[0].worker
        assert w["tasks"] == 2
        assert w["peak_rss_kb"] > 0
        assert w["n_pids"] >= 1
        # workers compressed fresh data: their cache misses must have
        # travelled back through the aux channel
        assert w.get("cache_misses", 0) > 0

    def test_worker_aux_delta(self):
        base = recorder.worker_baseline()
        aux = recorder.worker_aux(base)
        assert aux["pid"] > 0 and aux["peak_rss_kb"] > 0
        assert set(aux["caches"]) == {"hits", "misses", "evictions"}

    def test_quality_audit_attaches_report(self):
        from repro.registry import get_compressor
        data = smooth_field((16, 16, 16), seed=3)
        quality.enable(every=1, fraction=0.5, block=8, seed=11)
        comp = get_compressor("cuszi", eb=1e-3, mode="abs")
        comp.compress(data)
        quality.disable()
        audited = [r for r in recorder.records()
                   if "quality" in r.attrs]
        # the verification decompress runs suppressed: exactly one
        # compress record, no phantom decompress record
        assert [r.kind for r in recorder.records()] == ["compress"]
        assert len(audited) == 1
        q = audited[0].attrs["quality"]
        assert q["eb_satisfied"]
        assert q["max_abs_error"] <= q["abs_eb"] * 1.001
        assert q["psnr_db"] > 0
        assert q["n_sampled"] > 0
        assert dict(q["error_hist"])["gt_1.0"] == 0
        assert q["level_entropy_bits"]

    def test_model_deviation_shape(self):
        from repro.registry import get_compressor
        data = smooth_field((16, 16, 16), seed=5)
        get_compressor("cuszi", eb=1e-3, mode="abs").compress(data)
        rec = recorder.records()[-1]
        dev = recorder.model_deviation(rec)
        assert dev is not None
        assert set(dev["stages"]) == {"predict", "huffman", "lossless"}
        for entry in dev["stages"].values():
            assert 0.0 <= entry["measured_share"] <= 1.0
        # runtime records cannot be modelled
        assert recorder.model_deviation(_record(kind="runtime.x")) is None


class TestQualityAudit:
    def test_histogram_is_seed_deterministic(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((20, 20)).astype(np.float32)
        noise = rng.uniform(-1e-3, 1e-3, data.shape).astype(np.float32)
        quality.enable(every=1, fraction=0.5, block=8, seed=4)
        r1 = quality.audit(data, data + noise, 1e-3)
        r2 = quality.audit(data, data + noise, 1e-3)
        quality.enable(every=1, fraction=0.5, block=8, seed=5)
        r3 = quality.audit(data, data + noise, 1e-3)
        assert r1.error_hist == r2.error_hist
        assert r1.seed == 4 and r3.seed == 5
        assert r1.eb_satisfied

    def test_eb_violation_detected(self):
        data = np.zeros((8, 8), dtype=np.float32)
        bad = data.copy()
        bad[3, 3] = 1.0                        # 1000x the bound
        quality.enable(every=1, fraction=1.0, block=4, seed=0)
        report = quality.audit(data, bad, 1e-3)
        assert not report.eb_satisfied
        assert report.eb_exceeded >= 1
        assert dict(report.error_hist)["gt_1.0"] >= 1

    def test_should_audit_every_n(self):
        quality.enable(every=3)
        fired = [quality.should_audit() for _ in range(6)]
        assert fired.count(True) == 2
        quality.disable()
        assert not quality.should_audit()


class TestSentinel:
    def _doc(self, compiled=0.010, warm=100.0, par=0.050, thr=None):
        doc = {"schema": 5,
               "ginterp": {"compiled_compress_s": compiled,
                           "reference_compress_s": 0.02},
               "lossless": {"warm_encode_us": warm},
               "runtime": {"parallel_s": par}}
        if thr is not None:
            doc["thresholds"] = thr
        return doc

    def test_thresholds_from_schema5_baseline(self):
        thr = sentinel.thresholds_for(self._doc(thr={"ginterp": 0.10}))
        assert thr["ginterp"] == 0.10
        assert thr["lossless"] == sentinel.DEFAULT_THRESHOLD
        # schema < 5 (no thresholds object): all defaults
        assert all(v == sentinel.DEFAULT_THRESHOLD
                   for v in sentinel.thresholds_for({}).values())

    def test_regression_gates_per_section(self):
        base = self._doc()
        cur = self._doc(compiled=0.014, warm=101.0, par=0.049)
        findings = sentinel.check(cur, base)
        by_key = {f.key: f for f in findings}
        assert by_key["compiled_compress_s"].regressed        # +40%
        assert not by_key["warm_encode_us"].regressed         # +1%
        assert not by_key["parallel_s"].regressed             # faster
        # info metrics never regress, whatever the delta
        assert not by_key["reference_compress_s"].gating

    def test_baseline_owns_the_thresholds(self):
        base = self._doc(thr={"ginterp": 0.10})
        # the PR's fresh emit tries to loosen its own gate: ignored
        cur = self._doc(compiled=0.012, thr={"ginterp": 10.0})
        findings = sentinel.check(cur, base)
        f = next(f for f in findings if f.key == "compiled_compress_s")
        assert f.threshold == 0.10 and f.regressed            # +20%

    def test_format_github_annotations(self):
        base, cur = self._doc(), self._doc(compiled=0.020)
        findings = sentinel.check(cur, base)
        lines = sentinel.format_findings(findings, github=True)
        assert lines[0].startswith("::warning::ginterp")
        plain = sentinel.format_findings(findings)
        assert "[REGRESSED]" in plain[0]


class TestDoctor:
    def test_healthy_ledger(self):
        recs = [_record(caches={"c": {"hits": 0, "misses": 2,
                                      "lookups": 2, "size_growth": 2}}),
                _record(seq=2, caches={"c": {"hits": 3, "misses": 0,
                                             "lookups": 3}})]
        diag = doctor.diagnose(recs)
        assert diag.healthy
        assert "healthy" in diag.format()

    def test_error_record_is_anomaly(self):
        diag = doctor.diagnose([_record(status="error")])
        assert not diag.healthy
        assert any(c.name == "run errors" for c in diag.anomalies)

    def test_warm_ratio_exempts_cold_fills(self):
        # record 2 misses 3 times but inserts 3 new entries: per-key
        # cold fills, not a broken cache
        recs = [_record(caches={"c": {"hits": 0, "misses": 1,
                                      "lookups": 1, "size_growth": 1}}),
                _record(seq=2, caches={"c": {"hits": 1, "misses": 3,
                                             "lookups": 4,
                                             "size_growth": 3}})]
        assert doctor.diagnose(recs).healthy
        # same counts with no insertions: genuine warm misses, FAIL
        recs[1].caches["c"]["size_growth"] = 0
        diag = doctor.diagnose(recs)
        assert not diag.healthy
        assert any("warm cache" in c.name for c in diag.anomalies)

    def test_spawn_failure_gates_size_floor_does_not(self):
        floor = _record(counters={
            "runtime.serial_fallback.size_floor": 3})
        assert doctor.diagnose([floor]).healthy
        spawn = _record(seq=2, counters={
            "runtime.serial_fallback.spawn_failure": 1})
        diag = doctor.diagnose([floor, spawn])
        assert not diag.healthy
        assert any("spawn" in c.name for c in diag.anomalies)

    def test_quality_violation_gates(self):
        ok = _record(attrs={"quality": {"eb_exceeded": 0}})
        assert doctor.diagnose([ok]).healthy
        bad = _record(seq=2, attrs={"quality": {"eb_exceeded": 4}})
        assert not doctor.diagnose([ok, bad]).healthy

    def test_environment_report(self):
        env = doctor.environment_report()
        assert env["python"] and env["numpy"] != "missing"
        assert env["cpu_count"] >= 1


class TestStatsDoctorCLI:
    @pytest.fixture
    def mixed_ledger(self, tmp_path):
        """A mixed serial+parallel workload's ledger on disk."""
        from repro.registry import get_compressor
        from repro.runtime import map_compress
        data = smooth_field((16, 16, 16), seed=9)
        comp = get_compressor("cuszi", eb=1e-3, mode="abs")
        blob = comp.compress(data)
        comp.decompress(blob)
        comp.compress(data)                     # warm the caches
        quality.enable(every=1, fraction=0.5, block=8, seed=2)
        comp.compress(data)
        quality.disable()
        map_compress([data], "cuszi", eb=1e-3, mode="abs", workers=2)
        path = tmp_path / "ledger.jsonl"
        recorder.write_ledger(str(path))
        return path

    def test_stats_command(self, mixed_ledger, capsys):
        from repro.cli import main
        assert main(["stats", str(mixed_ledger)]) == 0
        out = capsys.readouterr().out
        assert "compress[cuszi]" in out
        assert "runtime.map_compress" in out
        assert "p95" in out and "perf model" in out

    def test_stats_json(self, mixed_ledger, capsys):
        from repro.cli import main
        assert main(["stats", str(mixed_ledger), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        agg = doc["groups"]
        assert "compress[cuszi]" in agg
        assert agg["compress[cuszi]"]["wall_s"]["n"] >= 3
        # the error-budget section rides along in the same document
        names = {s["slo"]["name"] for s in doc["slo"]}
        assert "run_errors" in names and "compress_wall_p99" in names
        assert all(not s["exhausted"] for s in doc["slo"])

    def test_stats_json_check_embeds_sentinel(self, mixed_ledger,
                                              capsys, tmp_path):
        from repro.cli import main
        bench = tmp_path / "nope.json"      # unreadable -> no-current
        assert main(["stats", str(mixed_ledger), "--json", "--check",
                     "--bench", str(bench)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sentinel"]["status"] == "no-current"
        assert doc["sentinel"]["findings"] == []

    def test_stats_missing_ledger(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_doctor_command(self, mixed_ledger, capsys):
        from repro.cli import main
        assert main(["doctor", str(mixed_ledger), "--check"]) == 0
        out = capsys.readouterr().out
        assert "diagnosis: healthy" in out
        assert "quality audits" in out
        assert "caches (this process):" in out

    def test_doctor_check_fails_on_anomaly(self, tmp_path, capsys):
        from repro.cli import main
        bad = _record(status="error")
        path = tmp_path / "bad.jsonl"
        recorder.write_ledger(str(path), [bad])
        assert main(["doctor", str(path)]) == 0         # report only
        assert main(["doctor", str(path), "--check"]) == 1
        assert "anomaly" in capsys.readouterr().out


class TestCacheRegistryDiff:
    def test_diff_reports_size_growth(self):
        before = {"c": {"hits": 1, "misses": 1, "evictions": 0,
                        "size": 1, "limit": 8, "size_bytes": 10,
                        "lookups": 2, "hit_ratio": 0.5}}
        after = {"c": {"hits": 1, "misses": 4, "evictions": 1,
                       "size": 3, "limit": 8, "size_bytes": 30,
                       "lookups": 5, "hit_ratio": 0.2}}
        delta = caches.diff(before, after)["c"]
        assert delta["misses"] == 3
        assert delta["size_growth"] == 2
        assert delta["evictions"] == 1


class TestTraceContext:
    def test_root_capture_mints_trace(self):
        with recorder.capture("compress", codec="cuszi"):
            pass
        rec = recorder.records()[0]
        assert rec.trace_id and rec.run_id
        assert rec.parent_run_id is None

    def test_nested_capture_inherits_trace(self):
        with recorder.capture("outer") as outer:
            with recorder.capture("inner"):
                pass
        inner, outer_rec = recorder.records()
        assert inner.trace_id == outer_rec.trace_id
        assert inner.parent_run_id == outer_rec.run_id
        assert inner.run_id != outer_rec.run_id

    def test_trace_scope_adopts_foreign_context(self):
        ctx = {"trace_id": "cafe" * 4, "run_id": "beef" * 4}
        with recorder.trace_scope(ctx):
            with recorder.capture("compress"):
                pass
        rec = recorder.records()[0]
        assert rec.trace_id == "cafe" * 4
        assert rec.parent_run_id == "beef" * 4
        # the scope must not leak past its context manager
        with recorder.capture("compress"):
            pass
        assert recorder.records()[1].trace_id != "cafe" * 4

    def test_propagation_context_reflects_innermost(self):
        assert recorder.propagation_context() is None
        with recorder.capture("outer"):
            outer_ctx = recorder.propagation_context()
            with recorder.capture("inner"):
                inner_ctx = recorder.propagation_context()
        assert outer_ctx["trace_id"] == inner_ctx["trace_id"]
        assert outer_ctx["run_id"] != inner_ctx["run_id"]

    def test_ledger_round_trips_trace_ids(self, tmp_path):
        with recorder.capture("compress"):
            pass
        path = tmp_path / "t.jsonl"
        recorder.write_ledger(str(path))
        back = recorder.read_ledger(str(path))[0]
        orig = recorder.records()[0]
        assert (back.trace_id, back.run_id, back.parent_run_id) == \
            (orig.trace_id, orig.run_id, orig.parent_run_id)

    def test_trace_propagates_across_pool_workers(self):
        from repro.runtime import map_compress
        fields = [smooth_field((12, 12, 12), seed=s) for s in (3, 4)]
        map_compress(fields, "cuszi", eb=1e-3, mode="abs", workers=2)
        recs = recorder.records()
        parents = [r for r in recs if r.kind == "runtime.map_compress"]
        assert len(parents) == 1
        parent = parents[0]
        shipped = [r for r in recs if "worker_pid" in r.attrs]
        assert shipped, "worker records did not ship back"
        for rec in shipped:
            assert rec.trace_id == parent.trace_id
            assert rec.parent_run_id == parent.run_id
            assert rec.attrs["worker_pid"] != parent.memory.get("pid")


class TestLedgerRotation:
    def _ledger(self, path, n, start=0):
        recorder.write_ledger(str(path),
                              [_record(seq=start + i) for i in range(n)],
                              append=True)

    def test_rotate_shifts_segments(self, tmp_path):
        path = tmp_path / "L.jsonl"
        self._ledger(path, 2)
        recorder.rotate_ledger(str(path))
        assert not path.exists()
        assert (tmp_path / "L.jsonl.1").exists()
        self._ledger(path, 1, start=10)
        recorder.rotate_ledger(str(path))
        assert (tmp_path / "L.jsonl.2").exists()
        # oldest-first read across segments plus live file
        self._ledger(path, 1, start=20)
        recs = recorder.read_ledger(str(path), include_rotated=True)
        assert [r.seq for r in recs] == [0, 1, 10, 20]

    def test_rotate_drops_beyond_keep(self, tmp_path):
        path = tmp_path / "L.jsonl"
        for round_ in range(6):
            self._ledger(path, 1, start=round_)
            recorder.rotate_ledger(str(path), keep=2)
        assert (tmp_path / "L.jsonl.1").exists()
        assert (tmp_path / "L.jsonl.2").exists()
        assert not (tmp_path / "L.jsonl.3").exists()

    def test_write_ledger_rotates_at_max_bytes(self, tmp_path):
        path = tmp_path / "L.jsonl"
        self._ledger(path, 1)
        size = path.stat().st_size
        recorder.write_ledger(str(path), [_record(seq=5)], append=True,
                              max_bytes=size)      # full -> rotate first
        assert (tmp_path / "L.jsonl.1").exists()
        live = recorder.read_ledger(str(path))
        assert [r.seq for r in live] == [5]
        both = recorder.read_ledger(str(path), include_rotated=True)
        assert [r.seq for r in both] == [0, 5]

    def test_read_rotated_survives_missing_live_file(self, tmp_path):
        path = tmp_path / "L.jsonl"
        self._ledger(path, 1)
        recorder.rotate_ledger(str(path))
        recs = recorder.read_ledger(str(path), include_rotated=True)
        assert len(recs) == 1

    def test_rotate_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ValueError):
            recorder.rotate_ledger(str(tmp_path / "x"), keep=0)


class TestSubscribers:
    def test_subscriber_sees_each_record(self):
        got = []
        token = recorder.subscribe(got.append)
        try:
            with recorder.capture("compress"):
                pass
            with recorder.capture("decompress"):
                pass
        finally:
            recorder.unsubscribe(token)
        assert [r.kind for r in got] == ["compress", "decompress"]
        with recorder.capture("compress"):
            pass
        assert len(got) == 2                      # unsubscribed

    def test_broken_subscriber_does_not_break_runs(self):
        def boom(rec):
            raise RuntimeError("subscriber bug")
        token = recorder.subscribe(boom)
        try:
            with recorder.capture("compress"):
                pass
        finally:
            recorder.unsubscribe(token)
        assert len(recorder.records()) == 1
