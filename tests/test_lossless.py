"""Unit + property tests for the lossless codecs (GLE, bitshuffle, dedup,
zlib wrapper, registry)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CodecError, ConfigError
from repro.lossless import (GLECodec, ZlibCodec, bitshuffle, bitunshuffle,
                            get_lossless, gle_compress, gle_decompress)
from repro.lossless.dedup import (DEDUP_BLOCK, dedup_zero_blocks,
                                  restore_zero_blocks)


class TestGLE:
    CASES = [
        b"",
        b"x",
        b"abcd" * 3,
        b"\x00" * 100000,
        bytes(range(256)) * 100,
        b"\x00" * 1000 + b"\xff" * 1000 + b"\x00" * 1000,
        (b"\x01\x02\x03\x04" * 300 + b"\x00" * 4000) * 10,
    ]

    @pytest.mark.parametrize("idx", range(len(CASES)))
    def test_roundtrip(self, idx):
        data = self.CASES[idx]
        assert gle_decompress(gle_compress(data)) == data

    def test_random_data_near_passthrough(self, rng):
        data = bytes(rng.integers(0, 256, 50000, dtype=np.uint8))
        blob = gle_compress(data)
        assert len(blob) <= len(data) + 17  # frame header only
        assert gle_decompress(blob) == data

    def test_zero_runs_collapse(self):
        blob = gle_compress(b"\x00" * 1_000_000)
        assert len(blob) < 100

    def test_repeated_word_runs_collapse(self):
        data = b"\xde\xad\xbe\xef" * 100000
        blob = gle_compress(data)
        assert len(blob) < 100
        assert gle_decompress(blob) == data

    def test_unaligned_tail(self):
        data = b"\x00" * 10001  # not a multiple of 4
        assert gle_decompress(gle_compress(data)) == data

    def test_small_byte_values_bitpack(self):
        # stage 2: bytes all < 16 pack at 4 bits
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(0, 16, 65536, dtype=np.uint8))
        blob = gle_compress(data)
        assert len(blob) < len(data) * 0.6
        assert gle_decompress(blob) == data

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            gle_decompress(b"XXXX" + b"\x00" * 20)

    def test_truncated(self):
        with pytest.raises(CodecError):
            gle_decompress(b"GLE")

    def test_crc_mismatch_rejected(self):
        from repro.common.errors import CorruptStreamError
        blob = bytearray(gle_compress(b"payload" * 400))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            gle_decompress(bytes(blob))

    def test_corruption_error_type(self):
        # malformed frames raise the CorruptStreamError subclass, so
        # callers can distinguish damage from configuration mistakes
        from repro.common.errors import CorruptStreamError
        with pytest.raises(CorruptStreamError):
            gle_decompress(b"XXXX" + b"\x00" * 20)
        with pytest.raises(CorruptStreamError):
            gle_decompress(b"GLE")

    def test_codec_object(self):
        c = GLECodec()
        assert c.decompress_bytes(c.compress_bytes(b"hi" * 500)) \
            == b"hi" * 500

    @given(st.binary(max_size=5000))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, data):
        assert gle_decompress(gle_compress(data)) == data

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 400)),
                    max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_runny_data_property(self, runs):
        data = b"".join(bytes([v]) * n for v, n in runs)
        assert gle_decompress(gle_compress(data)) == data


class TestBitshuffle:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32,
                                       np.uint64])
    def test_roundtrip(self, dtype, rng):
        info = np.iinfo(dtype)
        vals = rng.integers(0, info.max, 1000, dtype=dtype, endpoint=True)
        stream = bitshuffle(vals)
        back = bitunshuffle(stream, dtype, vals.size)
        np.testing.assert_array_equal(back, vals)

    def test_zero_codes_give_zero_planes(self):
        vals = np.zeros(256, dtype=np.uint16)
        vals[0] = 3
        stream = bitshuffle(vals)
        # only the lowest 2 bit planes can contain data
        assert not stream[: (16 - 2) * 256 // 8].any()

    def test_empty(self):
        assert bitshuffle(np.array([], np.uint16)).size == 0
        assert bitunshuffle(np.array([], np.uint8), np.uint16, 0).size == 0

    def test_rejects_signed(self):
        with pytest.raises(CodecError):
            bitshuffle(np.array([1, -1], np.int32))

    def test_short_stream_rejected(self):
        with pytest.raises(CodecError):
            bitunshuffle(np.zeros(1, np.uint8), np.uint16, 100)


class TestDedup:
    def test_roundtrip_mixed(self, rng):
        data = bytearray(10000)
        data[5000:5100] = rng.integers(1, 256, 100, dtype=np.uint8).tobytes()
        data = bytes(data)
        assert restore_zero_blocks(dedup_zero_blocks(data)) == data

    def test_all_zero_shrinks(self):
        data = b"\x00" * (DEDUP_BLOCK * 1000)
        blob = dedup_zero_blocks(data)
        assert len(blob) < DEDUP_BLOCK * 1000 / 100
        assert restore_zero_blocks(blob) == data

    def test_empty(self):
        assert restore_zero_blocks(dedup_zero_blocks(b"")) == b""

    def test_unaligned(self):
        data = b"\x01" + b"\x00" * 100
        assert restore_zero_blocks(dedup_zero_blocks(data)) == data

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            restore_zero_blocks(b"\x00\x01")

    @given(st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert restore_zero_blocks(dedup_zero_blocks(data)) == data


class TestZlibAndRegistry:
    def test_zlib_roundtrip(self):
        c = ZlibCodec()
        data = b"spam" * 10000
        blob = c.compress_bytes(data)
        assert len(blob) < len(data) / 10
        assert c.decompress_bytes(blob) == data

    def test_zlib_bad_level(self):
        with pytest.raises(CodecError):
            ZlibCodec(level=0)

    def test_zlib_garbage_rejected(self):
        with pytest.raises(CodecError):
            ZlibCodec().decompress_bytes(b"not zlib data")

    def test_registry_names(self):
        assert get_lossless("gle").name == "gle"
        assert get_lossless("zlib").name == "zlib"
        assert get_lossless("none").name == "none"

    def test_registry_unknown(self):
        with pytest.raises(ConfigError):
            get_lossless("zstd")

    def test_none_is_identity(self):
        c = get_lossless("none")
        assert c.decompress_bytes(c.compress_bytes(b"abc")) == b"abc"
