"""Unit + property tests for the chunked Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.huffman import (MAX_CODE_LEN, HuffmanStream, build_decode_table,
                           canonical_codebook, code_lengths, histogram,
                           huffman_decode, huffman_encode, topk_coverage)


class TestHistogram:
    def test_counts(self):
        h = histogram(np.array([1, 1, 3], np.uint32), 5)
        np.testing.assert_array_equal(h, [0, 2, 0, 1, 0])

    def test_empty(self):
        assert histogram(np.array([], np.uint32), 4).sum() == 0

    def test_out_of_alphabet_rejected(self):
        with pytest.raises(CodecError):
            histogram(np.array([7], np.uint32), 4)

    def test_topk_coverage_concentrated(self):
        counts = np.zeros(1024)
        counts[512] = 990
        counts[513] = 10
        assert topk_coverage(counts, 512, 3) == 1.0
        assert topk_coverage(counts, 512, 1) == pytest.approx(0.99)

    def test_topk_coverage_empty(self):
        assert topk_coverage(np.zeros(8), 4, 3) == 1.0

    def test_topk_bad_k(self):
        with pytest.raises(CodecError):
            topk_coverage(np.ones(8), 4, 0)


class TestCodeLengths:
    def test_single_symbol_gets_one_bit(self):
        lengths = code_lengths(np.array([0, 5, 0]), 16)
        assert lengths[1] == 1 and lengths[0] == 0 and lengths[2] == 0

    def test_uniform_alphabet(self):
        lengths = code_lengths(np.full(8, 10), 16)
        np.testing.assert_array_equal(lengths, np.full(8, 3))

    def test_optimal_for_dyadic(self):
        # frequencies 8,4,2,1,1 -> lengths 1,2,3,4,4
        lengths = code_lengths(np.array([8, 4, 2, 1, 1]), 16)
        np.testing.assert_array_equal(sorted(lengths), [1, 2, 3, 4, 4])

    def test_kraft_inequality(self, rng):
        freqs = rng.integers(0, 1000, 300)
        lengths = code_lengths(freqs, MAX_CODE_LEN)
        used = lengths[lengths > 0]
        assert np.sum(2.0 ** -used) <= 1.0 + 1e-12

    def test_length_limit_enforced(self):
        # fibonacci-ish frequencies force deep optimal trees
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                          377, 610, 987, 1597, 2584, 4181, 6765, 10946,
                          17711, 28657, 46368])
        lengths = code_lengths(freqs, 8)
        assert lengths.max() <= 8
        used = lengths[lengths > 0]
        assert np.sum(2.0 ** -used) <= 1.0 + 1e-12

    def test_too_many_symbols_rejected(self):
        with pytest.raises(CodecError):
            code_lengths(np.ones(32), 4)

    def test_negative_freq_rejected(self):
        with pytest.raises(CodecError):
            code_lengths(np.array([-1, 2]), 8)


class TestCanonical:
    def test_prefix_free(self):
        lengths = code_lengths(np.array([50, 30, 10, 5, 3, 2]), 16)
        codes = canonical_codebook(lengths)
        used = np.flatnonzero(lengths)
        words = [format(codes[s], f"0{lengths[s]}b") for s in used]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_decode_table_consistency(self, rng):
        freqs = rng.integers(0, 100, 64)
        lengths = code_lengths(freqs, MAX_CODE_LEN)
        codes = canonical_codebook(lengths)
        sym_t, len_t = build_decode_table(lengths)
        for s in np.flatnonzero(lengths):
            window = int(codes[s]) << (MAX_CODE_LEN - int(lengths[s]))
            assert sym_t[window] == s
            assert len_t[window] == lengths[s]

    def test_invalid_kraft_rejected(self):
        with pytest.raises(CodecError):
            canonical_codebook(np.array([1, 1, 1]))  # three 1-bit codes

    def test_over_long_rejected(self):
        with pytest.raises(CodecError):
            canonical_codebook(np.array([MAX_CODE_LEN + 1]))

    def test_empty_table(self):
        sym_t, len_t = build_decode_table(np.zeros(4, np.int64))
        assert (len_t == 0).all()


class TestCodec:
    def test_roundtrip_concentrated(self, rng):
        codes = (512 + np.clip(rng.normal(0, 1.5, 100000), -400, 400)
                 .round()).astype(np.uint32)
        stream = huffman_encode(codes, 1024)
        np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_roundtrip_uniform(self, rng):
        codes = rng.integers(0, 1024, 30000).astype(np.uint32)
        stream = huffman_encode(codes, 1024)
        np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_serialization_roundtrip(self, rng):
        codes = rng.integers(0, 100, 5000).astype(np.uint32)
        stream = huffman_encode(codes, 128)
        back = HuffmanStream.from_bytes(stream.to_bytes())
        np.testing.assert_array_equal(huffman_decode(back), codes)

    def test_empty(self):
        stream = huffman_encode(np.array([], np.uint32), 16)
        assert huffman_decode(stream).size == 0

    def test_single_element(self):
        codes = np.array([7], np.uint32)
        stream = huffman_encode(codes, 16)
        np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_single_distinct_symbol(self):
        codes = np.full(9999, 3, np.uint32)
        stream = huffman_encode(codes, 16)
        # 1 bit per element
        assert stream.payload.size <= 9999 // 8 + stream.chunk_bits.size
        np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_chunk_boundary_sizes(self, rng):
        for n in (2047, 2048, 2049, 4096):
            codes = rng.integers(0, 50, n).astype(np.uint32)
            stream = huffman_encode(codes, 64, chunk_size=2048)
            np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_tiny_chunks(self, rng):
        codes = rng.integers(0, 8, 100).astype(np.uint32)
        stream = huffman_encode(codes, 8, chunk_size=3)
        np.testing.assert_array_equal(huffman_decode(stream), codes)

    def test_bad_chunk_size(self):
        with pytest.raises(CodecError):
            huffman_encode(np.zeros(4, np.uint32), 8, chunk_size=0)

    def test_corrupt_payload_detected(self, rng):
        codes = rng.integers(0, 64, 5000).astype(np.uint32)
        stream = huffman_encode(codes, 64)
        payload = stream.payload.copy()
        payload[: payload.size // 2] ^= 0xFF
        corrupt = HuffmanStream(stream.n_symbols, stream.alphabet_size,
                                stream.chunk_size, stream.lengths,
                                stream.chunk_bits, payload)
        with pytest.raises(CodecError):
            huffman_decode(corrupt)

    def test_compresses_skewed_data(self, rng):
        codes = np.where(rng.random(50000) < 0.95, 512,
                         rng.integers(0, 1024, 50000)).astype(np.uint32)
        stream = huffman_encode(codes, 1024)
        bpe = stream.nbytes * 8 / codes.size
        assert bpe < 2.0  # entropy ~0.65 bits

    @given(st.lists(st.integers(0, 255), max_size=300),
           st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values, chunk):
        codes = np.array(values, dtype=np.uint32)
        stream = huffman_encode(codes, 256, chunk_size=chunk)
        back = huffman_decode(HuffmanStream.from_bytes(stream.to_bytes()))
        np.testing.assert_array_equal(back, codes)
