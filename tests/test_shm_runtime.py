"""Zero-copy shm transport: arenas, byte-identity, crash recovery."""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.runtime import shm
from repro.runtime import pool
from repro.runtime.pool import (map_compress, map_decompress,
                                parallel_compress_slabs,
                                parallel_decompress_slabs)
from repro.streaming import compress_slabs, decompress_slabs

from conftest import smooth_field


def _shm_leftovers() -> list[str]:
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(shm.NAME_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def _clean_counters():
    pool.reset_serial_fallbacks()
    pool.reset_transport_stats()
    yield


class TestArena:
    def test_create_write_view_roundtrip(self):
        arena = shm.Arena.create(1 << 12)
        try:
            off = arena.write(b"hello arena")
            assert off == shm.HEADER_BYTES
            assert bytes(arena.view(off, 11)) == b"hello arena"
        finally:
            arena.destroy()

    def test_offsets_are_aligned(self):
        arena = shm.Arena.create(1 << 12)
        try:
            offs = [arena.write(b"x" * n) for n in (1, 100, 65)]
            assert all(o % shm.ALIGN == 0 for o in offs)
            assert offs == sorted(set(offs))
        finally:
            arena.destroy()

    def test_reserve_full_returns_none_and_reset_rewinds(self):
        arena = shm.Arena.create(256)
        try:
            assert arena.reserve(arena.data_bytes) is not None
            assert arena.reserve(1) is None
            arena.reset()
            assert arena.cursor() == shm.HEADER_BYTES
            assert arena.reserve(64) is not None
        finally:
            arena.destroy()

    def test_attach_sees_owner_writes(self):
        arena = shm.Arena.create(1 << 12)
        try:
            off = arena.write(b"cross-process bytes")
            other = shm.Arena.attach(arena.name)
            assert bytes(other.view(off, 19)) == b"cross-process bytes"
            assert not other.owner
            other.close()
        finally:
            arena.destroy()

    def test_destroy_unlinks_and_untracks(self):
        arena = shm.Arena.create(1 << 12)
        name = arena.name
        assert name in shm.live_arena_names()
        arena.destroy()
        assert name not in shm.live_arena_names()
        assert all(name not in n for n in _shm_leftovers())


class TestByteIdentity:
    @pytest.mark.parametrize("shape,planes", [
        ((300,), 64),          # 1D
        ((64, 48), 9),         # 2D, odd remainder (64 = 7*9 + 1)
        ((40, 44, 36), 8),     # 3D, even split
        ((40, 44, 36), 7),     # 3D, odd remainder (40 = 5*7 + 5)
    ])
    def test_slabs_match_serial(self, shape, planes):
        field = smooth_field(shape)
        kwargs = dict(codec="cuszi", eb=1e-3, mode="abs")
        serial = compress_slabs(field, planes, **kwargs)
        pooled = parallel_compress_slabs(
            field, planes, workers=2, min_parallel_bytes=0,
            transport="shm", **kwargs)
        assert pooled == serial
        out = parallel_decompress_slabs(serial, workers=2,
                                        min_parallel_bytes=0,
                                        transport="shm")
        ref = decompress_slabs(serial)
        assert out.dtype == ref.dtype and out.shape == ref.shape
        assert np.array_equal(out, ref)

    def test_rel_mode_matches_serial(self, field3d):
        kwargs = dict(codec="cuszi", eb=1e-3, mode="rel")
        serial = compress_slabs(field3d, 8, **kwargs)
        pooled = parallel_compress_slabs(
            field3d, 8, workers=2, min_parallel_bytes=0,
            transport="shm", **kwargs)
        assert pooled == serial

    def test_mixed_dtype_map_batch(self, field3d):
        fields = [field3d,
                  field3d.astype(np.float64) * 2.0,
                  smooth_field((64, 48)),
                  smooth_field((300,)).astype(np.float64)]
        serial = map_compress(fields, "cuszi", eb=1e-3, mode="abs")
        pooled = map_compress(fields, "cuszi", eb=1e-3, mode="abs",
                              workers=2, transport="shm")
        assert pooled == serial
        back = map_decompress(pooled, workers=2, transport="shm")
        for orig, arr, ref in zip(fields, back, map_decompress(serial)):
            assert arr.dtype == orig.dtype
            assert np.array_equal(arr, ref)

    def test_two_threads_share_the_daemon_pool(self):
        fields = {"a": smooth_field((40, 44, 36), seed=5),
                  "b": smooth_field((40, 44, 36), seed=6)}
        expect = {k: compress_slabs(v, 8, eb=1e-3)
                  for k, v in fields.items()}
        results: dict[str, list] = {k: [] for k in fields}
        errors: list[Exception] = []

        def run(key):
            try:
                for _ in range(3):
                    results[key].append(parallel_compress_slabs(
                        fields[key], 8, workers=2, min_parallel_bytes=0,
                        transport="shm", eb=1e-3))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(k,))
                   for k in fields]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for key, streams in results.items():
            assert all(s == expect[key] for s in streams)


class TestTransportAccounting:
    def test_shm_moves_bytes_without_pickling(self, field3d):
        pool.reset_transport_stats()
        parallel_compress_slabs(field3d, 8, workers=2,
                                min_parallel_bytes=0, transport="shm",
                                eb=1e-3)
        stats = pool.transport_stats()
        assert stats["requests"] == 1
        assert stats["shm_bytes"] >= field3d.nbytes
        assert stats["pickled_bytes"] == 0
        assert stats["copies_avoided"] >= 1

    def test_pickle_transport_accounts_pickled_bytes(self, field3d):
        pool.reset_transport_stats()
        stream = parallel_compress_slabs(
            field3d, 8, workers=2, min_parallel_bytes=0,
            transport="pickle", eb=1e-3)
        stats = pool.transport_stats()
        assert stats["shm_bytes"] == 0
        assert stats["pickled_bytes"] >= field3d.nbytes + len(stream)

    def test_size_floor_records_transport_and_floor(self, field3d):
        # no min_parallel_bytes override: the 254 KiB field sits under
        # the shm encode floor, so the pooled request degrades to serial
        stream = parallel_compress_slabs(field3d, 8, workers=2,
                                         transport="shm", eb=1e-3)
        assert stream == compress_slabs(field3d, 8, eb=1e-3)
        assert pool.serial_fallbacks()["size_floor"] == 1
        from repro.telemetry import recorder
        rec = [r for r in recorder.records()
               if r.kind == "runtime.compress_slabs"][-1]
        assert rec.attrs["serial_fallback"] == "size_floor"
        assert rec.attrs["serial_fallback_transport"] == "shm"
        assert rec.attrs["serial_fallback_floor"] \
            == pool.SHM_MIN_ENCODE_BYTES

    def test_shm_floors_sit_below_pickle_floors(self):
        assert pool.SHM_MIN_ENCODE_BYTES < pool.PARALLEL_MIN_ENCODE_BYTES
        assert pool.SHM_MIN_DECODE_BYTES < pool.PARALLEL_MIN_DECODE_BYTES
        assert pool.transport_kind("pickle") == "pickle"
        assert pool.transport_kind("shm") == "shm"


class TestWarmWorkerCaches:
    def test_worker_cache_stats_reach_the_registry(self, field3d):
        from repro.telemetry import caches
        for _ in range(2):
            parallel_compress_slabs(field3d, 8, workers=2,
                                    min_parallel_bytes=0,
                                    transport="shm", eb=1e-3)
        snap = caches.snapshot()
        assert "runtime.workers" in snap
        stats = snap["runtime.workers"]
        # 4 same-geometry slabs per worker per request: the workers'
        # plan/codebook caches must have registered warm hits, and the
        # daemon pool reports its live worker count as its size
        assert stats["hits"] > 0
        assert stats["size"] >= 1
        assert stats["limit"] >= 2


class TestCrashRecovery:
    def test_killed_worker_degrades_serial_and_unlinks(self, field3d,
                                                       monkeypatch):
        kwargs = dict(codec="cuszi", eb=1e-3, mode="abs")
        # warm a daemon pool, then SIGKILL one of its workers
        parallel_compress_slabs(field3d, 8, workers=2,
                                min_parallel_bytes=0, transport="shm",
                                **kwargs)
        shm_pool = pool._get_shm_pool(2)
        doomed_arenas = [shm_pool._arena_in.name,
                         shm_pool._arena_out.name]
        os.kill(shm_pool.worker_pids()[0], signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while shm_pool.alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not shm_pool.alive()

        # pin the dead pool so the request hits it mid-flight (between
        # requests _get_shm_pool would transparently rebuild instead)
        with monkeypatch.context() as m:
            m.setattr(pool, "_get_shm_pool", lambda w: shm_pool)
            stream = parallel_compress_slabs(field3d, 8, workers=2,
                                             min_parallel_bytes=0,
                                             transport="shm", **kwargs)
        assert stream == compress_slabs(field3d, 8, **kwargs)
        assert pool.serial_fallbacks()["worker_crash"] == 1
        # the crashed pool's arenas are gone from /dev/shm ...
        leftovers = _shm_leftovers()
        for name in doomed_arenas:
            assert name.lstrip("/") not in leftovers
        assert not any(n in shm.live_arena_names()
                       for n in doomed_arenas)

        # ... and the next pooled request transparently rebuilds daemons
        again = parallel_compress_slabs(field3d, 8, workers=2,
                                        min_parallel_bytes=0,
                                        transport="shm", **kwargs)
        assert again == stream
        assert pool.serial_fallbacks()["worker_crash"] == 1

    def test_shutdown_pools_leaves_no_segments(self, field3d):
        parallel_compress_slabs(field3d, 8, workers=2,
                                min_parallel_bytes=0, transport="shm",
                                eb=1e-3)
        pool.shutdown_pools()
        assert shm.live_arena_names() == []
        assert _shm_leftovers() == []
