"""Cross-codec contract tests: every error-bounded compressor must satisfy
the same roundtrip, bound, dtype and robustness requirements."""

import numpy as np
import pytest

from conftest import (EB_SLACK, assert_error_bounded, rough_field,
                      smooth_field, structured_field)
from repro.common.errors import CodecError, ReproError
from repro.registry import get_compressor

EB_CODECS = ["cusz", "cuszp", "cuszx", "fzgpu", "cuszi", "sz3", "qoz"]


@pytest.mark.parametrize("codec", EB_CODECS)
class TestContract:
    def test_roundtrip_3d_smooth(self, codec):
        data = smooth_field(seed=11)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-3, mode="rel")
        out = c.decompress(c.compress(data))
        assert out.shape == data.shape
        assert out.dtype == data.dtype
        assert_error_bounded(data, out, 1e-3 * rng)

    def test_roundtrip_3d_rough(self, codec):
        data = rough_field((20, 22, 24), seed=12)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-2, mode="rel")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-2 * rng)

    def test_roundtrip_structured(self, codec):
        data = structured_field(seed=13)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-4, mode="rel")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-4 * rng)

    @pytest.mark.parametrize("shape", [(257,), (48, 52)])
    def test_roundtrip_lower_dims(self, codec, shape):
        data = smooth_field(shape, seed=14)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-3, mode="rel")
        out = c.decompress(c.compress(data))
        assert out.shape == shape
        assert_error_bounded(data, out, 1e-3 * rng)

    def test_absolute_mode(self, codec):
        data = smooth_field(seed=15) * 100
        c = get_compressor(codec, eb=0.05, mode="abs")
        assert_error_bounded(data, c.decompress(c.compress(data)), 0.05)

    def test_awkward_shape(self, codec):
        data = smooth_field((37, 19, 23), seed=16)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-3, mode="rel")
        out = c.decompress(c.compress(data))
        assert_error_bounded(data, out, 1e-3 * rng)

    def test_constant_field(self, codec):
        data = np.full((24, 24, 24), 3.75, dtype=np.float32)
        c = get_compressor(codec, eb=1e-3, mode="rel")
        out = c.decompress(c.compress(data))
        np.testing.assert_allclose(out, data, atol=2e-3)

    def test_gle_wrap_lossless_roundtrip(self, codec):
        data = smooth_field((24, 24, 24), seed=17)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-3, mode="rel", lossless="gle")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-3 * rng)

    def test_deterministic(self, codec):
        data = smooth_field((24, 24, 24), seed=18)
        c = get_compressor(codec, eb=1e-3, mode="rel")
        assert c.compress(data) == c.compress(data)

    def test_tighter_eb_larger_output(self, codec):
        data = rough_field((32, 32, 32), seed=19)
        loose = len(get_compressor(codec, eb=1e-1,
                                   mode="rel").compress(data))
        tight = len(get_compressor(codec, eb=1e-4,
                                   mode="rel").compress(data))
        assert tight > loose

    def test_rejects_wrong_codec_blob(self, codec):
        data = smooth_field((16, 16, 16), seed=20)
        other = "cusz" if codec != "cusz" else "cuszp"
        blob = get_compressor(other, eb=1e-2).compress(data)
        with pytest.raises(ReproError):
            get_compressor(codec, eb=1e-2).decompress(blob)

    def test_rejects_garbage_blob(self, codec):
        with pytest.raises(ReproError):
            get_compressor(codec).decompress(b"garbage bytes here")

    def test_rejects_nan_input(self, codec):
        data = smooth_field((16, 16, 16), seed=21)
        data[0, 0, 0] = np.nan
        with pytest.raises(ReproError):
            get_compressor(codec, eb=1e-2).compress(data)

    def test_float64_input(self, codec):
        data = smooth_field((24, 20, 22), seed=22).astype(np.float64)
        rng = float(data.max() - data.min())
        c = get_compressor(codec, eb=1e-4, mode="rel")
        out = c.decompress(c.compress(data))
        assert out.dtype == np.float64
        assert_error_bounded(data, out, 1e-4 * rng)


class TestCodecSpecific:
    def test_cusz_outliers_survive(self):
        # a spike forces Lorenzo deltas beyond the radius
        data = smooth_field((20, 20, 20), seed=23)
        data[10, 10, 10] += 500.0
        rng = float(data.max() - data.min())
        c = get_compressor("cusz", eb=1e-5, mode="rel")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-5 * rng)

    def test_cuszp_zero_blocks_cheap(self):
        data = np.zeros((64, 64, 64), dtype=np.float32)
        data[0, 0, 0] = 1.0
        c = get_compressor("cuszp", eb=1e-2, mode="rel")
        blob = c.compress(data)
        # ~1 byte per 32-element block plus framing
        assert len(blob) < data.size / 16

    def test_cuszx_constant_blocks(self):
        data = np.ones((32, 32, 32), dtype=np.float32)
        data[:4] = 2.0
        c = get_compressor("cuszx", eb=1e-3, mode="rel")
        blob = c.compress(data)
        assert len(blob) < data.size / 20
        out = c.decompress(blob)
        assert np.abs(out - data).max() <= 1e-3 * EB_SLACK

    def test_fzgpu_radius_bound(self):
        with pytest.raises(ReproError):
            get_compressor("fzgpu", radius=40000)

    def test_sz3_beats_lorenzo_on_smooth(self):
        data = smooth_field((48, 48, 48), seed=24, scale=6.0)
        sz3 = len(get_compressor("sz3", eb=1e-3,
                                 mode="rel").compress(data))
        cusz = len(get_compressor("cusz", eb=1e-3,
                                  mode="rel").compress(data))
        assert sz3 < cusz

    def test_qoz_levelwise_eb_improves_psnr_over_sz3(self):
        from repro.common.metrics import psnr
        data = smooth_field((48, 48, 48), seed=25)
        out_q = get_compressor("qoz", eb=1e-3, mode="rel")
        out_s = get_compressor("sz3", eb=1e-3, mode="rel")
        p_q = psnr(data, out_q.decompress(out_q.compress(data)))
        p_s = psnr(data, out_s.decompress(out_s.compress(data)))
        assert p_q > p_s

    def test_cuszi_higher_psnr_than_cusz_same_eb(self):
        # the paper's Fig. 6 claim at codec level
        from repro.common.metrics import psnr
        data = smooth_field((48, 48, 48), seed=26)
        ci = get_compressor("cuszi", eb=1e-3, mode="rel")
        cz = get_compressor("cusz", eb=1e-3, mode="rel")
        p_i = psnr(data, ci.decompress(ci.compress(data)))
        p_z = psnr(data, cz.decompress(cz.compress(data)))
        assert p_i > p_z
