"""Unit tests for the classic (error-feedback) CPU Lorenzo compressor."""

import numpy as np
import pytest

from conftest import EB_SLACK, assert_error_bounded, smooth_field
from repro.baselines.sz14 import SZ14, wavefront_planes
from repro.common.metrics import psnr
from repro.registry import get_compressor


class TestWavefront:
    @pytest.mark.parametrize("shape", [(5,), (4, 3), (3, 4, 2)])
    def test_covers_every_point_once(self, shape):
        seen = np.zeros(int(np.prod(shape)), dtype=int)
        for flat, _, _ in wavefront_planes(shape):
            seen[flat] += 1
        assert (seen == 1).all()

    def test_neighbors_precede_targets(self):
        # every neighbor must belong to an earlier diagonal
        shape = (4, 5, 3)
        coords_sum = np.indices(shape).sum(axis=0).ravel()
        for flat, neighbor_flats, _ in wavefront_planes(shape):
            s = coords_sum[flat]
            for nflat in neighbor_flats:
                ok = nflat >= 0
                assert (coords_sum[nflat[ok]] < s[ok]).all()

    def test_stencil_signs_inclusion_exclusion(self):
        # 3D stencil: 7 terms, signs summing to +1
        gen = wavefront_planes((2, 2, 2))
        _, neighbor_flats, signs = next(gen)
        assert len(signs) == 7
        assert sum(signs) == 1.0

    def test_first_plane_is_origin(self):
        flat, neighbor_flats, _ = next(wavefront_planes((3, 3)))
        assert list(flat) == [0]
        assert all((n < 0).all() for n in neighbor_flats)


class TestSZ14:
    def test_roundtrip_bound_3d(self):
        data = smooth_field((24, 26, 22), seed=80)
        rng = float(data.max() - data.min())
        c = SZ14(eb=1e-3, mode="rel")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-3 * rng)

    @pytest.mark.parametrize("shape", [(200,), (32, 40)])
    def test_roundtrip_lower_dims(self, shape):
        data = smooth_field(shape, seed=81)
        rng = float(data.max() - data.min())
        c = SZ14(eb=1e-2, mode="rel")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-2 * rng)

    def test_registered(self):
        c = get_compressor("sz14", eb=1e-3)
        assert c.name == "sz14"

    def test_tracks_dual_quant_psnr(self):
        # classic and dual-quant Lorenzo should land within ~1 dB
        data = smooth_field((32, 32, 32), seed=82)
        c14 = SZ14(eb=1e-3, mode="rel")
        cz = get_compressor("cusz", eb=1e-3, mode="rel")
        p14 = psnr(data, c14.decompress(c14.compress(data)))
        pz = psnr(data, cz.decompress(cz.compress(data)))
        assert abs(p14 - pz) < 1.5

    def test_feedback_beats_dual_quant_ratio(self):
        # error feedback avoids the dual-quant lattice noise, so classic
        # Lorenzo compresses smooth data at least as well
        data = smooth_field((40, 40, 40), seed=83, scale=6.0)
        c14 = SZ14(eb=1e-2, mode="rel", lossless="none")
        cz = get_compressor("cusz", eb=1e-2, mode="rel", lossless="none")
        assert len(c14.compress(data)) <= len(cz.compress(data)) * 1.05

    def test_self_describing(self):
        from repro import decompress
        data = smooth_field((20, 20, 20), seed=84)
        rng = float(data.max() - data.min())
        blob = SZ14(eb=1e-3, mode="rel").compress(data)
        assert_error_bounded(data, decompress(blob), 1e-3 * rng)
