"""Unit tests for the error-analysis toolkit and the ratio estimators."""

import numpy as np
import pytest

from conftest import smooth_field
from repro.analysis import (error_autocorrelation, error_histogram,
                            error_statistics, spectral_ratio)
from repro.common.errors import ConfigError, DataError
from repro.estimate import (code_entropy, estimate_ratio, recommend_codec)
from repro.registry import get_compressor


@pytest.fixture(scope="module")
def pair():
    data = smooth_field((40, 40, 40), seed=130)
    comp = get_compressor("cuszi", eb=1e-3, mode="rel")
    recon = comp.decompress(comp.compress(data))
    rng = float(data.max() - data.min())
    return data, recon, 1e-3 * rng


class TestErrorStatistics:
    def test_basic_fields(self, pair):
        data, recon, eb = pair
        stats = error_statistics(data, recon, abs_eb=eb)
        assert 0 < stats.max_abs <= eb * 1.001
        assert stats.rmse <= stats.max_abs
        assert stats.p50 <= stats.p99 <= stats.max_abs
        assert 0.99 <= stats.bound_utilization <= 1.001
        assert abs(stats.mean) < stats.rmse

    def test_identical_pair(self):
        d = smooth_field((16, 16, 16), seed=131)
        stats = error_statistics(d, d)
        assert stats.max_abs == 0
        assert stats.zero_fraction == 1.0

    def test_format(self, pair):
        data, recon, eb = pair
        text = error_statistics(data, recon, abs_eb=eb).format()
        assert "bound-use" in text

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            error_statistics(np.zeros(4), np.zeros(5))


class TestErrorHistogram:
    def test_bounded_support(self, pair):
        data, recon, eb = pair
        counts, edges = error_histogram(data, recon, bins=32, abs_eb=eb)
        assert counts.sum() == data.size
        assert edges[0] == pytest.approx(-eb)
        assert edges[-1] == pytest.approx(eb)

    def test_quantizer_error_roughly_symmetric(self, pair):
        data, recon, eb = pair
        counts, _ = error_histogram(data, recon, bins=2, abs_eb=eb)
        assert abs(counts[0] - counts[1]) < 0.2 * counts.sum()


class TestAutocorrelation:
    def test_lag_zero_is_one(self, pair):
        data, recon, _ = pair
        ac = error_autocorrelation(data, recon, max_lag=4)
        np.testing.assert_allclose(ac[:, 0], 1.0)

    def test_white_noise_decays(self):
        rng = np.random.default_rng(0)
        d = smooth_field((32, 32, 32), seed=132)
        noisy = d + rng.normal(0, 1e-3, d.shape).astype(np.float32)
        ac = error_autocorrelation(d, noisy, max_lag=4)
        assert np.abs(ac[:, 1:]).max() < 0.1

    def test_structured_error_detected(self):
        d = smooth_field((32, 32, 32), seed=133)
        wave = 1e-3 * np.sin(np.arange(32) / 4.0)
        biased = d + wave[:, None, None].astype(np.float32)
        ac = error_autocorrelation(d, biased, max_lag=4)
        assert ac[0, 1] > 0.8  # smooth artifact along axis 0

    def test_axis_too_short(self):
        d = np.zeros((4, 32), dtype=np.float32)
        with pytest.raises(DataError):
            error_autocorrelation(d, d + 1e-3, max_lag=8)


class TestSpectralRatio:
    def test_identity_pair_all_ones(self):
        d = smooth_field((32, 32, 32), seed=134)
        ratio = spectral_ratio(d, d, n_bands=8)
        np.testing.assert_allclose(ratio, 1.0, atol=1e-10)

    def test_lowpass_codec_damps_high_bands(self):
        d = smooth_field((48, 48, 48), seed=135)
        comp = get_compressor("cuzfp", rate=1.0)
        recon = comp.decompress(comp.compress(d))
        ratio = spectral_ratio(d, recon, n_bands=8)
        assert ratio[0] == pytest.approx(1.0, abs=0.05)

    def test_band_count(self, pair):
        data, recon, _ = pair
        assert spectral_ratio(data, recon, n_bands=12).shape == (12,)


class TestEstimators:
    def test_entropy_known_values(self):
        uniform = np.arange(256, dtype=np.uint32)
        assert code_entropy(uniform, 256) == pytest.approx(8.0)
        constant = np.zeros(100, dtype=np.uint32)
        assert code_entropy(constant, 16) == 0.0

    def test_estimate_tracks_actual(self):
        data = smooth_field((48, 48, 48), seed=136, scale=5.0)
        est = estimate_ratio(data, 1e-3, predictor="ginterp")
        comp = get_compressor("cuszi", eb=1e-3, mode="rel",
                              lossless="none")
        actual = data.nbytes / len(comp.compress(data))
        assert est.estimated_ratio == pytest.approx(actual, rel=0.45)

    def test_estimate_monotone_in_eb(self):
        data = smooth_field((40, 40, 40), seed=137)
        loose = estimate_ratio(data, 1e-2).estimated_ratio
        tight = estimate_ratio(data, 1e-4).estimated_ratio
        assert loose > tight

    def test_sampling_fraction(self):
        data = smooth_field((64, 64, 64), seed=138)
        est = estimate_ratio(data, 1e-3, max_elements=16 ** 3)
        assert est.sample_fraction < 0.1

    def test_unknown_predictor(self):
        with pytest.raises(ConfigError):
            estimate_ratio(smooth_field((16, 16, 16)), 1e-3,
                           predictor="oracle")

    def test_recommend_returns_valid_codec(self):
        data = smooth_field((32, 32, 32), seed=139)
        codec, est = recommend_codec(data, 1e-3)
        assert codec in ("cuszi", "cusz")
        assert est.estimated_ratio > 1
