"""Unit + property tests for the scan idioms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.scan import concat_ranges, segment_offsets


class TestConcatRanges:
    def test_simple(self):
        np.testing.assert_array_equal(concat_ranges([2, 3]),
                                      [0, 1, 0, 1, 2])

    def test_with_zeros(self):
        np.testing.assert_array_equal(concat_ranges([2, 0, 3]),
                                      [0, 1, 0, 1, 2])

    def test_leading_zero(self):
        np.testing.assert_array_equal(concat_ranges([0, 2]), [0, 1])

    def test_all_zero(self):
        assert concat_ranges([0, 0]).size == 0

    def test_empty(self):
        assert concat_ranges([]).size == 0

    def test_single(self):
        np.testing.assert_array_equal(concat_ranges([4]), [0, 1, 2, 3])

    @given(st.lists(st.integers(0, 20), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, counts):
        expect = np.concatenate(
            [np.arange(c) for c in counts]) if counts else np.empty(0)
        got = concat_ranges(counts)
        np.testing.assert_array_equal(got, expect)


class TestSegmentOffsets:
    def test_simple(self):
        np.testing.assert_array_equal(segment_offsets([3, 1, 2]),
                                      [0, 3, 4, 6])

    def test_empty(self):
        np.testing.assert_array_equal(segment_offsets([]), [0])
