"""Unit + property tests for the error-bounded quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.quantizer import DEFAULT_RADIUS, LinearQuantizer


class TestBasics:
    def test_alphabet_size(self):
        assert LinearQuantizer(512).n_codes == 1024

    def test_radius_too_small(self):
        with pytest.raises(ConfigError):
            LinearQuantizer(1)

    def test_bad_value_dtype(self):
        with pytest.raises(ConfigError):
            LinearQuantizer(value_dtype=np.int32)

    def test_bad_eb(self):
        q = LinearQuantizer()
        with pytest.raises(ConfigError):
            q.quantize(np.zeros(4), np.zeros(4), 0.0)
        with pytest.raises(ConfigError):
            q.dequantize(np.zeros(4, np.uint32), np.zeros(4), -1.0,
                         np.zeros(0, np.float32), 0)


class TestQuantizeDequantize:
    def test_exact_prediction_gives_center_code(self):
        q = LinearQuantizer(512)
        vals = np.array([1.0, 2.0, 3.0])
        res = q.quantize(vals, vals, 0.1)
        np.testing.assert_array_equal(res.codes, [512, 512, 512])
        assert res.n_outliers == 0

    def test_error_bound_holds(self, rng):
        q = LinearQuantizer(512)
        vals = rng.normal(0, 10, 5000)
        preds = vals + rng.normal(0, 0.5, 5000)
        eb = 0.05
        res = q.quantize(vals, preds, eb)
        recon32 = res.reconstructed.astype(np.float32).astype(np.float64)
        assert np.abs(recon32 - vals).max() <= eb * (1 + 1e-9)

    def test_roundtrip(self, rng):
        q = LinearQuantizer(256)
        vals = rng.normal(0, 1, 2000)
        preds = vals + rng.normal(0, 0.3, 2000)
        eb = 0.01
        res = q.quantize(vals, preds, eb)
        recon, cursor = q.dequantize(res.codes, preds, eb,
                                     res.outlier_values, 0)
        np.testing.assert_array_equal(recon, res.reconstructed)
        assert cursor == res.n_outliers

    def test_large_errors_become_outliers(self):
        q = LinearQuantizer(8)
        vals = np.array([0.0, 100.0])   # second is 1000 bins away
        preds = np.zeros(2)
        res = q.quantize(vals, preds, 0.05)
        assert res.codes[0] == 8
        assert res.codes[1] == 0        # reserved outlier code
        assert res.n_outliers == 1
        assert res.outlier_values[0] == np.float32(100.0)

    def test_outlier_reconstruction_exact_float32(self):
        q = LinearQuantizer(4)
        vals = np.array([12345.678])
        res = q.quantize(vals, np.zeros(1), 1e-6)
        recon, _ = q.dequantize(res.codes, np.zeros(1), 1e-6,
                                res.outlier_values, 0)
        assert np.float32(recon[0]) == np.float32(12345.678)

    def test_outlier_cursor_advances_across_passes(self, rng):
        q = LinearQuantizer(4)
        vals = rng.normal(0, 100, 50)
        preds = np.zeros(50)
        eb = 0.001
        res1 = q.quantize(vals[:25], preds[:25], eb)
        res2 = q.quantize(vals[25:], preds[25:], eb)
        all_outliers = np.concatenate([res1.outlier_values,
                                       res2.outlier_values])
        r1, cur = q.dequantize(res1.codes, preds[:25], eb, all_outliers, 0)
        r2, cur = q.dequantize(res2.codes, preds[25:], eb, all_outliers,
                               cur)
        assert cur == all_outliers.size
        np.testing.assert_array_equal(r1, res1.reconstructed)
        np.testing.assert_array_equal(r2, res2.reconstructed)

    def test_float64_value_dtype(self, rng):
        q = LinearQuantizer(512, value_dtype=np.float64)
        vals = rng.normal(0, 1, 100)
        res = q.quantize(vals, np.zeros(100), 1e-9)
        assert np.abs(res.reconstructed - vals).max() <= 1e-9

    @given(st.floats(1e-6, 1e3), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, eb, seed):
        # When eb falls below a value's float32 spacing, the best any
        # float32-emitting codec can do is the nearest representable value
        # (the quantizer stores exactly that via the outlier path), so the
        # effective per-element bound is max(eb, spacing/2).
        rng = np.random.default_rng(seed)
        vals = rng.normal(0, 100, 64)
        preds = rng.normal(0, 100, 64)
        q = LinearQuantizer(DEFAULT_RADIUS)
        res = q.quantize(vals, preds, eb)
        recon32 = res.reconstructed.astype(np.float32).astype(np.float64)
        limit = np.maximum(eb, np.spacing(np.abs(vals).astype(np.float32)
                                          ).astype(np.float64))
        assert (np.abs(recon32 - vals) <= limit * (1 + 1e-9)).all()
