"""Unit tests for multi-field archives, calibration tools, and the
pipelined transfer scheduler."""

import numpy as np
import pytest

from conftest import assert_error_bounded, smooth_field
from repro.archive import (archive_info, load_archive, read_archive,
                           save_archive, write_archive)
from repro.common.errors import ConfigError, ContainerError
from repro.common.metrics import psnr
from repro.tools import calibrate_to_psnr, calibrate_to_ratio
from repro.transfer import FileSpec, pipelined_transfer


@pytest.fixture
def fields():
    return {
        "density": smooth_field((20, 24, 16), seed=90),
        "pressure": smooth_field((20, 24, 16), seed=91) * 10,
        "velocity": smooth_field((16, 16, 16), seed=92),
    }


class TestArchive:
    def test_roundtrip(self, fields):
        blob = save_archive(fields, codec="cuszi", eb=1e-3, mode="rel")
        back = load_archive(blob)
        assert set(back) == set(fields)
        for name, data in fields.items():
            rng = float(data.max() - data.min())
            assert_error_bounded(data, back[name], 1e-3 * rng)

    def test_partial_load(self, fields):
        blob = save_archive(fields, eb=1e-2)
        back = load_archive(blob, fields=["pressure"])
        assert list(back) == ["pressure"]

    def test_per_field_overrides(self, fields):
        blob = save_archive(fields, codec="cuszi", eb=1e-2, mode="rel",
                            per_field={"pressure": {"eb": 1e-5},
                                       "velocity": {"codec": "cusz"}})
        info = archive_info(blob)
        assert info["fields"]["velocity"]["codec"] == "cusz"
        p = fields["pressure"]
        rng = float(p.max() - p.min())
        back = load_archive(blob)
        assert_error_bounded(p, back["pressure"], 1e-5 * rng)

    def test_info_totals(self, fields):
        blob = save_archive(fields, eb=1e-3)
        info = archive_info(blob)
        raw = sum(d.nbytes for d in fields.values())
        assert info["total_raw_nbytes"] == raw
        assert info["ratio"] > 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            save_archive({})

    def test_missing_field_rejected(self, fields):
        blob = save_archive(fields, eb=1e-2)
        with pytest.raises(ConfigError):
            load_archive(blob, fields=["temperature"])

    def test_not_an_archive_rejected(self, fields):
        from repro import compress
        blob = compress(fields["density"], eb=1e-2)
        with pytest.raises(ContainerError):
            archive_info(blob)

    def test_file_io(self, fields, tmp_path):
        path = tmp_path / "snap.rpa"
        write_archive(str(path), fields, eb=1e-3)
        back = read_archive(str(path), fields=["density"])
        assert back["density"].shape == fields["density"].shape


class TestCalibrators:
    def test_ratio_target(self):
        data = smooth_field((40, 40, 40), seed=93)
        blob, cr, knob = calibrate_to_ratio("cuszi", data, 20.0)
        assert cr == pytest.approx(20.0, rel=0.15)

    def test_ratio_bad_target(self):
        with pytest.raises(ConfigError):
            calibrate_to_ratio("cusz", smooth_field((8, 8, 8)), 0.5)

    def test_psnr_target_eb_codec(self):
        data = smooth_field((32, 32, 32), seed=94)
        blob, quality, knob = calibrate_to_psnr("cusz", data, 70.0,
                                                lossless="none")
        assert quality == pytest.approx(70.0, abs=2.0)

    def test_psnr_target_cuzfp(self):
        data = smooth_field((32, 32, 32), seed=95)
        blob, quality, rate = calibrate_to_psnr("cuzfp", data, 55.0,
                                                lossless="none")
        assert quality == pytest.approx(55.0, abs=3.0)

    def test_psnr_blob_is_decodable(self):
        from repro import decompress
        data = smooth_field((24, 24, 24), seed=96)
        blob, quality, _ = calibrate_to_psnr("cuszi", data, 60.0)
        assert psnr(data, decompress(blob)) == pytest.approx(quality)


class TestPipelinedTransfer:
    def _files(self, n=6, elements=512 ** 3, cr=20):
        return [FileSpec(f"f{i}", elements, elements * 4 // cr)
                for i in range(n)]

    def test_makespan_bounded_by_serial(self):
        sched = pipelined_transfer("cuszi", self._files())
        assert sched.makespan <= sched.serial_time
        assert sched.overlap_speedup >= 1.0

    def test_overlap_hides_non_bottleneck_stages(self):
        # with many files the makespan approaches the bottleneck stage sum
        sched = pipelined_transfer("cuszi", self._files(n=24))
        bottleneck = max(sum(c for _, c, _, _ in sched.stage_times),
                         sum(w for _, _, w, _ in sched.stage_times),
                         sum(d for _, _, _, d in sched.stage_times))
        assert sched.makespan <= bottleneck * 1.2

    def test_timeline_monotone(self):
        sched = pipelined_transfer("cusz", self._files())
        for (_, c, w, d) in sched.timeline:
            assert c <= w <= d
        ends = [t[3] for t in sched.timeline]
        assert ends == sorted(ends)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            pipelined_transfer("cusz", [])

    def test_higher_ratio_faster_end_to_end(self):
        fast = pipelined_transfer("cuszi", self._files(cr=100))
        slow = pipelined_transfer("cuszi", self._files(cr=5))
        assert fast.makespan < slow.makespan
