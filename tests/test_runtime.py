"""repro.runtime: parallel determinism, caches, pickling, trace merge."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.common.errors import ConfigError
from repro.runtime import (map_compress, map_decompress,
                           parallel_compress_slabs,
                           parallel_decompress_slabs, resolve_workers)
from repro.streaming import SlabWriter, compress_slabs, decompress_slabs

from conftest import smooth_field


class TestResolveWorkers:
    def test_serial_defaults(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_auto_is_cpu_count(self):
        import os
        try:
            usable = len(os.sched_getaffinity(0)) or 1
        except (AttributeError, OSError):
            usable = os.cpu_count() or 1
        # "auto" sizes to CPUs this process may run on (affinity/cgroup
        # aware), not the machine-wide count
        assert resolve_workers("auto") == max(1, usable)

    @pytest.mark.parametrize("bad", ["three", 2.5, True, -1, [2]])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            resolve_workers(bad)


class TestParallelSlabs:
    def test_byte_identical_to_serial(self, field3d):
        kwargs = dict(codec="cuszi", eb=1e-3, mode="rel", lossless="none")
        serial = compress_slabs(field3d, 5, **kwargs)
        parallel = parallel_compress_slabs(field3d, 5, workers=2,
                                           min_parallel_bytes=0, **kwargs)
        assert parallel == serial

    def test_serial_knob_uses_serial_path(self, field3d):
        kwargs = dict(codec="cuszi", eb=1e-3, mode="abs")
        assert parallel_compress_slabs(field3d, 10, workers=None,
                                       **kwargs) \
            == compress_slabs(field3d, 10, **kwargs)

    def test_parallel_decompress_matches(self, field3d):
        stream = compress_slabs(field3d, 8, codec="cuszi", eb=1e-3,
                                mode="abs")
        serial = decompress_slabs(stream)
        parallel = parallel_decompress_slabs(stream, workers=2,
                                             min_parallel_bytes=0)
        assert np.array_equal(serial, parallel)

    def test_roundtrip_error_bounded(self, field3d):
        stream = parallel_compress_slabs(field3d, 8, workers=2,
                                         min_parallel_bytes=0,
                                         codec="cuszi", eb=1e-2,
                                         mode="abs")
        recon = parallel_decompress_slabs(stream, workers=2,
                                          min_parallel_bytes=0)
        assert np.abs(recon - field3d).max() <= 1e-2 * 1.001

    def test_empty_field_raises_like_serial(self):
        empty = np.empty((0, 4, 4), np.float32)
        with pytest.raises(ConfigError):
            parallel_compress_slabs(empty, 2, workers=2, codec="cuszi",
                                    eb=1e-3, mode="abs")

    def test_bad_slab_planes(self, field3d):
        with pytest.raises(ConfigError):
            parallel_compress_slabs(field3d, 0, workers=2, codec="cuszi",
                                    eb=1e-3, mode="abs")

    def test_small_inputs_fall_back_to_serial(self, field3d, monkeypatch):
        # below the size thresholds the pool must never be touched: IPC
        # costs more than the codec work (the benched decompress ran 5x
        # slower on a forced pool)
        from repro.runtime import pool

        def boom(*args, **kwargs):
            raise AssertionError("pool used below min_parallel_bytes")

        monkeypatch.setattr(pool, "_run_batch", boom)
        kwargs = dict(codec="cuszi", eb=1e-3, mode="abs")
        stream = pool.parallel_compress_slabs(field3d, 8, workers=2,
                                              **kwargs)
        assert stream == compress_slabs(field3d, 8, **kwargs)
        out = pool.parallel_decompress_slabs(stream, workers=2)
        assert np.array_equal(out, decompress_slabs(stream))

    def test_grouped_batches_one_task_per_worker(self, field3d,
                                                 monkeypatch):
        from repro.runtime import pool
        calls = []

        def inline(task, payloads, workers):
            calls.append(len(payloads))
            return [task(p) for p in payloads]

        monkeypatch.setattr(pool, "_run_batch", inline)
        # grouping is a pickle-transport concern (_run_batch payloads);
        # the shm transport groups identically but dispatches through
        # its own daemon queue
        stream = pool.parallel_compress_slabs(
            field3d, 5, workers=2, min_parallel_bytes=0,
            transport="pickle", codec="cuszi", eb=1e-3, mode="abs")
        pool.parallel_decompress_slabs(stream, workers=2,
                                       min_parallel_bytes=0,
                                       transport="pickle")
        # 8 slabs collapse into one contiguous group per worker
        assert calls == [2, 2]

    def test_chunk_bounds_cover_in_order(self):
        from repro.runtime.pool import _chunk_bounds
        for n, k in [(8, 2), (7, 3), (3, 5), (1, 1), (16, 4)]:
            bounds = _chunk_bounds(n, k)
            flat = [i for s, e in bounds for i in range(s, e)]
            assert flat == list(range(n))
            sizes = [e - s for s, e in bounds]
            assert max(sizes) - min(sizes) <= 1


class TestMapBatches:
    def test_map_compress_matches_serial_order(self, field3d):
        fields = [field3d, field3d * 2.0, field3d + 1.0]
        serial = map_compress(fields, "cuszi", eb=1e-3, mode="rel",
                              lossless="none")
        parallel = map_compress(fields, "cuszi", workers=2, eb=1e-3,
                                mode="rel", lossless="none")
        assert parallel == serial

    def test_map_decompress_round_trip(self, field3d):
        fields = [field3d, field3d * 3.0]
        blobs = map_compress(fields, "cuszi", workers=2, eb=1e-3,
                             mode="abs")
        out = map_decompress(blobs, workers=2)
        for orig, recon in zip(fields, out):
            assert recon.shape == orig.shape
            assert np.abs(recon - orig).max() <= 1e-3 * 1.001

    def test_per_item_overrides(self, field3d):
        blobs = map_compress([field3d, field3d], "cuszi", workers=2,
                             eb=1e-3, mode="abs",
                             per_item=[{}, {"codec": "cusz"}])
        from repro.common.lossless_wrap import unwrap_lossless
        from repro.common.container import parse_container
        codecs = [parse_container(unwrap_lossless(b))[0] for b in blobs]
        assert codecs == ["cuszi", "cusz"]

    def test_per_item_length_mismatch(self, field3d):
        with pytest.raises(ConfigError):
            map_compress([field3d], "cuszi", per_item=[{}, {}], eb=1e-3)


class TestArchiveWorkers:
    def test_save_archive_byte_identical(self, field3d):
        from repro.archive import save_archive, load_archive
        fields = {"a": field3d, "b": field3d * 2.0}
        serial = save_archive(fields, eb=1e-3, lossless="none")
        parallel = save_archive(fields, eb=1e-3, lossless="none",
                                workers=2)
        assert parallel == serial
        out = load_archive(parallel, workers=2)
        assert set(out) == {"a", "b"}
        assert out["a"].shape == field3d.shape


class TestSlabWriterPickle:
    def test_writer_round_trips(self):
        writer = SlabWriter(codec="cuszi", eb=1e-3, mode="abs",
                            lossless="none", radius=256)
        clone = pickle.loads(pickle.dumps(writer))
        assert (clone.codec, clone.eb) == (writer.codec, writer.eb)
        assert clone.codec_kwargs == {"lossless": "none", "radius": 256}

    def test_writer_with_slabs_round_trips(self, field3d):
        writer = SlabWriter(codec="cuszi", eb=1e-3, mode="abs")
        writer.append(field3d[:8])
        writer.append(field3d[8:16])
        clone = pickle.loads(pickle.dumps(writer))
        assert clone.n_slabs == 2
        assert clone.finish() == writer.finish()

    def test_rel_mode_resolves_before_pickle(self, field3d):
        rng = float(field3d.max() - field3d.min())
        writer = SlabWriter(codec="cuszi", eb=1e-3, mode="rel",
                            value_range=rng)
        clone = pickle.loads(pickle.dumps(writer))
        assert clone.eb == pytest.approx(1e-3 * rng)

    def test_clone_still_compresses(self, field3d):
        writer = SlabWriter(codec="cuszi", eb=1e-3, mode="abs")
        clone = pickle.loads(pickle.dumps(writer))
        writer.append(field3d[:8])
        clone.append(field3d[:8])
        assert clone.finish() == writer.finish()


class TestTraceMerge:
    def test_parallel_trace_sums_match_serial(self, field3d):
        kwargs = dict(codec="cuszi", eb=1e-3, mode="abs",
                      lossless="none")
        with telemetry.recording() as serial_reg:
            compress_slabs(field3d, 8, **kwargs)
        with telemetry.recording() as par_reg:
            parallel_compress_slabs(field3d, 8, workers=2,
                                    min_parallel_bytes=0, **kwargs)

        def slab_bytes(reg):
            return sorted((s.attrs["index"], s.attrs["bytes_out"])
                          for s in reg.spans if s.name == "slab.append")

        assert slab_bytes(par_reg) == slab_bytes(serial_reg)

    def test_worker_spans_grafted_under_root(self, field3d):
        with telemetry.recording() as reg:
            parallel_compress_slabs(field3d, 8, workers=2, codec="cuszi",
                                    eb=1e-3, mode="abs",
                                    min_parallel_bytes=0)
        ids = {s.span_id for s in reg.spans}
        assert len(ids) == len(reg.spans), "merged span ids must be unique"
        root = next(s for s in reg.spans
                    if s.name == "runtime.compress_slabs")
        assert root.attrs["workers"] == 2
        appends = [s for s in reg.spans if s.name == "slab.append"]
        assert len(appends) == 5  # ceil(40 / 8)
        for sp in appends:
            assert "worker_pid" in sp.attrs
            # every merged span's parent must resolve inside this trace
            assert sp.parent_id in ids
        # worker subtrees come along: the per-slab compress roots
        assert sum(1 for s in reg.spans if s.name == "compress") == 5

    def test_merge_spans_reparents_roots(self):
        foreign = [telemetry.Span("child", span_id=2, parent_id=1,
                                  start=0.1, duration_s=0.2),
                   telemetry.Span("root", span_id=1, parent_id=None,
                                  start=0.0, duration_s=0.5)]
        with telemetry.recording() as reg:
            with telemetry.span("parent") as p:
                merged = telemetry.merge_spans(foreign, offset_s=1.0,
                                               worker_pid=42)
        by_name = {s.name: s for s in merged}
        assert by_name["root"].parent_id == p.span_id
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["root"].start == pytest.approx(1.0)
        assert all(s.attrs["worker_pid"] == 42 for s in merged)
        assert telemetry.merge_spans(foreign) == []  # disabled: no-op

    def test_map_compress_serial_emits_field_spans(self, field3d):
        with telemetry.recording() as reg:
            map_compress([field3d, field3d], "cuszi", eb=1e-3, mode="abs")
        fields = [s for s in reg.spans if s.name == "runtime.field"]
        assert [s.attrs["index"] for s in fields] == [0, 1]


class TestCodebookCache:
    def test_decode_table_cache_hit_returns_same_arrays(self):
        from repro.huffman.canonical import (build_decode_table,
                                             clear_codebook_caches,
                                             codebook_cache_stats)
        clear_codebook_caches()
        lengths = np.array([1, 2, 3, 3], np.int64)
        first = build_decode_table(lengths)
        second = build_decode_table(lengths.copy())
        assert first[0] is second[0] and first[1] is second[1]
        stats = codebook_cache_stats()
        assert stats["table_hits"] == 1
        assert stats["table_misses"] == 1

    def test_codebook_cache_hit(self):
        from repro.huffman.canonical import (canonical_codebook,
                                             clear_codebook_caches,
                                             codebook_cache_stats)
        clear_codebook_caches()
        lengths = np.array([2, 2, 2, 2], np.int64)
        first = canonical_codebook(lengths)
        second = canonical_codebook(list(lengths))
        assert first is second
        assert codebook_cache_stats()["codebook_hits"] == 1

    def test_cached_arrays_are_read_only(self):
        from repro.huffman.canonical import (build_decode_table,
                                             canonical_codebook,
                                             clear_codebook_caches)
        clear_codebook_caches()
        lengths = np.array([1, 1], np.int64)
        codes = canonical_codebook(lengths)
        sym, ln = build_decode_table(lengths)
        for arr in (codes, sym, ln):
            with pytest.raises(ValueError):
                arr[0] = 1

    def test_distinct_lengths_do_not_collide(self):
        from repro.huffman.canonical import (build_decode_table,
                                             clear_codebook_caches)
        clear_codebook_caches()
        sym_a, _ = build_decode_table(np.array([1, 1], np.int64))
        sym_b, _ = build_decode_table(np.array([1, 2, 2], np.int64))
        assert sym_a is not sym_b
        assert int(sym_b.max()) == 2

    def test_invalid_lengths_still_raise(self):
        from repro.common.errors import CodecError
        from repro.huffman.canonical import MAX_CODE_LEN, canonical_codebook
        with pytest.raises(CodecError):
            canonical_codebook(np.array([MAX_CODE_LEN + 1]))


class TestAutotuneCache:
    def test_second_eb_skips_profiling(self):
        from repro.core.ginterp.autotune import (autotune,
                                                 autotune_cache_stats,
                                                 clear_autotune_cache)
        clear_autotune_cache()
        data = smooth_field((20, 20, 20), seed=7)
        first = autotune(data, 1e-3)
        second = autotune(data.copy(), 1e-5)  # same content, new bound
        stats = autotune_cache_stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)
        # registry-facing occupancy gauges ride along (PR 5)
        assert stats["size"] == 1 and stats["size_bytes"] > 0
        assert second.profiled_errors == first.profiled_errors
        assert second.cubic_variant == first.cubic_variant
        assert second.axis_order == first.axis_order
        assert second.alpha != first.alpha  # eb-dependent part reruns

    def test_different_content_misses(self):
        from repro.core.ginterp.autotune import (autotune,
                                                 autotune_cache_stats,
                                                 clear_autotune_cache)
        clear_autotune_cache()
        autotune(smooth_field((20, 20, 20), seed=1), 1e-3)
        autotune(smooth_field((20, 20, 20), seed=2), 1e-3)
        stats = autotune_cache_stats()
        assert (stats["hits"], stats["misses"]) == (0, 2)

    def test_cached_reports_match_uncached(self):
        from repro.core.ginterp.autotune import (autotune,
                                                 clear_autotune_cache)
        data = smooth_field((18, 22, 14), seed=9)
        clear_autotune_cache()
        cold = autotune(data, 2e-4)
        warm = autotune(data, 2e-4)
        assert warm == cold


class TestBatchConsumers:
    def test_run_codec_batch_matches_run_codec(self, field3d):
        from repro.experiments.harness import run_codec, run_codec_batch
        small = field3d[:16, :16, :16]
        triples = [("ds", "a", small), ("ds", "b", small * 2.0)]
        batch = run_codec_batch("cuszi", triples, eb=1e-3, workers=2)
        singles = [run_codec("cuszi", data, dataset=ds, field=f, eb=1e-3)
                   for ds, f, data in triples]
        for b, s in zip(batch, singles):
            assert b.compressed_bytes == s.compressed_bytes
            assert b.psnr == pytest.approx(s.psnr)
            assert b.max_err == pytest.approx(s.max_err)
            assert (b.dataset, b.field) == (s.dataset, s.field)

    def test_transfer_filespecs_measured(self, field3d):
        from repro.transfer.pipeline import (filespecs_from_fields,
                                             pipelined_transfer_fields)
        small = field3d[:16, :16, :16]
        named = [("f0", small), ("f1", small * 2.0)]
        specs = filespecs_from_fields(named, "cuszi", eb=1e-3,
                                      workers=2, lossless="none")
        assert [s.name for s in specs] == ["f0", "f1"]
        assert all(s.n_elements == small.size for s in specs)
        serial = filespecs_from_fields(named, "cuszi", eb=1e-3,
                                       lossless="none")
        assert specs == serial  # FileSpec is frozen: field-wise equality
        sched = pipelined_transfer_fields("cuszi", named, eb=1e-3,
                                          lossless="none", workers=2)
        assert sched.makespan > 0
        assert len(sched.timeline) == 2

    def test_transfer_empty_fields_raises(self):
        from repro.transfer.pipeline import filespecs_from_fields
        with pytest.raises(ConfigError):
            filespecs_from_fields([], "cuszi")

    def test_trace_tree_renders_parallel_run(self, field3d):
        from repro.telemetry import exporters
        with telemetry.recording() as reg:
            parallel_compress_slabs(field3d, 8, workers=2, codec="cuszi",
                                    eb=1e-3, mode="abs",
                                    min_parallel_bytes=0)
        rendered = exporters.render_tree(
            exporters.from_jsonl(exporters.to_jsonl(reg)).spans)
        assert "runtime.compress_slabs" in rendered
        assert "slab.append" in rendered


@pytest.mark.slow
class TestRuntimeStress:
    """Heavier parallel runs, kept out of the default suite."""

    def test_many_slabs_many_workers(self):
        data = smooth_field((48, 32, 32), seed=3)
        kwargs = dict(codec="cuszi", eb=1e-3, mode="rel", lossless="gle")
        serial = compress_slabs(data, 3, **kwargs)  # 16 slabs
        parallel = parallel_compress_slabs(data, 3, workers=3,
                                           min_parallel_bytes=0, **kwargs)
        assert parallel == serial
        assert np.array_equal(parallel_decompress_slabs(parallel,
                                                        workers=3,
                                                        min_parallel_bytes=0),
                              decompress_slabs(serial))

    def test_mixed_codec_batch(self):
        fields = [smooth_field((24, 24, 24), seed=s) for s in range(6)]
        per_item = [{"codec": c} for c in
                    ("cuszi", "cusz", "cuszp", "fzgpu", "cuszi", "cusz")]
        serial = map_compress(fields, "cuszi", eb=1e-3, mode="rel",
                              per_item=per_item)
        parallel = map_compress(fields, "cuszi", eb=1e-3, mode="rel",
                                workers=3, per_item=per_item)
        assert parallel == serial
        out = map_decompress(parallel, workers=3)
        assert all(o.shape == f.shape for o, f in zip(out, fields))

    def test_auto_workers(self):
        data = smooth_field((16, 16, 16), seed=4)
        stream = parallel_compress_slabs(data, 4, workers="auto",
                                         min_parallel_bytes=0,
                                         codec="cuszi", eb=1e-3,
                                         mode="abs")
        assert stream == compress_slabs(data, 4, codec="cuszi", eb=1e-3,
                                        mode="abs")
