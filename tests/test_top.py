"""Tests for the ``repro top`` live dashboard
(:mod:`repro.telemetry.top`): frame rendering, ledger tailing
(partial lines, rotation), and the CLI entry point."""

import io
import json

import pytest

from repro.cli import main
from repro.telemetry import recorder, top
from repro.telemetry.recorder import RunRecord
from repro.telemetry.top import LedgerFollower, TopDashboard


@pytest.fixture(autouse=True)
def _clean_recorder():
    recorder.clear()
    recorder.enable()
    yield
    recorder.clear()
    recorder.enable()


def _rec(seq, wall=7e-3, **attrs):
    a = {"fingerprint": "f0", "abs_eb": 1e-3,
         "bytes_in": 1_000_000, "bytes_out": 50_000}
    a.update(attrs)
    return RunRecord(seq=seq, kind="compress", ts=float(seq),
                     wall_s=wall, codec="cuszi",
                     stages={"predict": wall * 0.6,
                             "huffman": wall * 0.3,
                             "lossless": wall * 0.1},
                     attrs=a, caches={"c": {"hits": 3, "misses": 1}},
                     trace_id=f"t{seq:04d}")


class TestRender:
    def test_empty_dashboard_renders(self):
        frame = TopDashboard().render()
        assert "repro top" in frame
        assert "(no run records yet)" in frame

    def test_frame_has_group_table_and_stages(self):
        dash = TopDashboard()
        for i in range(12):
            dash.add(_rec(i + 1))
        frame = dash.render()
        assert "runs 12 (window 12)" in frame
        assert "compress[cuszi]" in frame
        assert "p50" in frame and "CR" in frame
        assert "stages(p50):" in frame and "predict" in frame
        assert "cache" in frame

    def test_frame_shows_change_points_and_anomalies(self):
        dash = TopDashboard()
        for i in range(40):
            dash.add(_rec(i + 1, wall=7e-3 if i < 20 else 14e-3))
        frame = dash.render()
        assert "change points (" in frame
        assert "latency_regression" in frame
        assert "active anomalies (" in frame

    def test_window_bounds_aggregation(self):
        dash = TopDashboard(window=8)
        for i in range(20):
            dash.add(_rec(i + 1))
        assert "runs 20 (window 8)" in dash.render()

    def test_render_respects_width(self):
        dash = TopDashboard()
        for i in range(4):
            dash.add(_rec(i + 1))
        for line in dash.render(width=40).splitlines():
            assert len(line) <= 40


class TestLedgerFollower:
    def test_missing_file_yields_nothing(self, tmp_path):
        lf = LedgerFollower(str(tmp_path / "nope.jsonl"))
        assert lf.poll() == []

    def test_incremental_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        recorder.write_ledger(str(path), [_rec(1)])
        lf = LedgerFollower(str(path))
        assert [r.seq for r in lf.poll()] == [1]
        assert lf.poll() == []
        with open(path, "a") as f:
            f.write(recorder.to_jsonl([_rec(2), _rec(3)]))
        assert [r.seq for r in lf.poll()] == [2, 3]

    def test_partial_line_stays_buffered(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        line = recorder.to_jsonl([_rec(7)])
        with open(path, "w") as f:
            f.write(line[: len(line) // 2])
        lf = LedgerFollower(str(path))
        assert lf.poll() == []       # torn write: nothing emitted yet
        with open(path, "a") as f:
            f.write(line[len(line) // 2:])
        assert [r.seq for r in lf.poll()] == [7]

    def test_rotation_restarts_from_zero(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        recorder.write_ledger(str(path), [_rec(i + 1) for i in range(5)])
        lf = LedgerFollower(str(path))
        assert len(lf.poll()) == 5
        recorder.write_ledger(str(path), [_rec(9)])   # rotated: smaller
        assert [r.seq for r in lf.poll()] == [9]

    def test_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with open(path, "w") as f:
            f.write("not json at all\n")
            f.write(json.dumps({"schema": 99, "seq": 1,
                                "kind": "compress", "ts": 0.0,
                                "wall_s": 0.0}) + "\n")
            f.write(recorder.to_jsonl([_rec(4)]))
        lf = LedgerFollower(str(path))
        assert [r.seq for r in lf.poll()] == [4]


class TestSSEFollower:
    def test_banner_swallowed_replay_delivered(self):
        # the server opens /runs/stream with a comment banner; the
        # follower must not mistake it for a keep-alive frame boundary
        from repro.telemetry import opsd
        from repro.telemetry.top import SSEFollower
        srv = opsd.start_ops_server(port=0)
        try:
            with recorder.capture("compress", codec="cuszi") as cap:
                cap.set(bytes_in=100, bytes_out=25)
            follower = SSEFollower(srv.url, replay=10, timeout=1.0)
            recs = follower.poll()
            follower.close()
        finally:
            srv.stop()
        assert [r.kind for r in recs] == ["compress"]
        assert recs[0].ratio == 4.0


class TestRunTop:
    def test_once_renders_ledger(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        recorder.write_ledger(str(path), [_rec(i + 1) for i in range(6)])
        out = io.StringIO()
        assert top.run_top(ledger=str(path), once=True, out=out) == 0
        frame = out.getvalue()
        assert "repro top" in frame and "compress[cuszi]" in frame
        assert "\x1b[" not in frame       # --once: no screen control

    def test_frames_loop_clears_screen(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        recorder.write_ledger(str(path), [_rec(1)])
        out = io.StringIO()
        assert top.run_top(ledger=str(path), interval=0.01, frames=2,
                           out=out) == 0
        assert out.getvalue().count("\x1b[H\x1b[J") == 2


class TestTopCLI:
    def test_requires_a_source(self, capsys):
        assert main(["top"]) == 2
        assert "needs a ledger file or --url" in capsys.readouterr().err

    def test_once_via_cli(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        recorder.write_ledger(str(path), [_rec(1), _rec(2)])
        assert main(["top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "runs 2" in out
