"""Shared fixtures and field factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

#: Lorenzo-family codecs reconstruct through float32 scaling, which can
#: exceed the bound by one ulp of the value magnitude (same as real cuSZ);
#: tests allow this much slack.
EB_SLACK = 1.0 + 1e-3


def smooth_field(shape=(40, 44, 36), seed=0, scale=4.0):
    """Band-limited smooth float32 test field (cheap, no FFT)."""
    rng = np.random.default_rng(seed)
    coarse_shape = tuple(max(2, s // int(scale)) for s in shape)
    coarse = rng.standard_normal(coarse_shape)
    from scipy.ndimage import zoom
    factors = [s / c for s, c in zip(shape, coarse_shape)]
    out = zoom(coarse, factors, order=3)
    out = out[tuple(slice(0, s) for s in shape)]
    pad = [(0, s - o) for s, o in zip(shape, out.shape)]
    if any(p[1] for p in pad):
        out = np.pad(out, pad, mode="edge")
    return np.ascontiguousarray(out, dtype=np.float32)


def rough_field(shape=(40, 44, 36), seed=1):
    """White-noise float32 field — the adversarial case for predictors."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def structured_field(shape=(40, 44, 36), seed=2):
    """Smooth background plus a sharp interface (tests outlier paths)."""
    base = smooth_field(shape, seed)
    phi = smooth_field(shape, seed + 1, scale=8.0)
    return (base + 3.0 * np.tanh(phi / 0.05)).astype(np.float32)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def field3d():
    return smooth_field()


@pytest.fixture
def field2d():
    return smooth_field((64, 48))


@pytest.fixture
def field1d():
    return smooth_field((300,))


def assert_error_bounded(original, reconstructed, abs_eb, slack=EB_SLACK):
    """The paper's core correctness contract."""
    err = np.max(np.abs(original.astype(np.float64)
                        - reconstructed.astype(np.float64)))
    assert err <= abs_eb * slack, \
        f"max error {err:.3e} exceeds bound {abs_eb:.3e}"
