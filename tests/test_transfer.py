"""Unit tests for the distributed-transfer simulator (Fig. 10 substrate)."""

import pytest

from repro.common.errors import ConfigError
from repro.gpu import A40_JLSE
from repro.transfer import (THETA_TO_ANVIL, TransferLink, simulate_transfer)


class TestLink:
    def test_paper_link(self):
        assert THETA_TO_ANVIL.bandwidth_gbps == 1.0

    def test_wire_time(self):
        link = TransferLink("t", bandwidth_gbps=2.0, setup_latency_s=0.5)
        assert link.wire_time(4 * 10 ** 9) == pytest.approx(2.5)

    def test_negative_payload(self):
        with pytest.raises(ConfigError):
            THETA_TO_ANVIL.wire_time(-1)


class TestSimulation:
    N = 512 ** 3

    def test_breakdown_sums(self):
        plan = simulate_transfer("cuszi", self.N, self.N * 4 // 30)
        assert plan.total_s == pytest.approx(
            plan.compress_s + plan.wire_s + plan.decompress_s)
        assert plan.compress_s > 0 and plan.decompress_s > 0

    def test_higher_ratio_less_wire_time(self):
        lo = simulate_transfer("cuszi", self.N, self.N * 4 // 5)
        hi = simulate_transfer("cuszi", self.N, self.N * 4 // 100)
        assert hi.wire_s < lo.wire_s
        assert hi.total_s < lo.total_s

    def test_high_ratio_wins_despite_slower_codec(self):
        # the paper's core point: cuSZ-i's ratio advantage beats its kernel
        # slowdown on a 1 GB/s link
        cuszi = simulate_transfer("cuszi", self.N, self.N * 4 // 100)
        cuszx = simulate_transfer("cuszx", self.N, self.N * 4 // 6)
        assert cuszi.total_s < cuszx.total_s

    def test_asymmetric_devices(self):
        plan = simulate_transfer("cusz", self.N, self.N * 4 // 20,
                                 dst_device=A40_JLSE)
        base = simulate_transfer("cusz", self.N, self.N * 4 // 20)
        assert plan.decompress_s > base.decompress_s
        assert plan.compress_s == pytest.approx(base.compress_s)

    def test_wire_dominates_on_slow_link(self):
        slow = TransferLink("slow", bandwidth_gbps=0.05)
        plan = simulate_transfer("cusz", self.N, self.N * 4 // 10,
                                 link=slow)
        assert plan.wire_s > 10 * (plan.compress_s + plan.decompress_s)
