"""Smoke + behavior tests for the experiment harness (tiny workloads)."""

import numpy as np
import pytest

from conftest import smooth_field
from repro.experiments import fig5, fig8
from repro.experiments.harness import (EB_GRID, format_table, run_codec,
                                       scale_fields)


class TestHarness:
    def test_eb_grid_is_paper(self):
        assert EB_GRID == (1e-2, 1e-3, 1e-4)

    def test_run_codec_measures(self):
        data = smooth_field((24, 24, 24), seed=70)
        r = run_codec("cusz", data, dataset="x", field="y", eb=1e-3)
        assert r.ratio > 1
        assert r.bit_rate == pytest.approx(
            8 * r.compressed_bytes / data.size)
        rng = float(data.max() - data.min())
        assert r.max_err <= 1e-3 * rng * 1.001
        assert np.isfinite(r.psnr)

    def test_run_codec_verify_off(self):
        data = smooth_field((20, 20, 20), seed=71)
        r = run_codec("cuszi", data, eb=1e-2, verify=False)
        assert np.isnan(r.psnr)

    def test_scale_fields(self):
        small = scale_fields("small")
        full = scale_fields("full")
        assert len(small) == 6
        assert len(full) > len(small)
        assert set(small) <= set(full)
        with pytest.raises(Exception):
            scale_fields("enormous")

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])


class TestFig5Predictors:
    def test_ginterp_close_to_sz3_far_from_lorenzo(self):
        # the paper's Fig. 5 ordering on a smooth field
        data = smooth_field((48, 48, 48), seed=72, scale=6.0)
        rng = float(data.max() - data.min())
        eb = 1e-2 * rng
        counts = {p: fig5.predictor_nonzeros(data, eb, p)["nonzero"]
                  for p in ("sz3", "ginterp", "lorenzo")}
        assert counts["ginterp"] < counts["lorenzo"] / 2
        assert counts["ginterp"] < 3 * max(counts["sz3"], 1)

    def test_unknown_predictor(self):
        with pytest.raises(ValueError):
            fig5.predictor_nonzeros(np.zeros((8, 8, 8)), 0.1, "magic")

    def test_amplitude_histogram_consistent(self):
        data = smooth_field((32, 32, 32), seed=73)
        stats = fig5.predictor_nonzeros(
            data, 1e-3 * float(data.max() - data.min()), "ginterp")
        hist_total = sum(stats["amplitude_hist"].values())
        assert hist_total == stats["nonzero"]


class TestFig8Calibration:
    def test_calibrates_to_target(self):
        data = smooth_field((40, 40, 40), seed=74)
        blob, cr, knob = fig8.calibrate_to_ratio("cusz", data, 15.0,
                                                 lossless="none")
        assert cr == pytest.approx(15.0, rel=0.15)
        assert knob > 0

    def test_calibrates_cuzfp_by_rate(self):
        data = smooth_field((40, 40, 40), seed=75)
        blob, cr, rate = fig8.calibrate_to_ratio("cuzfp", data, 16.0,
                                                 lossless="none")
        assert cr == pytest.approx(16.0, rel=0.15)
        assert rate == pytest.approx(2.0, rel=0.3)
