"""Cross-engine Huffman encode equivalence (PR 9 tentpole).

The ``vector`` encoder (packed pair gather + word scatter-OR) must be
byte-identical to the retained ``loop`` engine on every stream the codec
accepts: the two only differ in how bits are emitted, never in layout.
Also covers the new histogram fast paths and the fingerprint codebook
cache that back the encode hot path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.bitpack import pack_varbits64
from repro.common.errors import CodecError
from repro.huffman import (ENCODE_ENGINES, MAX_CODE_LEN,
                           clear_fingerprint_cache, drain_lut_prewarm,
                           fingerprint_cache_stats,
                           fingerprint_code_lengths, histogram,
                           histogram_fingerprint, huffman_decode,
                           huffman_encode, prewarm_lut_async,
                           static_lengths)
from repro.huffman.histogram import SPARSE_ALPHABET


def _both(codes, alphabet, **kw):
    sv = huffman_encode(codes, alphabet, engine="vector", **kw)
    sl = huffman_encode(codes, alphabet, engine="loop", **kw)
    assert sv.to_bytes() == sl.to_bytes()
    return sv


class TestEngineByteIdentity:
    @pytest.mark.parametrize("shape", [(4096,), (61, 67), (17, 19, 23)])
    def test_dimensionalities(self, shape, rng):
        codes = rng.integers(0, 300, size=shape).astype(np.uint32)
        s = _both(codes, 300)
        assert np.array_equal(huffman_decode(s), codes.ravel())

    def test_f64_quant_stream(self, rng):
        # codes produced by the f64 pipeline are plain uint32 symbols;
        # exercise a wide-alphabet skewed stream like the ones it emits
        vals = np.clip(rng.normal(512, 3, size=50_000), 0, 1023)
        codes = vals.astype(np.uint32)
        s = _both(codes, 1024)
        assert np.array_equal(huffman_decode(s), codes)

    def test_empty_stream(self):
        s = _both(np.empty(0, np.uint32), 16)
        assert s.payload.size == 0
        assert huffman_decode(s).size == 0

    def test_single_chunk_stream(self, rng):
        codes = rng.integers(0, 9, size=200).astype(np.uint32)
        s = _both(codes, 9, chunk_size=4096)
        assert int(s.chunk_bits.size) == 1
        assert np.array_equal(huffman_decode(s), codes)

    def test_single_symbol_codebook(self):
        codes = np.full(10_000, 5, dtype=np.uint32)
        s = _both(codes, 8)
        assert np.array_equal(huffman_decode(s), codes)

    def test_max_skew_codebook(self, rng):
        # geometric frequencies force the deepest (MAX_CODE_LEN) codes
        parts = [np.full(1 << (16 - i), i, dtype=np.uint32)
                 for i in range(17)]
        codes = np.concatenate(parts)
        rng.shuffle(codes)
        s = _both(codes, 32)
        assert int(s.lengths.max()) > 8
        assert np.array_equal(huffman_decode(s), codes)

    def test_static_codebook_streams(self, rng):
        lengths = static_lengths(64, 32, 2.0)
        codes = np.clip(rng.normal(32, 2, 8192), 0, 63).astype(np.uint32)
        _both(codes, 64, lengths=lengths)

    @pytest.mark.parametrize("chunk", [1, 3, 255, 256, 257])
    def test_odd_chunk_sizes(self, chunk, rng):
        codes = rng.integers(0, 500, size=1000).astype(np.uint32)
        s = _both(codes, 500, chunk_size=chunk)
        assert np.array_equal(huffman_decode(s), codes)

    def test_engine_selection(self, rng, monkeypatch):
        codes = rng.integers(0, 50, size=1000).astype(np.uint32)
        default = huffman_encode(codes, 50)
        monkeypatch.setenv("REPRO_HUFFMAN_ENCODE_ENGINE", "loop")
        via_env = huffman_encode(codes, 50)
        assert default.to_bytes() == via_env.to_bytes()
        with pytest.raises(CodecError):
            huffman_encode(codes, 50, engine="bogus")
        monkeypatch.setenv("REPRO_HUFFMAN_ENCODE_ENGINE", "nope")
        with pytest.raises(CodecError):
            huffman_encode(codes, 50)
        assert set(ENCODE_ENGINES) == {"vector", "loop"}


class TestPackVarbits64:
    def test_rejects_out_of_range(self):
        stage = np.array([1 << 63], dtype=np.uint64)
        ln = np.array([4], dtype=np.uint64)
        with pytest.raises(CodecError):
            pack_varbits64(stage, ln, np.array([6], np.int64), 1)

    def test_size_mismatch(self):
        with pytest.raises(CodecError):
            pack_varbits64(np.zeros(2, np.uint64), np.ones(3, np.uint64),
                           np.zeros(2, np.int64), 8)

    def test_word_boundary_spill(self):
        # a 16-bit code landing at bit 56 spans two output words
        stage = np.array([0xABCD << 48], dtype=np.uint64)
        ln = np.array([16], dtype=np.uint64)
        out = pack_varbits64(stage, ln, np.array([56], np.int64), 9)
        assert out[7] == 0xAB and out[8] == 0xCD


class TestHistogramFastPaths:
    def test_sparse_path_matches_dense(self, rng):
        alpha = SPARSE_ALPHABET * 2
        codes = (rng.normal(70_000, 40, 20_000)
                 .clip(0, alpha - 1).astype(np.int64))
        counts = histogram(codes, alpha)
        ref = np.bincount(codes, minlength=alpha)
        assert np.array_equal(counts, ref)

    def test_dense_wide_stream_falls_back(self, rng):
        alpha = SPARSE_ALPHABET
        codes = rng.integers(0, alpha, size=50_000)
        counts = histogram(codes, alpha)
        assert np.array_equal(counts, np.bincount(codes,
                                                  minlength=alpha))

    def test_out_of_range_raises(self):
        with pytest.raises(CodecError):
            histogram(np.array([SPARSE_ALPHABET * 2 + 5]),
                      SPARSE_ALPHABET * 2)
        with pytest.raises(CodecError):
            histogram(np.array([-1]), 16)
        with pytest.raises(CodecError):
            histogram(np.array([4]), 4)

    def test_non_integer_dtype_raises(self):
        with pytest.raises(CodecError):
            histogram(np.array([1.5, 2.0]), 8)


class TestFingerprintCache:
    def test_lengths_are_cache_history_independent(self, rng):
        freqs = np.bincount(
            rng.integers(0, 40, 5000).astype(np.int64), minlength=64)
        clear_fingerprint_cache()
        cold = fingerprint_code_lengths(freqs, MAX_CODE_LEN)
        warm = fingerprint_code_lengths(freqs, MAX_CODE_LEN)
        assert np.array_equal(cold, warm)
        stats = fingerprint_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # a fresh process (cleared cache) must emit identical lengths
        clear_fingerprint_cache()
        again = fingerprint_code_lengths(freqs, MAX_CODE_LEN)
        assert np.array_equal(cold, again)

    def test_similar_histograms_share_a_tree(self):
        # counts chosen so each pair lands in the same quarter-log2
        # bucket: rint(4*log2(1000)) == rint(4*log2(1010)) == 40, etc.
        base = np.array([0, 1000, 250, 60, 8], dtype=np.int64)
        wobble = np.array([0, 1010, 252, 61, 8], dtype=np.int64)
        clear_fingerprint_cache()
        a = fingerprint_code_lengths(base, MAX_CODE_LEN)
        b = fingerprint_code_lengths(wobble, MAX_CODE_LEN)
        assert np.array_equal(a, b)
        assert fingerprint_cache_stats()["hits"] == 1

    def test_fingerprint_key_separates_support(self):
        k1, _ = histogram_fingerprint(np.array([0, 5, 0, 9]))
        k2, _ = histogram_fingerprint(np.array([5, 0, 0, 9]))
        assert k1 != k2

    def test_env_opt_out_uses_exact_lengths(self, monkeypatch, rng):
        freqs = np.bincount(
            rng.integers(0, 30, 4000).astype(np.int64), minlength=40)
        monkeypatch.setenv("REPRO_HUFFMAN_CODEBOOK_CACHE", "0")
        clear_fingerprint_cache()
        exact = fingerprint_code_lengths(freqs, MAX_CODE_LEN)
        from repro.huffman import code_lengths
        assert np.array_equal(exact, code_lengths(freqs, MAX_CODE_LEN))
        assert fingerprint_cache_stats()["size"] == 0

    def test_encode_decode_roundtrip_through_cache(self, rng):
        clear_fingerprint_cache()
        for seed in range(3):
            codes = np.random.default_rng(seed).integers(
                0, 200, 9000).astype(np.uint32)
            s = huffman_encode(codes, 256)
            assert np.array_equal(huffman_decode(s), codes)


class TestLutPrewarm:
    def test_prewarm_then_drain_fills_lut_cache(self):
        from repro.huffman.canonical import (build_lut_tables,
                                             clear_codebook_caches,
                                             codebook_cache_stats)
        lengths = static_lengths(64, 32, 4.0)
        clear_codebook_caches()
        assert prewarm_lut_async(lengths)
        drain_lut_prewarm()
        before = codebook_cache_stats()["lut_hits"]
        build_lut_tables(lengths)
        assert codebook_cache_stats()["lut_hits"] == before + 1

    def test_prewarm_skips_warm_entries(self):
        from repro.huffman.canonical import build_lut_tables
        lengths = static_lengths(32, 16, 2.0)
        build_lut_tables(lengths)
        assert not prewarm_lut_async(lengths)

    def test_encode_hit_triggers_prewarm(self, rng):
        from repro.huffman.canonical import (build_lut_tables,
                                             clear_codebook_caches,
                                             codebook_cache_stats)
        clear_fingerprint_cache()
        clear_codebook_caches()
        codes = rng.integers(0, 100, 5000).astype(np.uint32)
        huffman_encode(codes, 128)     # miss: fills fingerprint cache
        huffman_encode(codes, 128)     # hit: kicks off the LUT prewarm
        drain_lut_prewarm()
        lengths = fingerprint_code_lengths(histogram(codes, 128),
                                           MAX_CODE_LEN)
        before = codebook_cache_stats()["lut_hits"]
        build_lut_tables(lengths)      # must hit the prewarmed entry
        assert codebook_cache_stats()["lut_hits"] == before + 1
