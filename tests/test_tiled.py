"""Out-of-core tiled path: byte-identity, budget maths, RSS bound."""

from __future__ import annotations

import io
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.runtime.tiled import (resolve_tile_planes, tiled_compress_file,
                                 tiled_decompress_file)
from repro.streaming import (SlabReader, SlabStreamWriter, compress_slabs,
                             decompress_slabs, frame_slabs)

from conftest import smooth_field


@pytest.fixture
def raw_field(tmp_path):
    field = smooth_field((50, 44, 36), seed=9)
    path = tmp_path / "field.raw"
    field.tofile(path)
    return field, str(path)


class TestSlabStreamWriter:
    def test_matches_frame_slabs(self):
        blobs = [b"alpha", b"bb", b"c" * 100]
        buf = io.BytesIO()
        sw = SlabStreamWriter(buf, len(blobs))
        for b in blobs:
            sw.append_blob(b)
        sw.close()
        assert buf.getvalue() == frame_slabs(blobs)

    def test_accepts_memoryviews(self):
        blobs = [memoryview(b"zero-copy"), b"plain"]
        buf = io.BytesIO()
        sw = SlabStreamWriter(buf, 2)
        for b in blobs:
            sw.append_blob(b)
        sw.close()
        assert buf.getvalue() == frame_slabs(blobs)

    def test_count_mismatch_raises(self):
        sw = SlabStreamWriter(io.BytesIO(), 2)
        sw.append_blob(b"only one")
        with pytest.raises(ConfigError):
            sw.close()
        sw.append_blob(b"two")
        with pytest.raises(ConfigError):
            sw.append_blob(b"three")


class TestTiledCompress:
    @pytest.mark.parametrize("planes", [7, 8, 50])
    def test_byte_identical_to_in_memory(self, raw_field, tmp_path,
                                         planes):
        field, raw = raw_field
        out = str(tmp_path / "f.rpst")
        info = tiled_compress_file(raw, field.shape, out_path=out,
                                   tile_planes=planes, eb=1e-3)
        with open(out, "rb") as f:
            stream = f.read()
        assert stream == compress_slabs(field, planes, eb=1e-3)
        assert info["n_tiles"] == len(SlabReader(stream))
        assert info["bytes_out"] == len(stream)

    def test_rel_mode_streaming_range_matches(self, raw_field, tmp_path):
        field, raw = raw_field
        out = str(tmp_path / "f.rpst")
        info = tiled_compress_file(raw, field.shape, out_path=out,
                                   tile_planes=7, eb=1e-3, mode="rel")
        with open(out, "rb") as f:
            stream = f.read()
        assert stream == compress_slabs(field, 7, eb=1e-3, mode="rel")
        assert info["value_range"] \
            == float(field.max() - field.min())

    def test_budget_resolves_tile_planes(self, raw_field, tmp_path):
        field, raw = raw_field
        out = str(tmp_path / "f.rpst")
        budget = 2 << 20
        info = tiled_compress_file(raw, field.shape, out_path=out,
                                   memory_budget_bytes=budget, eb=1e-3)
        expect = resolve_tile_planes(field.shape, np.float32, budget)
        assert info["tile_planes"] == expect
        with open(out, "rb") as f:
            assert f.read() == compress_slabs(field, expect, eb=1e-3)

    def test_decompress_roundtrip(self, raw_field, tmp_path):
        field, raw = raw_field
        out = str(tmp_path / "f.rpst")
        dec = str(tmp_path / "f.dec")
        tiled_compress_file(raw, field.shape, out_path=out,
                            tile_planes=8, eb=1e-3)
        info = tiled_decompress_file(out, dec)
        assert info["shape"] == field.shape
        got = np.fromfile(dec, dtype=info["dtype"]).reshape(
            info["shape"])
        with open(out, "rb") as f:
            ref = decompress_slabs(f.read())
        assert np.array_equal(got, ref)

    def test_size_mismatch_rejected(self, raw_field, tmp_path):
        field, raw = raw_field
        with pytest.raises(ConfigError, match="bytes on disk"):
            tiled_compress_file(raw, (field.shape[0] + 1,
                                      *field.shape[1:]),
                                out_path=str(tmp_path / "x"),
                                tile_planes=8)

    def test_needs_tile_size_or_budget(self, raw_field, tmp_path):
        field, raw = raw_field
        with pytest.raises(ConfigError, match="tile_planes or"):
            tiled_compress_file(raw, field.shape,
                                out_path=str(tmp_path / "x"))

    def test_resolve_tile_planes_bounds(self):
        # one 128x128 float32 plane = 64 KiB; x8 workspace = 512 KiB
        assert resolve_tile_planes((512, 128, 128), np.float32,
                                   4 << 20) == 8
        # never zero, never beyond the field
        assert resolve_tile_planes((512, 128, 128), np.float32, 1) == 1
        assert resolve_tile_planes((4, 8, 8), np.float32, 1 << 30) == 4


_RSS_SCRIPT = textwrap.dedent("""
    import resource, sys
    import numpy as np
    from repro.runtime.tiled import tiled_compress_file, \\
        tiled_decompress_file

    raw, out, dec = sys.argv[1], sys.argv[2], sys.argv[3]
    PLANES, EDGE = 512, 128
    plane_elems = EDGE * EDGE

    # build the input file chunk-by-chunk: the builder itself must not
    # raise the RSS high-water mark by the full field size
    with open(raw, "wb") as fp:
        for i in range(PLANES):
            rng = np.random.default_rng(i)
            fp.write(np.cumsum(rng.standard_normal(
                plane_elems, dtype=np.float32)).astype(
                np.float32).tobytes())

    # warm up codec/plan allocations on one tile-sized field first so
    # one-time buffers don't count against the tiled path
    from repro.registry import get_compressor
    warm = np.zeros((8, EDGE, EDGE), dtype=np.float32)
    get_compressor("cuszi", eb=1e-3).compress(warm)
    del warm

    budget = 4 << 20
    field_bytes = PLANES * plane_elems * 4
    base_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    tiled_compress_file(raw, (PLANES, EDGE, EDGE), out_path=out,
                        memory_budget_bytes=budget, eb=1e-3)
    tiled_decompress_file(out, dec)
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    growth = (peak_kb - base_kb) * 1024
    print(f"RESULT {growth} {field_bytes} {budget}")
""")


class TestRSSBound:
    def test_peak_rss_stays_under_bound(self, tmp_path):
        """A 32 MiB field compressed under a 4 MiB budget: RSS growth
        must stay under half the field — the out-of-core contract —
        and the stream must match the in-memory path byte for byte."""
        raw = str(tmp_path / "big.raw")
        out = str(tmp_path / "big.rpst")
        dec = str(tmp_path / "big.dec")
        env = dict(os.environ,
                   PYTHONPATH="src" + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.run(
            [sys.executable, "-c", _RSS_SCRIPT, raw, out, dec],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(__file__)))
        assert proc.returncode == 0, proc.stderr
        line = [l for l in proc.stdout.splitlines()
                if l.startswith("RESULT")][0]
        growth, field_bytes, budget = map(int, line.split()[1:])
        assert field_bytes >= 2 * budget  # field >= 2x the RSS budget
        assert growth < field_bytes // 2, \
            f"RSS grew {growth / 2**20:.1f} MiB on a " \
            f"{field_bytes / 2**20:.0f} MiB field"

        # decode is byte-exact: decompressing the tiled stream in-core
        # reproduces the mmap-built input exactly
        from repro.streaming import decompress_slabs as dec_slabs
        with open(out, "rb") as f:
            arr = dec_slabs(f.read())
        got = np.fromfile(dec, dtype=np.float32).reshape(arr.shape)
        assert np.array_equal(arr, got)