"""Unit tests for the spline library (paper §V-B.1)."""

import numpy as np
import pytest

from repro.core.ginterp.splines import (CUBIC_NAK, CUBIC_NAT, LINEAR,
                                        NEAREST_LEFT, NEAREST_RIGHT,
                                        NEIGHBOR_OFFSETS, QUAD_LEFT,
                                        QUAD_RIGHT, SPLINE_WEIGHTS, classify)


def eval_spline(cls, f):
    """Apply a spline class to samples of f at the neighbor offsets."""
    neigh = np.array([f(k) for k in NEIGHBOR_OFFSETS])
    return float(SPLINE_WEIGHTS[cls] @ neigh)


class TestWeights:
    @pytest.mark.parametrize("cls", [CUBIC_NAK, CUBIC_NAT, QUAD_LEFT,
                                     QUAD_RIGHT, LINEAR, NEAREST_LEFT,
                                     NEAREST_RIGHT])
    def test_reproduces_constants(self, cls):
        # every interpolation must be exact on constant data
        assert eval_spline(cls, lambda x: 7.5) == pytest.approx(7.5)

    @pytest.mark.parametrize("cls", [CUBIC_NAK, QUAD_LEFT, QUAD_RIGHT,
                                     LINEAR])
    def test_reproduces_linear(self, cls):
        assert eval_spline(cls, lambda x: 3.0 * x + 1.0) \
            == pytest.approx(1.0)

    @pytest.mark.parametrize("cls", [CUBIC_NAK, QUAD_LEFT, QUAD_RIGHT])
    def test_reproduces_quadratic(self, cls):
        assert eval_spline(cls, lambda x: x * x - 2 * x + 3) \
            == pytest.approx(3.0)

    def test_not_a_knot_exact_on_cubics(self):
        assert eval_spline(CUBIC_NAK, lambda x: x ** 3 + x ** 2 - x + 2) \
            == pytest.approx(2.0)

    def test_natural_not_exact_on_cubics(self):
        # the natural cubic trades polynomial exactness for boundary
        # smoothness; it must NOT equal the not-a-knot on cubic data
        nat = eval_spline(CUBIC_NAT, lambda x: x ** 3 + x ** 2)
        nak = eval_spline(CUBIC_NAK, lambda x: x ** 3 + x ** 2)
        assert nat != pytest.approx(nak)

    def test_paper_quadratic_right_typo_corrected(self):
        # the printed (-3/8, 6/8, -1/8) sums to 1/4; the implemented
        # weights must sum to 1 and mirror the left variant
        w = SPLINE_WEIGHTS[QUAD_RIGHT]
        assert w.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(w[::-1], SPLINE_WEIGHTS[QUAD_LEFT])

    def test_all_rows_partition_of_unity(self):
        np.testing.assert_allclose(SPLINE_WEIGHTS.sum(axis=1), 1.0)


class TestClassify:
    def _one(self, am3, am1, ap1, ap3, variant=CUBIC_NAK):
        arr = lambda b: np.array([b])  # noqa: E731
        return int(classify(arr(am3), arr(am1), arr(ap1), arr(ap3),
                            variant)[0])

    def test_full_neighborhood_cubic(self):
        assert self._one(True, True, True, True) == CUBIC_NAK
        assert self._one(True, True, True, True, CUBIC_NAT) == CUBIC_NAT

    def test_three_left(self):
        assert self._one(True, True, True, False) == QUAD_LEFT

    def test_three_right(self):
        assert self._one(False, True, True, True) == QUAD_RIGHT

    def test_two(self):
        assert self._one(False, True, True, False) == LINEAR

    def test_one_left(self):
        assert self._one(False, True, False, False) == NEAREST_LEFT
        # a far-left neighbor alone cannot upgrade the class
        assert self._one(True, True, False, False) == NEAREST_LEFT

    def test_one_right(self):
        assert self._one(False, False, True, False) == NEAREST_RIGHT
        assert self._one(False, False, True, True) == NEAREST_RIGHT

    def test_vectorized_shape(self):
        masks = np.ones((3, 4), dtype=bool)
        cls = classify(masks, masks, masks, masks, CUBIC_NAK)
        assert cls.shape == (3, 4)
        assert (cls == CUBIC_NAK).all()
