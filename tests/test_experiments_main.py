"""Smoke tests for the experiment runner entry point."""

import os

import pytest

from repro.experiments.__main__ import MODULES, main


class TestRunner:
    def test_module_registry_complete(self):
        assert set(MODULES) == {"table3", "fig5", "fig6", "fig7", "fig8",
                                "fig9", "fig10", "ablations", "pareto"}

    def test_fig5_runs_and_prints(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Miranda-pressure" in out
        assert "completed" in out

    def test_out_dir_written(self, tmp_path, capsys):
        assert main(["fig5", "--out", str(tmp_path)]) == 0
        path = tmp_path / "fig5.txt"
        assert path.exists()
        assert "lorenzo" in path.read_text()

    def test_bad_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--scale", "huge"])

    def test_cli_bench_passthrough(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["bench", "fig5"]) == 0
        assert "Miranda-pressure" in capsys.readouterr().out
