"""Integration tests: every codec against every synthetic dataset.

These exercise the paper's core correctness contract end-to-end on
realistic (small) fields: the error bound must hold point-wise under the
full pipeline including the de-redundancy pass, and the paper's headline
qualitative results must reproduce at test scale.
"""

import numpy as np
import pytest

from conftest import assert_error_bounded
from repro.common.metrics import psnr
from repro.datasets import dataset_names, get_dataset
from repro.registry import get_compressor

SHAPE = (32, 28, 24)
EB_CODECS = ["cusz", "cuszp", "cuszx", "fzgpu", "cuszi", "sz3", "qoz"]


def _first_field(ds):
    info = get_dataset(ds)
    return info.load(info.fields[0], shape=SHAPE)


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("codec", EB_CODECS)
class TestBoundEverywhere:
    def test_bound_1e2(self, dataset, codec):
        data = _first_field(dataset)
        rng = float(data.max() - data.min())
        if rng == 0:
            pytest.skip("constant field")
        c = get_compressor(codec, eb=1e-2, mode="rel", lossless="gle")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-2 * rng)

    def test_bound_1e4(self, dataset, codec):
        data = _first_field(dataset)
        rng = float(data.max() - data.min())
        if rng == 0:
            pytest.skip("constant field")
        c = get_compressor(codec, eb=1e-4, mode="rel", lossless="none")
        assert_error_bounded(data, c.decompress(c.compress(data)),
                             1e-4 * rng)


class TestPaperHeadlines:
    """Qualitative reproduction checks at integration scale."""

    @pytest.mark.parametrize("dataset", dataset_names())
    def test_cuszi_gle_best_ratio_at_1e2(self, dataset):
        # Table III right half: cuSZ-i + de-redundancy tops every dataset
        info = get_dataset(dataset)
        data = info.load(info.fields[0])
        sizes = {}
        for codec in ("cusz", "cuszp", "fzgpu", "cuszi"):
            c = get_compressor(codec, eb=1e-2, mode="rel", lossless="gle")
            sizes[codec] = len(c.compress(data))
        others = min(v for k, v in sizes.items() if k != "cuszi")
        assert sizes["cuszi"] <= others * 1.35, sizes

    def test_gle_amplifies_cuszi_most(self):
        # §VII-C.1: G-Interp is "more attuned to the additional pass of
        # lossless encoding than any other compressor"
        info = get_dataset("qmcpack")
        data = info.load("einspline")
        gains = {}
        for codec in ("cusz", "cuszi"):
            plain = len(get_compressor(codec, eb=1e-2, mode="rel",
                                       lossless="none").compress(data))
            packed = len(get_compressor(codec, eb=1e-2, mode="rel",
                                        lossless="gle").compress(data))
            gains[codec] = plain / packed
        assert gains["cuszi"] > gains["cusz"]

    def test_cuszi_psnr_beats_lorenzo(self):
        # Fig. 6's claim at one error bound: never meaningfully worse,
        # strictly better on most datasets (sharp-sheet fields like S3D-CO
        # can tie within a fraction of a dB)
        wins = 0
        for ds in dataset_names():
            info = get_dataset(ds)
            data = info.load(info.fields[0])
            ci = get_compressor("cuszi", eb=1e-3, mode="rel")
            cz = get_compressor("cusz", eb=1e-3, mode="rel")
            p_i = psnr(data, ci.decompress(ci.compress(data)))
            p_z = psnr(data, cz.decompress(cz.compress(data)))
            assert p_i > p_z - 0.5, ds
            wins += p_i > p_z
        assert wins >= 4

    def test_qoz_reference_still_ahead(self):
        # §VII-C.2: CPU QoZ keeps a ratio edge over cuSZ-i
        info = get_dataset("jhtdb")
        data = info.load("u")
        qoz = len(get_compressor("qoz", eb=1e-3, mode="rel",
                                 lossless="zlib").compress(data))
        cuszi = len(get_compressor("cuszi", eb=1e-3, mode="rel",
                                   lossless="gle").compress(data))
        assert qoz < cuszi

    def test_every_blob_self_describing(self):
        from repro import decompress
        info = get_dataset("miranda")
        data = info.load("density", shape=SHAPE)
        rng = float(data.max() - data.min())
        for codec in EB_CODECS:
            blob = get_compressor(codec, eb=1e-3,
                                  mode="rel").compress(data)
            out = decompress(blob)
            assert_error_bounded(data, out, 1e-3 * rng)
