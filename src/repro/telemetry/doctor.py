"""Ledger + environment + cache health diagnosis (``repro doctor``).

The flight recorder (:mod:`repro.telemetry.recorder`) tells you what
runs happened; the doctor reads a run ledger and says whether the
*system* looks healthy. It is deliberately structural — it flags states
that are wrong regardless of machine speed, so unlike the wall-time
sentinel (:mod:`repro.telemetry.sentinel`, warn-only) its findings can
gate CI via ``repro doctor --check``:

- **error records** — any run that ended in an exception;
- **warm-cache hit rate** — per cache, lookups across every record
  *after* the cache's first active record (the cold fill) should mostly
  hit; a warm ratio below the threshold means a cache key is broken or
  thrashing;
- **never-expand guard trips** — the lossless orchestrator predicted a
  backend that *expanded* a segment; correctness survives (the guard
  stores raw) but the predictor is mismodelling;
- **serial fallbacks** — pooled requests that degraded to the serial
  path: ``size_floor`` is expected (informational), ``spawn_failure``
  means worker processes could not be (re)spawned in that environment,
  and ``worker_crash`` means a shm daemon worker died mid-request (the
  pool is rebuilt, but a crash is never expected);
- **quality audits** — sampled error-bound violations are always
  anomalies;
- **SLO budgets** (when objectives are supplied, e.g. ``repro doctor
  --slo objectives.json``) — an exhausted error budget
  (:mod:`repro.telemetry.slo`) is a gating anomaly; an elevated burn
  rate on a budget that still has slack warns;
- **ledger analytics drift** (:mod:`repro.telemetry.analytics`) — a
  sustained, stage-attributed latency regression or a sustained quality
  drift detected over the run sequence gates; a ratio drift and
  per-run anomaly flags warn. Cold-start warm-ups are improvements and
  never trip these.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass, field

from repro.telemetry.recorder import RunRecord

__all__ = ["Check", "Diagnosis", "diagnose", "environment_report",
           "WARM_HIT_THRESHOLD", "UNBUDGETED_BYTES_WARN"]

#: minimum acceptable warm (post-cold-fill) cache hit ratio
WARM_HIT_THRESHOLD = 0.5

#: resident bytes above which a cache with *no* byte budget
#: (``byte_limit`` -1/0) is flagged as growing without bound
UNBUDGETED_BYTES_WARN = 64 << 20

#: worker-resident aggregates where the ``size`` gauge counts daemons,
#: not cache entries — per-worker cold fills are invisible as size
#: growth, so the warm-ratio heuristic would misfire; their warmth is
#: asserted directly by the runtime tests and the bench instead
_AGGREGATED_CACHES = frozenset({"runtime.workers"})


@dataclass
class Check:
    """One health check outcome."""

    name: str
    ok: bool
    detail: str
    gating: bool = True          # informational checks never fail --check


@dataclass
class Diagnosis:
    """All checks over one ledger."""

    n_records: int
    checks: list = field(default_factory=list)

    @property
    def anomalies(self) -> list:
        return [c for c in self.checks if c.gating and not c.ok]

    @property
    def healthy(self) -> bool:
        return not self.anomalies

    def format(self) -> str:
        lines = [f"ledger: {self.n_records} run record(s)"]
        for c in self.checks:
            mark = "ok  " if c.ok else ("WARN" if not c.gating
                                        else "FAIL")
            lines.append(f"  [{mark}] {c.name}: {c.detail}")
        lines.append("diagnosis: " + ("healthy" if self.healthy else
                                      f"{len(self.anomalies)} anomaly(ies)"))
        return "\n".join(lines)


def environment_report() -> dict:
    """The environment facts worth pinning next to a ledger."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover
        numpy_version = "missing"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "flight_recorder": os.environ.get("REPRO_FLIGHT_RECORDER", "1"),
    }


def _warm_cache_ratios(records: list[RunRecord]) -> dict[str, tuple]:
    """Per cache: (warm_hits, warm_lookups) over every record after the
    cache's first active one (which pays the cold fill).

    A miss that *inserted* a new entry is a per-key cold fill — a
    workload over many distinct fields legitimately misses once per
    field — so insertions (net size growth plus evictions, since every
    LRU eviction is displaced by an insertion) are subtracted from the
    warm lookup base. What remains are re-lookups of keys the cache has
    already seen, which is where a broken key or thrashing shows up.
    """
    seen: set[str] = set()
    warm: dict[str, list[int]] = {}
    for rec in records:
        for name, delta in rec.caches.items():
            if name in _AGGREGATED_CACHES:
                continue
            lookups = delta.get("lookups", 0)
            if not lookups:
                continue
            if name not in seen:
                seen.add(name)        # cold fill: exempt
                continue
            inserted = (max(0, delta.get("size_growth", 0))
                        + delta.get("evictions", 0))
            warm_lookups = max(0, lookups - inserted)
            if not warm_lookups:
                continue
            h, total = warm.get(name, (0, 0))
            warm[name] = [h + min(delta.get("hits", 0), warm_lookups),
                          total + warm_lookups]
    return {name: tuple(v) for name, v in warm.items()}


def _counter_total(records: list[RunRecord], name: str) -> float:
    return sum(rec.counters.get(name, 0) for rec in records)


def _format_cp(cp: dict) -> str:
    line = (f"{cp['cohort']} {cp['metric']} {cp['before']:.4g} -> "
            f"{cp['after']:.4g} ({cp['rel']:+.0%}) since "
            f"seq={cp['since_seq']}")
    if cp.get("stage"):
        line += (f" [stage '{cp['stage']}' explains "
                 f"{cp.get('stage_share') or 0:.0%}]")
    return line


def _analytics_checks(records: list[RunRecord], checks: list) -> None:
    """Ledger-analytics drift checks (:mod:`repro.telemetry.analytics`).

    A sustained latency regression (with stage attribution when the
    mover is identifiable) or a sustained quality drift is wrong
    regardless of machine speed — the detector compares the ledger
    against itself, so unlike the wall-time sentinel these can gate.
    Ratio drifts and per-run anomaly flags warn only.
    """
    from repro.telemetry import analytics as analytics_mod

    report = analytics_mod.analyze(records)
    cps = report["change_points"]
    lat = [cp for cp in cps if cp["kind"] == "latency_regression"]
    qual = [cp for cp in cps if cp["kind"] == "quality_drift"]
    ratio = [cp for cp in cps if cp["kind"] == "ratio_drift"]
    checks.append(Check(
        "analytics latency drift", not lat,
        "; ".join(_format_cp(cp) for cp in lat) if lat
        else "no sustained latency regression",
        gating=bool(lat)))
    checks.append(Check(
        "analytics quality drift", not qual,
        "; ".join(_format_cp(cp) for cp in qual) if qual
        else "no sustained quality drift",
        gating=bool(qual)))
    checks.append(Check(
        "analytics ratio drift", not ratio,
        "; ".join(_format_cp(cp) for cp in ratio) if ratio
        else "no sustained ratio drift", gating=False))
    anomalous = report["verdict"]["anomalous_runs"]
    checks.append(Check(
        "analytics run anomalies", anomalous == 0,
        f"{anomalous}/{report['n_records']} run(s) scored anomalous "
        f"vs cohort baselines" if anomalous
        else f"{report['n_records']} run(s) scored, none anomalous",
        gating=False))


def diagnose(records: list[RunRecord],
             warm_hit_threshold: float = WARM_HIT_THRESHOLD,
             slos=None, analytics: bool = True) -> Diagnosis:
    """Run every structural health check over a list of run records.

    ``slos`` optionally adds one check per
    :class:`repro.telemetry.slo.SLOSpec`: FAIL when its error budget is
    exhausted, WARN (non-gating) when the budget holds but the recent
    burn rate exceeds 1x. ``analytics`` (default on) adds the
    ledger-analytics drift checks — sustained latency regressions
    (stage-attributed) and quality drifts gate, ratio drifts and
    per-run anomaly counts warn.
    """
    diag = Diagnosis(n_records=len(records))
    checks = diag.checks

    errors = [r for r in records if r.status != "ok"]
    checks.append(Check(
        "run errors", not errors,
        f"{len(errors)}/{len(records)} record(s) ended in error"
        + (f" (first: {errors[0].kind} seq={errors[0].seq})" if errors
           else "")))

    warm = _warm_cache_ratios(records)
    if warm:
        bad = {}
        for name, (hits, lookups) in warm.items():
            ratio = hits / lookups if lookups else 1.0
            if ratio < warm_hit_threshold:
                bad[name] = ratio
        detail = ", ".join(f"{n}={hits}/{lk}"
                           for n, (hits, lk) in sorted(warm.items()))
        if bad:
            detail += ("; below threshold "
                       f"{warm_hit_threshold:.0%}: "
                       + ", ".join(f"{n} ({r:.0%})"
                                   for n, r in sorted(bad.items())))
        checks.append(Check("warm cache hit rate", not bad, detail))
    else:
        checks.append(Check(
            "warm cache hit rate", True,
            "no repeated cache activity to judge", gating=False))

    # worker-resident aggregates are exempt from the warm-ratio check
    # above, but one structural signal still applies: when the summed
    # eviction count overtakes the summed hit count, the per-worker LRUs
    # are cycling entries faster than they serve them — the limit is too
    # small for the workload (raise REPRO_WORKER_CACHE_LIMIT). Warn-only:
    # correctness is unaffected, and short churn-heavy runs can trip it.
    agg: dict[str, list[int]] = {}
    for rec in records:
        for name, delta in rec.caches.items():
            if name not in _AGGREGATED_CACHES:
                continue
            tot = agg.setdefault(name, [0, 0])
            tot[0] += delta.get("hits", 0)
            tot[1] += delta.get("evictions", 0)
    churning = {n: (h, e) for n, (h, e) in agg.items() if e > h}
    if agg:
        detail = ", ".join(f"{n} hits={h} evictions={e}"
                           for n, (h, e) in sorted(agg.items()))
        if churning:
            detail += ("; evictions exceed hits: "
                       + ", ".join(sorted(churning))
                       + " — worker cache limit too small "
                       "(REPRO_WORKER_CACHE_LIMIT)")
        checks.append(Check("worker cache churn", not churning, detail,
                            gating=False))

    # byte pressure: gauges pass through the diff from the *latest*
    # snapshot, so the last record that touched a cache carries its
    # current resident bytes. A budgeted cache (byte_limit > 0) sitting
    # over its budget means eviction is broken — that gates. An
    # unbudgeted cache holding a lot of memory only warns: it may be
    # legitimate, but it is exactly where unbounded growth hides.
    latest_bytes: dict[str, tuple[int, int]] = {}
    for rec in records:
        for name, delta in rec.caches.items():
            if name in _AGGREGATED_CACHES:
                continue
            latest_bytes[name] = (delta.get("size_bytes", 0),
                                  delta.get("byte_limit", -1))
    if latest_bytes:
        over = {n: (b, lim) for n, (b, lim) in latest_bytes.items()
                if lim > 0 and b > lim}
        fat = {n: b for n, (b, lim) in latest_bytes.items()
               if lim <= 0 and b > UNBUDGETED_BYTES_WARN}
        budgeted = sum(1 for _b, lim in latest_bytes.values() if lim > 0)
        detail = (f"{len(latest_bytes)} cache(s), {budgeted} byte-budgeted")
        if over:
            detail += ("; OVER BUDGET: "
                       + ", ".join(f"{n} ({b >> 10} KiB > {lim >> 10} KiB)"
                                   for n, (b, lim) in sorted(over.items())))
        if fat:
            detail += ("; unbudgeted growth: "
                       + ", ".join(f"{n} ({b >> 20} MiB)"
                                   for n, b in sorted(fat.items())))
        # over-budget gates; unbudgeted growth alone is a warning
        checks.append(Check("cache byte pressure", not (over or fat),
                            detail, gating=bool(over)))

    # a trip is correctness-preserving (the guard stores raw) and small
    # incompressible segments legitimately mispredict now and then, so
    # this warns rather than failing --check
    trips = _counter_total(records, "lossless.never_expand")
    checks.append(Check(
        "never-expand guard", trips == 0,
        f"{trips:g} segment backend misprediction(s) stored raw"
        if trips else "no trips", gating=False))

    floor = _counter_total(records, "runtime.serial_fallback.size_floor")
    spawn = _counter_total(records, "runtime.serial_fallback.spawn_failure")
    checks.append(Check(
        "serial fallbacks (size floor)", True,
        f"{floor:g} pooled request(s) below the IPC break-even floor",
        gating=False))
    checks.append(Check(
        "serial fallbacks (pool spawn)", spawn == 0,
        f"{spawn:g} pooled request(s) degraded because worker processes "
        f"could not be spawned" if spawn else "none"))
    crash = _counter_total(records, "runtime.serial_fallback.worker_crash")
    checks.append(Check(
        "serial fallbacks (worker crash)", crash == 0,
        f"{crash:g} pooled request(s) degraded because a shm daemon "
        f"worker died mid-request" if crash else "none"))

    audited = [r for r in records if "quality" in r.attrs]
    violations = sum(int(r.attrs["quality"].get("eb_exceeded", 0))
                     for r in audited)
    if audited:
        checks.append(Check(
            "quality audits", violations == 0,
            f"{len(audited)} audited run(s), {violations} sampled "
            f"error-bound violation(s)"))
    else:
        checks.append(Check("quality audits", True,
                            "no audited runs in ledger", gating=False))

    workers = [r for r in records if r.worker.get("tasks")]
    if workers:
        peak = max(r.worker.get("peak_rss_kb", 0) for r in workers)
        checks.append(Check(
            "worker memory merge", peak > 0,
            f"{len(workers)} pooled run(s), worker peak RSS "
            f"{peak / 1024:.1f} MiB", gating=False))

    if analytics and records:
        _analytics_checks(records, checks)

    if slos:
        from repro.telemetry import slo as slomod
        for status in slomod.evaluate(records, slos):
            name = f"slo {status.spec.name}"
            detail = (f"{status.violations}/{status.n} violation(s), "
                      f"budget used {status.budget_consumed:.0%}, "
                      f"burn {status.burn_rate:.2f}x")
            if not status.n:
                checks.append(Check(name, True,
                                    "no judgeable runs in window",
                                    gating=False))
            elif status.exhausted:
                checks.append(Check(name, False,
                                    detail + " — budget exhausted"))
            elif status.burn_rate > 1.0:
                checks.append(Check(name, False,
                                    detail + " — burning over budget",
                                    gating=False))
            else:
                checks.append(Check(name, True, detail))
    return diag
