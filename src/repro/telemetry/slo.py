"""Declarative SLOs with error budgets over the run ledger.

The flight recorder gives every run one :class:`RunRecord`; the doctor
checks *structure* (states that are wrong on any machine). What neither
answers is the service question — "are we meeting the objectives we
promised, and how fast are we spending the slack?" — which is what this
module adds, in the Google-SRE error-budget formulation:

* an :class:`SLOSpec` declares an objective over a sliding window of
  matching ledger records: a latency target ("p99 compress wall under
  500 ms" expressed as "at most ``budget`` of runs may exceed
  ``target``"), a compression-ratio floor, a run-error rate, or sampled
  quality-audit error-bound violations;
* :func:`evaluate` measures each spec over a record list and returns an
  :class:`SLOStatus` carrying the compliance ratio, the fraction of the
  error budget consumed, and the **burn rate** — the violation rate of
  the most recent slice of the window divided by the budgeted rate, so
  ``1.0`` means "spending exactly the budget", ``>1`` means "on pace to
  exhaust it", and a sudden regression shows up here long before the
  whole window degrades;
* :func:`metrics_lines` renders the statuses as ``repro_slo_*``
  Prometheus series (served by :mod:`repro.telemetry.opsd` at
  ``/metrics``), and :func:`repro.telemetry.doctor.diagnose` turns an
  exhausted budget into a gating anomaly, which makes
  ``repro doctor --check --slo objectives.json`` a CI/deploy gate.

The p-quantile phrasing and the per-record violation phrasing are the
same thing: "p99 latency <= target" holds exactly when at most 1% of
runs exceed the target, i.e. ``budget = 0.01``. Working per-record keeps
the math exact on small windows and makes the budget arithmetic trivial.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.telemetry.recorder import RunRecord

__all__ = ["SLOSpec", "SLOStatus", "OBJECTIVES", "DEFAULT_WINDOW",
           "DEFAULT_SLOS", "evaluate", "parse_slos", "load_slos",
           "metrics_lines", "format_statuses"]

#: ledger records considered per objective when the spec does not say
DEFAULT_WINDOW = 500

#: supported objective kinds -> one-line meaning of ``target``
OBJECTIVES = {
    "latency": "seconds the (stage or wall) time must stay under",
    "ratio": "compression-ratio floor the run must stay above",
    "errors": "runs must finish without error (target unused)",
    "quality": "sampled eb violations must be zero (target unused)",
}


@dataclass(frozen=True)
class SLOSpec:
    """One declared objective over a window of run records."""

    name: str
    objective: str              # one of :data:`OBJECTIVES`
    target: float = 0.0
    budget: float = 0.01        # allowed violating fraction of the window
    kind: str = "*"             # record-kind filter; trailing * = prefix
    codec: str | None = None    # optional codec filter
    stage: str | None = None    # latency: a stage name instead of wall
    window: int = DEFAULT_WINDOW

    def __post_init__(self):
        if self.objective not in OBJECTIVES:
            raise ValueError(f"unknown SLO objective "
                             f"{self.objective!r}; "
                             f"use one of {sorted(OBJECTIVES)}")
        if not (0.0 < self.budget <= 1.0):
            raise ValueError(f"SLO budget must be in (0, 1], got "
                             f"{self.budget}")
        if self.window < 1:
            raise ValueError(f"SLO window must be >= 1, got "
                             f"{self.window}")
        if self.objective in ("latency", "ratio") and self.target <= 0:
            raise ValueError(f"SLO {self.name!r}: {self.objective} "
                             f"objective needs a positive target")

    def matches(self, rec: RunRecord) -> bool:
        if self.codec is not None and rec.codec != self.codec:
            return False
        if self.kind == "*":
            return True
        if self.kind.endswith("*"):
            return rec.kind.startswith(self.kind[:-1])
        return rec.kind == self.kind

    def observe(self, rec: RunRecord) -> tuple[bool, float] | None:
        """``(violated, observed_value)`` for one record, or ``None``
        when the record carries nothing this objective can judge."""
        if self.objective == "latency":
            if self.stage is not None:
                val = rec.stages.get(self.stage)
                if val is None:
                    return None
            else:
                val = rec.wall_s
            return val > self.target, float(val)
        if self.objective == "ratio":
            ratio = rec.ratio
            if ratio <= 0:
                return None
            return ratio < self.target, float(ratio)
        if self.objective == "errors":
            return rec.status != "ok", 0.0 if rec.status == "ok" else 1.0
        # quality: judged only on audited runs
        q = rec.attrs.get("quality")
        if not isinstance(q, dict):
            return None
        bad = float(q.get("eb_exceeded", 0) or 0)
        return bad > 0, bad

    def to_dict(self) -> dict:
        return {"name": self.name, "objective": self.objective,
                "target": self.target, "budget": self.budget,
                "kind": self.kind, "codec": self.codec,
                "stage": self.stage, "window": self.window}


@dataclass
class SLOStatus:
    """One spec measured over a record window."""

    spec: SLOSpec
    n: int                      # judgeable records in the window
    violations: int
    worst: float = 0.0          # worst observed value (max latency /
                                # min ratio / violation count)
    recent_n: int = 0
    recent_violations: int = 0
    details: dict = field(default_factory=dict)

    @property
    def compliance(self) -> float:
        """Fraction of judged runs meeting the objective (1.0 when no
        run could be judged — an empty window owes nothing)."""
        return 1.0 - self.violations / self.n if self.n else 1.0

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent over the window; >= 1.0
        means the budget is exhausted."""
        if not self.n:
            return 0.0
        return (self.violations / self.n) / self.spec.budget

    @property
    def budget_remaining(self) -> float:
        return max(0.0, 1.0 - self.budget_consumed)

    @property
    def burn_rate(self) -> float:
        """Violation rate of the most recent window slice relative to
        the budgeted rate (1.0 = spending exactly the budget)."""
        if not self.recent_n:
            return 0.0
        return (self.recent_violations / self.recent_n) / self.spec.budget

    @property
    def exhausted(self) -> bool:
        return self.budget_consumed >= 1.0

    def to_dict(self) -> dict:
        return {"slo": self.spec.to_dict(), "n": self.n,
                "violations": self.violations, "worst": self.worst,
                "compliance": self.compliance,
                "budget_consumed": self.budget_consumed,
                "budget_remaining": self.budget_remaining,
                "burn_rate": self.burn_rate,
                "exhausted": self.exhausted}


#: objectives evaluated when no config is supplied: lenient guardrails
#: (every run must round-trip without error, audited runs must honor the
#: error bound, archives must not expand, nothing may take absurdly
#: long) rather than site-specific latency promises
DEFAULT_SLOS = (
    SLOSpec("run_errors", objective="errors", budget=0.001, kind="*"),
    SLOSpec("quality_eb_violations", objective="quality", budget=0.001,
            kind="compress"),
    SLOSpec("compress_ratio_floor", objective="ratio", target=1.0,
            budget=0.01, kind="compress"),
    SLOSpec("compress_wall_p99", objective="latency", target=60.0,
            budget=0.01, kind="compress"),
)


def evaluate(records: list[RunRecord],
             specs: tuple[SLOSpec, ...] | list[SLOSpec] | None = None,
             ) -> list[SLOStatus]:
    """Measure every spec (default :data:`DEFAULT_SLOS`) over records.

    The *recent* slice feeding the burn rate is the last eighth of each
    spec's window (at least one record): long enough to smooth noise,
    short enough that a fresh regression dominates it immediately.
    """
    specs = DEFAULT_SLOS if specs is None else tuple(specs)
    out = []
    for spec in specs:
        matched = [r for r in records if spec.matches(r)]
        matched = matched[-spec.window:]
        outcomes: list[tuple[bool, float]] = []
        for rec in matched:
            obs = spec.observe(rec)
            if obs is not None:
                outcomes.append(obs)
        n = len(outcomes)
        bad = sum(1 for violated, _ in outcomes if violated)
        if spec.objective == "ratio":
            worst = min((v for _, v in outcomes), default=0.0)
        else:
            worst = max((v for _, v in outcomes), default=0.0)
        recent = outcomes[-max(1, spec.window // 8):]
        out.append(SLOStatus(
            spec=spec, n=n, violations=bad, worst=worst,
            recent_n=len(recent),
            recent_violations=sum(1 for violated, _ in recent
                                  if violated)))
    return out


# -- configuration ----------------------------------------------------------

def parse_slos(doc: dict) -> tuple[SLOSpec, ...]:
    """Build specs from a config document: ``{"slos": [{...}, ...]}``.

    Each entry takes the :class:`SLOSpec` field names; ``name`` and
    ``objective`` are required, everything else defaults. Raises
    ``ValueError`` on malformed entries so a bad ops config fails loudly
    at boot, not silently at evaluation time.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("slos"), list):
        raise ValueError('SLO config must be {"slos": [...]}')
    specs = []
    for i, entry in enumerate(doc["slos"]):
        if not isinstance(entry, dict):
            raise ValueError(f"SLO entry {i} is not an object")
        unknown = set(entry) - {"name", "objective", "target", "budget",
                                "kind", "codec", "stage", "window"}
        if unknown:
            raise ValueError(f"SLO entry {i}: unknown field(s) "
                             f"{sorted(unknown)}")
        try:
            name = str(entry["name"])
            objective = str(entry["objective"])
        except KeyError as exc:
            raise ValueError(f"SLO entry {i} is missing {exc}")
        specs.append(SLOSpec(
            name=name, objective=objective,
            target=float(entry.get("target", 0.0)),
            budget=float(entry.get("budget", 0.01)),
            kind=str(entry.get("kind", "*")),
            codec=entry.get("codec"),
            stage=entry.get("stage"),
            window=int(entry.get("window", DEFAULT_WINDOW))))
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate SLO names in config: {names}")
    return tuple(specs)


def load_slos(path: str) -> tuple[SLOSpec, ...]:
    """Load an SLO config file (JSON; see :func:`parse_slos`)."""
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"SLO config {path!r} is not JSON: {exc}")
    return parse_slos(doc)


# -- rendering --------------------------------------------------------------

#: exported per-status series: attribute -> (metric suffix, type, help)
_SLO_METRICS = (
    ("target", "repro_slo_target", "declared objective target"),
    ("compliance", "repro_slo_compliance",
     "fraction of judged runs meeting the objective"),
    ("budget_consumed", "repro_slo_error_budget_consumed",
     "fraction of the error budget spent over the window"),
    ("budget_remaining", "repro_slo_error_budget_remaining",
     "fraction of the error budget left (0 = exhausted)"),
    ("burn_rate", "repro_slo_burn_rate",
     "recent violation rate over the budgeted rate (1.0 = on budget)"),
    ("n", "repro_slo_window_runs",
     "judged runs in the evaluation window"),
    ("violations", "repro_slo_violations",
     "objective violations in the evaluation window"),
    ("exhausted", "repro_slo_exhausted",
     "1 when the error budget is exhausted"),
)


def metrics_lines(statuses: list[SLOStatus]) -> list[str]:
    """Prometheus gauges for every status, labeled ``{slo="name"}``."""
    from repro.telemetry.exporters import escape_label
    lines: list[str] = []
    for attr, metric, help_text in _SLO_METRICS:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} gauge")
        for st in statuses:
            if attr == "target":
                val = float(st.spec.target)
            else:
                val = float(getattr(st, attr))
            lines.append(f'{metric}{{slo="{escape_label(st.spec.name)}"'
                         f'}} {val:g}')
    return lines


def format_statuses(statuses: list[SLOStatus]) -> list[str]:
    """Human-readable one-liners for ``repro stats`` / ``repro doctor``."""
    out = []
    for st in statuses:
        spec = st.spec
        mark = ("EXHAUSTED" if st.exhausted
                else "burning" if st.burn_rate > 1.0 else "ok")
        goal = {"latency": f"<= {spec.target:g}s"
                           + (f" [{spec.stage}]" if spec.stage else ""),
                "ratio": f">= {spec.target:g}x",
                "errors": "no errors",
                "quality": "no eb violations"}[spec.objective]
        out.append(
            f"[{mark:>9}] {spec.name}: {goal} for {spec.kind} "
            f"(budget {spec.budget:.2%}) — {st.violations}/{st.n} "
            f"violation(s), compliance {st.compliance:.2%}, "
            f"budget used {st.budget_consumed:.0%}, "
            f"burn {st.burn_rate:.2f}x")
    return out
