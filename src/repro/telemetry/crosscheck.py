"""Join measured span trees against the GPU perf model.

:mod:`repro.gpu.perfmodel` encodes the *structure* the paper reports —
which kernels a pipeline runs and how their costs split on an A100/A40.
Until now it was a write-only artifact: nothing checked its shape against
the code that actually runs. This module closes the loop. Given a traced
``compress``/``decompress`` root span (see ``docs/OBSERVABILITY.md`` for
the taxonomy), it:

1. aggregates the measured children into the perf model's stage
   vocabulary (``predict`` / ``huffman`` / ``lossless``),
2. rebuilds the modelled kernel inventory for the same codec,
   element count and compressed size via
   :func:`repro.gpu.perfmodel.estimate_throughput`, and
3. reports, stage by stage, how the Python substrate's *relative* cost
   shape diverges from the modelled device shape (``skew`` = measured
   share / modelled share).

Absolute times are incomparable (NumPy on a CPU vs a roofline model of
an A100); relative stage shares are the comparable quantity, and large
skews are exactly the model-vs-reality deltas worth investigating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.gpu.device import DEVICES, DeviceSpec
from repro.gpu.perfmodel import estimate_throughput
from repro.telemetry import Span

__all__ = ["StageRow", "CrosscheckReport", "crosscheck", "find_root"]

#: measured child-span names folded into each model stage, per direction.
#: The GPU fuses quantization into the prediction kernel, so the traced
#: ``tune``/``predict``/``quantize`` siblings all map onto ``predict``.
MEASURED_STAGES = {
    "compress": {
        "predict": ("tune", "predict", "quantize"),
        "huffman": ("huffman",),
        "lossless": ("lossless",),
    },
    "decompress": {
        "predict": ("predict",),
        "huffman": ("huffman",),
        "lossless": ("lossless",),
    },
}

#: modelled kernel names folded into each stage, per (codec, direction).
MODEL_STAGES = {
    ("cuszi", "compress"): {
        "predict": ("profile-autotune", "ginterp-predict-quant"),
        "huffman": ("histogram", "huffman-encode"),
        "lossless": ("gle-deredundancy",),
    },
    ("cuszi", "decompress"): {
        "predict": ("ginterp-reconstruct",),
        "huffman": ("huffman-decode",),
        "lossless": ("gle-deredundancy",),
    },
}


@dataclass
class StageRow:
    """One stage's measured-vs-modelled accounting."""

    stage: str
    measured_s: float
    measured_share: float
    modelled_s: float
    modelled_share: float

    @property
    def skew(self) -> float:
        """measured share / modelled share (1.0 = same relative cost)."""
        if self.modelled_share <= 0.0:
            return math.inf if self.measured_share > 0 else 1.0
        return self.measured_share / self.modelled_share


@dataclass
class CrosscheckReport:
    """Stage-share comparison for one traced pipeline run."""

    codec: str
    direction: str
    device: str
    n_elements: int
    compressed_bytes: int
    rows: list[StageRow] = field(default_factory=list)
    measured_total_s: float = 0.0
    modelled_total_s: float = 0.0

    @property
    def max_skew(self) -> float:
        return max((max(r.skew, 1.0 / r.skew) if r.skew > 0 else math.inf
                    for r in self.rows), default=1.0)

    def format(self) -> str:
        head = (f"perf-model cross-check: {self.codec} {self.direction} "
                f"on modelled {self.device} "
                f"({self.n_elements} elements, "
                f"{self.compressed_bytes} compressed bytes)")
        cols = (f"{'stage':<10} {'measured':>10} {'share':>7} "
                f"{'modelled':>10} {'share':>7} {'skew':>7}")
        lines = [head, cols, "-" * len(cols)]
        for r in self.rows:
            skew = "inf" if math.isinf(r.skew) else f"{r.skew:.2f}x"
            lines.append(f"{r.stage:<10} {r.measured_s * 1e3:>8.2f}ms "
                         f"{r.measured_share:>6.1%} "
                         f"{r.modelled_s * 1e3:>8.2f}ms "
                         f"{r.modelled_share:>6.1%} {skew:>7}")
        lines.append(f"{'total':<10} {self.measured_total_s * 1e3:>8.2f}ms "
                     f"{'':>7} {self.modelled_total_s * 1e3:>8.2f}ms")
        lines.append(
            "(skew = measured share / modelled share; absolute times are "
            "CPU-substrate vs modelled-GPU and not directly comparable)")
        return "\n".join(lines)


def find_root(spans: list[Span],
              direction: str | None = None) -> Span | None:
    """Locate the first ``compress``/``decompress`` root span in a trace.

    A root for this purpose is any span named ``compress`` or
    ``decompress`` carrying the codec attribute — it need not be
    top-level (the experiment harness nests pipeline roots under its own
    spans).
    """
    wanted = (direction,) if direction else ("compress", "decompress")
    for sp in sorted(spans, key=lambda s: (s.start, s.span_id)):
        if sp.name in wanted and "codec" in sp.attrs:
            return sp
    return None


def crosscheck(spans: list[Span], device: DeviceSpec | str = "a100",
               direction: str | None = None) -> CrosscheckReport:
    """Compare a traced pipeline run against the modelled device shape.

    ``spans`` is a full trace (e.g. ``Registry.spans`` or a re-parsed
    JSONL dump); the first ``compress``/``decompress`` root span found
    provides codec, element count and compressed size.
    """
    if isinstance(device, str):
        try:
            device = DEVICES[device.lower()]
        except KeyError:
            raise ConfigError(f"unknown device {device!r}; "
                              f"choose from {sorted(DEVICES)}")
    root = find_root(spans, direction)
    if root is None:
        raise ConfigError("trace contains no compress/decompress root span "
                          "with a codec attribute")
    codec = str(root.attrs["codec"])
    dir_ = root.name
    try:
        n_elements = int(root.attrs["n_elements"])
        compressed = int(root.attrs["compressed_nbytes"])
    except KeyError as exc:
        raise ConfigError(f"root span lacks required attribute {exc}")
    if (codec, dir_) not in MODEL_STAGES:
        raise ConfigError(f"no stage mapping for codec {codec!r} "
                          f"direction {dir_!r}")

    lossless = str(root.attrs.get("lossless", "none"))
    # the perf model only knows the paper's GLE pass; the orchestrator
    # ("auto") is GLE-dominated so it borrows that model, while other
    # outer codecs (zlib) are modelled as absent, which the skew column
    # then surfaces
    model_lossless = "gle" if lossless in ("gle", "auto") else "none"
    timing = estimate_throughput(codec, dir_, n_elements, compressed,
                                 device, model_lossless)
    kernel_s = dict(timing.kernels)

    children = [sp for sp in spans if sp.parent_id == root.span_id]
    measured: dict[str, float] = {}
    for stage, names in MEASURED_STAGES[dir_].items():
        measured[stage] = sum(sp.duration_s for sp in children
                              if sp.name in names)
    modelled: dict[str, float] = {}
    for stage, names in MODEL_STAGES[(codec, dir_)].items():
        modelled[stage] = sum(kernel_s.get(n, 0.0) for n in names)

    m_total = sum(measured.values())
    mod_total = sum(modelled.values())
    report = CrosscheckReport(codec=codec, direction=dir_,
                              device=device.name, n_elements=n_elements,
                              compressed_bytes=compressed,
                              measured_total_s=m_total,
                              modelled_total_s=mod_total)
    for stage in MODEL_STAGES[(codec, dir_)]:
        meas = measured.get(stage, 0.0)
        mod = modelled.get(stage, 0.0)
        report.rows.append(StageRow(
            stage=stage, measured_s=meas,
            measured_share=meas / m_total if m_total else 0.0,
            modelled_s=mod,
            modelled_share=mod / mod_total if mod_total else 0.0))
    return report
