"""Always-on flight recorder: bounded per-run records and the run ledger.

Span tracing (:mod:`repro.telemetry`) answers "what happened inside this
one run I chose to trace"; it is off by default and records nothing in
normal operation. The flight recorder answers the production question —
"what have the last N runs looked like" — and is therefore **on by
default**: every top-level pipeline run (``compress`` / ``decompress``),
every runtime batch (parallel slabs, field maps) and every archive
pack/unpack appends one compact :class:`RunRecord` to a bounded ring
buffer, even while span tracing is off.

A record carries the codec, error bound, shape, byte volumes, wall time
split per top-level stage, worker count, per-run cache behaviour (hit /
miss / eviction deltas of every cache in
:mod:`repro.telemetry.caches`), peak-memory high-water marks (own
process plus merged worker processes), the lossless plan the
orchestrator chose, and — when the opt-in quality auditor ran — the
sampled error/entropy summary.

The ring persists on demand as a JSONL **run ledger**
(:func:`write_ledger` / :func:`read_ledger`) which ``repro stats`` and
``repro doctor`` aggregate: per-stage latency percentiles, compression-
ratio distributions, cache health, anomaly flags. See
``docs/OBSERVABILITY.md``.

Overhead discipline mirrors the span tracer: the **disabled** path is a
single flag check returning a shared no-op capture (the unit suite
asserts sub-microsecond per append), and the enabled path costs two
cache snapshots plus a handful of ``perf_counter`` reads per run —
well under 1% of a real pipeline run. Set ``REPRO_FLIGHT_RECORDER=0``
in the environment to start disabled.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import tracemalloc
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry import caches

__all__ = ["RunRecord", "RunCapture", "capture", "current", "annotate",
           "count", "suppressed", "records", "clear", "set_capacity",
           "capacity", "enabled", "enable", "disable",
           "to_jsonl", "from_jsonl", "write_ledger", "read_ledger",
           "rotate_ledger", "worker_baseline", "worker_aux", "aggregate",
           "model_deviation", "subscribe", "unsubscribe",
           "mint_id", "propagation_context", "trace_scope",
           "current_trace_id", "DEFAULT_CAPACITY", "DEFAULT_LEDGER_KEEP",
           "LEDGER_SCHEMA"]

#: run records kept in the ring before the oldest is dropped
DEFAULT_CAPACITY = 1024

#: rotated ledger segments kept next to the live file (``path.1``..``.N``)
DEFAULT_LEDGER_KEEP = 4

#: ledger line format version, stamped as ``"schema"`` on every line.
#: History: 1 = original ring dump, 2 = trace lineage fields (written as
#: the legacy ``"v"`` key), 3 = explicit ``schema`` stamp + the sampled
#: field fingerprint in ``attrs``. Readers accept unversioned /
#: ``"v"``-keyed lines (pre-schema-3 ledgers) and reject future majors.
LEDGER_SCHEMA = 3

#: worker-aux cache counters folded into the parent record
_WORKER_CACHE_KEYS = ("hits", "misses", "evictions")


def _peak_rss_kb() -> int:
    """Process peak resident set size in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


@dataclass
class RunRecord:
    """One completed top-level run, as recorded in the ring / ledger."""

    seq: int
    kind: str                     # compress / decompress / runtime.* / ...
    ts: float                     # unix time at record close
    wall_s: float
    status: str = "ok"
    codec: str | None = None
    stages: dict = field(default_factory=dict)      # stage -> seconds
    attrs: dict = field(default_factory=dict)       # shape, eb, bytes ...
    caches: dict = field(default_factory=dict)      # cache -> delta dict
    counters: dict = field(default_factory=dict)
    memory: dict = field(default_factory=dict)      # peak_rss_kb, ...
    worker: dict = field(default_factory=dict)      # merged worker stats
    trace_id: str | None = None   # one id per end-to-end request tree
    run_id: str | None = None     # this record's own id within the trace
    parent_run_id: str | None = None

    @property
    def bytes_in(self) -> int:
        return int(self.attrs.get("bytes_in", 0) or 0)

    @property
    def bytes_out(self) -> int:
        return int(self.attrs.get("bytes_out", 0) or 0)

    @property
    def ratio(self) -> float:
        """Compression ratio (raw / compressed), direction-aware."""
        raw, comp = self.bytes_in, self.bytes_out
        if self.kind.startswith("decompress") or ".decompress" in self.kind \
                or self.kind.endswith((".load", ".unpack", ".read")):
            raw, comp = comp, raw
        return raw / comp if comp else 0.0

    @property
    def raw_bytes(self) -> int:
        """Uncompressed side of the run (throughput denominator)."""
        return max(self.bytes_in, self.bytes_out)

    @property
    def throughput_mb_s(self) -> float:
        return self.raw_bytes / self.wall_s / 1e6 if self.wall_s else 0.0

    @property
    def fingerprint(self) -> str | None:
        """The sampled field-content fingerprint, when the run carried
        one (``None`` tolerantly for pre-schema-3 ledger lines)."""
        fp = self.attrs.get("fingerprint")
        return str(fp) if fp else None

    def to_dict(self) -> dict:
        out = {"schema": LEDGER_SCHEMA, "seq": self.seq, "kind": self.kind,
               "ts": self.ts, "wall_s": self.wall_s,
               "status": self.status, "codec": self.codec,
               "stages": self.stages, "attrs": self.attrs,
               "caches": self.caches, "counters": self.counters,
               "memory": self.memory, "worker": self.worker}
        # trace lineage only when present: version-1 ledgers stay parseable
        # and records predating the ops plane stay byte-compact
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.run_id:
            out["run_id"] = self.run_id
        if self.parent_run_id:
            out["parent_run_id"] = self.parent_run_id
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "RunRecord":
        return cls(seq=int(obj.get("seq", 0)),
                   kind=str(obj.get("kind", "?")),
                   ts=float(obj.get("ts", 0.0)),
                   wall_s=float(obj.get("wall_s", 0.0)),
                   status=str(obj.get("status", "ok")),
                   codec=obj.get("codec"),
                   stages=dict(obj.get("stages", {})),
                   attrs=dict(obj.get("attrs", {})),
                   caches=dict(obj.get("caches", {})),
                   counters=dict(obj.get("counters", {})),
                   memory=dict(obj.get("memory", {})),
                   worker=dict(obj.get("worker", {})),
                   trace_id=obj.get("trace_id"),
                   run_id=obj.get("run_id"),
                   parent_run_id=obj.get("parent_run_id"))


# -- module state -----------------------------------------------------------

_enabled = os.environ.get("REPRO_FLIGHT_RECORDER", "1").lower() \
    not in ("0", "off", "false")
_lock = threading.Lock()
_ring: deque = deque(maxlen=DEFAULT_CAPACITY)
_seq = 0
_tls = threading.local()
_subscribers: dict[int, object] = {}
_sub_token = 0


def _reset_after_fork() -> None:
    """Start a forked child with a clean per-process recorder.

    A fork-started pool worker inherits the parent's memory image:
    captures open in the parent sit on the child's thread-local stack
    (they will never exit there, and would wrongly parent every worker
    capture), the ring holds parent records the worker must not re-ship,
    and subscribers (an ops server's SSE fan-out, a ledger persister)
    reference event loops and files that only exist in the parent. Trace
    identity in a worker comes exclusively from the propagated payload
    context (:func:`trace_scope`), so everything inherited is dropped.
    """
    global _lock, _seq
    _lock = threading.Lock()      # parent may have held it mid-fork
    _ring.clear()
    _seq = 0
    _subscribers.clear()
    _tls.stack = []
    _tls.trace_ctx = None
    _tls.suppress = 0


if hasattr(os, "register_at_fork"):   # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_after_fork)


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def enabled() -> bool:
    """Is the flight recorder currently on?"""
    return _enabled


def enable() -> None:
    """Turn the recorder on (it starts on unless REPRO_FLIGHT_RECORDER=0)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the recorder off (the ring and its records are kept)."""
    global _enabled
    _enabled = False


@contextmanager
def suppressed():
    """Suppress record creation on this thread for the ``with`` body.

    Used where an internal run must not pollute the ledger — e.g. the
    quality auditor's verification decompress inside a compress record.
    """
    depth = getattr(_tls, "suppress", 0)
    _tls.suppress = depth + 1
    try:
        yield
    finally:
        _tls.suppress = depth


def set_capacity(n: int) -> int:
    """Resize the ring (keeps the newest records); returns the old cap."""
    global _ring
    if n < 1:
        raise ValueError(f"recorder capacity must be >= 1, got {n}")
    with _lock:
        old = _ring.maxlen or DEFAULT_CAPACITY
        _ring = deque(_ring, maxlen=int(n))
    return old


def capacity() -> int:
    return _ring.maxlen or DEFAULT_CAPACITY


def records() -> list[RunRecord]:
    """Snapshot of the ring, oldest first."""
    with _lock:
        return list(_ring)


def clear() -> None:
    """Drop every record (mainly for tests)."""
    with _lock:
        _ring.clear()


def _append(rec: RunRecord) -> None:
    with _lock:
        _ring.append(rec)
        subs = list(_subscribers.values())
    # notify outside the lock: a slow subscriber (an SSE fan-out, a
    # ledger persister) must never stall the recording thread's ring
    for fn in subs:
        try:
            fn(rec)
        except Exception:       # pragma: no cover - defensive: a broken
            pass                # subscriber must not fail the run


def _alloc_seq() -> int:
    global _seq
    with _lock:
        _seq += 1
        return _seq


def subscribe(fn) -> int:
    """Call ``fn(record)`` for every record appended to the ring.

    Returns a token for :func:`unsubscribe`. Callbacks run on whichever
    thread closed the run capture; they must be fast and must not raise
    (exceptions are swallowed). This is the live-ops hook: the ops
    server's SSE stream and ledger persister attach here.
    """
    global _sub_token
    with _lock:
        _sub_token += 1
        _subscribers[_sub_token] = fn
        return _sub_token


def unsubscribe(token: int) -> None:
    """Detach a subscriber registered with :func:`subscribe`."""
    with _lock:
        _subscribers.pop(token, None)


# -- trace context -----------------------------------------------------------

def mint_id() -> str:
    """A fresh 64-bit hex trace/run id."""
    return os.urandom(8).hex()


def current_trace_id() -> str | None:
    """The trace id of this thread's innermost open capture (or the
    foreign context installed by :func:`trace_scope`), if any."""
    cap = current()
    if cap is not None:
        return cap.trace_id
    ctx = getattr(_tls, "trace_ctx", None)
    return ctx.get("trace_id") if ctx else None


def propagation_context() -> dict | None:
    """The ``{"trace_id", "run_id"}`` pair to ship across a process (or
    task) boundary so remote captures stitch under this trace.

    Returns the innermost open capture's identity, the foreign context
    installed by :func:`trace_scope` when no capture is open, or ``None``
    outside any traced run.
    """
    cap = current()
    if cap is not None:
        return {"trace_id": cap.trace_id, "run_id": cap.run_id}
    ctx = getattr(_tls, "trace_ctx", None)
    return dict(ctx) if ctx else None


@contextmanager
def trace_scope(ctx: dict | None):
    """Adopt a propagated trace context for the ``with`` body.

    Pool workers wrap their task in this so every capture they open
    inherits the parent's ``trace_id`` (and records the parent capture's
    ``run_id`` as ``parent_run_id``). ``None`` is accepted and means "no
    inherited context" — callers can pass a payload field through
    unconditionally.
    """
    prev = getattr(_tls, "trace_ctx", None)
    _tls.trace_ctx = dict(ctx) if ctx else None
    try:
        yield
    finally:
        _tls.trace_ctx = prev


# -- capture ----------------------------------------------------------------

class _NullStage:
    """Shared do-nothing stage timer (recorder disabled/suppressed)."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_STAGE = _NullStage()


class _NullCapture:
    """Shared do-nothing capture returned while the recorder is off."""

    __slots__ = ()

    trace_id = None          # class attrs: the no-op carries no lineage
    run_id = None
    parent_run_id = None

    def stage(self, name: str) -> _NullStage:
        return _NULL_STAGE

    def set(self, **attrs) -> "_NullCapture":
        return self

    def count(self, name: str, value: float = 1.0) -> "_NullCapture":
        return self

    def merge_worker(self, aux) -> "_NullCapture":
        return self

    def __enter__(self) -> "_NullCapture":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CAPTURE = _NullCapture()


class _Stage:
    """Accumulating stage timer inside one capture."""

    __slots__ = ("_cap", "_name", "_t0")

    def __init__(self, cap: "RunCapture", name: str):
        self._cap = cap
        self._name = name

    def __enter__(self) -> "_Stage":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        stages = self._cap._stages
        stages[self._name] = stages.get(self._name, 0.0) \
            + time.perf_counter() - self._t0
        return False


class RunCapture:
    """Context manager building one :class:`RunRecord`.

    Opened by :func:`capture` at every top-level run site. Stage wall
    times accumulate via :meth:`stage`, arbitrary attributes via
    :meth:`set`, event counters via :meth:`count`, and worker-process
    stats via :meth:`merge_worker`; cache deltas and memory high-water
    marks are collected automatically on exit.
    """

    __slots__ = ("kind", "_attrs", "_stages", "_counters", "_worker",
                 "_pids", "_t0", "_snap0", "trace_id", "run_id",
                 "parent_run_id")

    def __init__(self, kind: str, **attrs):
        self.kind = kind
        self._attrs = attrs
        self._stages: dict[str, float] = {}
        self._counters: dict[str, float] = {}
        self._worker: dict[str, float] = {}
        self._pids: set[int] = set()
        self.trace_id: str | None = None    # resolved on __enter__
        self.run_id: str | None = None
        self.parent_run_id: str | None = None

    def stage(self, name: str) -> _Stage:
        """Time one top-level stage (re-entry accumulates)."""
        return _Stage(self, name)

    def set(self, **attrs) -> "RunCapture":
        """Attach attributes to the record; returns self for chaining."""
        self._attrs.update(attrs)
        return self

    def count(self, name: str, value: float = 1.0) -> "RunCapture":
        """Bump a per-record event counter."""
        self._counters[name] = self._counters.get(name, 0.0) + value
        return self

    def merge_worker(self, aux: dict | None) -> "RunCapture":
        """Fold one worker task's aux stats (see :func:`worker_aux`)
        into this record: cache counters sum, memory peaks take max, and
        the worker's own run records — shipped across the process
        boundary because worker rings die with the worker — land in this
        ring ahead of the parent record, stitched by ``trace_id``."""
        if not aux:
            return self
        w = self._worker
        w["tasks"] = w.get("tasks", 0) + 1
        for key in ("peak_rss_kb", "tracemalloc_peak_kb"):
            if aux.get(key):
                w[key] = max(w.get(key, 0), int(aux[key]))
        wc = aux.get("caches") or {}
        for key in _WORKER_CACHE_KEYS:
            if wc.get(key):
                w[f"cache_{key}"] = w.get(f"cache_{key}", 0) + int(wc[key])
        if aux.get("pid"):
            self._pids.add(int(aux["pid"]))
        for obj in aux.get("records") or ():
            rec = RunRecord.from_dict(obj)
            rec.seq = _alloc_seq()       # worker seqs restart per process
            if aux.get("pid"):
                rec.attrs.setdefault("worker_pid", int(aux["pid"]))
            _append(rec)
        return self

    def __enter__(self) -> "RunCapture":
        stack = _stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_run_id = parent.run_id
        else:
            ctx = getattr(_tls, "trace_ctx", None)
            if ctx:
                self.trace_id = ctx.get("trace_id") or mint_id()
                self.parent_run_id = ctx.get("run_id")
            else:
                self.trace_id = mint_id()
        self.run_id = mint_id()
        stack.append(self)
        self._snap0 = caches.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        delta = caches.diff(self._snap0, caches.snapshot())
        memory = {"peak_rss_kb": _peak_rss_kb()}
        if tracemalloc.is_tracing():
            memory["tracemalloc_peak_kb"] = \
                tracemalloc.get_traced_memory()[1] // 1024
        worker = dict(self._worker)
        if self._pids:
            worker["n_pids"] = len(self._pids)
        rec = RunRecord(
            seq=_alloc_seq(), kind=self.kind, ts=time.time(),
            wall_s=wall,
            status="error" if exc_type is not None else "ok",
            codec=self._attrs.pop("codec", None),
            stages=self._stages, attrs=self._attrs,
            caches={name: d for name, d in delta.items()
                    if d["lookups"] or d["evictions"]},
            counters=self._counters, memory=memory, worker=worker,
            trace_id=self.trace_id, run_id=self.run_id,
            parent_run_id=self.parent_run_id)
        _append(rec)
        return False


def capture(kind: str, **attrs):
    """Open a run capture; a shared no-op while disabled/suppressed."""
    if not _enabled or getattr(_tls, "suppress", 0):
        return _NULL_CAPTURE
    return RunCapture(kind, **attrs)


def current() -> RunCapture | None:
    """This thread's innermost open capture, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def annotate(**attrs) -> None:
    """Attach attributes to the current capture (no-op without one).

    This is the in-process trace-context propagation hook: layers deep
    inside a run (the lossless orchestrator, the pool) stamp their
    decisions onto whichever record is being built.
    """
    cap = current()
    if cap is not None:
        cap.set(**attrs)


def count(name: str, value: float = 1.0) -> None:
    """Bump a counter on the current capture (no-op without one)."""
    cap = current()
    if cap is not None:
        cap.count(name, value)


# -- worker-process stat propagation ----------------------------------------

def worker_baseline() -> dict[str, int]:
    """Cache-counter totals plus the ring's sequence watermark at
    worker-task start (cheap, one small dict); pass the result to
    :func:`worker_aux` at task end."""
    base = caches.snapshot_totals()
    base["_seq"] = _seq
    return base


def worker_aux(baseline: dict[str, int] | None = None) -> dict:
    """Aux stats a pool worker ships back with its task result: its pid,
    peak-RSS / tracemalloc high-water marks, cache-counter deltas since
    ``baseline``, and — so worker ledger entries survive the process
    boundary and stitch under the parent trace — every run record this
    worker appended past the baseline's sequence watermark. Merged into
    the parent record via :meth:`RunCapture.merge_worker`."""
    now = caches.snapshot_totals()
    base = baseline or {}
    aux = {"pid": os.getpid(), "peak_rss_kb": _peak_rss_kb(),
           "caches": {k: now.get(k, 0) - base.get(k, 0)
                      for k in _WORKER_CACHE_KEYS}}
    if baseline is not None:
        since = int(base.get("_seq", 0))
        shipped = [r.to_dict() for r in records() if r.seq > since]
        if shipped:
            aux["records"] = shipped
    if tracemalloc.is_tracing():  # pragma: no cover - opt-in profiling
        aux["tracemalloc_peak_kb"] = \
            tracemalloc.get_traced_memory()[1] // 1024
    return aux


# -- ledger serialization ---------------------------------------------------

def to_jsonl(recs: list[RunRecord] | None = None) -> str:
    """Serialize records (default: the ring) as JSON lines."""
    recs = records() if recs is None else recs
    return "".join(json.dumps(r.to_dict(), default=str) + "\n"
                   for r in recs)


def _check_schema(obj: dict, lineno: int) -> None:
    """Reject ledger lines this build cannot faithfully parse.

    Unversioned lines (and the legacy ``"v"`` stamp) predate the
    explicit ``schema`` key and are accepted as-is — old ledgers keep
    reading. A ``schema`` *newer* than :data:`LEDGER_SCHEMA` means the
    line was written by a future build whose fields this reader would
    silently drop, so it is rejected with a clear error instead.
    """
    ver = obj.get("schema", obj.get("v"))
    if ver is None:
        return
    if not isinstance(ver, (int, float)) or isinstance(ver, bool):
        raise ValueError(
            f"ledger line {lineno}: schema version {ver!r} is not "
            f"a number")
    if int(ver) > LEDGER_SCHEMA:
        raise ValueError(
            f"ledger line {lineno}: schema {int(ver)} is newer than "
            f"this build reads (<= {LEDGER_SCHEMA}); upgrade repro to "
            f"analyze this ledger")


def from_jsonl(text: str) -> list[RunRecord]:
    """Parse ledger text back into records (bad lines are rejected).

    Accepts unversioned (pre-schema-3) lines; rejects lines stamped
    with a future schema major (see :func:`_check_schema`).
    """
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"ledger line {lineno} is not JSON: {exc}")
        if not isinstance(obj, dict):
            raise ValueError(f"ledger line {lineno}: expected an object")
        _check_schema(obj, lineno)
        out.append(RunRecord.from_dict(obj))
    return out


def rotate_ledger(path: str, keep: int = DEFAULT_LEDGER_KEEP) -> None:
    """Rotate a ledger file: ``path`` becomes ``path.1``, the previous
    ``path.1`` becomes ``path.2``, ..., and segments past ``keep`` are
    deleted. Missing files are skipped; ``path`` itself is left absent.
    """
    if keep < 1:
        raise ValueError(f"ledger keep must be >= 1, got {keep}")
    oldest = f"{path}.{keep}"
    if os.path.exists(oldest):
        os.remove(oldest)
    for i in range(keep - 1, 0, -1):
        seg = f"{path}.{i}"
        if os.path.exists(seg):
            os.replace(seg, f"{path}.{i + 1}")
    if os.path.exists(path):
        os.replace(path, f"{path}.1")


def write_ledger(path: str, recs: list[RunRecord] | None = None, *,
                 append: bool = False, max_bytes: int | None = None,
                 keep: int = DEFAULT_LEDGER_KEEP) -> int:
    """Persist records (default: the ring) to a JSONL ledger file.

    Returns the number of records written. ``append=True`` adds to an
    existing ledger (long-running services rotating the ring to disk).
    ``max_bytes`` bounds on-disk growth: when the live file has already
    reached the limit the write first rotates it away
    (:func:`rotate_ledger`, keeping the last ``keep`` segments), so an
    always-on ops host holds at most ``(keep + 1) * max_bytes`` or so of
    ledger instead of an unboundedly growing file.
    """
    recs = records() if recs is None else recs
    if max_bytes is not None:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size >= max_bytes:
            rotate_ledger(path, keep=keep)
    with open(path, "a" if append else "w") as f:
        f.write(to_jsonl(recs))
    return len(recs)


def read_ledger(path: str,
                include_rotated: bool = False) -> list[RunRecord]:
    """Load a JSONL run ledger from disk.

    ``include_rotated=True`` also reads the rotation segments next to
    the live file (``path.N`` .. ``path.1``, oldest first) so analysis
    over a rotated ops-host ledger sees the whole retained history.
    """
    parts: list[str] = []
    if include_rotated:
        segs = []
        i = 1
        while os.path.exists(f"{path}.{i}"):
            segs.append(f"{path}.{i}")
            i += 1
        parts.extend(reversed(segs))
    if not (include_rotated and parts and not os.path.exists(path)):
        # a freshly rotated host may have segments but no live file yet
        parts.append(path)
    out: list[RunRecord] = []
    for part in parts:
        with open(part) as f:
            out.extend(from_jsonl(f.read()))
    return out


# -- aggregation (repro stats) ----------------------------------------------

def _percentiles(values: list[float]) -> dict[str, float]:
    vals = sorted(values)
    n = len(vals)
    if n == 0:
        # an empty group (e.g. a ledger with no timed runs) aggregates
        # to defined zeros instead of crashing the whole stats pass
        return {"n": 0, "min": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0, "mean": 0.0}

    def pct(q: float) -> float:
        if n == 1:
            return vals[0]
        pos = q * (n - 1)
        lo = int(pos)
        frac = pos - lo
        hi = min(lo + 1, n - 1)
        return vals[lo] * (1 - frac) + vals[hi] * frac

    return {"n": n, "min": vals[0], "p50": pct(0.50), "p95": pct(0.95),
            "p99": pct(0.99), "max": vals[-1],
            "mean": sum(vals) / n}


def aggregate(recs: list[RunRecord]) -> dict:
    """Aggregate ledger records per ``(kind, codec)`` group.

    Returns ``{group_label: {"n", "errors", "wall_s", "stages",
    "ratio", "throughput_mb_s", "cache_hit_ratio", "workers"}}`` where
    each latency entry is a percentile dict (p50/p95/p99/...).
    """
    groups: dict[str, list[RunRecord]] = {}
    for rec in recs:
        label = rec.kind if rec.codec is None \
            else f"{rec.kind}[{rec.codec}]"
        groups.setdefault(label, []).append(rec)
    out = {}
    for label in sorted(groups):
        rs = groups[label]
        entry: dict = {
            "n": len(rs),
            "errors": sum(1 for r in rs if r.status != "ok"),
            "wall_s": _percentiles([r.wall_s for r in rs]),
        }
        stage_vals: dict[str, list[float]] = {}
        for r in rs:
            for stage, sec in r.stages.items():
                stage_vals.setdefault(stage, []).append(sec)
        entry["stages"] = {s: _percentiles(v)
                           for s, v in sorted(stage_vals.items())}
        ratios = [r.ratio for r in rs if r.ratio > 0]
        if ratios:
            entry["ratio"] = _percentiles(ratios)
        thr = [r.throughput_mb_s for r in rs if r.throughput_mb_s > 0]
        if thr:
            entry["throughput_mb_s"] = _percentiles(thr)
        hits = sum(d.get("hits", 0) for r in rs
                   for d in r.caches.values())
        lookups = hits + sum(d.get("misses", 0) for r in rs
                             for d in r.caches.values())
        if lookups:
            entry["cache_hit_ratio"] = hits / lookups
        workers = [int(r.attrs["workers"]) for r in rs
                   if r.attrs.get("workers")]
        if workers:
            entry["workers"] = max(workers)
        out[label] = entry
    return out


def model_deviation(rec: RunRecord, device: str = "a100",
                    skew_threshold: float = 5.0) -> dict | None:
    """Compare one pipeline record's stage shares against the GPU perf
    model (the ledger-level analogue of the span-tree cross-check).

    Returns ``{"stages": {stage: {"measured_share", "modelled_share",
    "skew", "flagged"}}, "flagged": bool, "modelled_total_s":
    float}`` or ``None`` when the record cannot be modelled (unknown
    codec/direction, missing attributes)."""
    from repro.gpu.device import DEVICES
    from repro.gpu.perfmodel import estimate_throughput
    from repro.telemetry.crosscheck import MEASURED_STAGES, MODEL_STAGES

    if rec.kind not in ("compress", "decompress") or rec.codec is None:
        return None
    if (rec.codec, rec.kind) not in MODEL_STAGES:
        return None
    n_elements = rec.attrs.get("n_elements")
    compressed = rec.bytes_out if rec.kind == "compress" else rec.bytes_in
    if not n_elements or not compressed:
        return None
    lossless = str(rec.attrs.get("lossless", "none"))
    model_lossless = "gle" if lossless in ("gle", "auto") else "none"
    timing = estimate_throughput(rec.codec, rec.kind, int(n_elements),
                                 int(compressed), DEVICES[device],
                                 model_lossless)
    kernel_s = dict(timing.kernels)
    measured = {stage: sum(rec.stages.get(n, 0.0) for n in names)
                for stage, names in MEASURED_STAGES[rec.kind].items()}
    modelled = {stage: sum(kernel_s.get(n, 0.0) for n in names)
                for stage, names
                in MODEL_STAGES[(rec.codec, rec.kind)].items()}
    m_total = sum(measured.values())
    mod_total = sum(modelled.values())
    if not m_total or not mod_total:
        return None
    stages = {}
    flagged = False
    for stage in modelled:
        ms = measured.get(stage, 0.0) / m_total
        os_ = modelled[stage] / mod_total
        skew = ms / os_ if os_ > 0 else (float("inf") if ms else 1.0)
        flag = skew > skew_threshold or \
            (skew > 0 and skew < 1.0 / skew_threshold)
        flagged = flagged or flag
        stages[stage] = {"measured_share": ms, "modelled_share": os_,
                         "skew": skew, "flagged": flag}
    return {"stages": stages, "flagged": flagged,
            "modelled_total_s": mod_total, "device": device}
