"""``repro top``: a live terminal dashboard over the run ledger.

``repro stats`` is a post-mortem; this is the *while it runs* view. The
dashboard subscribes to a record source exactly like the ops plane's SSE
path — each new :class:`~repro.telemetry.recorder.RunRecord` is folded
into a rolling window and an embedded
:class:`~repro.telemetry.analytics.AnalyticsEngine` — and redraws a
plain-ANSI frame every interval: per-group rolling p50/p95/p99 walls,
compression ratio, throughput, cache hit rates, the engine's active
anomalies, and any detected change points with their stage attribution.

Record sources:

* a **ledger file** being appended to by another process
  (:class:`LedgerFollower`: ``tail -f`` semantics, partial-line safe,
  rotation-aware), or
* an **ops server** (``--url http://host:9178``): the ``/runs/stream``
  SSE endpoint, one event per run.

Rendering is deliberately dumb-terminal ANSI (home + clear, no curses
dependency): :meth:`TopDashboard.render` returns the frame as a plain
string, so tests (and ``--once``) can exercise the full pipeline without
a tty.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque

from repro.telemetry import analytics, recorder
from repro.telemetry.recorder import RunRecord

__all__ = ["TopDashboard", "LedgerFollower", "SSEFollower", "run_top",
           "DEFAULT_WINDOW_RECORDS"]

#: rolling records the dashboard aggregates over
DEFAULT_WINDOW_RECORDS = 512

#: ANSI: cursor home + clear to end of screen (less flicker than 2J)
_CLEAR = "\x1b[H\x1b[J"


class TopDashboard:
    """Rolling aggregation + analytics behind one rendered frame."""

    def __init__(self, window: int = DEFAULT_WINDOW_RECORDS):
        self._window: deque[RunRecord] = deque(maxlen=window)
        self._engine = analytics.AnalyticsEngine()
        self._total = 0

    @property
    def engine(self) -> analytics.AnalyticsEngine:
        return self._engine

    def add(self, rec: RunRecord) -> None:
        self._window.append(rec)
        self._engine.observe(rec)
        self._total += 1

    def add_all(self, recs) -> int:
        n = 0
        for rec in recs:
            self.add(rec)
            n += 1
        return n

    def render(self, width: int = 80) -> str:
        """One frame as a plain string (no control sequences)."""
        recs = list(self._window)
        anomalies = self._engine.anomalies()
        change_points = self._engine.change_points()
        overhead = self._engine.overhead()
        clock = time.strftime("%H:%M:%S")
        head = (f"repro top — {clock}  runs {self._total} "
                f"(window {len(recs)})  anomalies {len(anomalies)}  "
                f"change points {len(change_points)}  "
                f"score {overhead['score_mean_us']:.0f}us/run")
        lines = [head[:width], "-" * min(width, len(head))]
        groups = recorder.aggregate(recs)
        if not groups:
            lines.append("(no run records yet)")
        else:
            lines.append(f"{'group':<21} {'n':>4} {'p50':>9} {'p95':>9} "
                         f"{'p99':>9} {'CR':>7} {'MB/s':>8} {'cache':>6}")
            for label, entry in groups.items():
                wall = entry["wall_s"]
                ratio = entry.get("ratio", {}).get("p50")
                thr = entry.get("throughput_mb_s", {}).get("p50")
                hit = entry.get("cache_hit_ratio")
                lines.append(
                    f"{label[:21]:<21} {entry['n']:>4} "
                    f"{wall['p50'] * 1e3:>7.2f}ms "
                    f"{wall['p95'] * 1e3:>7.2f}ms "
                    f"{wall['p99'] * 1e3:>7.2f}ms "
                    + (f"{ratio:>7.2f} " if ratio is not None
                       else f"{'-':>7} ")
                    + (f"{thr:>8.1f} " if thr is not None
                       else f"{'-':>8} ")
                    + (f"{hit:>6.0%}" if hit is not None else f"{'-':>6}"))
                stages = entry.get("stages", {})
                if stages:
                    total = sum(s["p50"] for s in stages.values()) or 1.0
                    shares = "  ".join(
                        f"{name} {s['p50'] / total:.0%}"
                        for name, s in sorted(
                            stages.items(),
                            key=lambda kv: -kv[1]["p50"])[:5])
                    lines.append(f"    stages(p50): {shares}"[:width])
        if anomalies:
            lines.append("")
            lines.append(f"active anomalies ({len(anomalies)}):")
            for a in anomalies[-8:]:
                lines.append(("  " + a.format())[:width])
        if change_points:
            lines.append("")
            lines.append(f"change points ({len(change_points)}):")
            for cp in change_points:
                lines.append(("  " + cp.format())[:width])
        return "\n".join(line[:width] for line in lines) + "\n"


class LedgerFollower:
    """``tail -f`` over a JSONL ledger, partial-line and rotation safe.

    Each :meth:`poll` returns records appended since the previous poll.
    A file that shrank (rotated away and restarted) is re-read from the
    start; a missing file yields nothing until it appears; a partial
    last line (a writer mid-append) stays buffered until its newline
    arrives.
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._buffer = ""

    def poll(self) -> list[RunRecord]:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:       # rotation: start over
            self._offset = 0
            self._buffer = ""
        if size == self._offset:
            return []
        with open(self.path) as f:
            f.seek(self._offset)
            chunk = f.read()
            self._offset = f.tell()
        text = self._buffer + chunk
        complete, sep, rest = text.rpartition("\n")
        self._buffer = rest
        if not sep:
            return []
        out = []
        for line in complete.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.extend(recorder.from_jsonl(line))
            except ValueError:
                continue              # torn or foreign line: skip, keep going
        return out


class SSEFollower:
    """Minimal client for the ops server's ``/runs/stream`` endpoint."""

    def __init__(self, url: str, replay: int = 50, timeout: float = 5.0):
        base = url.rstrip("/")
        if not base.endswith("/runs/stream"):
            base = f"{base}/runs/stream"
        self.url = f"{base}?replay={int(replay)}"
        self._timeout = timeout
        self._resp = None
        self._banner_pending = False

    def _connect(self):
        import urllib.request
        self._resp = urllib.request.urlopen(self.url,
                                            timeout=self._timeout)
        # the server opens every stream with one comment banner; only
        # *later* comments are keep-alives marking a frame boundary
        self._banner_pending = True

    def poll(self) -> list[RunRecord]:
        """Records received before the next keep-alive / read timeout."""
        if self._resp is None:
            try:
                self._connect()
            except OSError:
                return []
        out: list[RunRecord] = []
        try:
            while True:
                line = self._resp.readline()
                if not line:          # server went away; reconnect later
                    self._resp = None
                    break
                text = line.decode("utf-8", "replace").strip()
                if text.startswith(":"):
                    if self._banner_pending:    # the connect banner
                        self._banner_pending = False
                        continue
                    break   # keep-alive: a safe point to hand back a frame
                if text.startswith("data:"):
                    try:
                        obj = json.loads(text[5:].strip())
                        out.append(RunRecord.from_dict(obj))
                    except (ValueError, TypeError):
                        continue
        except OSError:               # read timeout: frame boundary
            pass
        return out

    def close(self) -> None:
        if self._resp is not None:
            try:
                self._resp.close()
            except Exception:  # pragma: no cover - already closed
                pass
            self._resp = None


def run_top(ledger: str | None = None, url: str | None = None,
            interval: float = 1.0, frames: int | None = None,
            once: bool = False, out=None) -> int:
    """Drive the dashboard loop (the ``repro top`` entry point).

    ``once`` renders a single frame with no screen control (CI/script
    friendly); otherwise each frame home-and-clears the terminal until
    ``frames`` are drawn or the user interrupts.
    """
    out = sys.stdout if out is None else out
    dash = TopDashboard()
    source = SSEFollower(url) if url else LedgerFollower(ledger)
    try:
        dash.add_all(source.poll())
        if once:
            out.write(dash.render())
            out.flush()
            return 0
        drawn = 0
        while frames is None or drawn < frames:
            out.write(_CLEAR + dash.render())
            out.flush()
            drawn += 1
            if frames is not None and drawn >= frames:
                break
            time.sleep(max(interval, 0.05))
            dash.add_all(source.poll())
    except KeyboardInterrupt:
        pass
    finally:
        if url:
            source.close()
    return 0
