"""Unified cache registry: one introspection surface for every cache.

PRs 2-4 each grew a memoization layer — the Huffman codebook/decode-table
LRUs, the content-keyed autotune cache, the compiled pass-plan LRU, the
orchestrator's header-fingerprint plan cache — and each exposed its own
ad-hoc counters. This module is the single registry they all plug into:

* every cache module calls :func:`register` at import time with a
  zero-argument **provider** returning its current statistics;
* :func:`snapshot` returns one normalized mapping
  ``{cache_name: {hits, misses, evictions, size, limit, size_bytes,
  hit_ratio, lookups}}`` across all of them;
* :func:`repro.telemetry.exporters.to_prometheus` renders the snapshot
  as uniform ``repro_cache_*`` gauges, and the flight recorder
  (:mod:`repro.telemetry.recorder`) diffs snapshots around each run to
  stamp per-run cache behaviour into the run ledger.

Providers may return any subset of the normalized keys; missing values
default to 0 (``limit`` defaults to -1 = unbounded/unknown). Providers
must be cheap (a lock + a small dict copy) — snapshots run on the
always-on recorder path.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["register", "unregister", "registered", "snapshot",
           "snapshot_totals", "diff"]

#: normalized statistic keys every snapshot entry carries
FIELDS = ("hits", "misses", "evictions", "size", "limit", "size_bytes",
          "byte_limit")

#: the monotonically-increasing counters among :data:`FIELDS` — the ones
#: :func:`diff` subtracts; gauges (size, limit, size_bytes, byte_limit)
#: pass through
COUNTER_FIELDS = ("hits", "misses", "evictions")

_lock = threading.Lock()
_providers: dict[str, Callable[[], dict]] = {}

#: modules owning the built-in caches; imported lazily on first snapshot
#: so a bare ``import repro.telemetry`` never drags in the codec stack,
#: while a snapshot always sees every known cache (importing a module
#: that is already loaded is a dict lookup)
_BUILTIN_MODULES = (
    "repro.core.ginterp.plans",
    "repro.core.ginterp.autotune",
    "repro.huffman.canonical",
    "repro.lossless.orchestrator",
)


def register(name: str, provider: Callable[[], dict]) -> None:
    """Register (or replace) a named cache's statistics provider."""
    with _lock:
        _providers[name] = provider


def unregister(name: str) -> None:
    """Remove a provider (tests; caches never unregister in real runs)."""
    with _lock:
        _providers.pop(name, None)


def registered() -> list[str]:
    """Names of every registered cache, sorted."""
    _ensure_builtin()
    with _lock:
        return sorted(_providers)


def _ensure_builtin() -> None:
    import importlib
    for mod in _BUILTIN_MODULES:
        try:
            importlib.import_module(mod)
        except Exception:  # pragma: no cover - a broken codec module
            pass           # must not take introspection down with it


def _normalize(raw: dict) -> dict:
    entry = {k: int(raw.get(k, 0)) for k in FIELDS}
    if "limit" not in raw:
        entry["limit"] = -1
    if "byte_limit" not in raw:
        entry["byte_limit"] = -1  # -1 = no byte budget (entry-count only)
    lookups = entry["hits"] + entry["misses"]
    entry["lookups"] = lookups
    entry["hit_ratio"] = entry["hits"] / lookups if lookups else 0.0
    return entry


def snapshot() -> dict[str, dict]:
    """Normalized statistics for every registered cache."""
    _ensure_builtin()
    with _lock:
        providers = dict(_providers)
    out = {}
    for name in sorted(providers):
        try:
            out[name] = _normalize(providers[name]())
        except Exception:  # pragma: no cover - defensive: one broken
            continue       # provider must not hide the others
    return out


def snapshot_totals() -> dict[str, int]:
    """Cross-cache totals (used by worker processes to ship one small
    dict back to the parent instead of the full per-cache table)."""
    totals = {k: 0 for k in COUNTER_FIELDS}
    totals["size_bytes"] = 0
    for entry in snapshot().values():
        for k in COUNTER_FIELDS:
            totals[k] += entry[k]
        totals["size_bytes"] += entry["size_bytes"]
    return totals


def diff(before: dict[str, dict], after: dict[str, dict]) -> dict[str, dict]:
    """Per-cache counter deltas between two snapshots (gauges pass
    through from ``after``). Caches absent from ``before`` count from 0."""
    out = {}
    for name, now in after.items():
        prev = before.get(name, {})
        entry = {k: now[k] - prev.get(k, 0) for k in COUNTER_FIELDS}
        entry["size"] = now["size"]
        entry["size_growth"] = now["size"] - prev.get("size", 0)
        entry["size_bytes"] = now["size_bytes"]
        entry["byte_limit"] = now.get("byte_limit", -1)
        lookups = entry["hits"] + entry["misses"]
        entry["lookups"] = lookups
        entry["hit_ratio"] = entry["hits"] / lookups if lookups else 0.0
        out[name] = entry
    return out
