"""Live ops plane: an embedded HTTP server over the telemetry stack.

Every observability surface this repo grew — the span registry, the
unified cache registry, the flight-recorder ring/ledger, the doctor, the
SLO engine — was file- or CLI-shaped: you could inspect a run after it
finished, but nothing could *watch* the process while a workload runs.
This module is the missing live plane: a small, stdlib-only asyncio HTTP
server (``repro serve-ops`` on the command line, or
:func:`start_ops_server` embedded in any program) exposing

``/metrics``
    Prometheus exposition text: the span registry's counters/histograms
    and per-span summaries, the uniform ``repro_cache_*`` gauges,
    ``repro_build_info``, the ``repro_slo_*`` error-budget series
    evaluated live over the record window, and the server's own request
    counters. Point a Prometheus scraper at it during a workload.

``/health`` and ``/ready``
    ``/health`` runs the full ``repro doctor`` structural diagnosis
    (plus SLO budget checks) over the live records on every request and
    answers 200/503 — the same verdict ``repro doctor --check`` gives in
    CI, as a load-balancer probe. ``/ready`` answers whether this server
    can serve traffic at all (started, not draining).

``/runs``
    The ledger tail as JSON, and ``/runs/stream`` as a **Server-Sent
    Events** stream pushing each new :class:`RunRecord` the moment its
    capture closes (the recorder's subscriber hook), with optional
    ``?replay=N`` catch-up for late joiners.

``/profile``
    An on-demand sampling profiler of the running process: samples every
    thread's stack for ``?seconds=``, returns collapsed flamegraph-style
    stacks — "why is the worker slow *right now*" without restarting
    anything.

``/analytics``
    The ledger-analytics report (:mod:`repro.telemetry.analytics`)
    computed over the live records: fingerprint-keyed cohort baselines,
    per-run anomaly flags, and change points with stage attribution.
    ``/metrics`` additionally exposes the ``repro_anomaly_*`` /
    ``repro_drift_*`` series from the same report.

The server runs its own event loop on a daemon thread, so embedding it
costs the host program nothing on the hot path: records reach SSE
clients through :func:`repro.telemetry.recorder.subscribe` (a dict
append per run) and every endpoint computes its answer on demand from
shared snapshots. Optionally each record is also persisted to a JSONL
ledger with size-based rotation, so a long-lived ops host keeps a
bounded on-disk history. See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from urllib.parse import parse_qs, urlsplit

from repro import telemetry
from repro.telemetry import analytics, doctor, exporters, recorder
from repro.telemetry import slo as slomod

__all__ = ["OpsServer", "start_ops_server", "DEFAULT_PORT",
           "MAX_PROFILE_SECONDS"]

#: default TCP port (`repro` on a phone keypad would be nonsense; this
#: is simply an unassigned high port)
DEFAULT_PORT = 9178

#: hard cap on one /profile request's sampling duration
MAX_PROFILE_SECONDS = 30.0

_PROFILE_DEFAULT_SECONDS = 1.0
_PROFILE_DEFAULT_HZ = 97          # off the 100 Hz beat of periodic work

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: SSE queue depth per client; a stalled consumer drops records rather
#: than stalling the recorder or growing without bound
_SSE_QUEUE_DEPTH = 256


class OpsServer:
    """The live ops HTTP server; use :func:`start_ops_server`.

    Parameters
    ----------
    host, port:
        Bind address. ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    slos:
        Objectives for ``/metrics`` (``repro_slo_*``) and the
        ``/health`` budget checks; default
        :data:`repro.telemetry.slo.DEFAULT_SLOS`.
    base_records:
        Records loaded from an existing ledger, served (and diagnosed)
        ahead of the live ring — ``repro serve-ops --ledger``.
    persist_path, persist_max_bytes, persist_keep:
        When set, every new record is appended to this JSONL ledger,
        rotated at ``persist_max_bytes`` keeping ``persist_keep``
        segments (:func:`repro.telemetry.recorder.write_ledger`).
    warm_hit_threshold:
        Forwarded to the doctor diagnosis behind ``/health``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 *, slos=None, base_records=None,
                 persist_path: str | None = None,
                 persist_max_bytes: int | None = None,
                 persist_keep: int = recorder.DEFAULT_LEDGER_KEEP,
                 warm_hit_threshold: float | None = None):
        self.host = host
        self.port = port
        self._slos = tuple(slos) if slos is not None \
            else slomod.DEFAULT_SLOS
        self._base = list(base_records or [])
        self._persist_path = persist_path
        self._persist_max_bytes = persist_max_bytes
        self._persist_keep = persist_keep
        self._warm_hit_threshold = warm_hit_threshold
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread_id: int | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None
        self._stop: asyncio.Event | None = None
        self._draining = False
        self._started_at = 0.0
        self._sub_token: int | None = None
        self._clients: set[asyncio.Queue] = set()
        self._requests: dict[str, int] = {}
        self._sse_sent = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self, timeout: float = 10.0) -> "OpsServer":
        """Boot the server on a daemon thread; returns once it is bound
        (raises whatever the bind raised, e.g. address-in-use)."""
        if self._thread is not None:
            raise RuntimeError("ops server already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-opsd", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("ops server did not come up in time")
        if self._boot_error is not None:
            self._thread.join(timeout)
            raise self._boot_error
        self._sub_token = recorder.subscribe(self._on_record)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and shut the server down (idempotent)."""
        if self._sub_token is not None:
            recorder.unsubscribe(self._sub_token)
            self._sub_token = None
        self._draining = True
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:        # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._boot_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._loop_thread_id = threading.get_ident()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle_conn, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            for q in list(self._clients):
                self._offer(q, None)          # wake SSE writers to exit
        # asyncio.run cancels the remaining per-connection tasks

    # -- record fan-out ------------------------------------------------------

    def _on_record(self, rec) -> None:
        """recorder subscriber: runs on whichever thread closed the run."""
        if self._persist_path is not None:
            try:
                recorder.write_ledger(
                    self._persist_path, [rec], append=True,
                    max_bytes=self._persist_max_bytes,
                    keep=self._persist_keep)
            except OSError:    # pragma: no cover - disk full/permission
                pass           # persistence must never fail the run
        loop = self._loop
        if loop is None or loop.is_closed() or self._draining:
            return
        try:
            loop.call_soon_threadsafe(self._broadcast, rec.to_dict())
        except RuntimeError:   # pragma: no cover - loop tearing down
            pass

    def _broadcast(self, obj: dict) -> None:
        for q in list(self._clients):
            self._offer(q, obj)

    @staticmethod
    def _offer(q: asyncio.Queue, item) -> None:
        try:
            q.put_nowait(item)
        except asyncio.QueueFull:
            pass               # slow consumer: drop, never block

    # -- shared state --------------------------------------------------------

    def _records(self) -> list:
        return self._base + recorder.records()

    def _diagnose(self):
        threshold = (doctor.WARM_HIT_THRESHOLD
                     if self._warm_hit_threshold is None
                     else self._warm_hit_threshold)
        return doctor.diagnose(self._records(),
                               warm_hit_threshold=threshold,
                               slos=self._slos)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request must
            try:                  # not take the server down
                await self._respond(writer, 500, "text/plain",
                                    f"internal error: {exc}\n")
            except Exception:     # pragma: no cover - socket gone
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:     # pragma: no cover - already closed
                pass

    async def _handle_request(self, reader, writer) -> None:
        request = await asyncio.wait_for(reader.readline(), 30.0)
        parts = request.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return
        method, target = parts[0], parts[1]
        # drain headers (bounded) — we serve GET only, no bodies
        for _ in range(200):
            line = await asyncio.wait_for(reader.readline(), 30.0)
            if line in (b"\r\n", b"\n", b""):
                break
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        self._requests[path] = self._requests.get(path, 0) + 1
        if method != "GET":
            await self._respond(writer, 405, "text/plain",
                                "GET only\n")
            return
        if path == "/metrics":
            await self._respond(
                writer, 200,
                "text/plain; version=0.0.4; charset=utf-8",
                self._metrics_text())
        elif path == "/health":
            await self._serve_health(writer)
        elif path == "/ready":
            await self._serve_ready(writer)
        elif path == "/runs":
            await self._serve_runs(writer, query)
        elif path == "/runs/stream":
            await self._serve_sse(writer, query)
        elif path == "/slo":
            statuses = slomod.evaluate(self._records(), self._slos)
            await self._respond_json(
                writer, 200, {"slos": [st.to_dict() for st in statuses]})
        elif path == "/profile":
            await self._serve_profile(writer, query)
        elif path == "/analytics":
            await self._respond_json(writer, 200,
                                     analytics.analyze(self._records()))
        elif path == "/":
            await self._respond_json(writer, 200, {
                "service": "repro.telemetry.opsd",
                "endpoints": ["/metrics", "/health", "/ready", "/runs",
                              "/runs/stream", "/slo", "/analytics",
                              "/profile"]})
        else:
            await self._respond(writer, 404, "text/plain",
                                f"no route {path}\n")

    async def _respond(self, writer, status: int, ctype: str,
                       body: str, extra: str = "") -> None:
        payload = body.encode()
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, '?')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n{extra}\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _respond_json(self, writer, status: int, obj) -> None:
        await self._respond(writer, status, "application/json",
                            json.dumps(obj, default=str) + "\n")

    # -- endpoints -----------------------------------------------------------

    def _metrics_text(self) -> str:
        lines = [exporters.to_prometheus(
            telemetry.get_registry()).rstrip("\n")]
        records = self._records()
        statuses = slomod.evaluate(records, self._slos)
        lines.extend(slomod.metrics_lines(statuses))
        lines.extend(analytics.metrics_lines(analytics.analyze(records)))
        lines.append("# HELP repro_ops_requests_total ops-plane HTTP "
                     "requests served")
        lines.append("# TYPE repro_ops_requests_total counter")
        for path in sorted(self._requests):
            lines.append(
                f'repro_ops_requests_total{{endpoint='
                f'"{exporters.escape_label(path)}"}} '
                f"{self._requests[path]}")
        lines.append("# HELP repro_ops_uptime_seconds seconds since the "
                     "ops server booted")
        lines.append("# TYPE repro_ops_uptime_seconds gauge")
        lines.append(f"repro_ops_uptime_seconds "
                     f"{time.time() - self._started_at:g}")
        lines.append("# HELP repro_ops_sse_clients connected /runs/stream "
                     "consumers")
        lines.append("# TYPE repro_ops_sse_clients gauge")
        lines.append(f"repro_ops_sse_clients {len(self._clients)}")
        lines.append("# HELP repro_ops_ledger_records run records "
                     "visible to this server (base + live ring)")
        lines.append("# TYPE repro_ops_ledger_records gauge")
        lines.append(f"repro_ops_ledger_records {len(self._records())}")
        return "\n".join(lines) + "\n"

    async def _serve_health(self, writer) -> None:
        diag = self._diagnose()
        body = {
            "status": "healthy" if diag.healthy else "unhealthy",
            "n_records": diag.n_records,
            "anomalies": [c.name for c in diag.anomalies],
            "checks": [{"name": c.name, "ok": c.ok, "gating": c.gating,
                        "detail": c.detail} for c in diag.checks],
        }
        await self._respond_json(writer, 200 if diag.healthy else 503,
                                 body)

    async def _serve_ready(self, writer) -> None:
        ready = not self._draining
        body = {
            "status": "ready" if ready else "draining",
            "uptime_s": time.time() - self._started_at,
            "n_records": len(self._records()),
            "sse_clients": len(self._clients),
            "recorder_enabled": recorder.enabled(),
        }
        await self._respond_json(writer, 200 if ready else 503, body)

    async def _serve_runs(self, writer, query: dict) -> None:
        try:
            n = max(1, int(query.get("n", 50)))
        except ValueError:
            await self._respond(writer, 400, "text/plain",
                                "n must be an integer\n")
            return
        recs = self._records()
        await self._respond_json(writer, 200, {
            "n_total": len(recs),
            "records": [r.to_dict() for r in recs[-n:]],
        })

    async def _serve_sse(self, writer, query: dict) -> None:
        try:
            replay = max(0, int(query.get("replay", 0)))
        except ValueError:
            await self._respond(writer, 400, "text/plain",
                                "replay must be an integer\n")
            return
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        writer.write(b": repro ops run stream\n\n")
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue(maxsize=_SSE_QUEUE_DEPTH)
        if replay:
            for rec in self._records()[-replay:]:
                self._offer(queue, rec.to_dict())
        self._clients.add(queue)
        try:
            while not self._draining:
                try:
                    item = await asyncio.wait_for(queue.get(), 15.0)
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                if item is None:          # shutdown sentinel
                    break
                data = json.dumps(item, default=str)
                writer.write(f"id: {item.get('seq', 0)}\n"
                             f"event: run\ndata: {data}\n\n".encode())
                await writer.drain()
                self._sse_sent += 1
        finally:
            self._clients.discard(queue)

    async def _serve_profile(self, writer, query: dict) -> None:
        try:
            seconds = float(query.get("seconds",
                                      _PROFILE_DEFAULT_SECONDS))
            hz = float(query.get("hz", _PROFILE_DEFAULT_HZ))
        except ValueError:
            await self._respond(writer, 400, "text/plain",
                                "seconds/hz must be numbers\n")
            return
        if not (0 < seconds <= MAX_PROFILE_SECONDS) or not (0 < hz <= 1000):
            await self._respond(
                writer, 400, "text/plain",
                f"need 0 < seconds <= {MAX_PROFILE_SECONDS:g} and "
                f"0 < hz <= 1000\n")
            return
        text = await self._sample_profile(seconds, hz)
        await self._respond(writer, 200, "text/plain; charset=utf-8",
                            text)

    async def _sample_profile(self, seconds: float, hz: float) -> str:
        """Sample every thread's stack from the event loop.

        The sampler itself runs on the loop thread (its own frames are
        excluded), sleeping cooperatively between samples, so the server
        stays responsive while profiling. Output is the collapsed
        flamegraph format: ``outer;...;inner count`` per distinct stack.
        """
        interval = 1.0 / hz
        counts: dict[tuple, int] = {}
        n_samples = 0
        loop = asyncio.get_running_loop()
        deadline = loop.time() + seconds
        own = self._loop_thread_id
        while loop.time() < deadline:
            for tid, frame in sys._current_frames().items():
                if tid == own:
                    continue
                stack = []
                while frame is not None:
                    code = frame.f_code
                    stack.append(f"{code.co_name} "
                                 f"({code.co_filename.rsplit('/', 1)[-1]}"
                                 f":{frame.f_lineno})")
                    frame = frame.f_back
                key = tuple(reversed(stack))   # outermost first
                counts[key] = counts.get(key, 0) + 1
            n_samples += 1
            await asyncio.sleep(interval)
        lines = [f"# sampling profile: {n_samples} sample(s) over "
                 f"{seconds:g}s at {hz:g} Hz, "
                 f"{len(counts)} distinct stack(s) "
                 f"(ops-server thread excluded)"]
        for key, count in sorted(counts.items(),
                                 key=lambda kv: -kv[1])[:200]:
            lines.append(f"{';'.join(key)} {count}")
        return "\n".join(lines) + "\n"


def start_ops_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                     **kwargs) -> OpsServer:
    """Create and start an :class:`OpsServer`; returns it once bound.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.port``). Keyword arguments are forwarded to
    :class:`OpsServer`. Call ``server.stop()`` when done — or don't: the
    loop runs on a daemon thread and dies with the process.
    """
    return OpsServer(host, port, **kwargs).start()
