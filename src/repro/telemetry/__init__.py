"""Pipeline-wide telemetry: tracing spans, counters, and histograms.

Every hot path in this reproduction (the cuSZ-i pipeline, the G-Interp
traversal, the Huffman codec, the lossless wrap, slab streaming, the
transfer pipeline, the experiment harness) is instrumented with nested
:func:`span` context managers. Tracing is **off by default** and the
disabled path is a single module-level flag check returning a shared
no-op object, so instrumentation costs nothing in normal runs — the
paper's own evaluation discipline (per-kernel times, per-segment byte
volumes) made first-class instead of ad hoc.

Usage::

    from repro import telemetry

    with telemetry.recording() as reg:
        blob = compress(field, codec="cuszi")
    print(telemetry.exporters.render_tree(reg.spans))

Spans carry wall-time plus arbitrary attributes (``bytes_in``,
``bytes_out``, ``segment_nbytes`` ...); counters and histograms live in
the same process-local :class:`Registry`. Exporters (JSON-lines,
span-tree text, Prometheus text) are in :mod:`repro.telemetry.exporters`;
the measured-vs-modelled GPU cross-check is in
:mod:`repro.telemetry.crosscheck`. See ``docs/OBSERVABILITY.md`` for the
span taxonomy.

Independent of span tracing, the **flight recorder**
(:mod:`repro.telemetry.recorder`) keeps an always-on bounded ring of
per-run records; :mod:`repro.telemetry.caches` is the unified cache
registry feeding both; :mod:`repro.telemetry.quality` holds the opt-in
sampled quality auditor and :mod:`repro.telemetry.sentinel` the bench
regression checks.

Everything here is zero-dependency (stdlib only) and thread-safe: spans
started on different threads nest independently (thread-local span
stacks) and land in one shared registry.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Registry", "span", "record_span", "merge_spans",
           "incr", "observe", "enable", "disable", "enabled",
           "get_registry", "recording"]


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    name: str
    span_id: int
    parent_id: int | None
    start: float                 # seconds since the registry epoch
    duration_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"
    thread: int = 0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attrs.update(attrs)
        return self


class _NullSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into a registry."""

    __slots__ = ("_reg", "_span")

    def __init__(self, reg: "Registry", name: str, attrs: dict):
        self._reg = reg
        self._span = Span(name=name, span_id=reg._alloc_id(),
                          parent_id=None, start=0.0, attrs=attrs,
                          thread=threading.get_ident())

    def __enter__(self) -> Span:
        reg = self._reg
        stack = reg._stack()
        sp = self._span
        sp.parent_id = stack[-1] if stack else None
        stack.append(sp.span_id)
        sp.start = time.perf_counter() - reg.epoch
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        reg = self._reg
        sp = self._span
        sp.duration_s = time.perf_counter() - reg.epoch - sp.start
        if exc_type is not None:
            sp.status = "error"
            sp.attrs.setdefault("error", exc_type.__name__)
        stack = reg._stack()
        if stack and stack[-1] == sp.span_id:
            stack.pop()
        reg._append(sp)
        return False


class Registry:
    """Process-local store of spans, counters, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 1
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _alloc_id(self) -> int:
        with self._lock:
            sid = self._next_id
            self._next_id += 1
        return sid

    def _append(self, sp: Span) -> None:
        with self._lock:
            self.spans.append(sp)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs) -> _LiveSpan:
        """Open a nested span; use as a context manager."""
        return _LiveSpan(self, name, attrs)

    def record_span(self, name: str, duration_s: float,
                    parent_id: int | None = None, **attrs) -> Span:
        """Record an already-measured (or modelled) span.

        Used where durations come from a model rather than a clock — e.g.
        the transfer pipeline's roofline stage times. Parents to the
        current thread's open span unless ``parent_id`` is given.
        """
        if parent_id is None:
            stack = self._stack()
            parent_id = stack[-1] if stack else None
        sp = Span(name=name, span_id=self._alloc_id(),
                  parent_id=parent_id,
                  start=time.perf_counter() - self.epoch,
                  duration_s=float(duration_s), attrs=attrs,
                  thread=threading.get_ident())
        self._append(sp)
        return sp

    def merge_spans(self, spans: list[Span], parent_id: int | None = None,
                    offset_s: float = 0.0, **attrs) -> list[Span]:
        """Graft spans recorded in another registry into this one.

        Used to fold worker-process traces back into the parent trace:
        span ids are re-allocated here (worker ids restart at 1 and would
        collide), parent links are remapped, and starts are shifted by
        ``offset_s`` so the workers' private epochs line up with this
        registry's clock. Roots of the merged set attach under
        ``parent_id`` (default: the caller's currently open span), and
        ``attrs`` (e.g. a worker index) are stamped onto every span.
        """
        if parent_id is None:
            stack = self._stack()
            parent_id = stack[-1] if stack else None
        idmap = {sp.span_id: self._alloc_id() for sp in spans}
        merged = [Span(name=sp.name, span_id=idmap[sp.span_id],
                       parent_id=idmap.get(sp.parent_id, parent_id),
                       start=sp.start + offset_s,
                       duration_s=sp.duration_s,
                       attrs={**sp.attrs, **attrs},
                       status=sp.status, thread=sp.thread)
                  for sp in spans]
        with self._lock:
            self.spans.extend(merged)
        return merged

    def incr(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to a named monotonic counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a named histogram."""
        with self._lock:
            self.histograms.setdefault(name, []).append(float(value))


# -- module-level switchboard ---------------------------------------------

_enabled = False
_registry = Registry()


def enabled() -> bool:
    """Is tracing currently on?"""
    return _enabled


def get_registry() -> Registry:
    """The active registry (even while disabled)."""
    return _registry


def enable(registry: Registry | None = None) -> Registry:
    """Turn tracing on, optionally into a caller-provided registry."""
    global _enabled, _registry
    if registry is not None:
        _registry = registry
    _enabled = True
    return _registry


def disable() -> None:
    """Turn tracing off (the registry and its data are kept)."""
    global _enabled
    _enabled = False


@contextmanager
def recording(registry: Registry | None = None):
    """Enable tracing into a fresh registry for the ``with`` body.

    Yields the registry; restores the prior enabled-state and registry on
    exit, so nested/parallel test usage cannot leak state.
    """
    global _enabled, _registry
    prev_enabled, prev_registry = _enabled, _registry
    reg = registry if registry is not None else Registry()
    _registry = reg
    _enabled = True
    try:
        yield reg
    finally:
        _enabled, _registry = prev_enabled, prev_registry


# -- instrumentation entry points ------------------------------------------

def span(name: str, **attrs):
    """Open a span in the active registry; no-op while disabled."""
    if not _enabled:
        return _NULL_SPAN
    return _registry.span(name, **attrs)


def record_span(name: str, duration_s: float,
                parent_id: int | None = None, **attrs) -> Span | None:
    """Record a pre-measured span; returns ``None`` while disabled."""
    if not _enabled:
        return None
    return _registry.record_span(name, duration_s, parent_id, **attrs)


def merge_spans(spans: list[Span], parent_id: int | None = None,
                offset_s: float = 0.0, **attrs) -> list[Span]:
    """Merge foreign (e.g. worker-process) spans; no-op while disabled."""
    if not _enabled or not spans:
        return []
    return _registry.merge_spans(spans, parent_id=parent_id,
                                 offset_s=offset_s, **attrs)


def incr(name: str, value: float = 1.0) -> None:
    """Increment a counter in the active registry; no-op while disabled."""
    if _enabled:
        _registry.incr(name, value)


def observe(name: str, value: float) -> None:
    """Histogram observation in the active registry; no-op while disabled."""
    if _enabled:
        _registry.observe(name, value)


from repro.telemetry import exporters  # noqa: E402  (re-export convenience)
from repro.telemetry import caches  # noqa: E402
from repro.telemetry import recorder  # noqa: E402
