"""Regression sentinel over the perf trajectory (``BENCH_pipeline.json``).

One implementation of the ">25% slower than the committed baseline"
check, shared by the CI bench job (``benchmarks/compare_trajectory.py``)
and ``repro stats --check``. Each trajectory section — ``ginterp``
(compiled-engine compress loop), ``lossless`` (warm orchestrated
encode), ``runtime`` (parallel slab wall time), ``transport``
(schema 6: shm zero-copy pool wall times, gated on parallel
decompress staying competitive with serial), ``huffman`` (schema 7:
the batch-parallel LUT codec, gated on its decode wall time; schema 8
adds the vectorized encode wall as a second gate), ``walls`` (schema
8: end-to-end pipeline compress/decompress walls on the 64-cubed and
128-cubed bench fields, gated on the 64-cubed compress) — has
gating metrics and a few informational ones; a gating metric
past its section threshold yields a regressed :class:`Finding`,
rendered as a GitHub ``::warning::`` annotation in CI. Sections a
fresh emit skips (e.g. ``runtime`` on a single-CPU box, marked with
``skipped_reason``) simply contribute no findings — their metrics are
absent, and absent/non-numeric metrics are never compared.

Thresholds default to 25% per section and, from trajectory **schema 5**
on, are read from the document's own ``thresholds`` object — the
committed baseline states how much noise each section tolerates, so
tightening or loosening a gate is a reviewed one-line diff, not a CI
config hunt.

Sentinel findings stay *warn-only* (shared-runner wall times are too
noisy to fail merges on); structural anomalies fail via
``repro doctor --check`` instead. See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass

__all__ = ["Finding", "DEFAULT_THRESHOLD", "SECTIONS", "thresholds_for",
           "check", "format_findings", "load_baseline"]

#: relative regression that triggers a warning when a section's schema-5
#: ``thresholds`` entry (or the whole object, schema < 5) is absent
DEFAULT_THRESHOLD = 0.25

#: per-section watched metrics: ``gate`` entries can regress a finding,
#: ``info`` entries are compared and reported but never gate
SECTIONS = {
    "ginterp": {"gate": ("compiled_compress_s",),
                "info": ("reference_compress_s",), "unit": "s"},
    "lossless": {"gate": ("warm_encode_us",),
                 "info": ("cold_encode_us", "orch_decode_us"),
                 "unit": "us"},
    "runtime": {"gate": ("parallel_s",),
                "info": ("serial_s", "parallel_decompress_s",
                         "serial_decompress_s"),
                "unit": "s"},
    "transport": {"gate": ("parallel_decompress_s",),
                  "info": ("serial_decompress_s", "parallel_compress_s",
                           "serial_compress_s"),
                  "unit": "s"},
    "huffman": {"gate": ("decode_s", "encode_s"),
                "info": ("loop_decode_s", "loop_encode_s", "lut_build_s"),
                "unit": "s"},
    "walls": {"gate": ("compress64_s",),
              "info": ("decompress64_s", "compress128_s",
                       "decompress128_s"),
              "unit": "s"},
    # schema 9: append-time analytics scoring must stay invisible next
    # to a compress wall (the bench asserts < 1% of compress64)
    "analytics": {"gate": ("score_mean_us",),
                  "info": ("analyze_us",), "unit": "us"},
}


@dataclass
class Finding:
    """One baseline-vs-current metric comparison."""

    section: str
    key: str
    baseline: float
    current: float
    threshold: float
    gating: bool
    unit: str = "s"

    @property
    def rel(self) -> float:
        return (self.current - self.baseline) / self.baseline \
            if self.baseline else 0.0

    @property
    def regressed(self) -> bool:
        return self.gating and self.rel > self.threshold

    def format(self, github: bool = False) -> str:
        marker = "::warning::" if github and self.regressed else ""
        tag = " [REGRESSED]" if self.regressed and not github else ""
        return (f"{marker}{self.section} {self.key}: "
                f"{self.baseline:.6g}{self.unit} -> "
                f"{self.current:.6g}{self.unit} "
                f"({self.rel:+.1%}, warn threshold "
                f"+{self.threshold:.0%}){tag}")


def thresholds_for(doc: dict) -> dict[str, float]:
    """Per-section thresholds: document-declared (schema >= 5) over the
    default. Unknown sections in the document are kept (forward
    compatibility); non-numeric entries are ignored."""
    out = {section: DEFAULT_THRESHOLD for section in SECTIONS}
    declared = doc.get("thresholds")
    if isinstance(declared, dict):
        for section, thr in declared.items():
            if isinstance(thr, (int, float)) and thr > 0:
                out[section] = float(thr)
    return out


def check(current: dict, baseline: dict,
          thresholds: dict[str, float] | None = None) -> list["Finding"]:
    """Compare every watched metric of ``current`` against ``baseline``.

    Thresholds come from the **baseline** document by default — the
    committed trajectory owns its noise tolerance; a PR cannot loosen
    the gate for itself by editing the fresh emit.
    """
    thr = dict(thresholds_for(baseline))
    if thresholds:
        thr.update(thresholds)
    findings: list[Finding] = []
    for section, spec in SECTIONS.items():
        base_sec = baseline.get(section)
        cur_sec = current.get(section)
        if not isinstance(base_sec, dict) or not isinstance(cur_sec, dict):
            continue
        for gating, keys in ((True, spec["gate"]), (False, spec["info"])):
            for key in keys:
                old, new = base_sec.get(key), cur_sec.get(key)
                if not isinstance(old, (int, float)) \
                        or not isinstance(new, (int, float)) \
                        or not old or not new:
                    continue
                findings.append(Finding(
                    section=section, key=key, baseline=float(old),
                    current=float(new),
                    threshold=thr.get(section, DEFAULT_THRESHOLD),
                    gating=gating, unit=spec["unit"]))
    return findings


def format_findings(findings: list["Finding"],
                    github: bool = False) -> list[str]:
    """Render findings, regressed ones first."""
    ordered = sorted(findings, key=lambda f: (not f.regressed,
                                              f.section, f.key))
    return [f.format(github=github) for f in ordered]


def load_baseline(ref: str, path: str = "BENCH_pipeline.json") \
        -> dict | None:
    """The committed trajectory at ``ref`` via ``git show`` (or None)."""
    try:
        out = subprocess.run(["git", "show", f"{ref}:{path}"],
                             capture_output=True, text=True, check=True)
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        doc = json.loads(out.stdout)
    except json.JSONDecodeError:
        return None
    return doc if isinstance(doc, dict) else None
