"""Telemetry exporters: JSON-lines, span-tree text, Prometheus text.

Three views of one :class:`~repro.telemetry.Registry`:

* :func:`to_jsonl` / :func:`from_jsonl` — a lossless machine-readable
  trace dump (one JSON object per line: a ``meta`` line, then ``span`` /
  ``counter`` / ``histogram`` lines). This is what ``repro compress
  --trace out.jsonl`` writes and ``repro trace out.jsonl`` reads back.
* :func:`render_tree` — a human-readable indented span tree with
  durations and byte attributes, for terminals and logs.
* :func:`to_prometheus` — Prometheus-style exposition text: counters as
  ``repro_<name>_total``, histograms with log-spaced ``le`` buckets, and
  span durations aggregated per span name as ``_sum`` / ``_count``.
"""

from __future__ import annotations

import json
import math

from repro.telemetry import Registry, Span

__all__ = ["to_jsonl", "from_jsonl", "render_tree", "to_prometheus",
           "stage_breakdown", "cache_metrics_lines", "escape_label",
           "build_info_lines", "gauge_lines"]

_SCHEMA_VERSION = 1


# -- JSON-lines ------------------------------------------------------------

def to_jsonl(registry: Registry) -> str:
    """Serialize a registry to a JSON-lines trace dump."""
    lines = [json.dumps({"type": "meta", "version": _SCHEMA_VERSION,
                         "n_spans": len(registry.spans)})]
    for sp in registry.spans:
        lines.append(json.dumps({
            "type": "span", "id": sp.span_id, "parent": sp.parent_id,
            "name": sp.name, "start": sp.start, "dur": sp.duration_s,
            "status": sp.status, "thread": sp.thread, "attrs": sp.attrs,
        }, default=str))
    for name, value in sorted(registry.counters.items()):
        lines.append(json.dumps({"type": "counter", "name": name,
                                 "value": value}))
    for name, values in sorted(registry.histograms.items()):
        lines.append(json.dumps({"type": "histogram", "name": name,
                                 "values": values}))
    return "\n".join(lines) + "\n"


def from_jsonl(text: str) -> Registry:
    """Rebuild a registry from :func:`to_jsonl` output."""
    reg = Registry()
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not JSON: {exc}")
        kind = obj.get("type")
        if kind == "span":
            reg.spans.append(Span(
                name=obj["name"], span_id=int(obj["id"]),
                parent_id=obj["parent"], start=float(obj["start"]),
                duration_s=float(obj["dur"]),
                attrs=dict(obj.get("attrs", {})),
                status=obj.get("status", "ok"),
                thread=int(obj.get("thread", 0))))
        elif kind == "counter":
            reg.counters[obj["name"]] = float(obj["value"])
        elif kind == "histogram":
            reg.histograms[obj["name"]] = [float(v) for v in obj["values"]]
        elif kind != "meta":
            raise ValueError(f"trace line {lineno}: unknown type {kind!r}")
    reg._next_id = max((sp.span_id for sp in reg.spans), default=0) + 1
    return reg


# -- span tree -------------------------------------------------------------

def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_attrs(attrs: dict) -> str:
    parts = []
    for key in sorted(attrs):
        val = attrs[key]
        if isinstance(val, float):
            val = f"{val:.4g}"
        parts.append(f"{key}={val}")
    return " ".join(parts)


def render_tree(spans: list[Span], max_depth: int | None = None) -> str:
    """Render spans as an indented tree ordered by start time."""
    by_parent: dict[int | None, list[Span]] = {}
    ids = {sp.span_id for sp in spans}
    for sp in spans:
        # orphans (parent not in this trace) render as roots
        parent = sp.parent_id if sp.parent_id in ids else None
        by_parent.setdefault(parent, []).append(sp)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        if max_depth is not None and depth >= max_depth:
            return
        for sp in by_parent.get(parent, []):
            mark = "" if sp.status == "ok" else " [ERROR]"
            attrs = _fmt_attrs(sp.attrs)
            lines.append("  " * depth
                         + f"{sp.name}  {_fmt_duration(sp.duration_s)}"
                         + (f"  {attrs}" if attrs else "") + mark)
            walk(sp.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def stage_breakdown(spans: list[Span]) -> str:
    """Aggregate spans by name: count, total/mean time, byte volumes."""
    agg: dict[str, list[float]] = {}
    for sp in spans:
        row = agg.setdefault(sp.name, [0, 0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += sp.duration_s
        row[2] += float(sp.attrs.get("bytes_in", 0) or 0)
        row[3] += float(sp.attrs.get("bytes_out", 0) or 0)
    header = f"{'span':<24} {'count':>6} {'total':>10} " \
             f"{'bytes_in':>12} {'bytes_out':>12}"
    lines = [header, "-" * len(header)]
    for name, (count, total, b_in, b_out) in \
            sorted(agg.items(), key=lambda kv: -kv[1][1]):
        lines.append(f"{name:<24} {count:>6d} {_fmt_duration(total):>10} "
                     f"{int(b_in):>12d} {int(b_out):>12d}")
    return "\n".join(lines)


# -- Prometheus text -------------------------------------------------------

def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def escape_label(value) -> str:
    """Escape a label *value* per the Prometheus exposition format:
    backslash, double quote, and newline must be backslash-escaped
    (dataset/codec names are user-controlled and may contain any of
    them)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def gauge_lines(metric: str, help_text: str,
                samples: list[tuple[dict, float]],
                kind: str = "gauge") -> list[str]:
    """One metric family in exposition format: HELP/TYPE header plus one
    sample line per ``(labels, value)`` pair, label values escaped.

    The shared formatter behind the labeled families the ops plane and
    the analytics engine export (``repro_drift_*``, ``repro_anomaly_*``)
    — always emits the header, even with zero samples, so scrapers see a
    stable metric set.
    """
    lines = [f"# HELP {metric} {help_text}", f"# TYPE {metric} {kind}"]
    for labels, value in samples:
        rendered = ",".join(f'{k}="{escape_label(v)}"'
                            for k, v in labels.items())
        body = f"{{{rendered}}}" if rendered else ""
        lines.append(f"{metric}{body} {value:g}")
    return lines


def build_info_lines() -> list[str]:
    """The conventional ``<name>_build_info`` identity gauge: constant 1
    with the package version and Python runtime as labels, so dashboards
    can join every other series to what produced it."""
    import platform

    from repro import __version__
    labels = (f'version="{escape_label(__version__)}",'
              f'python="{escape_label(platform.python_version())}",'
              f'implementation='
              f'"{escape_label(platform.python_implementation())}"')
    return ["# HELP repro_build_info package and runtime identity "
            "(constant 1)",
            "# TYPE repro_build_info gauge",
            f"repro_build_info{{{labels}}} 1"]


def _histogram_buckets(values: list[float]) -> list[float]:
    """Log-spaced bucket upper bounds covering the observed range.

    Degenerate inputs get a sane spread instead of a single bucket: all
    observations on one power of ten (the common single-observation
    case) pad a decade either side, and a float-rounding overshoot of
    the top edge grows one more decade so the largest observation always
    lands in a finite bucket.
    """
    positive = [v for v in values if v > 0]
    if not positive:
        return [1.0]
    lo = math.floor(math.log10(min(positive)))
    hi = math.ceil(math.log10(max(positive)))
    if hi == lo:
        lo -= 1
        hi += 1
    if max(positive) > 10.0 ** hi:
        hi += 1
    return [10.0 ** e for e in range(lo, hi + 1)]


def to_prometheus(registry: Registry, include_caches: bool = True) -> str:
    """Prometheus exposition-format snapshot of a registry.

    ``include_caches`` additionally exports the process-wide unified
    cache gauges (:func:`repro.telemetry.caches.snapshot`) — one labeled
    series per registered cache, uniform across all cache families.
    """
    lines: list[str] = build_info_lines()
    for name, value in sorted(registry.counters.items()):
        metric = f"repro_{_sanitize(name)}_total"
        lines.append(f"# HELP {metric} telemetry counter "
                     f"{json.dumps(name)}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, values in sorted(registry.histograms.items()):
        metric = f"repro_{_sanitize(name)}"
        lines.append(f"# HELP {metric} telemetry histogram "
                     f"{json.dumps(name)}")
        lines.append(f"# TYPE {metric} histogram")
        for bound in _histogram_buckets(values):
            count = sum(1 for v in values if v <= bound)
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {count}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {len(values)}')
        lines.append(f"{metric}_sum {sum(values):g}")
        lines.append(f"{metric}_count {len(values)}")
    agg: dict[str, tuple[int, float]] = {}
    for sp in registry.spans:
        count, total = agg.get(sp.name, (0, 0.0))
        agg[sp.name] = (count + 1, total + sp.duration_s)
    if agg:
        lines.append("# HELP repro_span_duration_seconds wall time "
                     "aggregated per span name")
        lines.append("# TYPE repro_span_duration_seconds summary")
        for name, (count, total) in sorted(agg.items()):
            lines.append(f'repro_span_duration_seconds_sum'
                         f'{{span="{escape_label(name)}"}} {total:g}')
            lines.append(f'repro_span_duration_seconds_count'
                         f'{{span="{escape_label(name)}"}} {count}')
    if include_caches:
        lines.extend(cache_metrics_lines())
    return "\n".join(lines) + "\n"


#: unified cache fields exported per registered cache: Prometheus type
#: and one-line help text
_CACHE_METRICS = (
    ("hits", "counter", "cache lookups served from the cache"),
    ("misses", "counter", "cache lookups that fell through"),
    ("evictions", "counter", "entries dropped to respect the limit"),
    ("size", "gauge", "entries currently cached"),
    ("limit", "gauge", "configured entry limit"),
    ("size_bytes", "gauge", "estimated bytes held by cached entries"),
    ("hit_ratio", "gauge", "hits / lookups since process start"),
)


def cache_metrics_lines() -> list[str]:
    """Uniform gauges for every cache in the unified registry.

    Each field becomes one ``repro_cache_<field>`` metric with a
    ``cache=<name>`` label, so the four cache families from different
    subsystems (ginterp plan/autotune, Huffman codebook/table, lossless
    orchestrator plan) chart on one axis.
    """
    from repro.telemetry import caches
    snap = caches.snapshot()
    lines: list[str] = []
    for fld, kind, help_text in _CACHE_METRICS:
        metric = f"repro_cache_{fld}" + ("_total" if kind == "counter"
                                         else "")
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        for name in sorted(snap):
            val = snap[name].get(fld, 0)
            lines.append(f'{metric}{{cache="{escape_label(name)}"}} '
                         f'{val:g}')
    return lines
