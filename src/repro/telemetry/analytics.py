"""Incremental ledger analytics: baselines, anomalies, drift attribution.

The flight recorder (:mod:`repro.telemetry.recorder`) captures what every
run looked like; ``repro stats`` reports static distributions and the
wall-time sentinel (:mod:`repro.telemetry.sentinel`) compares one bench
emit against one committed baseline. Nothing *interprets* the ledger:
cuSZ-i's quality/ratio tradeoff varies strongly per field, so "is this
run normal" can only be answered against runs of the **same field class
under the same configuration**. This module maintains exactly those
references:

**Fingerprint-keyed baselines.**
    Records group into cohorts keyed by ``{kind, field fingerprint,
    codec, error-bound decade, transport}`` — the sampled content
    fingerprint comes from the autotune profiling kernel
    (:func:`repro.core.ginterp.autotune.field_fingerprint`) and travels
    in ``attrs["fingerprint"]``. Per cohort and per metric (wall, each
    stage wall, compression ratio, throughput, cache hit ratio, and the
    quality auditor's PSNR / max-error-vs-eb) a :class:`MetricBaseline`
    keeps a bounded window with a lazily refreshed median/MAD pair plus
    an EWMA.

**Append-time anomaly scoring.**
    :meth:`AnalyticsEngine.observe` scores each new record against the
    cohort baselines *before* folding it in: a robust z-score
    ``(x - median) / (1.4826 * MAD)`` past :data:`Z_THRESHOLD` in the
    degrading direction (and at least :data:`REL_FLOOR` away in relative
    terms, so near-constant series cannot alarm on noise) flags an
    :class:`Anomaly`. The engine can :meth:`~AnalyticsEngine.attach` to
    the live recorder exactly like the ops server's SSE fan-out.

**Change-point detection with stage attribution.**
    :meth:`AnalyticsEngine.change_points` scans each cohort's run
    sequence for the split that maximizes the median shift in pooled-MAD
    units; a significant, direction-aware shift past the shared
    regression threshold (:data:`repro.telemetry.sentinel
    .DEFAULT_THRESHOLD`) becomes a :class:`ChangePoint` carrying *since
    which run* (``since_seq`` / ``since_trace_id``). Wall-time change
    points are **attributed**: the per-stage before/after medians name
    which stage (ginterp predict, huffman, lossless, transport, ...)
    moved and what share of the wall shift it explains. Only
    degradations are reported — a cold-start that warms up is not a
    regression.

Surfaces: ``repro analyze`` (text / ``--json`` / persisted baseline
files), ``repro top`` (:mod:`repro.telemetry.top`), the ops plane's
``/analytics`` endpoint and ``repro_anomaly_*`` / ``repro_drift_*``
Prometheus series, and gating doctor checks. See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry import sentinel
from repro.telemetry.recorder import RunRecord

__all__ = ["AnalyticsEngine", "MetricBaseline", "Anomaly", "RunScore",
           "ChangePoint", "cohort_key", "cohort_label", "record_metrics",
           "analyze", "save_baselines", "load_baselines",
           "compare_baselines", "metrics_lines", "format_report",
           "REPORT_SCHEMA", "BASELINE_SCHEMA", "DEFAULT_WINDOW",
           "MIN_BASELINE", "Z_THRESHOLD", "REL_FLOOR", "EWMA_ALPHA",
           "MIN_SEGMENT", "MAD_SCALE"]

#: report / baseline-file format versions
REPORT_SCHEMA = 1
BASELINE_SCHEMA = 1

#: per-(cohort, metric) rolling window backing the median/MAD baseline
DEFAULT_WINDOW = 128

#: observations a baseline needs before it scores newcomers
MIN_BASELINE = 8

#: EWMA smoothing factor (recent-run weight)
EWMA_ALPHA = 0.2

#: robust z-score magnitude that flags an anomaly
Z_THRESHOLD = 3.5

#: minimum relative deviation for an anomaly — a tight MAD on a
#: near-constant series must not turn measurement noise into alarms
REL_FLOOR = 0.10

#: consistency constant: 1.4826 * MAD estimates sigma for a normal dist.
MAD_SCALE = 1.4826

#: runs on each side a change-point split must keep
MIN_SEGMENT = 5

#: median-shift size (in pooled-MAD sigmas) for a significant change point
SHIFT_SIGMA = 3.0

#: flagged anomalies retained by a live engine
_ANOMALY_KEEP = 256

#: metrics where *larger* is a degradation; everything else measured
#: here (ratio, throughput, cache hit ratio, PSNR) degrades downward
_HIGHER_IS_WORSE_PREFIXES = ("wall_s", "stage.", "quality.max_err_rel",
                             "quality.outlier_rate")

#: change-point kinds per metric family (metrics not listed here are
#: scored per-run but not sequence-scanned)
_DRIFT_KINDS = {
    "wall_s": "latency_regression",
    "quality.psnr_db": "quality_drift",
    "quality.max_err_rel": "quality_drift",
    "ratio": "ratio_drift",
}


def _higher_is_worse(metric: str) -> bool:
    return metric.startswith(_HIGHER_IS_WORSE_PREFIXES)


# -- cohort keying -----------------------------------------------------------

def _eb_bucket(rec: RunRecord) -> str:
    """The error-bound decade, e.g. ``e-3`` for abs_eb 1.2e-3.

    Bucketing by decade keeps cohorts stable under the tiny abs-eb
    variations a value-range-relative bound produces across snapshots of
    the same field, while still separating genuinely different bounds
    (whose ratio/quality character differs by construction).
    """
    eb = rec.attrs.get("abs_eb") or rec.attrs.get("eb")
    try:
        eb = float(eb)
    except (TypeError, ValueError):
        return "-"
    if not eb or eb <= 0 or not math.isfinite(eb):
        return "-"
    return f"e{int(math.floor(math.log10(eb)))}"


def cohort_key(rec: RunRecord) -> tuple[str, str, str, str, str]:
    """``(kind, fingerprint, codec, eb-bucket, transport)`` for a record.

    Records without a content fingerprint — decompress runs (the blob
    does not carry one) and pre-PR-10 ledger lines — fall back to a
    shape signature (``64x64x64``) so fields of different sizes never
    share a baseline; with neither, the ``-`` cohort. Tolerated, not
    rejected.
    """
    fp = rec.attrs.get("fingerprint")
    if not fp:
        shape = rec.attrs.get("shape")
        try:
            fp = "x".join(str(int(n)) for n in shape) if shape else "-"
        except (TypeError, ValueError):
            fp = "-"
    transport = rec.attrs.get("transport") or "serial"
    return (rec.kind, str(fp), rec.codec or "-", _eb_bucket(rec),
            str(transport))


def cohort_label(key: tuple[str, str, str, str, str]) -> str:
    """Human/Prometheus-stable rendering of a cohort key."""
    return "|".join(key)


# -- per-record metric extraction -------------------------------------------

def record_metrics(rec: RunRecord) -> dict[str, float]:
    """The scored metrics of one record (only those it actually has)."""
    out: dict[str, float] = {}
    if rec.wall_s > 0:
        out["wall_s"] = rec.wall_s
    for stage, sec in rec.stages.items():
        if sec > 0:
            out[f"stage.{stage}"] = float(sec)
    ratio = rec.ratio
    if ratio > 0:
        out["ratio"] = ratio
    thr = rec.throughput_mb_s
    if thr > 0:
        out["throughput_mb_s"] = thr
    hits = sum(d.get("hits", 0) for d in rec.caches.values())
    lookups = hits + sum(d.get("misses", 0) for d in rec.caches.values())
    if lookups:
        out["cache_hit_ratio"] = hits / lookups
    quality = rec.attrs.get("quality")
    if isinstance(quality, dict):
        psnr = quality.get("psnr_db")
        if isinstance(psnr, (int, float)) and math.isfinite(psnr):
            out["quality.psnr_db"] = float(psnr)
        abs_eb = quality.get("abs_eb")
        max_err = quality.get("max_abs_error")
        if isinstance(abs_eb, (int, float)) and abs_eb and \
                isinstance(max_err, (int, float)):
            out["quality.max_err_rel"] = float(max_err) / float(abs_eb)
        rate = quality.get("outlier_rate")
        if isinstance(rate, (int, float)) and rate > 0:
            out["quality.outlier_rate"] = float(rate)
    return out


# -- baselines ---------------------------------------------------------------

class MetricBaseline:
    """Rolling robust baseline of one metric within one cohort.

    Keeps a bounded window, an incrementally updated EWMA, and a
    median/MAD pair refreshed lazily (every append while the window is
    small, then every few appends) so append-time scoring stays a few
    microseconds rather than a sort per run.
    """

    __slots__ = ("values", "ewma", "count", "_median", "_mad", "_dirty")

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.values: deque[float] = deque(maxlen=window)
        self.ewma: float | None = None
        self.count = 0
        self._median = 0.0
        self._mad = 0.0
        self._dirty = 0

    @property
    def n(self) -> int:
        return len(self.values)

    def _refresh(self) -> None:
        vals = np.asarray(self.values, dtype=np.float64)
        self._median = float(np.median(vals))
        self._mad = float(np.median(np.abs(vals - self._median)))
        self._dirty = 0

    @property
    def median(self) -> float:
        if self._dirty and (self.n < 32 or self._dirty >= 8):
            self._refresh()
        return self._median

    @property
    def mad(self) -> float:
        self.median   # noqa: B018 - triggers the lazy refresh
        return self._mad

    def sigma(self) -> float:
        """Robust scale with a floor: MAD-sigma, but never below 1% of
        the median's magnitude (a near-constant window must not make
        every jitter a 100-sigma event)."""
        return max(MAD_SCALE * self.mad, abs(self.median) * 0.01, 1e-12)

    def score(self, x: float) -> float:
        """Robust z-score of ``x`` against the current baseline."""
        return (x - self.median) / self.sigma()

    def update(self, x: float) -> None:
        self.values.append(float(x))
        self.count += 1
        self._dirty += 1
        self.ewma = float(x) if self.ewma is None \
            else EWMA_ALPHA * float(x) + (1.0 - EWMA_ALPHA) * self.ewma

    def to_dict(self) -> dict:
        return {"n": self.n, "count": self.count, "median": self.median,
                "mad": self.mad, "ewma": self.ewma}


# -- findings ----------------------------------------------------------------

@dataclass
class Anomaly:
    """One metric of one run scored far outside its cohort baseline."""

    cohort: str
    metric: str
    value: float
    baseline_median: float
    z: float
    rel: float                     # relative deviation from the median
    seq: int
    trace_id: str | None
    ts: float

    def to_dict(self) -> dict:
        return {"cohort": self.cohort, "metric": self.metric,
                "value": self.value,
                "baseline_median": self.baseline_median,
                "z": self.z, "rel": self.rel, "seq": self.seq,
                "trace_id": self.trace_id, "ts": self.ts}

    def format(self) -> str:
        return (f"{self.cohort} {self.metric}: {self.value:.4g} vs "
                f"median {self.baseline_median:.4g} "
                f"(z={self.z:+.1f}, {self.rel:+.0%}) seq={self.seq}")


@dataclass
class RunScore:
    """Outcome of scoring one record at append time."""

    seq: int
    cohort: str
    n_scored: int                  # metrics that had a mature baseline
    anomalies: list = field(default_factory=list)

    @property
    def anomalous(self) -> bool:
        return bool(self.anomalies)


@dataclass
class ChangePoint:
    """A sustained level shift in one cohort metric, with provenance."""

    cohort: str
    metric: str
    kind: str                      # latency_regression / quality_drift /
                                   # ratio_drift
    since_seq: int
    since_trace_id: str | None
    before: float                  # segment medians around the split
    after: float
    rel: float                     # (after - before) / |before|
    shift_sigma: float             # shift size in pooled-MAD sigmas
    stage: str | None = None       # attributed stage (wall_s only)
    stage_share: float | None = None   # share of the wall shift explained
    stage_before: float | None = None
    stage_after: float | None = None

    def to_dict(self) -> dict:
        out = {"cohort": self.cohort, "metric": self.metric,
               "kind": self.kind, "since_seq": self.since_seq,
               "since_trace_id": self.since_trace_id,
               "before": self.before, "after": self.after,
               "rel": self.rel, "shift_sigma": self.shift_sigma}
        if self.stage is not None:
            out.update(stage=self.stage, stage_share=self.stage_share,
                       stage_before=self.stage_before,
                       stage_after=self.stage_after)
        return out

    def format(self) -> str:
        line = (f"{self.kind}: {self.cohort} {self.metric} "
                f"{self.before:.4g} -> {self.after:.4g} "
                f"({self.rel:+.0%}, {self.shift_sigma:.1f} sigma) "
                f"since seq={self.since_seq}")
        if self.since_trace_id:
            line += f" trace={self.since_trace_id}"
        if self.stage is not None:
            line += (f"; attributed to stage '{self.stage}' "
                     f"({self.stage_before:.4g}s -> "
                     f"{self.stage_after:.4g}s, "
                     f"{self.stage_share:.0%} of the shift)")
        return line


# -- change-point scan -------------------------------------------------------

def _best_split(x: np.ndarray) -> tuple[int, float, float, float] | None:
    """The split maximizing the median shift in pooled-MAD sigmas.

    Returns ``(index, before_median, after_median, shift_sigma)`` or
    ``None`` when the series is too short. O(n * n log n) with n capped
    by the caller — fine for ledger-scale sequences.
    """
    n = x.size
    if n < 2 * MIN_SEGMENT:
        return None
    best = None
    for i in range(MIN_SEGMENT, n - MIN_SEGMENT + 1):
        left, right = x[:i], x[i:]
        m1 = float(np.median(left))
        m2 = float(np.median(right))
        dev = np.concatenate([np.abs(left - m1), np.abs(right - m2)])
        sigma = max(MAD_SCALE * float(np.median(dev)),
                    0.01 * max(abs(m1), abs(m2)), 1e-12)
        score = abs(m2 - m1) / sigma
        if best is None or score > best[3]:
            best = (i, m1, m2, score)
    return best


# -- the engine --------------------------------------------------------------

class AnalyticsEngine:
    """Incremental per-cohort baselines + anomaly scoring + drift scan.

    Thread-safe: :meth:`observe` may run on whichever thread closes a
    run capture (it is recorder-subscriber shaped), while
    :meth:`report` / :meth:`change_points` serve HTTP threads.
    """

    def __init__(self, *, window: int = DEFAULT_WINDOW,
                 min_baseline: int = MIN_BASELINE,
                 z_threshold: float = Z_THRESHOLD,
                 regression_threshold: float | None = None):
        self._window = int(window)
        self._min_baseline = int(min_baseline)
        self._z_threshold = float(z_threshold)
        #: shared with the wall-time sentinel: one definition of "how
        #: much relative regression is real" across both planes
        self.regression_threshold = (sentinel.DEFAULT_THRESHOLD
                                     if regression_threshold is None
                                     else float(regression_threshold))
        self._lock = threading.Lock()
        self._cohorts: dict[tuple, dict] = {}
        self._anomalies: deque[Anomaly] = deque(maxlen=_ANOMALY_KEEP)
        self._scored_runs = 0
        self._anomalous_runs = 0
        self._score_time_s = 0.0
        self._sub_token: int | None = None

    # -- live attachment --------------------------------------------------

    def attach(self) -> "AnalyticsEngine":
        """Subscribe to the live recorder (like the SSE fan-out)."""
        from repro.telemetry import recorder
        if self._sub_token is None:
            self._sub_token = recorder.subscribe(self.observe)
        return self

    def detach(self) -> None:
        from repro.telemetry import recorder
        if self._sub_token is not None:
            recorder.unsubscribe(self._sub_token)
            self._sub_token = None

    # -- scoring -----------------------------------------------------------

    def observe(self, rec: RunRecord) -> RunScore:
        """Score ``rec`` against its cohort, then fold it in."""
        t0 = time.perf_counter()
        metrics = record_metrics(rec)
        key = cohort_key(rec)
        label = cohort_label(key)
        anomalies: list[Anomaly] = []
        n_scored = 0
        with self._lock:
            entry = self._cohorts.get(key)
            if entry is None:
                entry = self._cohorts[key] = {
                    "baselines": {},
                    "history": deque(maxlen=2 * self._window),
                    "n": 0,
                }
            baselines = entry["baselines"]
            for metric, value in metrics.items():
                mb = baselines.get(metric)
                if mb is None:
                    mb = baselines[metric] = MetricBaseline(self._window)
                elif mb.n >= self._min_baseline:
                    n_scored += 1
                    z = mb.score(value)
                    rel = (value - mb.median) / abs(mb.median) \
                        if mb.median else 0.0
                    degrading = z > 0 if _higher_is_worse(metric) \
                        else z < 0
                    if abs(z) >= self._z_threshold and degrading \
                            and abs(rel) >= REL_FLOOR:
                        anomalies.append(Anomaly(
                            cohort=label, metric=metric, value=value,
                            baseline_median=mb.median, z=z, rel=rel,
                            seq=rec.seq, trace_id=rec.trace_id,
                            ts=rec.ts))
                mb.update(value)
            entry["history"].append(
                (rec.seq, rec.trace_id, metrics))
            entry["n"] += 1
            self._scored_runs += 1
            if anomalies:
                self._anomalous_runs += 1
                self._anomalies.extend(anomalies)
            self._score_time_s += time.perf_counter() - t0
        return RunScore(seq=rec.seq, cohort=label, n_scored=n_scored,
                        anomalies=anomalies)

    def anomalies(self) -> list[Anomaly]:
        with self._lock:
            return list(self._anomalies)

    def overhead(self) -> dict:
        """Append-time scoring cost accounting."""
        with self._lock:
            mean_us = (1e6 * self._score_time_s / self._scored_runs
                       if self._scored_runs else 0.0)
            return {"scored_runs": self._scored_runs,
                    "score_total_s": self._score_time_s,
                    "score_mean_us": mean_us}

    # -- drift scan --------------------------------------------------------

    def change_points(self) -> list[ChangePoint]:
        """Scan every cohort's run sequence for sustained regressions."""
        with self._lock:
            snapshot = [(key, list(entry["history"]))
                        for key, entry in self._cohorts.items()]
        out: list[ChangePoint] = []
        for key, history in snapshot:
            if len(history) < 2 * MIN_SEGMENT:
                continue
            label = cohort_label(key)
            for metric, kind in _DRIFT_KINDS.items():
                cp = self._scan_metric(label, metric, kind, history)
                if cp is not None:
                    out.append(cp)
        return out

    def _scan_metric(self, label: str, metric: str, kind: str,
                     history: list) -> ChangePoint | None:
        idx = [i for i, (_s, _t, m) in enumerate(history) if metric in m]
        if len(idx) < 2 * MIN_SEGMENT:
            return None
        x = np.array([history[i][2][metric] for i in idx],
                     dtype=np.float64)
        best = _best_split(x)
        if best is None:
            return None
        split, before, after, shift_sigma = best
        rel = (after - before) / abs(before) if before else 0.0
        worse = rel > 0 if _higher_is_worse(metric) else rel < 0
        if shift_sigma < SHIFT_SIGMA or not worse \
                or abs(rel) < self.regression_threshold:
            return None
        since = history[idx[split]]
        cp = ChangePoint(cohort=label, metric=metric, kind=kind,
                         since_seq=since[0], since_trace_id=since[1],
                         before=before, after=after, rel=rel,
                         shift_sigma=shift_sigma)
        if metric == "wall_s":
            self._attribute(cp, history, idx, split)
        return cp

    @staticmethod
    def _attribute(cp: ChangePoint, history: list, idx: list[int],
                   split: int) -> None:
        """Name the stage that explains a wall-time change point.

        Per-stage before/after medians over the same (aligned) runs the
        wall split used; the stage with the largest positive median
        delta is the mover, its share the fraction of the wall shift it
        explains.
        """
        stages: set[str] = set()
        for i in idx:
            stages.update(k for k in history[i][2]
                          if k.startswith("stage."))
        wall_delta = cp.after - cp.before
        best_stage = None
        for stage in sorted(stages):
            series = np.array([history[i][2].get(stage, np.nan)
                               for i in idx], dtype=np.float64)
            before = series[:split]
            after = series[split:]
            if np.all(np.isnan(before)) or np.all(np.isnan(after)):
                continue
            m1 = float(np.nanmedian(before))
            m2 = float(np.nanmedian(after))
            delta = m2 - m1
            if best_stage is None or delta > best_stage[1]:
                best_stage = (stage, delta, m1, m2)
        if best_stage is None or best_stage[1] <= 0:
            return
        name, delta, m1, m2 = best_stage
        cp.stage = name[len("stage."):]
        cp.stage_share = delta / wall_delta if wall_delta else 0.0
        cp.stage_before = m1
        cp.stage_after = m2

    # -- reporting ---------------------------------------------------------

    def baselines(self) -> dict[str, dict[str, dict]]:
        """``{cohort label: {metric: baseline summary}}`` snapshot."""
        with self._lock:
            return {cohort_label(key): {metric: mb.to_dict()
                                        for metric, mb
                                        in entry["baselines"].items()}
                    for key, entry in self._cohorts.items()}

    def report(self) -> dict:
        """The full analytics report over everything observed so far."""
        change_points = self.change_points()
        with self._lock:
            cohorts = {}
            for key, entry in self._cohorts.items():
                label = cohort_label(key)
                cohorts[label] = {
                    "n": entry["n"],
                    "key": {"kind": key[0], "fingerprint": key[1],
                            "codec": key[2], "eb_bucket": key[3],
                            "transport": key[4]},
                    "baselines": {m: mb.to_dict() for m, mb
                                  in entry["baselines"].items()},
                }
            anomalies = [a.to_dict() for a in self._anomalies]
            n_records = self._scored_runs
            anomalous = self._anomalous_runs
        kinds = {"latency_regression": 0, "quality_drift": 0,
                 "ratio_drift": 0}
        for cp in change_points:
            kinds[cp.kind] = kinds.get(cp.kind, 0) + 1
        verdict = {
            "anomalous_runs": anomalous,
            "latency_regressions": kinds["latency_regression"],
            "quality_drifts": kinds["quality_drift"],
            "ratio_drifts": kinds["ratio_drift"],
            "healthy": not (kinds["latency_regression"]
                            or kinds["quality_drift"]),
        }
        return {"schema": REPORT_SCHEMA,
                "n_records": n_records,
                "n_cohorts": len(cohorts),
                "cohorts": cohorts,
                "anomalies": anomalies,
                "change_points": [cp.to_dict() for cp in change_points],
                "verdict": verdict,
                "overhead": self.overhead()}


# -- one-shot analysis (CLI / opsd / doctor) ---------------------------------

def analyze(records: list[RunRecord], *,
            baseline_doc: dict | None = None,
            window: int = DEFAULT_WINDOW,
            min_baseline: int = MIN_BASELINE,
            z_threshold: float = Z_THRESHOLD,
            regression_threshold: float | None = None) -> dict:
    """Run the engine over a finished ledger and return its report.

    ``baseline_doc`` (from :func:`load_baselines`) adds a
    ``baseline_comparison`` section: current cohort medians vs the
    persisted ones, regression-flagged with the shared threshold.
    """
    engine = AnalyticsEngine(window=window, min_baseline=min_baseline,
                             z_threshold=z_threshold,
                             regression_threshold=regression_threshold)
    for rec in records:
        engine.observe(rec)
    report = engine.report()
    if baseline_doc is not None:
        report["baseline_comparison"] = compare_baselines(
            report, baseline_doc,
            threshold=engine.regression_threshold)
    return report


# -- baseline persistence ----------------------------------------------------

def save_baselines(report: dict, path: str) -> dict:
    """Persist a report's cohort baselines as a comparison reference."""
    doc = {"schema": BASELINE_SCHEMA, "created_ts": time.time(),
           "n_records": report.get("n_records", 0),
           "cohorts": {label: dict(entry.get("baselines", {}))
                       for label, entry
                       in report.get("cohorts", {}).items()}}
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return doc


def load_baselines(path: str) -> dict:
    """Load a persisted baseline file (:func:`save_baselines`)."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "cohorts" not in doc:
        raise ValueError(f"{path!r} is not an analytics baseline file")
    schema = doc.get("schema", 0)
    if isinstance(schema, (int, float)) and schema > BASELINE_SCHEMA:
        raise ValueError(
            f"baseline file {path!r} has schema {schema}, newer than "
            f"this build understands (<= {BASELINE_SCHEMA})")
    return doc


def compare_baselines(report: dict, baseline_doc: dict,
                      threshold: float | None = None) -> list[dict]:
    """Current cohort medians vs a persisted baseline, per metric.

    Returns one finding per shared (cohort, metric):
    ``{"cohort", "metric", "baseline", "current", "rel", "regressed"}``
    where ``regressed`` is direction-aware past ``threshold``.
    """
    thr = sentinel.DEFAULT_THRESHOLD if threshold is None else threshold
    findings: list[dict] = []
    saved = baseline_doc.get("cohorts", {})
    for label, entry in sorted(report.get("cohorts", {}).items()):
        base_metrics = saved.get(label)
        if not isinstance(base_metrics, dict):
            continue
        for metric, mb in sorted(entry.get("baselines", {}).items()):
            base = base_metrics.get(metric)
            if not isinstance(base, dict):
                continue
            old = base.get("median")
            new = mb.get("median")
            if not isinstance(old, (int, float)) \
                    or not isinstance(new, (int, float)) or not old:
                continue
            rel = (new - old) / abs(old)
            worse = rel > 0 if _higher_is_worse(metric) else rel < 0
            findings.append({"cohort": label, "metric": metric,
                             "baseline": float(old),
                             "current": float(new), "rel": rel,
                             "regressed": bool(worse
                                               and abs(rel) > thr)})
    return findings


# -- Prometheus rendering ----------------------------------------------------

def metrics_lines(report: dict) -> list[str]:
    """``repro_anomaly_*`` / ``repro_drift_*`` exposition lines."""
    from repro.telemetry.exporters import gauge_lines
    per_cohort: dict[str, int] = {}
    for anomaly in report.get("anomalies", []):
        cohort = anomaly.get("cohort", "-")
        per_cohort[cohort] = per_cohort.get(cohort, 0) + 1
    change_points = report.get("change_points", [])
    lines = gauge_lines(
        "repro_anomaly_runs_total",
        "runs flagged anomalous by the ledger analytics engine",
        [({}, report.get("verdict", {}).get("anomalous_runs", 0))],
        kind="counter")
    lines += gauge_lines(
        "repro_anomaly_active",
        "flagged metric anomalies per cohort",
        [({"cohort": cohort}, per_cohort[cohort])
         for cohort in sorted(per_cohort)])
    lines += gauge_lines(
        "repro_drift_change_points",
        "detected sustained level shifts across all cohorts",
        [({}, len(change_points))])
    lines += gauge_lines(
        "repro_drift_rel",
        "relative level shift per detected change point",
        [({"cohort": cp.get("cohort", "-"),
           "metric": cp.get("metric", "-"),
           "kind": cp.get("kind", "-")}, cp.get("rel", 0.0))
         for cp in change_points])
    lines += gauge_lines(
        "repro_drift_attributed_stage",
        "share of a wall change point explained by the attributed stage",
        [({"cohort": cp.get("cohort", "-"), "stage": cp.get("stage")},
          cp.get("stage_share") or 0.0)
         for cp in change_points if cp.get("stage")])
    return lines


# -- text rendering (repro analyze) ------------------------------------------

def format_report(report: dict) -> str:
    """Human-readable rendering of an :func:`analyze` report."""
    verdict = report.get("verdict", {})
    lines = [f"analytics: {report.get('n_records', 0)} run(s) across "
             f"{report.get('n_cohorts', 0)} cohort(s)"]
    for label, entry in sorted(report.get("cohorts", {}).items()):
        lines.append(f"  cohort {label}: n={entry.get('n', 0)}")
        for metric, mb in sorted(entry.get("baselines", {}).items()):
            ewma = mb.get("ewma")
            lines.append(
                f"    {metric:<20} median {mb.get('median', 0):.5g} "
                f"mad {mb.get('mad', 0):.3g} "
                f"ewma {ewma if ewma is None else round(ewma, 6)}")
    anomalies = report.get("anomalies", [])
    if anomalies:
        lines.append(f"anomalies ({len(anomalies)}):")
        for a in anomalies[-20:]:
            lines.append(
                f"  {a.get('cohort')} {a.get('metric')}: "
                f"{a.get('value', 0):.4g} vs median "
                f"{a.get('baseline_median', 0):.4g} "
                f"(z={a.get('z', 0):+.1f}) seq={a.get('seq')}")
    else:
        lines.append("anomalies: none")
    change_points = report.get("change_points", [])
    if change_points:
        lines.append(f"change points ({len(change_points)}):")
        for cp in change_points:
            line = (f"  {cp.get('kind')}: {cp.get('cohort')} "
                    f"{cp.get('metric')} {cp.get('before', 0):.4g} -> "
                    f"{cp.get('after', 0):.4g} ({cp.get('rel', 0):+.0%})"
                    f" since seq={cp.get('since_seq')}")
            if cp.get("stage"):
                line += (f" [stage '{cp['stage']}' explains "
                         f"{cp.get('stage_share') or 0:.0%}]")
            lines.append(line)
    else:
        lines.append("change points: none")
    comparison = report.get("baseline_comparison")
    if comparison is not None:
        regressed = [f for f in comparison if f.get("regressed")]
        lines.append(f"baseline comparison: {len(comparison)} metric(s) "
                     f"compared, {len(regressed)} regressed")
        for f in regressed:
            lines.append(f"  REGRESSED {f['cohort']} {f['metric']}: "
                         f"{f['baseline']:.4g} -> {f['current']:.4g} "
                         f"({f['rel']:+.0%})")
    lines.append("verdict: " + ("healthy" if verdict.get("healthy", True)
                                else "regressed")
                 + f" (anomalous_runs={verdict.get('anomalous_runs', 0)}"
                 f" latency_regressions="
                 f"{verdict.get('latency_regressions', 0)}"
                 f" quality_drifts={verdict.get('quality_drifts', 0)}"
                 f" ratio_drifts={verdict.get('ratio_drifts', 0)})")
    return "\n".join(lines)
