"""Opt-in sampled quality auditing of compression runs.

Compression ratio and wall time regress loudly; *quality* regresses
silently — an off-by-one in a spline weight or a stale level error
bound still round-trips, it just reconstructs worse. The auditor is the
flight-recorder's answer: when enabled, the pipeline decodes its own
freshly produced archive after every ``every``-th compression (under
:func:`repro.telemetry.recorder.suppressed`, so the verification run
never pollutes the ledger) and checks a **stratified sample of blocks**
of the reconstruction against the original:

- max absolute error vs the promised error bound (and the count of
  sampled elements exceeding it — must be zero),
- a PSNR estimate from the sampled mean squared error,
- the outlier rate (stream-compacted outliers / elements),
- the ``|error| / eb`` distribution as a seeded histogram,
- per-level quant-code entropy (bits/symbol), the leading indicator of
  ratio drift before it shows in bytes.

Sampling is deterministic: blocks are drawn one-per-stratum from a
seeded generator, so two runs over the same field audit the same
blocks. Every audited run lands on the enclosing flight-recorder record
(``attrs["quality"]``) and — when span tracing is on — as
``quality.*`` histograms in the telemetry registry.

Enable with :func:`enable` or ``REPRO_QUALITY_AUDIT=1`` in the
environment; the disabled path is one flag check in the pipeline.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry

__all__ = ["QualityReport", "enable", "disable", "enabled", "config",
           "should_audit", "audit", "DEFAULT_BLOCK", "DEFAULT_FRACTION",
           "ERROR_BIN_EDGES"]

#: sampled block edge length per axis (~4Ki elements per 3D block)
DEFAULT_BLOCK = 16

#: fraction of blocks audited per sampled run
DEFAULT_FRACTION = 0.25

#: ``|error| / eb`` histogram bin edges; the last bin counts violations
ERROR_BIN_EDGES = (0.25, 0.5, 0.75, 1.0)

_lock = threading.Lock()
_enabled = os.environ.get("REPRO_QUALITY_AUDIT", "").lower() \
    in ("1", "on", "true", "yes")
_config = {"every": 1, "fraction": DEFAULT_FRACTION,
           "block": DEFAULT_BLOCK, "seed": 0}
_run_counter = 0


def enable(every: int = 1, fraction: float = DEFAULT_FRACTION,
           block: int = DEFAULT_BLOCK, seed: int = 0) -> None:
    """Turn on auditing of every ``every``-th compression run, sampling
    ``fraction`` of ``block``-edge blocks with a ``seed``-derived draw."""
    global _enabled
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    with _lock:
        _config.update(every=int(every), fraction=float(fraction),
                       block=int(block), seed=int(seed))
        _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def config() -> dict:
    """Current auditor configuration (a copy)."""
    with _lock:
        return dict(_config)


def should_audit() -> bool:
    """One flag check while disabled; otherwise count compression runs
    and fire on every ``every``-th one."""
    global _run_counter
    if not _enabled:
        return False
    with _lock:
        _run_counter += 1
        return (_run_counter - 1) % _config["every"] == 0


@dataclass
class QualityReport:
    """Outcome of one sampled post-compression audit."""

    abs_eb: float
    n_blocks: int
    n_sampled_blocks: int
    n_sampled: int                 # sampled element count
    max_abs_error: float
    eb_exceeded: int               # sampled elements past the bound
    psnr_db: float
    outlier_rate: float
    seed: int
    error_hist: list = field(default_factory=list)   # [[edge, count], ...]
    level_entropy_bits: dict = field(default_factory=dict)

    @property
    def eb_satisfied(self) -> bool:
        return self.eb_exceeded == 0

    def to_dict(self) -> dict:
        return {"abs_eb": self.abs_eb, "n_blocks": self.n_blocks,
                "n_sampled_blocks": self.n_sampled_blocks,
                "n_sampled": self.n_sampled,
                "max_abs_error": self.max_abs_error,
                "eb_exceeded": self.eb_exceeded,
                "eb_satisfied": self.eb_satisfied,
                "psnr_db": self.psnr_db,
                "outlier_rate": self.outlier_rate, "seed": self.seed,
                "error_hist": self.error_hist,
                "level_entropy_bits": self.level_entropy_bits}


def _sample_blocks(shape: tuple[int, ...], block: int, fraction: float,
                   seed: int) -> tuple[list[tuple[slice, ...]], int]:
    """Stratified seeded block draw: the block grid is flattened, split
    into ``k`` equal strata, and one block is taken per stratum at a
    common seeded offset — even spatial coverage, reproducible."""
    grid = [max(1, -(-n // block)) for n in shape]
    n_blocks = int(np.prod(grid))
    k = max(1, round(fraction * n_blocks))
    rng = np.random.default_rng(seed)
    stride = n_blocks / k
    offset = float(rng.random()) * stride
    picks = np.minimum((offset + np.arange(k) * stride).astype(np.int64),
                       n_blocks - 1)
    sels = []
    for flat in np.unique(picks):
        coord = np.unravel_index(int(flat), grid)
        sels.append(tuple(slice(c * block, min((c + 1) * block, n))
                          for c, n in zip(coord, shape)))
    return sels, n_blocks


def _entropy_bits(codes: np.ndarray) -> float:
    """Shannon entropy of a code slice in bits/symbol."""
    if codes.size == 0:
        return 0.0
    _vals, counts = np.unique(codes, return_counts=True)
    p = counts / codes.size
    return float(-(p * np.log2(p)).sum())


def audit(data: np.ndarray, reconstructed: np.ndarray, abs_eb: float, *,
          codes: np.ndarray | None = None,
          pass_levels: list[int] | None = None,
          pass_sizes: list[int] | None = None,
          n_outliers: int = 0,
          seed: int | None = None) -> QualityReport:
    """Audit one reconstruction against its original.

    ``codes``/``pass_levels``/``pass_sizes`` (the quant-code stream, the
    interpolation level of each traversal pass, and each pass's code
    count — all available in the compression path) enable the per-level
    entropy breakdown; omit them to audit error statistics only.
    """
    if data.shape != reconstructed.shape:
        raise ValueError(f"shape mismatch: original {data.shape} vs "
                         f"reconstruction {reconstructed.shape}")
    cfg = config()
    seed = cfg["seed"] if seed is None else int(seed)
    sels, n_blocks = _sample_blocks(data.shape, cfg["block"],
                                    cfg["fraction"], seed)
    edges = np.array(ERROR_BIN_EDGES)
    hist = np.zeros(edges.size + 1, dtype=np.int64)
    n_sampled = 0
    max_err = 0.0
    exceeded = 0
    sq_sum = 0.0
    for sel in sels:
        err = np.abs(data[sel].astype(np.float64)
                     - reconstructed[sel].astype(np.float64))
        n_sampled += err.size
        if err.size == 0:
            continue
        max_err = max(max_err, float(err.max()))
        sq_sum += float((err * err).sum())
        rel = err.ravel() / abs_eb if abs_eb > 0 else \
            np.where(err.ravel() > 0, np.inf, 0.0)
        exceeded += int((rel > 1.0).sum())
        hist += np.bincount(np.searchsorted(edges, rel, side="left"),
                            minlength=edges.size + 1)

    rng = float(data.max() - data.min()) if data.size else 0.0
    mse = sq_sum / n_sampled if n_sampled else 0.0
    if mse <= 0.0:
        psnr = math.inf if rng > 0 else 0.0
    elif rng > 0:
        psnr = 20.0 * math.log10(rng) - 10.0 * math.log10(mse)
    else:
        psnr = 0.0

    level_entropy: dict[int, float] = {}
    if codes is not None and pass_levels and pass_sizes:
        pos = 0
        per_level: dict[int, list[np.ndarray]] = {}
        for level, size in zip(pass_levels, pass_sizes):
            per_level.setdefault(int(level), []).append(
                codes[pos:pos + size])
            pos += size
        for level in sorted(per_level):
            level_entropy[level] = round(_entropy_bits(
                np.concatenate(per_level[level])), 4)

    labels = [*(f"le_{e}" for e in ERROR_BIN_EDGES), "gt_1.0"]
    report = QualityReport(
        abs_eb=float(abs_eb), n_blocks=n_blocks,
        n_sampled_blocks=len(sels), n_sampled=int(n_sampled),
        max_abs_error=max_err, eb_exceeded=exceeded,
        psnr_db=round(psnr, 3) if math.isfinite(psnr) else psnr,
        outlier_rate=round(n_outliers / data.size, 6) if data.size
        else 0.0,
        seed=seed,
        error_hist=[[lab, int(c)] for lab, c in zip(labels, hist)],
        level_entropy_bits=level_entropy)

    # histogram observations land in the span-tracing registry when it
    # is recording (quality trends over a traced batch)
    if abs_eb > 0:
        telemetry.observe("quality.max_abs_rel_eb", max_err / abs_eb)
    if math.isfinite(psnr) and psnr:
        telemetry.observe("quality.psnr_db", psnr)
    telemetry.observe("quality.outlier_rate", report.outlier_rate)
    for level, bits in level_entropy.items():
        telemetry.observe(f"quality.entropy_bits.level{level}", bits)
    if exceeded:
        telemetry.incr("quality.eb_violations", exceeded)
    return report
