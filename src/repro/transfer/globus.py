"""Globus-style inter-facility transfer simulator.

The paper's case study (§VII-C.5) moves compressed archives between ALCF
Theta-GPU and Purdue Anvil over a ~1 GB/s Globus link: total cost =
compression on the source GPU + wire time of the compressed bytes +
decompression on the destination GPU (local disk I/O is excluded, as in
the paper). The simulator does that arithmetic with the GPU performance
model's kernel times and the *measured* compressed sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.gpu.device import A100_THETA, DeviceSpec
from repro.gpu.perfmodel import estimate_throughput

__all__ = ["TransferLink", "TransferPlan", "simulate_transfer",
           "THETA_TO_ANVIL"]


@dataclass(frozen=True)
class TransferLink:
    """A managed wide-area transfer channel."""

    name: str
    bandwidth_gbps: float          # GB/s achievable end-to-end
    setup_latency_s: float = 0.2   # per-transfer orchestration cost

    def wire_time(self, nbytes: int) -> float:
        """Seconds on the wire for one archive."""
        if nbytes < 0:
            raise ConfigError("negative payload")
        return self.setup_latency_s + nbytes / (self.bandwidth_gbps * 1e9)


#: the paper's measured ALCF Theta-GPU <-> Purdue Anvil Globus channel
THETA_TO_ANVIL = TransferLink(name="ThetaGPU->Anvil (Globus)",
                              bandwidth_gbps=1.0)


@dataclass
class TransferPlan:
    """Cost breakdown of one compressed transfer."""

    codec: str
    compress_s: float
    wire_s: float
    decompress_s: float

    @property
    def total_s(self) -> float:
        return self.compress_s + self.wire_s + self.decompress_s


def simulate_transfer(codec: str, n_elements: int, compressed_bytes: int,
                      link: TransferLink = THETA_TO_ANVIL,
                      src_device: DeviceSpec = A100_THETA,
                      dst_device: DeviceSpec = A100_THETA,
                      lossless: str = "gle") -> TransferPlan:
    """Model one archive's end-to-end transfer time.

    ``compressed_bytes`` comes from an actual compression run; GPU times
    from the performance model; wire time from the link.
    """
    comp = estimate_throughput(codec, "compress", n_elements,
                               compressed_bytes, src_device, lossless)
    decomp = estimate_throughput(codec, "decompress", n_elements,
                                 compressed_bytes, dst_device, lossless)
    return TransferPlan(codec=codec,
                        compress_s=comp.total_seconds,
                        wire_s=link.wire_time(compressed_bytes),
                        decompress_s=decomp.total_seconds)
