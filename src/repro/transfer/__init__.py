"""Distributed lossy data transmission case study (paper §VII-C.5)."""

from repro.transfer.globus import (
    TransferLink,
    TransferPlan,
    simulate_transfer,
    THETA_TO_ANVIL,
)
from repro.transfer.pipeline import (
    FileSpec,
    PipelineSchedule,
    pipelined_transfer,
)

__all__ = ["TransferLink", "TransferPlan", "simulate_transfer",
           "THETA_TO_ANVIL", "FileSpec", "PipelineSchedule",
           "pipelined_transfer"]
