"""Pipelined multi-file transfers.

The paper's case study ships multi-file datasets (Table II: up to 37 RTM
files) "distributed and parallel": while file *k* is on the wire, file
*k+1* is already compressing on the source GPU and file *k-1* is
decompressing at the destination. This module models that three-stage
pipeline exactly: each stage is a serial resource (one GPU per side, one
wire), files flow in order, and a file enters a stage as soon as both the
file and the stage are free. Pipelining hides whichever two stages are not
the bottleneck — which is why GPU-speed compression matters even when the
wire dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.common.errors import ConfigError
from repro.gpu.device import A100_THETA, DeviceSpec
from repro.gpu.perfmodel import estimate_throughput
from repro.transfer.globus import THETA_TO_ANVIL, TransferLink

__all__ = ["FileSpec", "PipelineSchedule", "pipelined_transfer",
           "filespecs_from_fields", "pipelined_transfer_fields"]


@dataclass(frozen=True)
class FileSpec:
    """One file of a dataset: its element count and compressed size."""

    name: str
    n_elements: int
    compressed_bytes: int


@dataclass
class PipelineSchedule:
    """Completion schedule of a pipelined transfer."""

    codec: str
    #: per file: (name, compress_done, wire_done, decompress_done), the
    #: absolute completion times of each stage in seconds
    timeline: list[tuple[str, float, float, float]] = field(
        default_factory=list)
    #: per file: (name, compress_s, wire_s, decompress_s) stage durations
    stage_times: list[tuple[str, float, float, float]] = field(
        default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall-clock time until the last file is decompressed."""
        return self.timeline[-1][3] if self.timeline else 0.0

    @property
    def serial_time(self) -> float:
        """What the same work would cost without stage overlap."""
        return sum(c + w + d for _, c, w, d in self.stage_times)

    @property
    def overlap_speedup(self) -> float:
        """Serial time / pipelined makespan (>= 1)."""
        return self.serial_time / self.makespan if self.makespan else 1.0


def filespecs_from_fields(named_fields, codec: str = "cuszi", *,
                          eb: float = 1e-3, mode: str = "rel",
                          lossless: str = "gle",
                          workers: int | str | None = None,
                          transport: str | None = None,
                          **codec_kwargs) -> list[FileSpec]:
    """Compress real arrays into the :class:`FileSpec` list a schedule
    needs — measured compressed sizes, not modelled ones.

    ``named_fields`` is a sequence of ``(name, ndarray)`` pairs; the
    fields are independent, so the codec work fans out across worker
    processes via :func:`repro.runtime.map_compress` when ``workers`` is
    set (results are identical either way); ``transport`` pins the
    pool's payload transport (``"shm"``/``"pickle"``, default auto).
    """
    from repro.runtime import map_compress
    named_fields = list(named_fields)
    if not named_fields:
        raise ConfigError("no fields to compress")
    blobs = map_compress([data for _, data in named_fields], codec,
                         workers=workers, transport=transport,
                         eb=eb, mode=mode,
                         lossless=lossless, **codec_kwargs)
    return [FileSpec(name=name, n_elements=int(data.size),
                     compressed_bytes=len(blob))
            for (name, data), blob in zip(named_fields, blobs)]


def pipelined_transfer_fields(codec: str, named_fields, *,
                              link: TransferLink = THETA_TO_ANVIL,
                              src_device: DeviceSpec = A100_THETA,
                              dst_device: DeviceSpec = A100_THETA,
                              eb: float = 1e-3, mode: str = "rel",
                              lossless: str = "gle",
                              workers: int | str | None = None,
                              transport: str | None = None,
                              **codec_kwargs) -> PipelineSchedule:
    """Compress real arrays (optionally in parallel), then schedule them
    through the three-stage transfer pipeline."""
    files = filespecs_from_fields(named_fields, codec, eb=eb, mode=mode,
                                  lossless=lossless, workers=workers,
                                  transport=transport, **codec_kwargs)
    return pipelined_transfer(codec, files, link=link,
                              src_device=src_device, dst_device=dst_device,
                              lossless=lossless)


def pipelined_transfer(codec: str, files: list[FileSpec],
                       link: TransferLink = THETA_TO_ANVIL,
                       src_device: DeviceSpec = A100_THETA,
                       dst_device: DeviceSpec = A100_THETA,
                       lossless: str = "gle") -> PipelineSchedule:
    """Schedule a multi-file dataset through the 3-stage pipeline.

    Classic pipeline recurrence over serial stages: with stage durations
    ``c_k, w_k, d_k``,

        C_k = C_{k-1} + c_k
        W_k = max(C_k, W_{k-1}) + w_k
        D_k = max(W_k, D_{k-1}) + d_k
    """
    if not files:
        raise ConfigError("no files to transfer")
    schedule = PipelineSchedule(codec=codec)
    with telemetry.span("transfer.pipeline", codec=codec,
                        n_files=len(files), link=link.name,
                        src=src_device.name, dst=dst_device.name) as root:
        c_done = w_done = d_done = 0.0
        for f in files:
            comp = estimate_throughput(codec, "compress", f.n_elements,
                                       f.compressed_bytes, src_device,
                                       lossless).total_seconds
            wire = link.wire_time(f.compressed_bytes)
            dec = estimate_throughput(codec, "decompress", f.n_elements,
                                      f.compressed_bytes, dst_device,
                                      lossless).total_seconds
            c_done = c_done + comp
            w_done = max(c_done, w_done) + wire
            d_done = max(w_done, d_done) + dec
            schedule.timeline.append((f.name, c_done, w_done, d_done))
            schedule.stage_times.append((f.name, comp, wire, dec))
            if telemetry.enabled():
                # modelled (not clocked) durations: record_span, one
                # parent per file with the three pipeline stages under it
                fsp = telemetry.record_span(
                    "transfer.file", comp + wire + dec, file=f.name,
                    bytes_in=f.n_elements * 4,
                    bytes_out=f.compressed_bytes, done_at=d_done)
                for stage, dur in (("transfer.compress", comp),
                                   ("transfer.wire", wire),
                                   ("transfer.decompress", dec)):
                    telemetry.record_span(stage, dur,
                                          parent_id=fsp.span_id,
                                          file=f.name)
        root.set(makespan_s=schedule.makespan,
                 serial_s=schedule.serial_time)
    return schedule
