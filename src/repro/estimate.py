"""Cheap pre-compression estimators.

In-situ pipelines must pick a codec and error bound *before* spending a
full compression pass. These estimators sample the field, run the actual
predictors on the sample, and convert the resulting quant-code entropy
into a compression-ratio estimate — the same profiling philosophy as
cuSZ-i's §V-C kernel, extended from spline choice to size prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.lorenzo import lorenzo_delta, lorenzo_prequantize
from repro.common.errors import ConfigError
from repro.common.quantizer import DEFAULT_RADIUS, LinearQuantizer
from repro.core.ginterp.engine import InterpSpec, interp_compress
from repro.core.pipeline import DEFAULT_WINDOW, resolve_eb

__all__ = ["estimate_ratio", "code_entropy", "RatioEstimate",
           "recommend_codec"]


def code_entropy(codes: np.ndarray, alphabet_size: int) -> float:
    """Shannon entropy (bits/symbol) of a quant-code stream."""
    if codes.size == 0:
        return 0.0
    counts = np.bincount(codes.ravel(), minlength=alphabet_size)
    p = counts[counts > 0] / codes.size
    return float(-(p * np.log2(p)).sum())


@dataclass
class RatioEstimate:
    """Estimated compression outcome of one (codec family, eb) pair."""

    predictor: str
    entropy_bits: float        # bits per element after prediction
    estimated_ratio: float     # vs float32
    sample_fraction: float


def _sample_block(data: np.ndarray, max_elements: int) -> np.ndarray:
    """A centered contiguous block with about ``max_elements`` samples."""
    if data.size <= max_elements:
        return data
    frac = (max_elements / data.size) ** (1.0 / data.ndim)
    slices = []
    for n in data.shape:
        span = max(9, int(n * frac))
        start = max(0, (n - span) // 2)
        slices.append(slice(start, min(n, start + span)))
    return np.ascontiguousarray(data[tuple(slices)])


def estimate_ratio(data: np.ndarray, eb: float, mode: str = "rel",
                   predictor: str = "ginterp",
                   max_elements: int = 64 ** 3) -> RatioEstimate:
    """Estimate the compression ratio without a full compression pass.

    Runs the chosen predictor on a centered sample block and maps the
    quant-code entropy to bits/element, adding the pipeline's structural
    overheads (anchors for G-Interp, chunk tables). Estimates land within
    ~20-30% of the Huffman-coded size on stationary fields; the GLE gain
    on top is data-dependent and *not* estimated (treat the result as an
    upper bound on bits/element).
    """
    abs_eb = resolve_eb(data, eb, mode)
    block = _sample_block(data, max_elements)
    if predictor == "ginterp":
        spec = InterpSpec(anchor_stride=8 if data.ndim == 3 else 16,
                          window_shape=DEFAULT_WINDOW.get(block.ndim),
                          alpha=1.5)
        res = interp_compress(block, spec, abs_eb,
                              LinearQuantizer(DEFAULT_RADIUS))
        bits = code_entropy(res.codes, 2 * DEFAULT_RADIUS)
        overhead = 32.0 / spec.anchor_stride ** block.ndim  # anchors
    elif predictor == "lorenzo":
        delta = lorenzo_delta(lorenzo_prequantize(block, abs_eb))
        clipped = np.clip(delta + DEFAULT_RADIUS, 0,
                          2 * DEFAULT_RADIUS - 1).astype(np.uint32)
        bits = code_entropy(clipped, 2 * DEFAULT_RADIUS)
        overhead = 0.0
    else:
        raise ConfigError(f"unknown predictor {predictor!r}; "
                          "use 'ginterp' or 'lorenzo'")
    # Huffman cannot beat 1 bit/element without the de-redundancy pass
    bits_total = max(bits, 1.0) + overhead + 0.05
    return RatioEstimate(predictor=predictor, entropy_bits=bits,
                         estimated_ratio=32.0 / bits_total,
                         sample_fraction=block.size / data.size)


def recommend_codec(data: np.ndarray, eb: float,
                    mode: str = "rel") -> tuple[str, RatioEstimate]:
    """Pick cuSZ-i or cuSZ for a field from the sampled estimates.

    Returns ``(codec_name, winning_estimate)`` — the cheap advisor an
    in-situ framework would call once per new variable.
    """
    gi = estimate_ratio(data, eb, mode, predictor="ginterp")
    lo = estimate_ratio(data, eb, mode, predictor="lorenzo")
    if gi.estimated_ratio >= lo.estimated_ratio:
        return "cuszi", gi
    return "cusz", lo
