"""Profiling-based auto-tuning of G-Interp (paper §V-C).

A lightweight profiling kernel decides three things before compression:

1. **alpha** — the level-wise error-bound reduction factor, from the
   piecewise-linear map of the value-range-relative error bound (Eq. 1);
2. **per-axis cubic variant** — for each axis, sampled cubic interpolation
   errors pick not-a-knot vs natural;
3. **axis order** — axes are interpolated least-smooth-first (largest
   profiled error first), so the smoothest axis absorbs the most
   interpolations (§V-C.2, after [SZ3]).

The chosen configuration travels in the stream header: decompression must
replay the same traversal without access to the original data.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.telemetry import caches
from repro.common.errors import DataError
from repro.core.ginterp.splines import (CUBIC_NAK, CUBIC_NAT,
                                        SPLINE_WEIGHTS)

__all__ = ["alpha_from_eb", "profile_cubic_errors", "autotune",
           "TuneReport", "field_fingerprint", "clear_autotune_cache",
           "autotune_cache_stats", "set_autotune_cache_limit"]

#: sampled sub-grid extent per axis (paper: "e.g. a 4^3 sub-grid")
PROFILE_SAMPLES = 4

#: fields whose profiling outcome is remembered; keys are content digests,
#: so recompressing the same field at a new error bound skips the pass
_CACHE_SIZE = 32

_cache_lock = threading.Lock()
#: digest -> (value_range, profiled (ndim, 2) error matrix)
_profile_cache: OrderedDict[bytes, tuple[float, np.ndarray]] = OrderedDict()
_cache_stats = {"hits": 0, "misses": 0, "evictions": 0}


def clear_autotune_cache() -> None:
    """Drop the content-keyed profiling cache (mainly for tests)."""
    with _cache_lock:
        _profile_cache.clear()
        _cache_stats["hits"] = 0
        _cache_stats["misses"] = 0
        _cache_stats["evictions"] = 0


def autotune_cache_stats() -> dict[str, int]:
    """Snapshot of the profiling cache hit/miss counters and occupancy."""
    with _cache_lock:
        # entry payload: SHA-1 key + value-range float + error matrix
        size_bytes = sum(20 + 8 + errors.nbytes
                         for _rng, errors in _profile_cache.values())
        return {**_cache_stats, "size": len(_profile_cache),
                "limit": _CACHE_SIZE, "size_bytes": size_bytes}


def set_autotune_cache_limit(limit: int) -> int:
    """Resize the profiling LRU (returns the previous limit).

    Pool workers raise this to the pool-configured worker cache limit so
    long-lived daemons stop thrashing on many-field batches."""
    global _CACHE_SIZE
    if limit < 1:
        raise DataError(f"autotune cache limit must be >= 1, got {limit}")
    with _cache_lock:
        old = _CACHE_SIZE
        _CACHE_SIZE = int(limit)
        while len(_profile_cache) > _CACHE_SIZE:
            _profile_cache.popitem(last=False)
            _cache_stats["evictions"] += 1
    return old


caches.register("ginterp.autotune", autotune_cache_stats)


#: evenly spaced blocks hashed by the sampled fingerprint, and the bytes
#: taken from each; fields at or below the product are hashed in full
_FINGERPRINT_BLOCKS = 16
_FINGERPRINT_BLOCK_BYTES = 4096


def _content_key(data: np.ndarray, samples: int) -> bytes:
    """Sampled fingerprint of the field: shape, dtype, byte count, and
    16 evenly spaced 4 KiB blocks of the buffer.

    Full-buffer hashing made the fingerprint itself a large share of the
    cold ``tune`` stage (SHA-1 at memory bandwidth over the whole field,
    paid again on every eb retune before the cache could answer). The
    sampled key cuts that to ~64 KiB regardless of field size. The
    tradeoff is a nonzero (though practically negligible — two fields
    must agree on shape, dtype, byte count, *and* all sampled blocks)
    collision risk, and it is a *ratio-only* risk: the tuning decision
    always travels in the stream header, so a mistuned field decompresses
    correctly, just with a suboptimal code.
    """
    h = hashlib.sha1()
    h.update(str((data.shape, data.dtype.str, samples,
                  data.nbytes)).encode())
    buf = np.ascontiguousarray(data).view(np.uint8).ravel()
    span = _FINGERPRINT_BLOCKS * _FINGERPRINT_BLOCK_BYTES
    if buf.size <= span:
        h.update(buf.tobytes())
    else:
        starts = np.linspace(0, buf.size - _FINGERPRINT_BLOCK_BYTES,
                             _FINGERPRINT_BLOCKS).astype(np.int64)
        for s in starts:
            h.update(buf[s:s + _FINGERPRINT_BLOCK_BYTES].tobytes())
    return h.digest()


#: hex digits of the public fingerprint (64 bits of the SHA-1 digest):
#: short enough to be a Prometheus label / cohort key, long enough that
#: accidental collisions across a fleet of fields are negligible
_FINGERPRINT_HEX_DIGITS = 16


def field_fingerprint(data: np.ndarray,
                      samples: int = PROFILE_SAMPLES) -> str:
    """The sampled content fingerprint of a field, as a short hex id.

    This is the same digest the autotune profiling cache keys on
    (:func:`_content_key`), truncated to 64 bits of hex — stable across
    runs and processes for identical content, and cheap (~64 KiB hashed
    regardless of field size). The flight recorder stamps it into
    ``attrs["fingerprint"]`` so ledger analytics can cohort runs by
    field class (:mod:`repro.telemetry.analytics`).
    """
    return _content_key(data, samples).hex()[:_FINGERPRINT_HEX_DIGITS]


def alpha_from_eb(rel_eb: float) -> float:
    """Eq. 1: piecewise-linear map from relative error bound to alpha."""
    e = float(rel_eb)
    if e >= 1e-1:
        return 2.0
    if e >= 1e-2:
        return 1.75 + 0.25 * (e - 1e-2) / (1e-1 - 1e-2)
    if e >= 1e-3:
        return 1.5 + 0.25 * (e - 1e-3) / (1e-2 - 1e-3)
    if e >= 1e-4:
        return 1.25 + 0.25 * (e - 1e-4) / (1e-3 - 1e-4)
    if e >= 1e-5:
        return 1.0 + 0.25 * (e - 1e-5) / (1e-4 - 1e-5)
    return 1.0


@dataclass
class TuneReport:
    """Outcome of the profiling kernel."""

    alpha: float
    cubic_variant: tuple[int, ...]   # per-axis winning cubic class id
    axis_order: tuple[int, ...]      # least-smooth-first
    profiled_errors: tuple[float, ...]  # per-axis best-spline error sums
    value_range: float
    fingerprint: str | None = None   # sampled content id (cohort key)


def profile_cubic_errors(data: np.ndarray,
                         samples: int = PROFILE_SAMPLES) -> np.ndarray:
    """Accumulated |prediction error| per (axis, cubic variant).

    Uniformly samples up to ``samples`` positions per axis (keeping 3
    samples of margin so all four cubic neighbors exist) and evaluates both
    cubic splines along every axis — ``2 * ndim`` tests per sampled point,
    as in §V-C.1. Returns an ``(ndim, 2)`` array of error sums indexed by
    (axis, {not-a-knot, natural}).
    """
    ndim = data.ndim
    errors = np.zeros((ndim, 2), dtype=np.float64)
    margin = 3
    coords = []
    for n in data.shape:
        lo, hi = margin, n - 1 - margin
        if hi < lo:  # axis too short to profile; sample its midpoint
            coords.append(np.array([n // 2], dtype=np.int64))
        else:
            coords.append(np.unique(np.linspace(lo, hi, samples)
                                    .astype(np.int64)))
    grids = np.meshgrid(*coords, indexing="ij")
    flat_pts = np.stack([g.ravel() for g in grids], axis=1)
    values = data[tuple(flat_pts.T)].astype(np.float64)

    weights_nak = SPLINE_WEIGHTS[CUBIC_NAK]
    weights_nat = SPLINE_WEIGHTS[CUBIC_NAT]
    offsets = np.array([-3, -1, 1, 3], dtype=np.int64)
    for ax in range(ndim):
        n = data.shape[ax]
        pos = flat_pts[:, ax]
        ok = (pos + 3 <= n - 1) & (pos - 3 >= 0)
        if not np.any(ok):
            continue
        pts = flat_pts[ok]
        vals = values[ok]
        # one advanced-index gather for all four neighbors: every axis
        # index broadcasts as a (1, npts) row except the profiled axis,
        # which fans out to the (4, npts) offset grid — no per-offset
        # coordinate copies
        idx = [pts[:, d][None, :] for d in range(ndim)]
        idx[ax] = pts[:, ax][None, :] + offsets[:, None]
        neigh = np.ascontiguousarray(
            data[tuple(idx)].T).astype(np.float64)
        errors[ax, 0] = np.abs(neigh @ weights_nak - vals).sum()
        errors[ax, 1] = np.abs(neigh @ weights_nat - vals).sum()
    return errors


def autotune(data: np.ndarray, abs_eb: float,
             samples: int = PROFILE_SAMPLES) -> TuneReport:
    """Run the full §V-C profiling-and-auto-tuning kernel.

    The data-dependent parts (value range, sampled cubic errors) are
    memoized per field content; only the cheap ``abs_eb``-dependent alpha
    map reruns when the same field is compressed at a new error bound.

    Non-finite fields are rejected up front: a NaN/Inf sample makes the
    value range (hence ``rel_eb`` and alpha) NaN and poisons the sampled
    spline errors, silently mistuning the whole traversal.
    """
    if not np.isfinite(data).all():
        bad = int(data.size - np.isfinite(data).sum())
        raise DataError(
            f"autotune input contains {bad} non-finite value(s) "
            f"(NaN/Inf); mask or filter them before tuning")
    key = _content_key(data, samples)
    with _cache_lock:
        cached = _profile_cache.get(key)
        if cached is not None:
            _profile_cache.move_to_end(key)
            _cache_stats["hits"] += 1
    if cached is not None:
        telemetry.incr("autotune.cache.hit")
        rng, errors = cached
    else:
        telemetry.incr("autotune.cache.miss")
        rng = float(data.max() - data.min())
        errors = profile_cubic_errors(data, samples)
        errors.setflags(write=False)
        with _cache_lock:
            _cache_stats["misses"] += 1
            _profile_cache[key] = (rng, errors)
            _profile_cache.move_to_end(key)
            while len(_profile_cache) > _CACHE_SIZE:
                _profile_cache.popitem(last=False)
                _cache_stats["evictions"] += 1
    rel_eb = abs_eb / rng if rng > 0 else 1.0
    alpha = alpha_from_eb(rel_eb)
    variants = tuple(CUBIC_NAK if errors[ax, 0] <= errors[ax, 1]
                     else CUBIC_NAT for ax in range(data.ndim))
    best = errors.min(axis=1)
    # least smooth (largest error) first; ties resolved by axis index for
    # determinism
    order = tuple(int(ax) for ax in
                  np.argsort(-best, kind="stable"))
    return TuneReport(alpha=alpha, cubic_variant=variants, axis_order=order,
                      profiled_errors=tuple(float(b) for b in best),
                      value_range=rng,
                      fingerprint=key.hex()[:_FINGERPRINT_HEX_DIGITS])
