"""Profiling-based auto-tuning of G-Interp (paper §V-C).

A lightweight profiling kernel decides three things before compression:

1. **alpha** — the level-wise error-bound reduction factor, from the
   piecewise-linear map of the value-range-relative error bound (Eq. 1);
2. **per-axis cubic variant** — for each axis, sampled cubic interpolation
   errors pick not-a-knot vs natural;
3. **axis order** — axes are interpolated least-smooth-first (largest
   profiled error first), so the smoothest axis absorbs the most
   interpolations (§V-C.2, after [SZ3]).

The chosen configuration travels in the stream header: decompression must
replay the same traversal without access to the original data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ginterp.splines import (CUBIC_NAK, CUBIC_NAT,
                                        SPLINE_WEIGHTS)

__all__ = ["alpha_from_eb", "profile_cubic_errors", "autotune",
           "TuneReport"]

#: sampled sub-grid extent per axis (paper: "e.g. a 4^3 sub-grid")
PROFILE_SAMPLES = 4


def alpha_from_eb(rel_eb: float) -> float:
    """Eq. 1: piecewise-linear map from relative error bound to alpha."""
    e = float(rel_eb)
    if e >= 1e-1:
        return 2.0
    if e >= 1e-2:
        return 1.75 + 0.25 * (e - 1e-2) / (1e-1 - 1e-2)
    if e >= 1e-3:
        return 1.5 + 0.25 * (e - 1e-3) / (1e-2 - 1e-3)
    if e >= 1e-4:
        return 1.25 + 0.25 * (e - 1e-4) / (1e-3 - 1e-4)
    if e >= 1e-5:
        return 1.0 + 0.25 * (e - 1e-5) / (1e-4 - 1e-5)
    return 1.0


@dataclass
class TuneReport:
    """Outcome of the profiling kernel."""

    alpha: float
    cubic_variant: tuple[int, ...]   # per-axis winning cubic class id
    axis_order: tuple[int, ...]      # least-smooth-first
    profiled_errors: tuple[float, ...]  # per-axis best-spline error sums
    value_range: float


def profile_cubic_errors(data: np.ndarray,
                         samples: int = PROFILE_SAMPLES) -> np.ndarray:
    """Accumulated |prediction error| per (axis, cubic variant).

    Uniformly samples up to ``samples`` positions per axis (keeping 3
    samples of margin so all four cubic neighbors exist) and evaluates both
    cubic splines along every axis — ``2 * ndim`` tests per sampled point,
    as in §V-C.1. Returns an ``(ndim, 2)`` array of error sums indexed by
    (axis, {not-a-knot, natural}).
    """
    ndim = data.ndim
    errors = np.zeros((ndim, 2), dtype=np.float64)
    margin = 3
    coords = []
    for n in data.shape:
        lo, hi = margin, n - 1 - margin
        if hi < lo:  # axis too short to profile; sample its midpoint
            coords.append(np.array([n // 2], dtype=np.int64))
        else:
            coords.append(np.unique(np.linspace(lo, hi, samples)
                                    .astype(np.int64)))
    grids = np.meshgrid(*coords, indexing="ij")
    flat_pts = np.stack([g.ravel() for g in grids], axis=1)
    values = data[tuple(flat_pts.T)].astype(np.float64)

    weights_nak = SPLINE_WEIGHTS[CUBIC_NAK]
    weights_nat = SPLINE_WEIGHTS[CUBIC_NAT]
    offsets = np.array([-3, -1, 1, 3], dtype=np.int64)
    for ax in range(ndim):
        n = data.shape[ax]
        pos = flat_pts[:, ax]
        ok = (pos + 3 <= n - 1) & (pos - 3 >= 0)
        if not np.any(ok):
            continue
        pts = flat_pts[ok]
        vals = values[ok]
        neigh = np.empty((pts.shape[0], 4), dtype=np.float64)
        for j, off in enumerate(offsets):
            moved = pts.copy()
            moved[:, ax] = moved[:, ax] + off
            neigh[:, j] = data[tuple(moved.T)]
        errors[ax, 0] = np.abs(neigh @ weights_nak - vals).sum()
        errors[ax, 1] = np.abs(neigh @ weights_nat - vals).sum()
    return errors


def autotune(data: np.ndarray, abs_eb: float,
             samples: int = PROFILE_SAMPLES) -> TuneReport:
    """Run the full §V-C profiling-and-auto-tuning kernel."""
    rng = float(data.max() - data.min())
    rel_eb = abs_eb / rng if rng > 0 else 1.0
    alpha = alpha_from_eb(rel_eb)

    errors = profile_cubic_errors(data, samples)
    variants = tuple(CUBIC_NAK if errors[ax, 0] <= errors[ax, 1]
                     else CUBIC_NAT for ax in range(data.ndim))
    best = errors.min(axis=1)
    # least smooth (largest error) first; ties resolved by axis index for
    # determinism
    order = tuple(int(ax) for ax in
                  np.argsort(-best, kind="stable"))
    return TuneReport(alpha=alpha, cubic_variant=variants, axis_order=order,
                      profiled_errors=tuple(float(b) for b in best),
                      value_range=rng)
