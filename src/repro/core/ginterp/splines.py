"""1D interpolation splines (paper §V-B.1, Fig. 3/4).

Every prediction is a weighted sum of up to four already-reconstructed
neighbors at offsets ``{-3, -1, +1, +3}`` (in units of the current stride)
along the interpolation axis. Which spline applies depends on how many of
those neighbors are *available* — inside the data domain and inside the
shared thread-block window:

=========  =============================  =====================
neighbors  spline                         weights on (-3,-1,+1,+3)
=========  =============================  =====================
4          cubic, not-a-knot              (-1/16, 9/16, 9/16, -1/16)
4          cubic, natural                 (-3/40, 23/40, 23/40, -3/40)
3 (left)   quadratic                      (-1/8, 6/8, 3/8, 0)
3 (right)  quadratic                      (0, -3/8, 6/8, -1/8)
2          linear                         (0, 1/2, 1/2, 0)
1          nearest (copy the neighbor)    one-hot
=========  =============================  =====================

The two cubic variants serve the same four-neighbor case; auto-tuning picks
the better one per axis per input (§V-C).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CUBIC_NAK", "CUBIC_NAT", "QUAD_LEFT", "QUAD_RIGHT", "LINEAR",
    "NEAREST_LEFT", "NEAREST_RIGHT", "SPLINE_WEIGHTS", "SPLINE_NAMES",
    "NEIGHBOR_OFFSETS", "classify",
]

# class ids — indices into SPLINE_WEIGHTS
CUBIC_NAK = 0
CUBIC_NAT = 1
QUAD_LEFT = 2
QUAD_RIGHT = 3
LINEAR = 4
NEAREST_LEFT = 5
NEAREST_RIGHT = 6

#: neighbor offsets in stride units, fixed order
NEIGHBOR_OFFSETS = (-3, -1, 1, 3)

#: weight matrix, rows indexed by class id, columns by NEIGHBOR_OFFSETS
SPLINE_WEIGHTS = np.array([
    [-1 / 16, 9 / 16, 9 / 16, -1 / 16],   # cubic not-a-knot
    [-3 / 40, 23 / 40, 23 / 40, -3 / 40],  # cubic natural
    [-1 / 8, 6 / 8, 3 / 8, 0.0],           # quadratic (n-3, n-1, n+1)
    # NOTE: the paper prints -3/8 for the x_{n-1} weight, but those weights
    # sum to 1/4 and cannot reproduce constants; the Lagrange quadratic
    # through nodes (-1, +1, +3) evaluated at 0 (and the mirror of the
    # left variant) is (3/8, 6/8, -1/8).
    [0.0, 3 / 8, 6 / 8, -1 / 8],           # quadratic (n-1, n+1, n+3)
    [0.0, 0.5, 0.5, 0.0],                  # linear
    [0.0, 1.0, 0.0, 0.0],                  # nearest left
    [0.0, 0.0, 1.0, 0.0],                  # nearest right
], dtype=np.float64)

SPLINE_NAMES = ("cubic-not-a-knot", "cubic-natural", "quadratic-left",
                "quadratic-right", "linear", "nearest-left", "nearest-right")


def classify(am3: np.ndarray, am1: np.ndarray, ap1: np.ndarray,
             ap3: np.ndarray, cubic_variant: int) -> np.ndarray:
    """Map neighbor-availability masks to spline class ids.

    ``am3..ap3`` are boolean arrays saying whether the neighbor at that
    offset is available; ``cubic_variant`` is :data:`CUBIC_NAK` or
    :data:`CUBIC_NAT` (from auto-tuning). Positions with no available
    neighbor at all are classified nearest-left; the engine never generates
    such positions (an interpolation axis always has a grid point at 0).
    """
    cls = np.full(am1.shape, NEAREST_LEFT, dtype=np.int8)
    only_right = ~am1 & ap1
    cls[only_right] = NEAREST_RIGHT
    lin = am1 & ap1
    cls[lin] = LINEAR
    quad_r = lin & ap3
    cls[quad_r] = QUAD_RIGHT
    quad_l = lin & am3
    cls[quad_l] = QUAD_LEFT
    cub = quad_l & ap3
    cls[cub] = cubic_variant
    return cls
