"""G-Interp: the GPU-optimized interpolation-based data predictor (paper §V).

The package splits along the paper's own structure:

* :mod:`repro.core.ginterp.splines` — the 1D spline family of §V-B.1;
* :mod:`repro.core.ginterp.engine` — anchored multi-level traversal with
  window-confined neighbor availability (§V-A, §V-D), shared by the
  compressor and decompressor, and reused (with different parameters) by
  the CPU SZ3/QoZ reference implementations;
* :mod:`repro.core.ginterp.autotune` — profiling-based auto-tuning (§V-C);
* :mod:`repro.core.ginterp.anchors` — lossless anchor-point storage;
* :mod:`repro.core.ginterp.plans` — compiled pass plans: precomputed
  per-``(shape, geometry)`` traversal geometry with fused strided-view
  prediction kernels, LRU-cached per process.
"""

from repro.core.ginterp.splines import (
    SPLINE_WEIGHTS,
    CUBIC_NAK,
    CUBIC_NAT,
    classify,
)
from repro.core.ginterp.engine import (
    InterpSpec,
    interp_compress,
    interp_decompress,
    level_error_bounds,
    pass_plan,
)
from repro.core.ginterp.autotune import autotune, alpha_from_eb
from repro.core.ginterp.anchors import extract_anchors, apply_anchors
from repro.core.ginterp.plans import (
    PassPlan,
    compile_plan,
    get_plan,
    plan_cache_stats,
    clear_plan_cache,
    set_plan_cache_limit,
)

__all__ = [
    "SPLINE_WEIGHTS",
    "CUBIC_NAK",
    "CUBIC_NAT",
    "classify",
    "InterpSpec",
    "interp_compress",
    "interp_decompress",
    "level_error_bounds",
    "pass_plan",
    "autotune",
    "alpha_from_eb",
    "extract_anchors",
    "apply_anchors",
    "PassPlan",
    "compile_plan",
    "get_plan",
    "plan_cache_stats",
    "clear_plan_cache",
    "set_plan_cache_limit",
]
