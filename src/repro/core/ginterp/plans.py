"""Compiled pass plans: precomputed geometry + fused slice kernels.

The GPU kernels this engine mirrors (paper §V-A/§V-D) owe their speed to a
*fixed launch geometry*: the per-level/per-axis pass structure and the
33x9x9 shared-window neighbor layout are compile-time constants, so each
launch only moves data. The NumPy engine used to rebuild all of that
geometry — per-axis index grids, flat target blocks, spline classification,
class broadcasts, and four full-size clipped neighbor index arrays — on
*every* traversal, even though it depends only on ``(shape, spec)``.

:func:`compile_plan` hoists that work out of the hot path. For one
``(shape, resolved InterpSpec)`` it precomputes, per pass:

* the target lattice as strided-view selectors (the exact raveled block
  order the reference path emits, so quant-code streams stay
  byte-identical — but gathered and scattered through plain slices
  instead of int64 fancy indexing);
* the spline-class partition along the interpolation axis;
* **fused slice groups** — maximal runs of targets sharing one spline
  class. Each run's neighbors sit on strided lattices
  (``work[..., t0+k*s : ... : 2*s, ...]``), so prediction is a few
  scalar-weight multiply-adds over array *views*: no flat index arrays,
  no ``np.clip``, no per-neighbor gather;
* a precompiled **gather tail** for whatever the slices do not cover
  (class-change singletons on blocks too small to amortize a slice op):
  clipped neighbor indices and per-target weight rows are baked into the
  plan, so execution is four gathers and four multiply-adds.

Bit-exactness is non-negotiable and holds by construction. Every target is
computed by the same float64 accumulation the reference path runs —
zero-init then ``pred += w_k * neighbor_k`` over
:data:`~repro.core.ginterp.splines.NEIGHBOR_OFFSETS` in order, with the
same weight values and operands. The fused kernels *skip* zero-weight
neighbors, which cannot change any bit of the result for finite inputs
(the engine rejects NaN/Inf up front): an accumulator seeded at ``+0.0``
can never become ``-0.0`` (a nonzero float64 sum has magnitude at least
the smallest subnormal, and ``+0.0 + ±0.0 == +0.0``), so adding a
zero-weight product ``±0.0`` is always an identity. Skipping them also
means a fused run only ever touches *available* neighbors — the spline
table puts nonzero weight only on in-domain samples — so the reference
path's ``np.clip`` has nothing to do on the fused majority; the clipped
(weight-zero) gathers survive verbatim in the gather tail.

Plans are LRU-cached per process (:func:`get_plan`), keyed on the geometry
``(shape, anchor_stride, window_shape, cubic_variant, axis_order)`` —
``alpha``/``beta`` only scale error bounds and are deliberately excluded,
so re-tuning the same field at a new error bound, the decompress replay,
every slab of a stream, and every same-shape field of a batch all hit the
same compiled plan. Hit/miss counters are exported via telemetry
(``ginterp.plan_cache.{hit,miss}``) and :func:`plan_cache_stats`.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.telemetry import caches
from repro.common.errors import ConfigError
from repro.core.ginterp.splines import NEIGHBOR_OFFSETS, SPLINE_WEIGHTS

__all__ = ["FusedGroup", "CompiledPass", "PassPlan", "compile_plan",
           "get_plan", "plan_cache_stats", "clear_plan_cache",
           "set_plan_cache_limit"]

#: a run is fused only when it covers at least this many block elements;
#: below that the per-slice call overhead costs more than one batched
#: gather over the (precompiled) tail
_MIN_FUSED_ELEMENTS = 64


@dataclass(frozen=True)
class FusedGroup:
    """One maximal run of same-class targets, predicted through views.

    ``target_sel`` selects the run inside the block-shaped prediction
    buffer; ``sources[j]`` selects the run targets' ``j``-th
    *nonzero-weight* neighbor as a strided view of the work array;
    ``weights[j]`` is that neighbor's spline weight as a scalar;
    ``shape``/``size`` describe the run's sub-block.
    """

    target_sel: tuple[slice, ...]
    sources: tuple[tuple[slice, ...], ...]
    weights: tuple[float, ...]
    shape: tuple[int, ...]
    size: int
    #: the same sources re-based onto the pass's staged even-lattice buffer
    #: (unit stride along the pass axis); ``None`` when not alignable
    staged: tuple[tuple[slice, ...], ...] | None = None


class CompiledPass:
    """Precompiled geometry + kernel for one interpolation pass.

    ``target_view`` addresses the pass's target lattice as plain slices of
    the work array — targets along the interpolation axis are
    ``stride::2*stride`` and ``0::step`` on every other axis — so the
    quantize gather and the reconstruction scatter are strided view ops,
    not int64 fancy indexing.
    """

    __slots__ = ("desc", "block_shape", "target_view", "n_targets",
                 "groups", "ev_sel", "ev_shape", "ev_size",
                 "b_sel", "b_gather", "b_w", "compile_s")

    def __init__(self, desc, block_shape, target_view, n_targets, groups,
                 ev_sel, ev_shape, ev_size, b_sel, b_gather, b_w,
                 compile_s):
        self.desc = desc
        self.block_shape = block_shape
        self.target_view = target_view
        self.n_targets = n_targets
        self.groups = groups          # tuple[FusedGroup, ...]
        self.ev_sel = ev_sel          # even-lattice staging selector
        self.ev_shape = ev_shape
        self.ev_size = ev_size
        self.b_sel = b_sel            # int64 positions within the block
        self.b_gather = b_gather      # (4, nb) clipped work_flat indices
        self.b_w = b_w                # (4, nb) per-target weights
        self.compile_s = compile_s

    @property
    def n_boundary(self) -> int:
        return int(self.b_sel.size)

    @property
    def max_group(self) -> int:
        return max((g.size for g in self.groups), default=0)

    @property
    def nbytes(self) -> int:
        return (self.b_sel.nbytes + self.b_gather.nbytes
                + self.b_w.nbytes)

    def predict(self, work: np.ndarray, work_flat: np.ndarray,
                pred_buf: np.ndarray | None = None,
                mul_buf: np.ndarray | None = None,
                ev_buf: np.ndarray | None = None) -> np.ndarray:
        """Predictions for every pass target, in flat (block) order.

        Bit-identical to the reference gather path: each element runs the
        same zero-init + float64 multiply-add accumulation over
        :data:`NEIGHBOR_OFFSETS`, with identical operands (zero-weight
        terms skipped — an identity on the accumulation for finite data).
        ``pred_buf``/``mul_buf``/``ev_buf`` are optional reusable scratch
        buffers (see :meth:`PassPlan.workspace`); staging only *copies*
        values, so it cannot change any bit of the accumulation.
        """
        n = self.n_targets
        if pred_buf is None:
            pred = np.zeros(n, dtype=np.float64)
        else:
            pred = pred_buf[:n]
            pred.fill(0.0)
        if self.groups:
            staged = None
            if self.ev_size and any(g.staged is not None
                                    for g in self.groups):
                # neighbors all live on the complementary even lattice;
                # staging it once makes every neighbor read unit-stride
                if ev_buf is None:
                    staged = np.empty(self.ev_shape, dtype=np.float64)
                else:
                    staged = ev_buf[:self.ev_size].reshape(self.ev_shape)
                np.copyto(staged, work[self.ev_sel])
            pred_nd = pred.reshape(self.block_shape)
            for g in self.groups:
                sub = pred_nd[g.target_sel]
                if mul_buf is None:
                    buf = np.empty(g.shape, dtype=np.float64)
                else:
                    buf = mul_buf[:g.size].reshape(g.shape)
                srcs = (zip(g.weights, g.staged)
                        if staged is not None and g.staged is not None
                        else None)
                if srcs is not None:
                    for w, src in srcs:
                        np.multiply(staged[src], w, out=buf)
                        sub += buf
                else:
                    for w, src in zip(g.weights, g.sources):
                        np.multiply(work[src], w, out=buf)
                        sub += buf
        if self.b_sel.size:
            pb = np.zeros(self.b_sel.size, dtype=np.float64)
            for j in range(len(NEIGHBOR_OFFSETS)):
                pb += self.b_w[j] * work_flat[self.b_gather[j]]
            pred[self.b_sel] = pb
        return pred

    def predict_quantize(self, work: np.ndarray, work_flat: np.ndarray,
                         data: np.ndarray, quantizer, eb: float,
                         codes_out: np.ndarray,
                         scr_pred: np.ndarray, scr_mul: np.ndarray,
                         scr_ev: np.ndarray, q_buf: np.ndarray,
                         r_buf: np.ndarray) -> np.ndarray:
        """Fused predict → quantize → reconstruct for one pass.

        Runs :meth:`predict` and immediately folds the quantization into
        the same pass: int codes land directly in ``codes_out`` (the
        pass's slice of the full stream), the reconstruction is scattered
        back into ``work`` through the strided target view, and only the
        compacted outlier values (returned) are newly allocated — no
        float residual intermediates, no per-pass code arrays.
        Bit-identical to predict-then-:meth:`LinearQuantizer.quantize`
        because :meth:`~repro.common.quantizer.LinearQuantizer\
.quantize_into` replays the same float64 lane arithmetic.
        """
        pred = self.predict(work, work_flat, scr_pred, scr_mul, scr_ev)
        recon, outliers = quantizer.quantize_into(
            data[self.target_view], pred, eb, codes_out,
            q_buf=q_buf, r_buf=r_buf)
        work[self.target_view] = recon
        return outliers


@dataclass(frozen=True)
class PassPlan:
    """A fully compiled traversal for one ``(shape, geometry)`` pair."""

    shape: tuple[int, ...]
    key: tuple
    passes: tuple[CompiledPass, ...]
    compile_s: float

    @property
    def n_targets(self) -> int:
        return sum(cp.n_targets for cp in self.passes)

    @property
    def n_fused(self) -> int:
        return sum(cp.n_targets - cp.n_boundary for cp in self.passes)

    @property
    def n_gather(self) -> int:
        return sum(cp.n_boundary for cp in self.passes)

    @property
    def nbytes(self) -> int:
        return sum(cp.nbytes for cp in self.passes)

    @property
    def max_targets(self) -> int:
        return max((cp.n_targets for cp in self.passes), default=0)

    @property
    def max_group(self) -> int:
        return max((cp.max_group for cp in self.passes), default=0)

    @property
    def max_staged(self) -> int:
        return max((cp.ev_size for cp in self.passes), default=0)

    def workspace(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fresh reusable scratch buffers for :meth:`CompiledPass.predict`.

        One triple per traversal keeps every pass allocation-free; callers
        must not hold a pass's prediction past the next ``predict`` call.
        """
        return (np.empty(self.max_targets, dtype=np.float64),
                np.empty(self.max_group, dtype=np.float64),
                np.empty(self.max_staged, dtype=np.float64))

    def quant_workspace(self) -> tuple[np.ndarray, np.ndarray]:
        """Scratch pair for :meth:`CompiledPass.predict_quantize`:
        the float64 rounding and reconstruction buffers, sized for the
        widest pass so the fused traversal allocates nothing per pass."""
        return (np.empty(self.max_targets, dtype=np.float64),
                np.empty(self.max_targets, dtype=np.float64))


_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_GATHER = np.empty((len(NEIGHBOR_OFFSETS), 0), dtype=np.int64)
_EMPTY_W = np.empty((len(NEIGHBOR_OFFSETS), 0), dtype=np.float64)
for _a in (_EMPTY_I64, _EMPTY_GATHER, _EMPTY_W):
    _a.setflags(write=False)


def _lattice_slice(idx: np.ndarray) -> slice:
    """The equally-spaced index array ``idx`` as an equivalent slice."""
    if idx.size == 1:
        return slice(int(idx[0]), int(idx[0]) + 1, 1)
    step = int(idx[1] - idx[0])
    if not np.all(np.diff(idx) == step):  # pragma: no cover - by construction
        raise ConfigError("pass targets do not form a regular lattice")
    return slice(int(idx[0]), int(idx[-1]) + 1, step)


def _class_runs(cls1d: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of constant class as ``[start, stop)`` pairs."""
    change = np.flatnonzero(np.diff(cls1d)) + 1
    bounds = [0, *change.tolist(), cls1d.size]
    return list(zip(bounds[:-1], bounds[1:]))


def _compile_pass(shape: tuple[int, ...], spec, p) -> CompiledPass:
    """Precompute one pass's targets, class partition, and kernels."""
    from repro.core.ginterp.engine import (_axis_indices, _class_1d,
                                           _flat_block)
    t0 = time.perf_counter()
    ndim = len(shape)
    axes_idx = _axis_indices(shape, p)
    t = axes_idx[p.axis]
    if t.size == 0 or any(a.size == 0 for a in axes_idx):
        empty_view = tuple(slice(0, 0, 1) for _ in range(ndim))
        return CompiledPass(p, (0,) * ndim, empty_view, 0, (), empty_view,
                            (0,) * ndim, 0, _EMPTY_I64, _EMPTY_GATHER,
                            _EMPTY_W, time.perf_counter() - t0)
    flat_nd = _flat_block(axes_idx, shape)
    block_shape = flat_nd.shape
    flat = np.ascontiguousarray(flat_nd.ravel())
    # every pass's target set is itself a regular lattice, so the quantize
    # gather / reconstruction scatter compile to strided views
    target_view = tuple(_lattice_slice(idx) for idx in axes_idx)

    window = spec.window_shape[p.axis] if spec.window_shape else None
    cubic = spec.cubic_variant[p.axis]
    cls1d = _class_1d(t, shape[p.axis], p.stride, window, cubic)

    m = t.size
    n = shape[p.axis]
    block_other = flat.size // m
    covered = np.zeros(m, dtype=bool)
    s = p.stride
    # every neighbor of every target lies on the complementary even
    # lattice (t = s*(2i+1), offsets odd => t + k*s = 2s*j), so one staged
    # copy of that lattice turns all neighbor reads unit-stride
    ev_sel = []
    for ax in range(ndim):
        if ax == p.axis:
            ev_sel.append(slice(0, n, 2 * s))
        else:
            ev_sel.append(slice(0, shape[ax], p.steps[ax]))
    ev_sel = tuple(ev_sel)
    ev_shape = list(block_shape)
    ev_shape[p.axis] = len(range(0, n, 2 * s))
    ev_shape = tuple(ev_shape)
    groups = []
    n_fused = 0
    for a, b in _class_runs(cls1d):
        if (b - a) * block_other < _MIN_FUSED_ELEMENTS:
            continue            # too small to amortize a slice op
        cls = int(cls1d[a])
        weights = []
        sources = []
        staged_srcs = []
        in_domain = True
        for j, k in enumerate(NEIGHBOR_OFFSETS):
            w = float(SPLINE_WEIGHTS[cls, j])
            if w == 0.0:
                continue        # identity on the accumulation; skip
            start = int(t[a]) + k * s
            stop = int(t[b - 1]) + k * s + 1
            if start < 0 or stop > n:
                # nonzero weight always sits on an available (in-domain)
                # neighbor; this guard only ever fires on configurations
                # the classifier promises not to produce
                in_domain = False
                break
            src = []
            for ax in range(ndim):
                if ax == p.axis:
                    src.append(slice(start, stop, 2 * s))
                else:
                    src.append(slice(0, shape[ax], p.steps[ax]))
            weights.append(w)
            sources.append(tuple(src))
            if staged_srcs is not None and start % (2 * s) == 0:
                st = list(src)
                st[p.axis] = slice(start // (2 * s),
                                   start // (2 * s) + (b - a), 1)
                st[p.axis + 1:] = [slice(None)] * (ndim - p.axis - 1)
                for ax in range(p.axis):
                    st[ax] = slice(None)
                staged_srcs.append(tuple(st))
            else:
                staged_srcs = None
        if not in_domain:
            continue
        covered[a:b] = True
        n_fused += b - a
        tsel = [slice(None)] * ndim
        tsel[p.axis] = slice(a, b)
        run_shape = list(block_shape)
        run_shape[p.axis] = b - a
        groups.append(FusedGroup(tuple(tsel), tuple(sources),
                                 tuple(weights), tuple(run_shape),
                                 math.prod(run_shape),
                                 tuple(staged_srcs)
                                 if staged_srcs is not None else None))

    b_axis = np.flatnonzero(~covered)
    if b_axis.size:
        sel_nd = np.take(np.arange(flat.size, dtype=np.int64)
                         .reshape(block_shape), b_axis, axis=p.axis)
        b_sel = np.ascontiguousarray(sel_nd.ravel())
        view = [1] * ndim
        view[p.axis] = b_axis.size
        cls_b = np.broadcast_to(cls1d[b_axis].reshape(view),
                                sel_nd.shape).ravel()
        b_w = np.ascontiguousarray(SPLINE_WEIGHTS[cls_b].T)
        ax_stride = 1
        for ax in range(p.axis + 1, ndim):
            ax_stride *= shape[ax]
        size = math.prod(shape)
        base = flat[b_sel]
        b_gather = np.empty((len(NEIGHBOR_OFFSETS), b_sel.size),
                            dtype=np.int64)
        for j, k in enumerate(NEIGHBOR_OFFSETS):
            idx = base + (k * s * ax_stride)
            # identical clip semantics to the reference path: zero-weight
            # out-of-domain neighbors gather the same (ignored) operand
            np.clip(idx, 0, size - 1, out=idx)
            b_gather[j] = idx
        for arr in (b_sel, b_gather, b_w):
            arr.setflags(write=False)
    else:
        b_sel, b_gather, b_w = _EMPTY_I64, _EMPTY_GATHER, _EMPTY_W
    has_staged = any(g.staged is not None for g in groups)
    return CompiledPass(p, block_shape, target_view, int(flat.size),
                        tuple(groups), ev_sel, ev_shape,
                        math.prod(ev_shape) if has_staged else 0,
                        b_sel, b_gather, b_w, time.perf_counter() - t0)


def _plan_key(shape: tuple[int, ...], spec) -> tuple:
    """Geometry-only cache key: ``alpha``/``beta`` scale error bounds but
    never change addressing, so eb re-tunes share the compiled plan."""
    return (tuple(shape), spec.anchor_stride, spec.window_shape,
            spec.cubic_variant, spec.axis_order)


def compile_plan(shape: tuple[int, ...], spec) -> PassPlan:
    """Compile the full pass plan for ``(shape, spec)`` (uncached)."""
    from repro.core.ginterp.engine import pass_plan
    shape = tuple(int(n) for n in shape)
    spec = spec.resolved(len(shape))
    t0 = time.perf_counter()
    with telemetry.span("ginterp.plan_compile", shape=list(shape)) as sp:
        passes = tuple(_compile_pass(shape, spec, p)
                       for p in pass_plan(len(shape), spec))
        plan = PassPlan(shape=shape, key=_plan_key(shape, spec),
                        passes=passes,
                        compile_s=time.perf_counter() - t0)
        sp.set(n_passes=len(passes), n_fused=plan.n_fused,
               n_gather=plan.n_gather, plan_nbytes=plan.nbytes)
    return plan


# -- per-process LRU cache --------------------------------------------------

_DEFAULT_CACHE_LIMIT = 16

_cache_lock = threading.Lock()
_plan_cache: OrderedDict[tuple, PassPlan] = OrderedDict()
_cache_stats = {"hits": 0, "misses": 0, "evictions": 0}
_cache_limit = _DEFAULT_CACHE_LIMIT


def get_plan(shape: tuple[int, ...], spec) -> PassPlan:
    """The compiled plan for ``(shape, spec)``, LRU-cached per process."""
    shape = tuple(int(n) for n in shape)
    spec = spec.resolved(len(shape))
    key = _plan_key(shape, spec)
    with _cache_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            _plan_cache.move_to_end(key)
            _cache_stats["hits"] += 1
    if plan is not None:
        telemetry.incr("ginterp.plan_cache.hit")
        return plan
    telemetry.incr("ginterp.plan_cache.miss")
    plan = compile_plan(shape, spec)
    with _cache_lock:
        _cache_stats["misses"] += 1
        _plan_cache[key] = plan
        _plan_cache.move_to_end(key)
        while len(_plan_cache) > _cache_limit:
            _plan_cache.popitem(last=False)
            _cache_stats["evictions"] += 1
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Snapshot of the plan cache hit/miss counters and occupancy."""
    with _cache_lock:
        return {**_cache_stats, "size": len(_plan_cache),
                "limit": _cache_limit,
                "size_bytes": sum(p.nbytes
                                  for p in _plan_cache.values())}


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (mainly for tests)."""
    with _cache_lock:
        _plan_cache.clear()
        _cache_stats["hits"] = 0
        _cache_stats["misses"] = 0
        _cache_stats["evictions"] = 0


def set_plan_cache_limit(limit: int) -> int:
    """Resize the LRU (returns the previous limit; mainly for tests)."""
    global _cache_limit
    if limit < 1:
        raise ConfigError(f"plan cache limit must be >= 1, got {limit}")
    with _cache_lock:
        old = _cache_limit
        _cache_limit = int(limit)
        while len(_plan_cache) > _cache_limit:
            _plan_cache.popitem(last=False)
            _cache_stats["evictions"] += 1
    return old


caches.register("ginterp.plan", plan_cache_stats)
