"""Anchored multi-level interpolation traversal (paper §V-A, §V-D).

One engine drives both sides of the codec and all three interpolation-based
compressors in this repository:

* **G-Interp** (cuSZ-i): anchor stride 8 (3D), window-confined neighbor
  availability matching the 33x9x9 shared thread-block layout of Fig. 2;
* **SZ3 / QoZ CPU references**: global (unconfined) neighbor availability,
  larger/whole-array anchor strides.

The traversal is a flat list of *passes* — (level stride, axis) pairs — in
which every target is predicted only from already-reconstructed samples, so
each pass is a single set of vectorized gathers (the NumPy analogue of one
fully parallel GPU kernel launch). Compression and decompression run the
identical pass plan and identical float64 arithmetic; the only difference is
whether quant-codes are produced or consumed, which guarantees bit-exact
replay.

By default both traversals execute through a **compiled pass plan**
(:mod:`repro.core.ginterp.plans`): the per-pass geometry — target indices,
spline classification, neighbor addressing — is precomputed once per
``(shape, geometry)`` and LRU-cached, and the interior majority of every
pass is predicted through fused strided-view kernels instead of index
gathers. The compiled path is bit-identical to the reference path here
(the equivalence suite asserts it); pass ``compiled=False`` to force the
uncompiled reference traversal.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.common.errors import ConfigError, CorruptStreamError, DataError
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp.anchors import apply_anchors, extract_anchors
from repro.core.ginterp.splines import (NEIGHBOR_OFFSETS, SPLINE_WEIGHTS,
                                        CUBIC_NAK, classify)

__all__ = ["InterpSpec", "PassDesc", "pass_plan", "level_error_bounds",
           "interp_compress", "interp_decompress", "InterpResult"]


@dataclass(frozen=True)
class InterpSpec:
    """Full configuration of one interpolation predictor.

    Attributes
    ----------
    anchor_stride:
        Power-of-two spacing of losslessly stored anchors; also fixes the
        number of interpolation levels (``log2(anchor_stride)``).
    window_shape:
        Per-axis shared-window extents (G-Interp: ``(9, 9, 33)`` — window
        length in samples, anchor-inclusive). ``None`` disables confinement
        (the CPU-style global interpolation).
    cubic_variant:
        Per-axis cubic spline choice (CUBIC_NAK / CUBIC_NAT class ids),
        normally from auto-tuning.
    axis_order:
        Order in which axes are interpolated inside each level; the paper
        tunes this least-smooth-first.
    alpha, beta:
        Level-wise error-bound reduction: level ``l`` (stride ``2**(l-1)``)
        uses ``eb / min(alpha**(l-1), beta)`` (§V-B.2; beta is the QoZ-style
        cap, ``inf`` = uncapped).
    """

    anchor_stride: int = 8
    window_shape: tuple[int, ...] | None = None
    cubic_variant: tuple[int, ...] = ()
    axis_order: tuple[int, ...] = ()
    alpha: float = 1.0
    beta: float = math.inf

    def __post_init__(self):
        s = self.anchor_stride
        if s < 2 or (s & (s - 1)) != 0:
            raise ConfigError(
                f"anchor_stride must be a power of two >= 2, got {s}")
        if self.alpha < 1.0:
            raise ConfigError(f"alpha must be >= 1, got {self.alpha}")
        if self.beta < 1.0:
            raise ConfigError(f"beta must be >= 1, got {self.beta}")

    @property
    def n_levels(self) -> int:
        return self.anchor_stride.bit_length() - 1

    def resolved(self, ndim: int) -> "InterpSpec":
        """Fill per-axis defaults for an ``ndim``-dimensional input."""
        cubic = self.cubic_variant or tuple([CUBIC_NAK] * ndim)
        order = self.axis_order or tuple(range(ndim))
        if len(cubic) != ndim or len(order) != ndim:
            raise ConfigError("per-axis spec lengths do not match ndim")
        if sorted(order) != list(range(ndim)):
            raise ConfigError(f"axis_order {order} is not a permutation")
        if self.window_shape is not None:
            if len(self.window_shape) != ndim:
                raise ConfigError("window_shape rank mismatch")
            for w in self.window_shape:
                if w < 2:
                    raise ConfigError("window extents must be >= 2")
        return InterpSpec(anchor_stride=self.anchor_stride,
                          window_shape=self.window_shape,
                          cubic_variant=tuple(cubic),
                          axis_order=tuple(order),
                          alpha=self.alpha, beta=self.beta)

    def to_meta(self) -> dict:
        """JSON-serializable form for the container header."""
        return {
            "anchor_stride": self.anchor_stride,
            "window_shape": list(self.window_shape)
            if self.window_shape else None,
            "cubic_variant": list(self.cubic_variant),
            "axis_order": list(self.axis_order),
            "alpha": self.alpha,
            "beta": self.beta if math.isfinite(self.beta) else None,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "InterpSpec":
        return cls(anchor_stride=int(meta["anchor_stride"]),
                   window_shape=tuple(meta["window_shape"])
                   if meta.get("window_shape") else None,
                   cubic_variant=tuple(meta["cubic_variant"]),
                   axis_order=tuple(meta["axis_order"]),
                   alpha=float(meta["alpha"]),
                   beta=float(meta["beta"])
                   if meta.get("beta") is not None else math.inf)


@dataclass(frozen=True)
class PassDesc:
    """One interpolation pass: all targets at ``stride`` along ``axis``."""

    level: int                 # 1-based; stride == 2**(level-1)
    stride: int
    axis: int
    steps: tuple[int, ...]     # per-axis sampling step *entering* this pass


def pass_plan(ndim: int, spec: InterpSpec) -> list[PassDesc]:
    """The deterministic pass sequence for an ``ndim``-D input.

    Levels run coarse to fine (stride ``anchor_stride/2`` down to 1); inside
    each level axes run in ``spec.axis_order``. The per-axis step tuple
    captures which samples are already known when the pass starts.
    """
    passes: list[PassDesc] = []
    s = spec.anchor_stride // 2
    while s >= 1:
        steps = [2 * s] * ndim
        for ax in spec.axis_order:
            passes.append(PassDesc(level=s.bit_length(), stride=s, axis=ax,
                                   steps=tuple(steps)))
            steps[ax] = s
        s //= 2
    return passes


def level_error_bounds(eb: float, spec: InterpSpec) -> dict[int, float]:
    """Per-level absolute error bounds ``e_l = e / min(alpha^(l-1), beta)``."""
    return {lv: eb / min(spec.alpha ** (lv - 1), spec.beta)
            for lv in range(1, spec.n_levels + 1)}


@dataclass
class InterpResult:
    """Everything the pipeline needs after a compression traversal."""

    codes: np.ndarray            # uint32 quant-codes in pass order
    outliers: np.ndarray         # float32 compacted outlier values
    anchors: np.ndarray          # float32 anchor grid
    reconstructed: np.ndarray    # float64, what the decompressor will see
    pass_sizes: list[int] = field(default_factory=list)


def _axis_indices(shape: tuple[int, ...], p: PassDesc) -> list[np.ndarray]:
    """Per-axis sample positions making up this pass's target grid."""
    out = []
    for ax, n in enumerate(shape):
        if ax == p.axis:
            out.append(np.arange(p.stride, n, 2 * p.stride, dtype=np.int64))
        else:
            out.append(np.arange(0, n, p.steps[ax], dtype=np.int64))
    return out


def _flat_block(axes_idx: list[np.ndarray], shape: tuple[int, ...]
                ) -> np.ndarray:
    """Broadcast-sum per-axis offsets into a block of flat C indices."""
    ndim = len(shape)
    strides = [1] * ndim
    for ax in range(ndim - 2, -1, -1):
        strides[ax] = strides[ax + 1] * shape[ax + 1]
    total = np.zeros((1,) * ndim, dtype=np.int64)
    for ax, idx in enumerate(axes_idx):
        view = [1] * ndim
        view[ax] = idx.size
        total = total + (idx * strides[ax]).reshape(view)
    return total


def _class_1d(t: np.ndarray, n: int, s: int, window: int | None,
              cubic_variant: int) -> np.ndarray:
    """Spline class per target position along the interpolation axis."""
    avail = {}
    if window is not None:
        wstep = window - 1
        lo = (t // wstep) * wstep
        hi = np.minimum(lo + wstep, n - 1)
    for k in NEIGHBOR_OFFSETS:
        pos = t + k * s
        ok = (pos >= 0) & (pos <= n - 1)
        if window is not None:
            ok &= (pos >= lo) & (pos <= hi)
        avail[k] = ok
    return classify(avail[-3], avail[-1], avail[1], avail[3], cubic_variant)


def _pass_predict(work_flat: np.ndarray, shape: tuple[int, ...],
                  spec: InterpSpec, p: PassDesc
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Compute (flat target indices, predictions) for one pass."""
    axes_idx = _axis_indices(shape, p)
    t = axes_idx[p.axis]
    if t.size == 0 or any(a.size == 0 for a in axes_idx):
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    flat = _flat_block(axes_idx, shape)
    block_shape = flat.shape
    flat = flat.ravel()

    window = spec.window_shape[p.axis] if spec.window_shape else None
    cls1d = _class_1d(t, shape[p.axis], p.stride, window,
                      spec.cubic_variant[p.axis])
    view = [1] * len(shape)
    view[p.axis] = t.size
    cls = np.broadcast_to(cls1d.reshape(view), block_shape).ravel()

    ndim = len(shape)
    ax_stride = 1
    for ax in range(p.axis + 1, ndim):
        ax_stride *= shape[ax]
    size = work_flat.size
    pred = np.zeros(flat.size, dtype=np.float64)
    weights = SPLINE_WEIGHTS
    for j, k in enumerate(NEIGHBOR_OFFSETS):
        w = weights[cls, j]
        idx = flat + (k * p.stride * ax_stride)
        np.clip(idx, 0, size - 1, out=idx)
        pred += w * work_flat[idx]
    return flat, pred


def _resolve_plan(shape: tuple[int, ...], spec: InterpSpec, plan,
                  compiled: bool):
    """Normalize the ``plan=``/``compiled=`` fast-path knobs.

    ``plan`` may be an explicit :class:`~repro.core.ginterp.plans.PassPlan`
    (validated against this call's geometry); otherwise ``compiled=True``
    fetches the LRU-cached plan and ``compiled=False`` selects the
    uncompiled reference traversal (returns ``None``).
    """
    from repro.core.ginterp import plans as _plans
    if plan is not None:
        key = _plans._plan_key(shape, spec)
        if plan.key != key:
            raise ConfigError(
                f"pass plan was compiled for {plan.key}, not {key}")
        return plan
    if compiled:
        return _plans.get_plan(shape, spec)
    return None


def _check_finite(data: np.ndarray) -> None:
    """Reject NaN/Inf up front: a single non-finite sample poisons every
    prediction that (even with zero weight) gathers it — ``0.0 * inf``
    is NaN — and would silently destroy the whole field."""
    if not np.isfinite(data).all():
        bad = int(data.size - np.isfinite(data).sum())
        raise DataError(
            f"interpolation input contains {bad} non-finite value(s) "
            f"(NaN/Inf); mask or filter them before compression")


def interp_compress(data: np.ndarray, spec: InterpSpec, eb: float,
                    quantizer: LinearQuantizer | None = None, *,
                    plan=None, compiled: bool = True,
                    fused: bool | None = None) -> InterpResult:
    """Run the full interpolation-compression traversal.

    ``data`` is the (possibly padded) float field; returns quant-codes in
    pass order, compacted outliers, the float32 anchor grid, and the exact
    reconstruction the decompressor will reproduce.

    ``plan``/``compiled`` select the execution path (see
    :func:`_resolve_plan`); all paths produce bit-identical streams.
    ``fused`` selects the fused predict–quantize emission on the compiled
    path (codes written straight into the preallocated stream inside the
    pass, no float residual intermediates); default on, overridable via
    ``REPRO_FUSED_QUANTIZE=0``. Ignored on the uncompiled reference path.
    """
    spec = spec.resolved(data.ndim)
    _check_finite(data)
    quantizer = quantizer or LinearQuantizer()
    plan = _resolve_plan(data.shape, spec, plan, compiled)
    if fused is None:
        fused = os.environ.get("REPRO_FUSED_QUANTIZE", "1") != "0"
    fused = fused and plan is not None
    work = data.astype(np.float64, copy=True)
    anchors = extract_anchors(work, spec.anchor_stride,
                              quantizer.value_dtype)
    apply_anchors(work, anchors, spec.anchor_stride)
    work_flat = work.ravel()

    ebs = level_error_bounds(eb, spec)
    codes_parts: list[np.ndarray] = []
    outlier_parts: list[np.ndarray] = []
    sizes: list[int] = []
    orig_flat = data.ravel()
    cursor = 0
    if plan is not None:
        scr_pred, scr_mul, scr_ev = plan.workspace()
    if fused:
        codes_all = np.empty(plan.n_targets, dtype=np.uint32)
        q_buf, r_buf = plan.quant_workspace()
    for step in (plan.passes if plan is not None
                 else pass_plan(data.ndim, spec)):
        p = step.desc if plan is not None else step
        # one span per level/axis pass, mirroring one GPU kernel launch
        with telemetry.span("ginterp.pass", level=p.level, axis=p.axis,
                            stride=p.stride) as psp:
            if fused:
                n = step.n_targets
                sizes.append(int(n))
                psp.set(targets=int(n), fused=True)
                if n == 0:
                    continue
                # fused emission: predict, quantize, and reconstruct in
                # one pass-local kernel; codes land in the preallocated
                # stream slice, so the engine-level quantize stage is gone
                with telemetry.span("ginterp.pq", level=p.level):
                    outlier_parts.append(step.predict_quantize(
                        work, work_flat, data, quantizer, ebs[p.level],
                        codes_all[cursor:cursor + n], scr_pred, scr_mul,
                        scr_ev, q_buf, r_buf))
                cursor += n
                telemetry.observe("ginterp.pass_targets", n)
                continue
            with telemetry.span("ginterp.gather",
                                compiled=plan is not None):
                if plan is not None:
                    n = step.n_targets
                    pred = step.predict(work, work_flat, scr_pred,
                                         scr_mul, scr_ev)
                else:
                    flat, pred = _pass_predict(work_flat, data.shape,
                                               spec, p)
                    n = flat.size
            sizes.append(int(n))
            psp.set(targets=int(n))
            if n == 0:
                continue
            with telemetry.span("ginterp.quantize", level=p.level):
                # the target lattice reads/writes through strided views on
                # the compiled path; both index the same raveled block
                # order, so streams stay byte-identical
                vals = (data[step.target_view] if plan is not None
                        else orig_flat[flat])
                res = quantizer.quantize(vals, pred, ebs[p.level])
            if plan is not None:
                work[step.target_view] = \
                    res.reconstructed.reshape(step.block_shape)
            else:
                work_flat[flat] = res.reconstructed
            codes_parts.append(res.codes)
            outlier_parts.append(res.outlier_values)
            telemetry.observe("ginterp.pass_targets", n)

    if fused:
        if cursor != codes_all.size:  # pragma: no cover - plan invariant
            raise ConfigError("fused traversal did not fill the code "
                              "stream")
        codes = codes_all
    else:
        codes = (np.concatenate(codes_parts) if codes_parts
                 else np.empty(0, np.uint32))
    outliers = (np.concatenate(outlier_parts) if outlier_parts
                else np.empty(0, np.float32))
    return InterpResult(codes=codes, outliers=outliers, anchors=anchors,
                        reconstructed=work, pass_sizes=sizes)


def interp_decompress(shape: tuple[int, ...], spec: InterpSpec, eb: float,
                      codes: np.ndarray, outliers: np.ndarray,
                      anchors: np.ndarray,
                      quantizer: LinearQuantizer | None = None, *,
                      plan=None, compiled: bool = True) -> np.ndarray:
    """Replay :func:`interp_compress` from its outputs.

    Returns the float64 reconstruction, bit-identical to
    ``InterpResult.reconstructed``. Raises
    :class:`~repro.common.errors.CorruptStreamError` when the quant-code
    or outlier stream is shorter (or longer) than the traversal demands —
    truncated input must fail loudly, not decode garbage.
    """
    spec = spec.resolved(len(shape))
    quantizer = quantizer or LinearQuantizer()
    plan = _resolve_plan(tuple(shape), spec, plan, compiled)
    work = np.zeros(shape, dtype=np.float64)
    apply_anchors(work, anchors.reshape(
        tuple(-(-n // spec.anchor_stride) for n in shape)),
        spec.anchor_stride)
    work_flat = work.ravel()

    ebs = level_error_bounds(eb, spec)
    codes = np.asarray(codes)
    cursor = 0
    out_cursor = 0
    if plan is not None:
        scr_pred, scr_mul, scr_ev = plan.workspace()
    for step in (plan.passes if plan is not None
                 else pass_plan(len(shape), spec)):
        p = step.desc if plan is not None else step
        with telemetry.span("ginterp.pass", level=p.level, axis=p.axis,
                            stride=p.stride) as psp:
            with telemetry.span("ginterp.gather",
                                compiled=plan is not None):
                if plan is not None:
                    n = step.n_targets
                    pred = step.predict(work, work_flat, scr_pred,
                                         scr_mul, scr_ev)
                else:
                    flat, pred = _pass_predict(work_flat, shape, spec, p)
                    n = flat.size
            psp.set(targets=int(n))
            if n == 0:
                continue
            if cursor + n > codes.size:
                raise CorruptStreamError(
                    f"quant-code stream exhausted at level {p.level} "
                    f"axis {p.axis}: pass needs {n} codes, "
                    f"{codes.size - cursor} remain")
            pass_codes = codes[cursor:cursor + n]
            cursor += n
            with telemetry.span("ginterp.dequantize", level=p.level):
                recon, out_cursor = quantizer.dequantize(
                    pass_codes, pred, ebs[p.level], outliers, out_cursor)
            if plan is not None:
                work[step.target_view] = recon.reshape(step.block_shape)
            else:
                work_flat[flat] = recon
    if cursor != codes.size:
        raise CorruptStreamError(
            f"quant-code stream has {codes.size - cursor} trailing "
            f"code(s) after the final pass")
    return work
