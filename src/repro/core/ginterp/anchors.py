"""Anchor-point handling (paper §V-A).

One sample per ``anchor_stride``^d sub-grid vertex is stored losslessly
(float32), which (a) removes all cross-chunk data dependencies so chunks
interpolate independently, and (b) lets the decompressor seed the coarsest
interpolation level exactly. For the 3D default stride of 8 that is 1/512
of the samples; the optional de-redundancy pass (§VI-B) shrinks the anchor
segment further.
"""

from __future__ import annotations

import numpy as np

__all__ = ["extract_anchors", "apply_anchors", "anchor_count"]


def _anchor_slices(ndim: int, stride: int) -> tuple[slice, ...]:
    return tuple(slice(0, None, stride) for _ in range(ndim))


def extract_anchors(padded: np.ndarray, stride: int,
                    dtype: np.dtype = np.float32) -> np.ndarray:
    """Pull the anchor sub-grid out of a padded field, stored in ``dtype``
    (the output value dtype, so anchors are lossless w.r.t. the output).

    The padded field must have every axis of length ``k*stride + 1`` so the
    last sample of each axis is itself an anchor.
    """
    return np.ascontiguousarray(
        padded[_anchor_slices(padded.ndim, stride)]).astype(dtype)


def apply_anchors(work: np.ndarray, anchors: np.ndarray,
                  stride: int) -> None:
    """Seed the float64 working array with the stored float32 anchors.

    Used identically by compressor and decompressor so both sides run the
    interpolation from bit-identical anchor values.
    """
    work[_anchor_slices(work.ndim, stride)] = anchors.astype(np.float64)


def anchor_count(padded_shape: tuple[int, ...], stride: int) -> int:
    """Number of anchors a padded shape yields."""
    n = 1
    for dim in padded_shape:
        n *= -(-dim // stride)  # == (dim - 1) // stride + 1 when dim%stride==1
    return n
