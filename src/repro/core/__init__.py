"""cuSZ-i core: the G-Interp predictor and the end-to-end pipeline."""

__all__ = ["CuSZi"]


def __getattr__(name):
    # lazy import so the ginterp subpackage is usable while the pipeline
    # module is under construction / to avoid import cycles
    if name == "CuSZi":
        from repro.core.pipeline import CuSZi
        return CuSZi
    raise AttributeError(name)
