"""The cuSZ-i end-to-end pipeline (paper §IV, Fig. 1).

Compression:  G-Interp prediction + error quantization -> chunked Huffman
over the quant-codes -> optional GLE (Bitcomp-lossless stand-in) pass over
the whole archive. Anchors and stream-compacted outliers travel as side
segments. Auto-tuning decisions (alpha, per-axis cubic spline, axis order)
are made by the profiling kernel and recorded in the header, because the
decompressor must replay the traversal without the original data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.telemetry import quality, recorder

from repro.common.arrayutils import (crop_to_shape, pad_to_grid,
                                     validate_field, value_range)
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError, ConfigError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.common.quantizer import DEFAULT_RADIUS, LinearQuantizer
from repro.core.ginterp.autotune import (alpha_from_eb, autotune,
                                         field_fingerprint)
from repro.core.ginterp.engine import (InterpSpec, interp_compress,
                                       interp_decompress)
from repro.core.ginterp.plans import get_plan
from repro.huffman import (DEFAULT_CHUNK, HuffmanStream,
                           best_static_profile, huffman_decode,
                           huffman_encode, static_lengths)
from repro.registry import register

__all__ = ["CuSZi", "CompressionStats", "resolve_eb",
           "DEFAULT_ANCHOR_STRIDE", "DEFAULT_WINDOW"]

#: paper §V-A: 8^3 chunks for 3D, 16^2 for 2D, 512 for 1D
DEFAULT_ANCHOR_STRIDE = {1: 512, 2: 16, 3: 8}
#: shared thread-block windows: 4 basic blocks fused along the fastest axis
#: (Fig. 2's 33x9x9, anchor-inclusive extents)
DEFAULT_WINDOW = {1: (2049,), 2: (17, 65), 3: (9, 9, 33)}


def resolve_eb(data: np.ndarray, eb: float, mode: str) -> float:
    """Turn a user error bound into an absolute bound.

    ``mode="abs"`` passes through; ``mode="rel"`` scales by the value range
    (the paper's "value-range-based relative error bound").
    """
    if eb <= 0:
        raise ConfigError(f"error bound must be positive, got {eb}")
    if mode == "abs":
        return float(eb)
    if mode == "rel":
        rng = value_range(data)
        if rng == 0.0:
            # constant field: any positive absolute bound preserves it
            return float(eb)
        return float(eb) * rng
    raise ConfigError(f"unknown eb mode {mode!r}; use 'abs' or 'rel'")


@dataclass
class CompressionStats:
    """Byte-level accounting of one compression run."""

    n_elements: int
    original_nbytes: int
    compressed_nbytes: int
    segment_nbytes: dict[str, int] = field(default_factory=dict)
    inner_nbytes: int = 0          # container size before the lossless pass
    n_outliers: int = 0
    nonzero_code_fraction: float = 0.0
    abs_eb: float = 0.0
    tuning: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        if self.compressed_nbytes <= 0:
            # degenerate accounting (e.g. hand-built stats): an empty
            # archive of empty input is a no-op, not a division error
            return math.inf if self.original_nbytes > 0 else 1.0
        return self.original_nbytes / self.compressed_nbytes

    @property
    def bit_rate(self) -> float:
        if self.n_elements <= 0:
            return 0.0
        return 8.0 * self.compressed_nbytes / self.n_elements


@register
class CuSZi:
    """The cuSZ-i compressor.

    Parameters
    ----------
    eb, mode:
        Error bound and its interpretation (``"rel"`` = value-range
        relative, ``"abs"`` = absolute).
    lossless:
        Outer de-redundancy pass: ``"auto"`` (the default — segment-aware
        orchestration that picks a backend per container stream),
        ``"gle"`` (whole-container Bitcomp-lossless stand-in), ``"none"``
        (Huffman-only pipeline), or ``"zlib"``.
    radius:
        Quantizer radius R; the code alphabet is ``2*radius``.
    tune:
        Run the §V-C profiling kernel. When off, not-a-knot cubics, default
        axis order and the Eq. 1 alpha are used.
    anchor_stride, window_shape, alpha, beta:
        Overrides for the G-Interp geometry (defaults follow the paper per
        dimensionality). ``window_shape=None`` with ``use_windows=False``
        interpolates globally (the CPU-style ablation).
    codebook:
        ``"dynamic"`` builds the optimal Huffman codebook per stream;
        ``"static"`` uses a prebuilt two-sided-geometric codebook (the
        §VI-A speed direction), trading a few percent of ratio.
    """

    name = "cuszi"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str = "auto", radius: int = DEFAULT_RADIUS,
                 tune: bool = True, anchor_stride: int | None = None,
                 window_shape: tuple[int, ...] | None = None,
                 use_windows: bool = True, alpha: float | None = None,
                 beta: float | None = None, huffman_chunk: int = DEFAULT_CHUNK,
                 pad: bool = False, codebook: str = "dynamic"):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless
        self.radius = int(radius)
        self.tune = bool(tune)
        self.anchor_stride = anchor_stride
        self.window_shape = window_shape
        self.use_windows = use_windows
        self.alpha = alpha
        self.beta = beta
        self.huffman_chunk = int(huffman_chunk)
        self.pad = bool(pad)
        if codebook not in ("dynamic", "static"):
            raise ConfigError(f"codebook must be 'dynamic' or 'static', "
                              f"got {codebook!r}")
        self.codebook = codebook

    # -- spec construction -------------------------------------------------

    def _geometry(self, ndim: int) -> tuple[int, tuple[int, ...] | None]:
        if ndim not in DEFAULT_ANCHOR_STRIDE:
            raise ConfigError(f"cuSZ-i supports 1..3D data, got {ndim}D")
        stride = self.anchor_stride or DEFAULT_ANCHOR_STRIDE[ndim]
        if not self.use_windows:
            window = None
        elif self.window_shape is not None:
            window = self.window_shape
        elif self.anchor_stride is None:
            window = DEFAULT_WINDOW[ndim]
        else:
            # derived window for a custom stride: 4 chunks along the
            # fastest axis, 1 elsewhere (anchor-inclusive extents)
            window = tuple([stride + 1] * (ndim - 1) + [4 * stride + 1])
        return stride, window

    def _build_spec(self, padded: np.ndarray, abs_eb: float
                    ) -> tuple[InterpSpec, dict]:
        stride, window = self._geometry(padded.ndim)
        rng = value_range(padded)
        rel_eb = abs_eb / rng if rng > 0 else 1.0
        tuning: dict = {}
        if self.tune:
            report = autotune(padded, abs_eb)
            cubic = report.cubic_variant
            order = report.axis_order
            if window is not None:
                # Fig. 2-5: within each level the widest shared-window axis
                # is interpolated last, so the bulk of the targets use the
                # axis where cubic neighbors exist; smoothness profiling
                # only orders the remaining (equally confined) axes.
                widest = int(np.argmax(window))
                order = tuple([ax for ax in report.axis_order
                               if ax != widest] + [widest])
            alpha = report.alpha
            tuning = {
                "alpha": report.alpha,
                "cubic_variant": list(report.cubic_variant),
                "axis_order": list(order),
                "profiled_errors": list(report.profiled_errors),
                "fingerprint": report.fingerprint,
            }
        else:
            cubic = ()
            order = ()
            alpha = alpha_from_eb(rel_eb)
        if self.alpha is not None:
            alpha = float(self.alpha)
        spec = InterpSpec(anchor_stride=stride, window_shape=window,
                          cubic_variant=cubic, axis_order=order,
                          alpha=alpha,
                          beta=self.beta if self.beta is not None
                          else float("inf"))
        return spec.resolved(padded.ndim), tuning

    # -- public API --------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress ``data`` into a self-describing blob."""
        blob, _stats = self.compress_detailed(data)
        return blob

    def compress_detailed(self, data: np.ndarray
                          ) -> tuple[bytes, CompressionStats]:
        """Compress and report byte-level accounting."""
        with recorder.capture("compress", codec=self.name) as cap, \
                telemetry.span("compress", codec=self.name) as root:
            return self._compress_traced(data, root, cap)

    def _compress_traced(self, data: np.ndarray, root, cap
                         ) -> tuple[bytes, CompressionStats]:
        if cap.run_id:
            # the span trace and the ledger record describe the same run:
            # stitch them (and any pool-worker spans merged later) under
            # one trace id
            root.set(trace_id=cap.trace_id, run_id=cap.run_id)
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        quantizer = LinearQuantizer(self.radius, value_dtype=data.dtype)

        stride, _window = self._geometry(data.ndim)
        padded = pad_to_grid(data, stride) if self.pad else data
        with telemetry.span("tune", enabled=self.tune), cap.stage("tune"):
            spec, tuning = self._build_spec(padded, abs_eb)
        # resolve the compiled pass plan up front: repeated same-shape
        # compressions (and the decompress replay) hit the plan LRU
        with telemetry.span("plan"), cap.stage("plan"):
            plan = get_plan(padded.shape, spec.resolved(padded.ndim))
        with telemetry.span("predict", bytes_in=data.nbytes) as sp, \
                cap.stage("predict"):
            result = interp_compress(padded, spec, abs_eb, quantizer,
                                     plan=plan)
            sp.set(segment="anchors",
                   segment_nbytes=result.anchors.nbytes,
                   codes_nbytes=result.codes.nbytes,
                   n_passes=len(result.pass_sizes))
        with telemetry.span("quantize") as sp, cap.stage("quantize"):
            # quantization proper is fused into the predict traversal
            # (as on the GPU — see the per-pass ginterp.pq child spans,
            # or ginterp.quantize when REPRO_FUSED_QUANTIZE=0); this
            # sibling accounts for its side channel, the
            # stream-compacted outliers, and the anchor serialization
            outlier_seg = result.outliers.tobytes()
            anchor_seg = result.anchors.tobytes()
            sp.set(segment="outliers", segment_nbytes=len(outlier_seg),
                   n_outliers=int(result.outliers.size))
            telemetry.incr("outliers", int(result.outliers.size))
        with telemetry.span("huffman",
                            bytes_in=result.codes.nbytes) as sp, \
                cap.stage("huffman"):
            if self.codebook == "static":
                # prebuilt two-sided-geometric codebook (§VI-A, ref
                # [37]): skips the histogram + tree build at a small
                # ratio cost
                spread = best_static_profile(result.codes,
                                             quantizer.n_codes,
                                             self.radius)
                lengths = static_lengths(quantizer.n_codes, self.radius,
                                         spread)
            else:
                lengths = None
            stream = huffman_encode(result.codes, quantizer.n_codes,
                                    self.huffman_chunk, lengths=lengths)
            huff_seg = stream.to_bytes()
            sp.set(segment="huffman", segment_nbytes=len(huff_seg),
                   bytes_out=len(huff_seg), codebook=self.codebook)
        segments = {
            "huffman": huff_seg,
            "outliers": outlier_seg,
            "anchors": anchor_seg,
        }
        meta = {
            "shape": list(data.shape),
            "padded_shape": list(padded.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "radius": self.radius,
            "n_outliers": int(result.outliers.size),
            "spec": spec.to_meta(),
        }
        with telemetry.span("container") as sp, cap.stage("container"):
            inner = build_container(self.name, meta, segments)
            sp.set(bytes_out=len(inner))
        with telemetry.span("lossless", codec=self.lossless,
                            bytes_in=len(inner)) as sp, \
                cap.stage("lossless"):
            blob = wrap_lossless(inner, self.lossless)
            sp.set(bytes_out=len(blob))
        root.set(n_elements=data.size, bytes_in=data.nbytes,
                 compressed_nbytes=len(blob), lossless=self.lossless,
                 abs_eb=abs_eb)
        cap.set(bytes_in=data.nbytes, bytes_out=len(blob),
                n_elements=data.size, shape=list(data.shape),
                eb=self.eb, eb_mode=self.mode, abs_eb=abs_eb,
                lossless=self.lossless, n_outliers=int(
                    result.outliers.size))
        # the sampled content fingerprint keys the run's analytics
        # cohort; with tuning on it falls out of the profiling pass for
        # free, otherwise hash only when a record is actually being
        # built (the disabled-recorder path must stay hash-free)
        fp = tuning.get("fingerprint")
        if fp is None and cap.run_id:
            fp = field_fingerprint(padded)
        if fp:
            cap.set(fingerprint=fp)
        if quality.should_audit():
            # verify the archive actually decodes within the promised
            # bound; the internal decode runs ledger-suppressed so the
            # audit never shows up as a phantom decompress record
            with cap.stage("quality"), recorder.suppressed():
                recon = self.decompress(blob)
                report = quality.audit(
                    data, recon, abs_eb, codes=result.codes,
                    pass_levels=[cp.desc.level for cp in plan.passes],
                    pass_sizes=result.pass_sizes,
                    n_outliers=int(result.outliers.size))
            cap.set(quality=report.to_dict())
        stats = CompressionStats(
            n_elements=data.size,
            original_nbytes=data.nbytes,
            compressed_nbytes=len(blob),
            segment_nbytes={k: len(v) for k, v in segments.items()},
            inner_nbytes=len(inner),
            n_outliers=int(result.outliers.size),
            nonzero_code_fraction=float(
                (result.codes != self.radius).mean()) if result.codes.size
            else 0.0,
            abs_eb=abs_eb,
            tuning=tuning,
        )
        return blob, stats

    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct the field from a cuSZ-i blob."""
        with recorder.capture("decompress", codec=self.name) as cap, \
                telemetry.span("decompress", codec=self.name,
                               compressed_nbytes=len(blob)) as root:
            if cap.run_id:
                root.set(trace_id=cap.trace_id, run_id=cap.run_id)
            with telemetry.span("lossless", bytes_in=len(blob)) as sp, \
                    cap.stage("lossless"):
                inner = unwrap_lossless(blob)
                sp.set(bytes_out=len(inner))
            with telemetry.span("container", bytes_in=len(inner)), \
                    cap.stage("container"):
                codec, meta, segments = parse_container(inner)
            if codec != self.name:
                raise CodecError(
                    f"blob codec {codec!r} is not {self.name!r}")
            shape = tuple(meta["shape"])
            padded_shape = tuple(meta["padded_shape"])
            dtype = np.dtype(meta["dtype"])
            abs_eb = float(meta["abs_eb"])
            radius = int(meta["radius"])
            spec = InterpSpec.from_meta(meta["spec"])
            quantizer = LinearQuantizer(radius, value_dtype=dtype)

            with telemetry.span(
                    "huffman", bytes_in=len(segments["huffman"])) as sp, \
                    cap.stage("huffman"):
                stream = HuffmanStream.from_bytes(segments["huffman"])
                codes = huffman_decode(stream)
                sp.set(bytes_out=codes.nbytes)
            outliers = np.frombuffer(segments["outliers"], dtype=dtype)
            if outliers.size != int(meta["n_outliers"]):
                raise CodecError("outlier segment size mismatch")
            anchor_shape = tuple(-(-n // spec.anchor_stride)
                                 for n in padded_shape)
            anchors = np.frombuffer(segments["anchors"],
                                    dtype=dtype).reshape(anchor_shape)
            with telemetry.span("plan"), cap.stage("plan"):
                plan = get_plan(padded_shape,
                                spec.resolved(len(padded_shape)))
            with telemetry.span("predict") as sp, cap.stage("predict"):
                work = interp_decompress(padded_shape, spec, abs_eb,
                                         codes, outliers, anchors,
                                         quantizer, plan=plan)
                sp.set(bytes_out=work.size * dtype.itemsize)
            out = crop_to_shape(work, shape).astype(dtype)
            lossless = (blob[5:5 + blob[4]].decode("utf-8", "replace")
                        if len(blob) > 5 else "none")
            root.set(n_elements=out.size, bytes_out=out.nbytes,
                     lossless=lossless, abs_eb=abs_eb)
            cap.set(bytes_in=len(blob), bytes_out=out.nbytes,
                    n_elements=out.size, shape=list(out.shape),
                    abs_eb=abs_eb, lossless=lossless)
            return out
