"""Calibration utilities: hit a target ratio or PSNR by knob search.

The paper's Fig. 8 aligns compressors at a fixed compression ratio; users
more often have a quality target ("give me >= 80 dB as small as possible").
Both are monotone in the codec's knob (error bound, or rate for cuZFP), so
geometric bisection converges in a few compressions.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.metrics import psnr
from repro.registry import get_compressor

__all__ = ["calibrate_to_ratio", "calibrate_to_psnr"]


def _make(codec: str, knob: float, lossless: str, mode: str = "rel"):
    if codec == "cuzfp":
        return get_compressor(codec, rate=knob, lossless=lossless)
    return get_compressor(codec, eb=knob, mode=mode, lossless=lossless)


def calibrate_to_ratio(codec: str, data: np.ndarray, target_cr: float,
                       lossless: str = "gle", tol: float = 0.08,
                       max_iter: int = 18) -> tuple[bytes, float, float]:
    """Bisect the codec's knob until the CR is within ``tol`` of target.

    Returns ``(blob, achieved_cr, knob)``; if the target is unreachable in
    the knob range, the closest achieved point is returned.
    """
    if target_cr <= 1:
        raise ConfigError("target ratio must exceed 1")
    if codec == "cuzfp":
        lo, hi = 0.35, 16.0       # rate: larger -> smaller CR
    else:
        lo, hi = 1e-6, 0.5        # rel eb: larger -> larger CR
    best = None
    for _ in range(max_iter):
        mid = (lo * hi) ** 0.5
        blob = _make(codec, mid, lossless).compress(data)
        cr = data.nbytes / len(blob)
        if best is None or abs(cr - target_cr) < abs(best[1] - target_cr):
            best = (blob, cr, mid)
        if abs(cr - target_cr) / target_cr <= tol:
            break
        if codec == "cuzfp":
            if cr < target_cr:
                hi = mid
            else:
                lo = mid
        else:
            if cr < target_cr:
                lo = mid
            else:
                hi = mid
    return best


def calibrate_to_psnr(codec: str, data: np.ndarray, target_db: float,
                      lossless: str = "gle", tol_db: float = 0.75,
                      max_iter: int = 18) -> tuple[bytes, float, float]:
    """Bisect the codec's knob until the PSNR is within ``tol_db`` of the
    target (from above where possible).

    Returns ``(blob, achieved_psnr, knob)``.
    """
    if codec == "cuzfp":
        lo, hi = 0.35, 24.0       # rate: larger -> higher PSNR
    else:
        lo, hi = 1e-7, 0.5        # rel eb: larger -> lower PSNR
    best = None
    for _ in range(max_iter):
        mid = (lo * hi) ** 0.5
        comp = _make(codec, mid, lossless)
        blob = comp.compress(data)
        quality = psnr(data, comp.decompress(blob))
        # prefer meeting the target with the smallest blob
        meets = quality >= target_db - tol_db
        if best is None:
            best = (blob, quality, mid)
        else:
            _, bq, _ = best
            if (meets and (bq < target_db - tol_db
                           or len(blob) < len(best[0]))) \
                    or (not meets and bq < target_db - tol_db
                        and quality > bq):
                best = (blob, quality, mid)
        if abs(quality - target_db) <= tol_db:
            break
        too_good = quality > target_db
        if codec == "cuzfp":
            hi = mid if too_good else hi
            lo = lo if too_good else mid
        else:
            lo = mid if too_good else lo
            hi = hi if too_good else mid
    return best
