"""Vectorized fixed-width bit packing.

Several codecs in this reproduction (cuSZp's block encoding, cuZFP's
bit-plane coder, GLE's bit-width reduction) pack streams of small unsigned
integers at a fixed bit width. On a GPU this is a shuffle/ballot kernel; the
NumPy transcription expands values to a dense bit matrix and round-trips
through :func:`numpy.packbits` / :func:`numpy.unpackbits`, which keeps every
step a single vectorized pass.

Byte-aligned widths never touch the bit matrix: width 8 (the dominant
class for entropy-coded bytes) is a straight byte copy, widths 1/2/4 fold
``8/w`` values into each byte with ``8/w`` shift-or passes, and widths
that are whole bytes (16, 24, 32, ...) go through a big-endian byte view.
Only the ragged widths (3, 5, 6, 7, ...) pay for the dense expansion.

Bit order is MSB-first within each value and values are laid out
back-to-back, so a stream packed at width ``w`` occupies exactly
``ceil(n*w/8)`` bytes.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError

__all__ = ["pack_uint", "unpack_uint", "pack_varbits", "pack_varbits64",
           "zigzag_encode", "zigzag_decode",
           "bit_length", "min_bit_width"]

_MAX_WIDTH = 64

#: widest variable-length codeword :func:`pack_varbits` accepts; the staged
#: word must hold ``width + 7`` alignment bits inside a uint32 byte triple
_MAX_VARWIDTH = 24


def pack_varbits(codes: np.ndarray, lengths: np.ndarray,
                 bitpos: np.ndarray, total_bytes: int) -> np.ndarray:
    """Scatter variable-length codewords into a dense MSB-first bitstream.

    ``codes[i]`` (low ``lengths[i]`` bits significant) lands at absolute
    bit offset ``bitpos[i]``; offsets must be non-decreasing and the
    codewords non-overlapping (each output bit written at most once —
    this is a *scatter*, not a merge). Returns ``total_bytes`` of uint8.

    The trick that keeps this fully vectorized for ragged widths: every
    codeword is staged MSB-aligned into a 3-byte window anchored at its
    start byte — ``code << (24 - length - (bitpos & 7))`` — so a codeword
    of up to :data:`_MAX_VARWIDTH` - 7 bits plus its intra-byte shift
    always fits the window. The three byte planes are then OR-combined
    per distinct output byte with :func:`numpy.bitwise_or.reduceat`
    (offsets are sorted, so each plane's byte indices are non-decreasing)
    and OR-scattered into the dense output. Because no bit is claimed
    twice, OR-combining is exact, not approximate.
    """
    codes = np.asarray(codes, dtype=np.uint32).ravel()
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    bitpos = np.asarray(bitpos, dtype=np.int64).ravel()
    if not (codes.size == lengths.size == bitpos.size):
        raise CodecError("codes/lengths/bitpos size mismatch")
    if codes.size == 0:
        return np.zeros(max(0, int(total_bytes)), dtype=np.uint8)
    if int(lengths.min()) < 1 or int(lengths.max()) > _MAX_VARWIDTH - 7:
        raise CodecError(
            f"codeword length outside [1, {_MAX_VARWIDTH - 7}]")
    if np.any(codes.astype(np.uint64) >> lengths.astype(np.uint64)):
        raise CodecError("codeword wider than its declared length")
    if np.any(np.diff(bitpos) < 0):
        raise CodecError("bit offsets must be non-decreasing")
    end_bit = int(bitpos[-1] + lengths[-1])
    if int(bitpos[0]) < 0 or end_bit > int(total_bytes) * 8:
        raise CodecError("codeword falls outside the output stream")
    byte0 = bitpos >> 3
    stage = (codes.astype(np.uint32)
             << (_MAX_VARWIDTH - lengths - (bitpos & 7)).astype(np.uint32))
    # 3 byte planes of the staged window, scattered with 3-byte slack so
    # the tail codeword's low planes stay in bounds (trimmed at return)
    out = np.zeros(int(total_bytes) + 3, dtype=np.uint8)
    for plane in range(3):
        vals = ((stage >> (8 * (2 - plane))) & 0xFF).astype(np.uint8)
        idx = byte0 + plane
        firsts = np.flatnonzero(np.diff(idx, prepend=idx[0] - 1))
        out[idx[firsts]] |= np.bitwise_or.reduceat(vals, firsts)
    return out[:int(total_bytes)]


def _scatter_or_words(words: np.ndarray, idx: np.ndarray,
                      vals: np.ndarray) -> None:
    """OR ``vals`` into ``words`` grouped by the non-decreasing ``idx``."""
    if idx.size == 0:
        return
    firsts = np.empty(0, dtype=np.int64)
    if idx.size > 1:
        firsts = np.flatnonzero(idx[1:] != idx[:-1]) + 1
    firsts = np.concatenate(([0], firsts))
    words[idx[firsts]] |= np.bitwise_or.reduceat(vals, firsts)


def pack_varbits64(stage: np.ndarray, lengths: np.ndarray,
                   bitpos: np.ndarray, total_bytes: int) -> np.ndarray:
    """Word-parallel variant of :func:`pack_varbits` for trusted inputs.

    ``stage[i]`` is the ``i``-th codeword already MSB-aligned in a uint64
    (``code << (64 - lengths[i])``); it lands at absolute bit offset
    ``bitpos[i]``. Offsets must be non-decreasing and the codewords
    non-overlapping — this is the producer-side mirror of the decoder's
    64-bit window gather, so the caller (the Huffman encoder) derives the
    offsets from its own prefix sum and only cheap scalar bounds are
    re-checked here. ``stage`` is **consumed**: the hi-plane shift runs
    in place, so the caller must not reuse the array. The hot path is
    memory-bound, which is why offsets are taken in whatever (ideally
    ``uint32``) dtype the caller provides and the per-symbol temporaries
    stay as narrow as the arithmetic allows.

    Emission is two scatter-OR planes over little-endian *word* indices:
    every codeword ORs ``stage >> (bitpos & 63)`` into its start word,
    and only the codewords that actually straddle a word boundary pay a
    second (compacted) scatter of the spilled low bits into the next
    word. Per distinct word the OR-combine is one
    ``bitwise_or.reduceat`` group, and the word array's big-endian byte
    view is the MSB-first byte stream.
    """
    stage = np.asarray(stage, dtype=np.uint64).ravel()
    lengths = np.asarray(lengths).ravel()
    n = stage.size
    if lengths.size != n or np.asarray(bitpos).size != n:
        raise CodecError("stage/lengths/bitpos size mismatch")
    if n == 0:
        return np.zeros(max(0, int(total_bytes)), dtype=np.uint8)
    pos = np.asarray(bitpos).ravel()
    end_bit = int(pos[-1]) + int(lengths[-1])
    if int(pos[0]) < 0 or end_bit > int(total_bytes) * 8:
        raise CodecError("codeword falls outside the output stream")
    # one slack word so the tail codeword's spill plane stays in bounds
    n_words = (int(total_bytes) + 7) // 8 + 1
    words = np.zeros(n_words, dtype=np.uint64)
    if pos.dtype == np.uint32:
        off = pos & np.uint32(63)
        wi = pos >> np.uint32(6)
    else:
        p64 = pos.astype(np.int64, copy=False)
        # the values are non-negative, so the uint64 view is free and
        # keeps the shift below in unsigned arithmetic
        off = (p64 & 63).view(np.uint64)
        wi = p64 >> 6
    # straddling lanes must be captured before the in-place shift below
    # consumes the staged codewords
    spill = np.flatnonzero((off + lengths) > 64)
    sp_stage = stage[spill]
    sp_off = off[spill]
    np.right_shift(stage, off, out=stage, casting="unsafe")
    _scatter_or_words(words, wi, stage)
    if spill.size:
        # two shifts keep every shift count <= 63: a codeword starting at
        # off == 0 never spills, but the blanket expression must not hit
        # the undefined uint64 << 64 either way
        lo = (sp_stage << (sp_off.dtype.type(63) - sp_off)) << np.uint64(1)
        _scatter_or_words(words, wi[spill] + 1, lo)
    return words.astype(">u8").view(np.uint8)[:int(total_bytes)].copy()


def pack_uint(values: np.ndarray, width: int) -> np.ndarray:
    """Pack unsigned integers into a uint8 stream at ``width`` bits each.

    ``width == 0`` is allowed and produces an empty stream (all values must
    then be zero — asserted, since decoding would silently lose data
    otherwise).
    """
    if width < 0 or width > _MAX_WIDTH:
        raise CodecError(f"bit width {width} out of range 0..{_MAX_WIDTH}")
    values = np.asarray(values)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    if width == 0:
        if np.any(values != 0):
            raise CodecError("width 0 requires all-zero values")
        return np.empty(0, dtype=np.uint8)
    v = values.astype(np.uint64, copy=False).ravel()
    if width < _MAX_WIDTH and np.any(v >> np.uint64(width)):
        raise CodecError(f"value does not fit in {width} bits")
    if width == 8:
        return v.astype(np.uint8)
    if width in (1, 2, 4):
        per_byte = 8 // width
        n = v.size
        m = -(-n // per_byte)
        g = v.astype(np.uint8)
        if m * per_byte != n:
            g = np.concatenate([g, np.zeros(m * per_byte - n, np.uint8)])
        g = g.reshape(m, per_byte)
        out = np.zeros(m, dtype=np.uint8)
        for j in range(per_byte):
            out |= g[:, j] << (8 - (j + 1) * width)
        return out
    if width % 8 == 0:
        nb = width // 8
        be = v.astype(">u8").view(np.uint8).reshape(v.size, 8)
        return np.ascontiguousarray(be[:, 8 - nb:]).reshape(-1)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((v[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel())


def unpack_uint(packed: np.ndarray, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uint`: recover ``count`` values as uint64."""
    if width < 0 or width > _MAX_WIDTH:
        raise CodecError(f"bit width {width} out of range 0..{_MAX_WIDTH}")
    if count < 0:
        raise CodecError("count must be non-negative")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    packed = np.asarray(packed, dtype=np.uint8)
    need = -(-count * width // 8)
    if packed.size < need:
        raise CodecError(
            f"packed stream too short: {packed.size} bytes < {need}")
    if width == 8:
        return packed[:need].astype(np.uint64)
    if width in (1, 2, 4):
        per_byte = 8 // width
        mask = np.uint8((1 << width) - 1)
        b = packed[:need]
        vals = np.empty((b.size, per_byte), dtype=np.uint8)
        for j in range(per_byte):
            vals[:, j] = (b >> (8 - (j + 1) * width)) & mask
        return vals.reshape(-1)[:count].astype(np.uint64)
    if width % 8 == 0:
        nb = width // 8
        be = np.zeros((count, 8), dtype=np.uint8)
        be[:, 8 - nb:] = packed[:need].reshape(count, nb)
        return be.reshape(-1).view(">u8").astype(np.uint64)
    bits = np.unpackbits(packed[:need], count=count * width)
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    return bits @ weights


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2.. -> 0,1,2,3,4..

    Small-magnitude signed values (quantization deltas) become small
    unsigned values, which is what fixed-width packing wants.
    """
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)
            ^ -(v & np.uint64(1)).astype(np.int64))


def bit_length(values: np.ndarray) -> np.ndarray:
    """Exact vectorized per-element bit length of uint64 values.

    Binary-search on shifts — six vector passes, no float round-off (unlike
    log2-based widths, which misclassify values near powers of two).
    """
    v = np.asarray(values, dtype=np.uint64).copy()
    w = np.zeros(v.shape, dtype=np.uint8)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = (v >> np.uint64(shift)) > 0
        w[mask] += shift
        v[mask] >>= np.uint64(shift)
    w += (v > 0).astype(np.uint8)
    return w


def min_bit_width(values: np.ndarray) -> int:
    """Smallest width (bits) that losslessly holds every unsigned value."""
    values = np.asarray(values)
    if values.size == 0:
        return 0
    m = int(values.max())
    return m.bit_length()
