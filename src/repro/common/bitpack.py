"""Vectorized fixed-width bit packing.

Several codecs in this reproduction (cuSZp's block encoding, cuZFP's
bit-plane coder, GLE's bit-width reduction) pack streams of small unsigned
integers at a fixed bit width. On a GPU this is a shuffle/ballot kernel; the
NumPy transcription expands values to a dense bit matrix and round-trips
through :func:`numpy.packbits` / :func:`numpy.unpackbits`, which keeps every
step a single vectorized pass.

Byte-aligned widths never touch the bit matrix: width 8 (the dominant
class for entropy-coded bytes) is a straight byte copy, widths 1/2/4 fold
``8/w`` values into each byte with ``8/w`` shift-or passes, and widths
that are whole bytes (16, 24, 32, ...) go through a big-endian byte view.
Only the ragged widths (3, 5, 6, 7, ...) pay for the dense expansion.

Bit order is MSB-first within each value and values are laid out
back-to-back, so a stream packed at width ``w`` occupies exactly
``ceil(n*w/8)`` bytes.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError

__all__ = ["pack_uint", "unpack_uint", "zigzag_encode", "zigzag_decode",
           "bit_length", "min_bit_width"]

_MAX_WIDTH = 64


def pack_uint(values: np.ndarray, width: int) -> np.ndarray:
    """Pack unsigned integers into a uint8 stream at ``width`` bits each.

    ``width == 0`` is allowed and produces an empty stream (all values must
    then be zero — asserted, since decoding would silently lose data
    otherwise).
    """
    if width < 0 or width > _MAX_WIDTH:
        raise CodecError(f"bit width {width} out of range 0..{_MAX_WIDTH}")
    values = np.asarray(values)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    if width == 0:
        if np.any(values != 0):
            raise CodecError("width 0 requires all-zero values")
        return np.empty(0, dtype=np.uint8)
    v = values.astype(np.uint64, copy=False).ravel()
    if width < _MAX_WIDTH and np.any(v >> np.uint64(width)):
        raise CodecError(f"value does not fit in {width} bits")
    if width == 8:
        return v.astype(np.uint8)
    if width in (1, 2, 4):
        per_byte = 8 // width
        n = v.size
        m = -(-n // per_byte)
        g = v.astype(np.uint8)
        if m * per_byte != n:
            g = np.concatenate([g, np.zeros(m * per_byte - n, np.uint8)])
        g = g.reshape(m, per_byte)
        out = np.zeros(m, dtype=np.uint8)
        for j in range(per_byte):
            out |= g[:, j] << (8 - (j + 1) * width)
        return out
    if width % 8 == 0:
        nb = width // 8
        be = v.astype(">u8").view(np.uint8).reshape(v.size, 8)
        return np.ascontiguousarray(be[:, 8 - nb:]).reshape(-1)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((v[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel())


def unpack_uint(packed: np.ndarray, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uint`: recover ``count`` values as uint64."""
    if width < 0 or width > _MAX_WIDTH:
        raise CodecError(f"bit width {width} out of range 0..{_MAX_WIDTH}")
    if count < 0:
        raise CodecError("count must be non-negative")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    packed = np.asarray(packed, dtype=np.uint8)
    need = -(-count * width // 8)
    if packed.size < need:
        raise CodecError(
            f"packed stream too short: {packed.size} bytes < {need}")
    if width == 8:
        return packed[:need].astype(np.uint64)
    if width in (1, 2, 4):
        per_byte = 8 // width
        mask = np.uint8((1 << width) - 1)
        b = packed[:need]
        vals = np.empty((b.size, per_byte), dtype=np.uint8)
        for j in range(per_byte):
            vals[:, j] = (b >> (8 - (j + 1) * width)) & mask
        return vals.reshape(-1)[:count].astype(np.uint64)
    if width % 8 == 0:
        nb = width // 8
        be = np.zeros((count, 8), dtype=np.uint8)
        be[:, 8 - nb:] = packed[:need].reshape(count, nb)
        return be.reshape(-1).view(">u8").astype(np.uint64)
    bits = np.unpackbits(packed[:need], count=count * width)
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    return bits @ weights


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2.. -> 0,1,2,3,4..

    Small-magnitude signed values (quantization deltas) become small
    unsigned values, which is what fixed-width packing wants.
    """
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)
            ^ -(v & np.uint64(1)).astype(np.int64))


def bit_length(values: np.ndarray) -> np.ndarray:
    """Exact vectorized per-element bit length of uint64 values.

    Binary-search on shifts — six vector passes, no float round-off (unlike
    log2-based widths, which misclassify values near powers of two).
    """
    v = np.asarray(values, dtype=np.uint64).copy()
    w = np.zeros(v.shape, dtype=np.uint8)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = (v >> np.uint64(shift)) > 0
        w[mask] += shift
        v[mask] >>= np.uint64(shift)
    w += (v > 0).astype(np.uint8)
    return w


def min_bit_width(values: np.ndarray) -> int:
    """Smallest width (bits) that losslessly holds every unsigned value."""
    values = np.asarray(values)
    if values.size == 0:
        return 0
    m = int(values.max())
    return m.bit_length()
