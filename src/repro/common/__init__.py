"""Shared substrate: array utilities, quantization, metrics, bit packing,
and the on-disk container format used by every compressor in this
reproduction.
"""

from repro.common.errors import (
    ReproError,
    ContainerError,
    CodecError,
    ConfigError,
)
from repro.common.metrics import (
    psnr,
    nrmse,
    max_abs_error,
    compression_ratio,
    bit_rate,
)
from repro.common.quantizer import LinearQuantizer, QuantResult

__all__ = [
    "ReproError",
    "ContainerError",
    "CodecError",
    "ConfigError",
    "psnr",
    "nrmse",
    "max_abs_error",
    "compression_ratio",
    "bit_rate",
    "LinearQuantizer",
    "QuantResult",
]
