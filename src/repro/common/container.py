"""Binary container format for compressed streams.

Every compressor serializes to the same self-describing layout so that any
stream can be decompressed knowing nothing but the bytes:

```
magic    4 bytes   b"RPRC"
version  u16       format version (currently 2)
crc32    u32       checksum of everything after this field
codec    u8-len + utf8   registry name of the codec
meta     u32-len + utf8  JSON metadata (shape, dtype, eb, tuning, ...)
nseg     u16
per segment:
  name   u8-len + utf8
  length u64
segment payloads, back to back
```

Integers are little-endian. Metadata is JSON (never pickle) so containers
are safe to parse from untrusted sources, and human-inspectable; the CRC
turns any bit corruption into a loud :class:`ContainerError` instead of a
silently wrong reconstruction.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

import numpy as np

from repro.common.errors import ContainerError

__all__ = ["build_container", "parse_container", "container_overhead",
           "MAGIC", "VERSION"]

MAGIC = b"RPRC"
VERSION = 2


def _encode_json(meta: dict[str, Any]) -> bytes:
    try:
        return json.dumps(meta, separators=(",", ":"),
                          allow_nan=False).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ContainerError(f"metadata is not JSON-serializable: {exc}")


def build_container(codec: str, meta: dict[str, Any],
                    segments: dict[str, bytes | np.ndarray]) -> bytes:
    """Serialize ``segments`` plus JSON ``meta`` under ``codec``'s name."""
    if not codec or len(codec.encode()) > 255:
        raise ContainerError("codec name must be 1..255 bytes")
    parts: list[bytes] = []
    cb = codec.encode("utf-8")
    parts.append(struct.pack("<B", len(cb)))
    parts.append(cb)
    mb = _encode_json(meta)
    parts.append(struct.pack("<I", len(mb)))
    parts.append(mb)
    if len(segments) > 0xFFFF:
        raise ContainerError("too many segments")
    parts.append(struct.pack("<H", len(segments)))
    payloads: list[bytes] = []
    for name, seg in segments.items():
        nb = name.encode("utf-8")
        if not nb or len(nb) > 255:
            raise ContainerError("segment name must be 1..255 bytes")
        if isinstance(seg, np.ndarray):
            seg = seg.tobytes()
        parts.append(struct.pack("<B", len(nb)))
        parts.append(nb)
        parts.append(struct.pack("<Q", len(seg)))
        payloads.append(seg)
    body = b"".join(parts) + b"".join(payloads)
    return (MAGIC + struct.pack("<H", VERSION)
            + struct.pack("<I", zlib.crc32(body)) + body)


def parse_container(blob: bytes) -> tuple[str, dict[str, Any],
                                          dict[str, bytes]]:
    """Inverse of :func:`build_container`.

    Returns ``(codec, meta, segments)``. Raises
    :class:`~repro.common.errors.ContainerError` on any malformed input.
    """
    view = memoryview(blob)
    pos = 0

    def take(n: int) -> memoryview:
        nonlocal pos
        if pos + n > len(view):
            raise ContainerError("truncated container")
        out = view[pos:pos + n]
        pos += n
        return out

    if bytes(take(4)) != MAGIC:
        raise ContainerError("bad magic; not a repro container")
    (version,) = struct.unpack("<H", take(2))
    if version != VERSION:
        raise ContainerError(f"unsupported container version {version}")
    (crc,) = struct.unpack("<I", take(4))
    if zlib.crc32(view[pos:]) != crc:
        raise ContainerError("container checksum mismatch (corrupt blob)")
    (clen,) = struct.unpack("<B", take(1))
    codec = bytes(take(clen)).decode("utf-8")
    (mlen,) = struct.unpack("<I", take(4))
    try:
        meta = json.loads(bytes(take(mlen)).decode("utf-8"))
    except ValueError as exc:
        raise ContainerError(f"bad metadata JSON: {exc}")
    (nseg,) = struct.unpack("<H", take(2))
    table: list[tuple[str, int]] = []
    for _ in range(nseg):
        (nlen,) = struct.unpack("<B", take(1))
        name = bytes(take(nlen)).decode("utf-8")
        (slen,) = struct.unpack("<Q", take(8))
        table.append((name, slen))
    segments: dict[str, bytes] = {}
    for name, slen in table:
        if name in segments:
            raise ContainerError(f"duplicate segment {name!r}")
        segments[name] = bytes(take(slen))
    if pos != len(view):
        raise ContainerError(f"{len(view) - pos} trailing bytes in container")
    return codec, meta, segments


def container_overhead(codec: str, meta: dict[str, Any],
                       segment_names: list[str]) -> int:
    """Byte overhead of the container framing itself (for size accounting
    in the ablation benchmarks)."""
    empty = build_container(codec, meta, {n: b"" for n in segment_names})
    return len(empty)
