"""Quality and ratio metrics used throughout the evaluation (paper §VII-B).

All metrics follow the SDRBench / SZ conventions:

* PSNR is computed against the *value range* of the original field,
  ``psnr = 20 log10(range) - 10 log10(mse)``.
* Bit rate is bits per element of the compressed representation; for
  float32 inputs this equals ``32 / CR`` as the paper notes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import DataError

__all__ = [
    "psnr",
    "nrmse",
    "max_abs_error",
    "mse",
    "compression_ratio",
    "bit_rate",
    "ssim_3d",
]


def _check_pair(original: np.ndarray, reconstructed: np.ndarray) -> None:
    if original.shape != reconstructed.shape:
        raise DataError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}")


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between the original and reconstructed fields."""
    _check_pair(original, reconstructed)
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Value-range PSNR in dB. Returns ``inf`` for a lossless match."""
    err = mse(original, reconstructed)
    rng = float(original.max() - original.min())
    if err == 0.0:
        return math.inf
    if rng == 0.0:
        # constant field: any nonzero error is infinitely bad in range terms
        return -math.inf
    return 20.0 * math.log10(rng) - 10.0 * math.log10(err)


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the original value range."""
    rng = float(original.max() - original.min())
    root = math.sqrt(mse(original, reconstructed))
    if rng == 0.0:
        return 0.0 if root == 0.0 else math.inf
    return root / rng


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Maximum point-wise absolute error (the error-bound contract)."""
    _check_pair(original, reconstructed)
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    return float(np.max(np.abs(diff)))


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """CR = original size / compressed size (paper §VII-B)."""
    if compressed_nbytes <= 0:
        raise DataError("compressed size must be positive")
    return original_nbytes / compressed_nbytes


def bit_rate(n_elements: int, compressed_nbytes: int) -> float:
    """Average bits per input element in the compressed stream."""
    if n_elements <= 0:
        raise DataError("element count must be positive")
    return 8.0 * compressed_nbytes / n_elements


def ssim_3d(original: np.ndarray, reconstructed: np.ndarray,
            window: int = 7) -> float:
    """Mean local SSIM over non-overlapping windows (visual-quality proxy
    for the paper's Fig. 8 case study).

    A lightweight implementation: fields are tiled into ``window``-sized
    non-overlapping boxes and the standard SSIM statistic is averaged over
    boxes. Uses the original field's value range as the dynamic range.
    """
    _check_pair(original, reconstructed)
    a = original.astype(np.float64)
    b = reconstructed.astype(np.float64)
    rng = float(a.max() - a.min())
    if rng == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    c1 = (0.01 * rng) ** 2
    c2 = (0.03 * rng) ** 2

    # trim so each axis divides evenly, then view as blocks
    slices = tuple(slice(0, (n // window) * window) for n in a.shape)
    a = a[slices]
    b = b[slices]
    if a.size == 0:
        raise DataError(f"field smaller than SSIM window {window}")
    new_shape: list[int] = []
    for n in a.shape:
        new_shape.extend((n // window, window))
    order = list(range(0, 2 * a.ndim, 2)) + list(range(1, 2 * a.ndim, 2))
    ab = a.reshape(new_shape).transpose(order)
    bb = b.reshape(new_shape).transpose(order)
    nblk = int(np.prod(ab.shape[:a.ndim]))
    ab = ab.reshape(nblk, -1)
    bb = bb.reshape(nblk, -1)

    mu_a = ab.mean(axis=1)
    mu_b = bb.mean(axis=1)
    var_a = ab.var(axis=1)
    var_b = bb.var(axis=1)
    cov = ((ab - mu_a[:, None]) * (bb - mu_b[:, None])).mean(axis=1)
    ssim = ((2 * mu_a * mu_b + c1) * (2 * cov + c2) /
            ((mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)))
    return float(ssim.mean())
