"""Outer de-redundancy framing (paper §VI-B).

The paper applies Bitcomp-lossless to the *entire* compressed archive (and,
for fairness in Table III, to every baseline's output too). This module
provides that outer pass: a tiny frame recording which lossless codec
wrapped the container, so any blob remains self-describing.

Frame layout: ``b"RPW1" | u8 codec-name length | codec name | payload``.
A frame with codec ``none`` keeps the payload verbatim, so the wrap is
uniform across pipeline variants.
"""

from __future__ import annotations

import struct

from repro import telemetry
from repro.common.container import parse_container
from repro.common.errors import ContainerError
from repro.lossless import get_lossless

__all__ = ["wrap_lossless", "unwrap_lossless", "peek_codec"]

_MAGIC = b"RPW1"

#: codec instances reused across wrap/unwrap calls. Stateful codecs rely
#: on this: the orchestrator's plan cache only pays off when successive
#: containers in a slab loop hit the *same* instance.
_INSTANCES: dict[str, object] = {}


def _codec_for(name: str):
    codec = _INSTANCES.get(name)
    if codec is None:
        codec = _INSTANCES[name] = get_lossless(name)
    return codec


def wrap_lossless(container: bytes, lossless: str) -> bytes:
    """Apply the named lossless pass over a container blob and frame it."""
    codec = _codec_for(lossless)
    with telemetry.span("lossless.wrap", codec=codec.name,
                        bytes_in=len(container)) as sp:
        payload = codec.compress_bytes(container)
        name = codec.name.encode("utf-8")
        blob = _MAGIC + struct.pack("<B", len(name)) + name + payload
        sp.set(bytes_out=len(blob))
    return blob


def unwrap_lossless(blob: bytes) -> bytes:
    """Undo :func:`wrap_lossless`, returning the inner container bytes."""
    if len(blob) < 5 or blob[:4] != _MAGIC:
        raise ContainerError("missing lossless wrap frame")
    nlen = blob[4]
    if len(blob) < 5 + nlen:
        raise ContainerError("truncated lossless wrap frame")
    name = blob[5:5 + nlen].decode("utf-8")
    codec = _codec_for(name)
    with telemetry.span("lossless.unwrap", codec=name,
                        bytes_in=len(blob)) as sp:
        inner = codec.decompress_bytes(blob[5 + nlen:])
        sp.set(bytes_out=len(inner))
    return inner


def peek_codec(blob: bytes) -> str:
    """Read the inner container's codec name without full decode."""
    inner = unwrap_lossless(blob)
    codec, _meta, _segs = parse_container(inner)
    return codec
