"""Error-bounded linear quantization with outlier compaction (paper §III-A).

Every prediction-based compressor in this reproduction shares the same
quantization contract:

* ``q = round((value - prediction) / (2 * eb))`` maps the prediction error
  onto integer bins of width ``2*eb``;
* the reconstruction ``prediction + 2*eb*q`` is then within ``eb`` of the
  original value;
* codes with ``|q| >= radius`` (or that fail the bound after float32
  rounding) are *outliers*: they get the reserved code ``0`` and their exact
  float32 value is stream-compacted into a side channel (§VI-A), matching
  cuSZ's outlier design. Regular codes are stored as ``q + radius`` so the
  full code alphabet is ``[0, 2*radius)``.

Compressor and decompressor both run the arithmetic in float64, in the same
order, so reconstructions replay bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError, CorruptStreamError

__all__ = ["LinearQuantizer", "QuantResult", "DEFAULT_RADIUS"]

DEFAULT_RADIUS = 512


@dataclass
class QuantResult:
    """Outcome of quantizing one prediction pass.

    Attributes
    ----------
    codes:
        uint32 array, same length as the pass, values in ``[0, 2*radius)``;
        code 0 marks an outlier.
    reconstructed:
        float64 array the decompressor will reproduce exactly.
    outlier_values:
        float32 array of the original values at outlier positions, in pass
        order (stream compaction).
    """

    codes: np.ndarray
    reconstructed: np.ndarray
    outlier_values: np.ndarray

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_values.size)


class LinearQuantizer:
    """Linear error-bounded quantizer with a symmetric code radius.

    ``value_dtype`` is the dtype the reconstruction will finally be emitted
    in (float32 for the paper's datasets): the error bound is checked after
    rounding to that dtype, and outliers are stored in it, so the bound
    holds on the actual decompressor output.
    """

    def __init__(self, radius: int = DEFAULT_RADIUS,
                 value_dtype: np.dtype = np.float32):
        if radius < 2:
            raise ConfigError(f"radius must be >= 2, got {radius}")
        self.radius = int(radius)
        self.value_dtype = np.dtype(value_dtype)
        if self.value_dtype not in (np.float32, np.float64):
            raise ConfigError(f"unsupported value dtype {value_dtype}")

    @property
    def n_codes(self) -> int:
        """Size of the code alphabet (including the reserved outlier 0)."""
        return 2 * self.radius

    def quantize(self, values: np.ndarray, predictions: np.ndarray,
                 eb: float) -> QuantResult:
        """Quantize prediction errors for one pass.

        ``values`` are originals, ``predictions`` the same-shape predicted
        values; ``eb`` the absolute error bound for this pass.
        """
        if eb <= 0:
            raise ConfigError(f"error bound must be positive, got {eb}")
        v = np.asarray(values, dtype=np.float64).ravel()
        p = np.asarray(predictions, dtype=np.float64).ravel()
        ebx2 = 2.0 * eb

        q = np.rint((v - p) / ebx2)
        recon = p + ebx2 * q
        # Outlier when the code leaves the alphabet or the bound fails after
        # rounding to the output dtype.
        bad = np.abs(q) >= self.radius
        bad |= np.abs(recon.astype(self.value_dtype).astype(np.float64)
                      - v) > eb

        outlier_values = v[bad].astype(self.value_dtype)
        # Exact float32 round-trip on both sides: the decompressor reads the
        # stored float32 and upcasts, so do the same here.
        recon[bad] = outlier_values.astype(np.float64)

        codes = np.zeros(v.size, dtype=np.uint32)
        good = ~bad
        codes[good] = (q[good] + self.radius).astype(np.uint32)
        return QuantResult(codes=codes, reconstructed=recon,
                           outlier_values=outlier_values)

    def quantize_into(self, values: np.ndarray, predictions: np.ndarray,
                      eb: float, codes_out: np.ndarray, *,
                      q_buf: np.ndarray, r_buf: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Buffered :meth:`quantize`: write codes straight into the stream.

        ``values`` may be any-dimensional (a strided view of the original
        field); ``predictions`` is its flat-order prediction vector.
        Codes land in ``codes_out`` (a uint32 slice of the caller's full
        code stream), the rounding runs inside the reusable float64
        scratch ``q_buf``/``r_buf``, and no per-pass arrays are
        allocated beyond the outlier compaction. Returns
        ``(reconstructed, outlier_values)`` where ``reconstructed`` is a
        ``values``-shaped view of ``r_buf`` valid until the next call.

        Bit-identical to :meth:`quantize` lane for lane: the subtraction
        promotes float32 inputs to float64 exactly, the fused
        ``ebx2*q + p`` is the same IEEE sum as ``p + ebx2*q``, and the
        in-place ``q + radius`` / zero-outlier / unsafe-cast sequence
        produces the same uint32 code every reference lane gets.
        """
        if eb <= 0:
            raise ConfigError(f"error bound must be positive, got {eb}")
        shape = values.shape
        n = values.size
        q = q_buf[:n].reshape(shape)
        r = r_buf[:n].reshape(shape)
        p = np.asarray(predictions, dtype=np.float64).reshape(shape)
        ebx2 = 2.0 * eb

        np.subtract(values, p, out=q)     # exact: float32 in, float64 out
        q /= ebx2
        np.rint(q, out=q)
        np.multiply(q, ebx2, out=r)
        r += p                            # == p + ebx2*q bit for bit
        bad = np.abs(q) >= self.radius
        bad |= np.abs(np.subtract(r.astype(self.value_dtype), values,
                                  dtype=np.float64)) > eb

        outlier_values = values[bad].astype(self.value_dtype)
        r[bad] = outlier_values.astype(np.float64)

        q += self.radius
        q[bad] = 0.0                      # reserved outlier code
        np.copyto(codes_out.reshape(shape), q, casting="unsafe")
        return r, outlier_values

    def dequantize(self, codes: np.ndarray, predictions: np.ndarray,
                   eb: float, outlier_values: np.ndarray,
                   outlier_cursor: int) -> tuple[np.ndarray, int]:
        """Invert :meth:`quantize` for one pass.

        ``outlier_values`` is the full compacted outlier stream;
        ``outlier_cursor`` the index of the next unconsumed outlier. Returns
        the reconstructed float64 values and the advanced cursor. Raises
        :class:`~repro.common.errors.CorruptStreamError` when the outlier
        stream runs dry — a short slice would silently reconstruct garbage
        at every remaining outlier position.
        """
        if eb <= 0:
            raise ConfigError(f"error bound must be positive, got {eb}")
        codes = np.asarray(codes, dtype=np.int64).ravel()
        p = np.asarray(predictions, dtype=np.float64).ravel()
        ebx2 = 2.0 * eb

        q = codes - self.radius
        recon = p + ebx2 * q.astype(np.float64)
        is_out = codes == 0
        n_out = int(is_out.sum())
        if n_out:
            take = outlier_values[outlier_cursor:outlier_cursor + n_out]
            if take.size != n_out:
                raise CorruptStreamError(
                    f"outlier stream exhausted: pass has {n_out} outlier "
                    f"code(s) but only {take.size} stored value(s) remain")
            recon[is_out] = take.astype(np.float64)
        return recon, outlier_cursor + n_out
