"""Array helpers shared by the predictors and codecs.

The interpolation predictors operate on grids padded so that every axis
length is ``k * anchor_stride + 1`` (an anchor sits on both the first and
last sample of every axis). Padding replicates the edge sample, which keeps
the padded region maximally predictable and therefore nearly free after
entropy coding.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataError

__all__ = [
    "validate_field",
    "pad_to_grid",
    "crop_to_shape",
    "value_range",
    "as_f64",
    "blocks_along",
]


def validate_field(data: np.ndarray, *, max_ndim: int = 3) -> np.ndarray:
    """Validate a scientific field for compression.

    Accepts float32/float64 arrays of 1..``max_ndim`` dimensions; returns a
    C-contiguous view (copying only when needed). Raises
    :class:`~repro.common.errors.DataError` for anything a compressor cannot
    consume (empty arrays, NaNs/Infs, unsupported dtypes).
    """
    if not isinstance(data, np.ndarray):
        raise DataError(f"expected numpy.ndarray, got {type(data).__name__}")
    if data.ndim < 1 or data.ndim > max_ndim:
        raise DataError(f"expected 1..{max_ndim}D data, got {data.ndim}D")
    if data.size == 0:
        raise DataError("cannot compress an empty array")
    if data.dtype not in (np.float32, np.float64):
        raise DataError(f"unsupported dtype {data.dtype}; use float32/float64")
    if not np.isfinite(data).all():
        raise DataError("input contains NaN or Inf; error-bounded "
                        "compression requires finite data")
    return np.ascontiguousarray(data)


def pad_to_grid(data: np.ndarray, stride: int) -> np.ndarray:
    """Pad every axis of ``data`` up to ``k * stride + 1`` samples.

    Edge values are replicated. If an axis already has length
    ``k * stride + 1`` it is left untouched.
    """
    if stride < 1:
        raise DataError(f"stride must be >= 1, got {stride}")
    pads = []
    for n in data.shape:
        # smallest m >= n with m % stride == 1 (and m >= stride + 1)
        rem = (n - 1) % stride
        pads.append((0, 0 if rem == 0 else stride - rem))
    if all(p == (0, 0) for p in pads):
        return data
    return np.pad(data, pads, mode="edge")


def crop_to_shape(data: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Crop a padded array back to its original ``shape``."""
    if len(shape) != data.ndim:
        raise DataError("crop shape rank mismatch")
    slices = tuple(slice(0, n) for n in shape)
    return data[slices]


def value_range(data: np.ndarray) -> float:
    """Value range (max - min) of the field, as a Python float."""
    return float(data.max() - data.min())


def as_f64(data: np.ndarray) -> np.ndarray:
    """Upcast to float64 working precision (copy iff needed).

    Compressor and decompressor run identical float64 arithmetic so that
    reconstructions replay bit-exactly on both sides.
    """
    return data.astype(np.float64, copy=False)


def blocks_along(n: int, block: int) -> int:
    """Number of ``block``-sized tiles covering ``n`` samples (ceil div)."""
    return -(-n // block)
