"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A compressor / experiment was configured with invalid parameters."""


class CodecError(ReproError):
    """An encode or decode stage failed or produced inconsistent state."""


class ContainerError(ReproError):
    """A serialized container blob is malformed or version-incompatible."""


class CorruptStreamError(CodecError):
    """A decode stream (quant-codes, outliers) ran dry or had bytes left
    over — truncated or corrupt input that would otherwise decode garbage."""


class DataError(ReproError):
    """Input data is unusable (wrong dtype/shape, non-finite, empty...)."""
