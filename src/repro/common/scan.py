"""Scan/compact idioms shared by the vectorized codecs.

These are the NumPy spellings of the GPU primitives the paper's kernels are
built from: ``concat_ranges`` is the classic "exclusive scan to enumerate
ragged segments" pattern (one ``arange`` per segment, concatenated) used by
run-length decoding, decode-table expansion, and variable-length bit
writing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_ranges", "segment_offsets"]


def concat_ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each count ``c``, in order.

    ``concat_ranges([2, 0, 3]) == [0, 1, 0, 1, 2]``. Runs in O(total);
    zero-length segments are skipped.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ids = np.repeat(np.arange(counts.size), counts)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - starts[ids]


def segment_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive-scan segment start offsets, with the total appended."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.concatenate(([0], np.cumsum(counts)))
