"""Seeded synthetic field generators (Table II analogues).

Every generator is deterministic in ``(shape, seed/field, params)`` and
returns float32. The common engine is spectral synthesis: Gaussian noise
shaped by a power-law-with-cutoff spectrum in Fourier space. Simulation
output is band-limited (the solver resolves nothing below a few grid
cells), which is what makes production data far more predictable at fine
scales than filtered white noise — and what the interpolation predictors
exploit.

Dataset-specific structure is layered on top: material interfaces
(Miranda), log-normal density contrast (Nyx), oscillatory orbitals
(QMCPack), expanding band-limited wavefronts with quiet zones (RTM), and
flame sheets (S3D).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import ConfigError

__all__ = ["spectral_field", "intermittency_envelope", "jhtdb_field",
           "miranda_field", "nyx_field", "qmcpack_field", "rtm_field",
           "s3d_field"]


def _seed_from(*parts) -> int:
    """Stable 64-bit seed from arbitrary labels."""
    text = "/".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "little")


def spectral_field(shape: tuple[int, ...], slope: float, kmax_frac: float,
                   seed: int, kmin: float = 1.0) -> np.ndarray:
    """Gaussian random field with an isotropic power-law spectrum.

    Amplitude ``|F(k)| ~ k**(-slope/2)`` for ``kmin <= k <= kmax_frac *
    nyquist``, zero outside (a hard band limit — simulation grids carry no
    energy near the grid scale). Output is normalized to zero mean, unit
    std, float64 (callers post-process then cast).
    """
    if not 0 < kmax_frac <= 1:
        raise ConfigError("kmax_frac must be in (0, 1]")
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spec = np.fft.rfftn(white)
    kgrids = []
    for ax, n in enumerate(shape):
        if ax == len(shape) - 1:
            k = np.fft.rfftfreq(n) * n
        else:
            k = np.fft.fftfreq(n) * n
        view = [1] * len(shape)
        view[ax] = k.size
        kgrids.append(k.reshape(view))
    kk = np.sqrt(sum(k ** 2 for k in kgrids))
    nyq = min(shape) / 2.0
    kmax = kmax_frac * nyq
    with np.errstate(divide="ignore"):
        amp = np.where(kk > 0, kk ** (-slope / 2.0), 0.0)
    amp[(kk < kmin) | (kk > kmax)] = 0.0
    field = np.fft.irfftn(spec * amp, s=shape,
                          axes=tuple(range(len(shape))))
    std = field.std()
    if std == 0:
        return field
    return (field - field.mean()) / std


def intermittency_envelope(shape: tuple[int, ...], strength: float,
                           seed: int, kmax_frac: float = 0.08) -> np.ndarray:
    """Log-normal amplitude modulation.

    Production fields are spatially *intermittent*: most of the volume is
    quiet relative to the global value range, with activity concentrated in
    structures (vortex tubes, filaments, fronts). Under a value-range
    relative error bound this is what concentrates quant-codes into the
    zero bin — homogeneous Gaussian fields are the worst case and do not
    reproduce production compression ratios.
    """
    return np.exp(strength * spectral_field(shape, slope=4.0,
                                            kmax_frac=kmax_frac,
                                            seed=seed, kmin=1.0))


def jhtdb_field(shape: tuple[int, ...] = (128, 128, 128),
                field: str = "u", seed: int | None = None) -> np.ndarray:
    """Forced-isotropic-turbulence analogue (JHTDB).

    Velocity components carry a Kolmogorov-like spectrum (3D amplitude
    slope 11/3 ~ E(k) ~ k^-5/3) with log-normal small-scale intermittency;
    pressure is one power steeper. The inertial range is resolved well
    below Nyquist like the spectral solver behind JHTDB.
    """
    seed = seed if seed is not None else _seed_from("jhtdb", field)
    # fields like "u2"/"p3" are later snapshots of the same variable: same
    # spectrum, different seed (already distinct via the field name)
    if field.startswith("p"):
        base = spectral_field(shape, slope=17.0 / 3.0, kmax_frac=0.5,
                              seed=seed, kmin=2.0)
    else:
        base = spectral_field(shape, slope=11.0 / 3.0, kmax_frac=0.5,
                              seed=seed, kmin=2.0)
    env = intermittency_envelope(shape, 1.5, seed + 99)
    return (base * env).astype(np.float32)


def miranda_field(shape: tuple[int, ...] = (64, 96, 96),
                  field: str = "density",
                  seed: int | None = None) -> np.ndarray:
    """Rayleigh-Taylor-style hydrodynamics analogue (Miranda).

    Very smooth large-scale flow plus a corrugated material interface: the
    interface is the zero level set of a smooth random surface, and scalar
    fields jump across it with a resolved (few-cell) tanh profile — the
    structure Miranda's compact-difference solver produces.
    """
    seed = seed if seed is not None else _seed_from("miranda", field)
    phi = spectral_field(shape, slope=5.0, kmax_frac=0.3, seed=seed + 1,
                         kmin=1.0)
    bg = spectral_field(shape, slope=6.0, kmax_frac=0.2, seed=seed + 2,
                        kmin=1.0)
    env = intermittency_envelope(shape, 1.2, seed + 3)
    # interface sharpness ~3 cells relative to phi's unit std
    sheet = np.tanh(phi / 0.15)
    base_field = field.rstrip("0123456789")  # "density2" = later snapshot
    if base_field == "density":
        out = 1.0 + 0.45 * sheet + 0.08 * bg * env
    elif base_field == "pressure":
        out = 10.0 + 0.8 * bg * env + 0.1 * sheet
    elif base_field == "velocity":
        out = 0.6 * bg * env + 0.15 * np.tanh(phi / 0.3)
    else:  # diffusivity-like tracer pinned to the interface
        out = np.exp(-(phi / 0.25) ** 2) + 0.02 * bg * env
    return out.astype(np.float32)


def nyx_field(shape: tuple[int, ...] = (128, 128, 128),
              field: str = "baryon_density",
              seed: int | None = None) -> np.ndarray:
    """Cosmological hydrodynamics analogue (Nyx / AMReX).

    Density fields are log-normal with a steep spectrum (large-scale
    structure): huge dynamic range concentrated in filaments — the regime
    where value-range-relative error bounds leave most of the volume in the
    zero bin. Velocities and temperature are smooth.
    """
    seed = seed if seed is not None else _seed_from("nyx", field)
    g = spectral_field(shape, slope=4.0, kmax_frac=0.4, seed=seed + 1,
                       kmin=1.0)
    if field in ("baryon_density", "dark_matter_density"):
        bias = 2.2 if field == "baryon_density" else 2.6
        out = np.exp(bias * g)
    elif field == "temperature":
        out = 1e4 * np.exp(1.1 * g) \
            * (1.0 + 0.1 * spectral_field(shape, 4.5, 0.3, seed + 2))
    else:  # velocity_x/y/z
        out = 2.5e7 * spectral_field(shape, 4.5, 0.35, seed + 3, kmin=1.0)
    return out.astype(np.float32)


def qmcpack_field(shape: tuple[int, ...] = (160, 69, 69),
                  field: str = "einspline",
                  seed: int | None = None) -> np.ndarray:
    """Quantum Monte Carlo orbital analogue (QMCPack einspline grid).

    A stack of smooth oscillatory orbitals: band-limited plane-wave
    superpositions under slowly varying envelopes. The leading axis indexes
    orbitals (the paper's (288x115) x 69 x 69 layout folds orbital and z).
    """
    seed = seed if seed is not None else _seed_from("qmcpack", field)
    rng = np.random.default_rng(seed)
    nz, ny, nx = shape[-3], shape[-2], shape[-1]
    z, y, x = np.meshgrid(np.linspace(0, 1, nz, endpoint=False),
                          np.linspace(0, 1, ny, endpoint=False),
                          np.linspace(0, 1, nx, endpoint=False),
                          indexing="ij")
    out = np.zeros(shape, dtype=np.float64)
    n_waves = 6
    for w in range(n_waves):
        kvec = rng.integers(1, 7, size=3)
        phase = rng.uniform(0, 2 * np.pi, size=3)
        mode = (np.cos(2 * np.pi * kvec[0] * z + phase[0])
                * np.cos(2 * np.pi * kvec[1] * y + phase[1])
                * np.cos(2 * np.pi * kvec[2] * x + phase[2]))
        envelope = spectral_field(shape, slope=6.0, kmax_frac=0.2,
                                  seed=seed + 10 + w)
        out += rng.uniform(0.3, 1.0) * mode * (1.0 + 0.2 * envelope)
    # orbitals decay away from their atomic centers: localized support
    out *= intermittency_envelope(shape, 1.6, seed + 50, kmax_frac=0.1)
    return out.astype(np.float32)


def rtm_field(shape: tuple[int, ...] = (112, 112, 59), step: int = 1500,
              seed: int | None = None) -> np.ndarray:
    """Reverse-time-migration wavefield analogue (RTM snapshots).

    A band-limited (Ricker-wavelet) pressure wavefront expanding from a
    near-surface source through a layered medium, sampled at timestep
    ``step`` of a nominal 3700-step run. Early steps leave most of the
    volume identically quiet (cuSZx's constant blocks win there, as in
    Table III); late steps fill the volume with oscillatory coda.
    """
    seed = seed if seed is not None else _seed_from("rtm")
    if step < 0:
        raise ConfigError("step must be >= 0")
    rng = np.random.default_rng(seed)
    nz, ny, nx = shape
    z, y, x = np.meshgrid(np.linspace(0, 1, nz),
                          np.linspace(0, 1, ny),
                          np.linspace(0, 1, nx), indexing="ij")
    # layered medium -> wavefront speed varies smoothly with depth
    speed = 1.0 + 0.35 * np.sin(6.0 * x) * 0.1 + 0.3 * x
    src = np.array([0.5, 0.5, 0.05])
    r = np.sqrt((z - src[0]) ** 2 + (y - src[1]) ** 2
                + ((x - src[2]) / speed) ** 2)
    # wavefront radius grows with time; total run traverses ~2 domains
    t = step / 3700.0
    radius = 2.0 * t
    wavelength = 0.1
    arg = (r - radius) / wavelength
    ricker = (1.0 - 2.0 * arg ** 2) * np.exp(-arg ** 2)
    # trailing coda: weaker reflected ring-down behind the front
    coda = np.zeros_like(ricker)
    n_echo = min(6, int(radius / 0.12))
    for e in range(n_echo):
        re = radius - 0.12 * (e + 1)
        if re <= 0:
            break
        arge = (r - re) / (wavelength * 1.4)
        coda += (0.45 ** (e + 1)) * (1.0 - 2.0 * arge ** 2) \
            * np.exp(-arge ** 2)
    het = spectral_field(shape, slope=5.0, kmax_frac=0.3, seed=seed + step)
    field = (ricker + coda) * (1.0 + 0.05 * het)
    # everything the front has not reached yet is numerically quiet
    field[r > radius + 4 * wavelength] = 0.0
    return field.astype(np.float32)


def s3d_field(shape: tuple[int, ...] = (125, 125, 125),
              field: str = "CO", seed: int | None = None) -> np.ndarray:
    """Turbulent-combustion analogue (S3D direct numerical simulation).

    Species mass fractions live on a wrinkled flame sheet (steep but
    resolved gradients); temperature jumps across it; some minor species
    exist only inside the sheet, leaving most of the volume near a floor
    value — the highly compressible regime where Table III's S3D rows show
    the largest with-Bitcomp gains.
    """
    seed = seed if seed is not None else _seed_from("s3d", field)
    phi = spectral_field(shape, slope=5.0, kmax_frac=0.08, seed=seed + 1,
                         kmin=1.0)
    turb = spectral_field(shape, slope=4.0, kmax_frac=0.15, seed=seed + 2)
    progress = 0.5 * (1.0 + np.tanh(phi / 0.25))
    if field in ("CO", "OH", "HO2", "H2O", "CO2", "CH2O"):
        width = {"CO": 0.3, "OH": 0.22, "HO2": 0.15, "H2O": 0.4,
                 "CO2": 0.35, "CH2O": 0.18}[field]
        peak = {"CO": 0.08, "OH": 0.01, "HO2": 0.001, "H2O": 0.12,
                "CO2": 0.1, "CH2O": 0.004}[field]
        g = np.exp(-(phi / width) ** 2)
        # species underflow to an exact zero floor away from the sheet,
        # as DNS species fractions do below solver precision
        g = np.maximum(g - 1e-2, 0.0)
        out = peak * g * (1.0 + 0.08 * turb)
    elif field == "temperature":
        out = 800.0 + 1500.0 * progress + 30.0 * turb
    elif field == "pressure":
        out = 1.0 + 0.02 * turb
    else:  # major species (CH4/O2/N2-like): monotone across the sheet
        out = 0.2 * (1.0 - progress) + 0.02 * np.exp(-(phi / 0.3) ** 2) \
            + 0.002 * turb
    return out.astype(np.float32)
