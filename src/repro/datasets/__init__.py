"""Synthetic analogues of the paper's six evaluation datasets (Table II).

The SDRBench production data is unavailable offline, so each dataset is
replaced by a seeded generator reproducing the *statistics that drive
compressor behaviour*: spectral decay (how predictable a sample is from
its neighbors), sharp-feature structure (interfaces, fronts, shocks), and
value distribution (dynamic range, dead/constant regions). See DESIGN.md
§1 for the substitution rationale.

Default shapes are scaled down ~4x per axis from Table II so the full
benchmark suite runs on a laptop; generators accept any shape.
"""

from repro.datasets.synthetic import (
    jhtdb_field,
    miranda_field,
    nyx_field,
    qmcpack_field,
    rtm_field,
    s3d_field,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetInfo,
    get_dataset,
    load_field,
    dataset_names,
)

__all__ = [
    "jhtdb_field",
    "miranda_field",
    "nyx_field",
    "qmcpack_field",
    "rtm_field",
    "s3d_field",
    "DATASETS",
    "DatasetInfo",
    "get_dataset",
    "load_field",
    "dataset_names",
]
