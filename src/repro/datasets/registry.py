"""Dataset registry — the Table II inventory, scaled for laptop runs.

``load_field(dataset, field)`` is the single entry point the experiment
harness uses; fields are generated deterministically on demand (nothing is
stored on disk).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable

import numpy as np

from repro.common.errors import ConfigError
from repro.datasets import synthetic

__all__ = ["DatasetInfo", "DATASETS", "get_dataset", "load_field",
           "dataset_names", "rtm_steps"]


@dataclass(frozen=True)
class DatasetInfo:
    """One evaluation dataset (a Table II row)."""

    name: str
    description: str
    paper_shape: tuple[int, ...]     # per-file dims reported in Table II
    default_shape: tuple[int, ...]   # scaled-down dims used here
    fields: tuple[str, ...]          # per-file field labels
    paper_total_gb: float = 0.0      # Table II dataset size on disk
    generator: Callable[..., np.ndarray] = dc_field(repr=False, hash=False,
                                                    compare=False,
                                                    default=None)

    def load(self, field: str, shape: tuple[int, ...] | None = None
             ) -> np.ndarray:
        """Generate one field of this dataset."""
        if field not in self.fields:
            raise ConfigError(
                f"dataset {self.name!r} has no field {field!r}; "
                f"choose from {self.fields}")
        shape = shape or self.default_shape
        if self.name == "rtm":
            step = int(field.removeprefix("snap"))
            return synthetic.rtm_field(shape, step=step)
        return self.generator(shape, field=field)


def rtm_steps(n: int = 37, total: int = 3700, skip_initial: int = 300
              ) -> list[int]:
    """The paper's RTM sampling: ~one snapshot per 100 steps of a
    3700-step run, skipping the initialization phase (Fig. 6 caption).
    Always returns exactly ``n`` steps inside ``[skip_initial, total)``."""
    stride = max(1, (total - skip_initial) // n)
    return [skip_initial + i * stride for i in range(n)]


_RTM_TABLE_FIELDS = tuple(f"snap{s}" for s in (600, 1400, 2200, 3000, 3600))

DATASETS: dict[str, DatasetInfo] = {
    "jhtdb": DatasetInfo(
        name="jhtdb",
        description="numerical simulation of turbulence",
        paper_total_gb=5.0,
        paper_shape=(512, 512, 512),
        default_shape=(128, 128, 128),
        fields=("u", "v", "w", "p", "u2", "v2", "w2", "p2",
                "u3", "v3"),  # 10 files in Table II
        generator=synthetic.jhtdb_field,
    ),
    "miranda": DatasetInfo(
        name="miranda",
        description="hydrodynamics simulation",
        paper_total_gb=1.0,
        paper_shape=(256, 384, 384),
        default_shape=(64, 96, 96),
        fields=("density", "pressure", "velocity", "diffusivity",
                "density2", "pressure2", "velocity2"),  # 7 files
        generator=synthetic.miranda_field,
    ),
    "nyx": DatasetInfo(
        name="nyx",
        description="cosmological hydrodynamics simulation",
        paper_total_gb=3.1,
        paper_shape=(512, 512, 512),
        default_shape=(128, 128, 128),
        fields=("baryon_density", "dark_matter_density", "temperature",
                "velocity_x", "velocity_y", "velocity_z"),  # 6 files
        generator=synthetic.nyx_field,
    ),
    "qmcpack": DatasetInfo(
        name="qmcpack",
        description="Monte Carlo quantum simulation",
        paper_total_gb=0.612,
        paper_shape=(288 * 115, 69, 69),
        default_shape=(160, 69, 69),
        fields=("einspline",),
        generator=synthetic.qmcpack_field,
    ),
    "rtm": DatasetInfo(
        name="rtm",
        description="reverse time migration for seismic imaging",
        paper_total_gb=6.5,
        paper_shape=(449, 449, 235),
        default_shape=(112, 112, 59),
        fields=_RTM_TABLE_FIELDS,
        generator=None,
    ),
    "s3d": DatasetInfo(
        name="s3d",
        description="combustion process simulation",
        paper_total_gb=5.1,
        paper_shape=(500, 500, 500),
        default_shape=(125, 125, 125),
        fields=("CO", "OH", "HO2", "temperature", "pressure", "CH4",
                "O2", "H2O", "CO2", "N2", "CH2O"),  # 11 files
        generator=synthetic.s3d_field,
    ),
}


def dataset_names() -> list[str]:
    """All registered dataset names, Table II order."""
    return list(DATASETS)


def get_dataset(name: str) -> DatasetInfo:
    """Look up a dataset by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigError(f"unknown dataset {name!r}; "
                          f"choose from {dataset_names()}")


def load_field(dataset: str, field: str,
               shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Generate one named field of one dataset (deterministic)."""
    return get_dataset(dataset).load(field, shape)
