"""Process-pool batch engine: parallel slabs, field maps, worker traces.

The GPU design this repo reproduces gets its speed from coarse-grained
independence — one thread block per Huffman chunk, one stream per field —
and the CPU substrate has the same independence sitting idle: every slab
of a :class:`~repro.streaming.SlabWriter` stream and every field of a
batch is a self-contained archive. This module exploits that with a
process pool:

* :func:`parallel_compress_slabs` / :func:`parallel_decompress_slabs`
  shard a field along axis 0 (the ``SlabWriter`` framing, bit for bit)
  and run the per-slab codec work across workers, reassembling **in
  order** so the output is byte-identical to the serial path;
* :func:`map_compress` / :func:`map_decompress` run many-field batches
  (the experiments harness, the field archive, the transfer pipeline);
* worker processes record their own telemetry spans and ship them back,
  where they are grafted into the parent trace
  (:func:`repro.telemetry.merge_spans`) — ``repro trace`` then shows the
  per-slab concurrency lanes by worker pid.

Everything is gated behind a ``workers=`` knob: the default (``None``)
stays serial, ``workers="auto"`` uses every core, and any explicit
integer pins the pool size. Serial requests never touch
``multiprocessing`` at all, so the default path is exactly the code that
existed before this module.

Workers warm their own caches exactly like the parent: the Huffman
codebook LRU *and* the compiled pass-plan LRU
(:mod:`repro.core.ginterp.plans`) are per-process, so a worker compiles
each slab geometry once on its first task and reuses it for the rest of
the batch (same-shape slabs all share one plan entry).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro import telemetry
from repro.common.errors import ConfigError
from repro.registry import decompress_any, get_compressor
from repro.streaming import SlabWriter, SlabReader, compress_slabs, \
    decompress_slabs, frame_slabs

__all__ = ["resolve_workers", "parallel_compress_slabs",
           "parallel_decompress_slabs", "map_compress", "map_decompress",
           "run_batch", "shutdown_pools",
           "PARALLEL_MIN_ENCODE_BYTES", "PARALLEL_MIN_DECODE_BYTES"]

#: fields smaller than this (raw bytes) compress serially even when a
#: pool is requested — pickling the slabs out and the blobs back costs
#: more than the codec work saved
PARALLEL_MIN_ENCODE_BYTES = 8 * 1024 * 1024
#: streams smaller than this (compressed bytes) decompress serially even
#: when a pool is requested. Decode is several times cheaper than encode,
#: and every decoded slab must be pickled back whole, so the break-even
#: point sits far above tiny benchmark streams (the 64^3 Nyx field's
#: ~50 KiB stream decoded 5x *slower* on a forced pool).
PARALLEL_MIN_DECODE_BYTES = 2 * 1024 * 1024


# -- worker-count knob ------------------------------------------------------

def resolve_workers(workers: int | str | None) -> int:
    """Normalize the ``workers=`` knob to a concrete pool size.

    ``None``/``0``/``1`` mean serial, ``"auto"`` means one worker per
    core, and a positive integer pins the size. Anything else is a
    configuration error.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(f"workers must be None, 'auto', or an int, "
                          f"got {workers!r}")
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return max(1, workers)


# -- pool lifecycle ---------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}
_pool_lock = threading.Lock()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    with _pool_lock:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def _evict_pool(workers: int) -> None:
    with _pool_lock:
        pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every cached worker pool (atexit-registered)."""
    with _pool_lock:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)


def _run_batch(task, payloads: list, workers: int) -> list:
    """Run ``task`` over ``payloads`` on the pool, results in order.

    A pool broken by a dead worker (e.g. an OOM-killed child) is evicted
    and rebuilt once before the error propagates.
    """
    for attempt in (0, 1):
        pool = _get_pool(workers)
        try:
            return list(pool.map(task, payloads))
        except BrokenProcessPool:
            _evict_pool(workers)
            if attempt:
                raise
    raise AssertionError("unreachable")


def run_batch(task, payloads: list, workers: int | str | None) -> list:
    """Run a picklable ``task`` over ``payloads`` on the shared pool.

    Results come back in input order. This is the raw batch primitive the
    slab/field helpers are built on, exposed for other coarse-grained
    fan-outs (the lossless orchestrator's block-parallel GLE route).
    ``workers <= 1`` degrades to a plain in-process loop.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return [task(p) for p in payloads]
    return _run_batch(task, payloads, workers)


def _merge_worker_trace(results: list, offset_s: float) -> None:
    """Graft per-item worker spans back into the parent trace."""
    if not telemetry.enabled():
        return
    for _, spans, pid in results:
        if spans:
            telemetry.merge_spans(spans, offset_s=offset_s, worker_pid=pid)


def _trace_offset() -> float:
    """Parent-clock offset applied to worker spans (their epoch is 0)."""
    if not telemetry.enabled():
        return 0.0
    return time.perf_counter() - telemetry.get_registry().epoch


# -- worker entry points (module-level: payloads must survive pickle) -------

def _chunk_bounds(n_items: int, n_groups: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``(start, end)`` split of ``n_items``."""
    n_groups = max(1, min(n_groups, n_items))
    base, extra = divmod(n_items, n_groups)
    bounds = []
    start = 0
    for g in range(n_groups):
        end = start + base + (1 if g < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _compress_slab_task(payload):
    """One pool task = one contiguous *group* of slabs.

    Grouping amortizes pickle/dispatch overhead over the batch and lets
    each worker reuse its warm codec caches across its whole share.
    """
    start, slabs, codec, eb, kwargs, trace = payload
    comp = get_compressor(codec, eb=eb, mode="abs", **kwargs)
    if trace:
        with telemetry.recording() as reg:
            blobs = []
            for i, slab in enumerate(slabs):
                with telemetry.span("slab.append", index=start + i,
                                    bytes_in=slab.nbytes) as sp:
                    blob = comp.compress(slab)
                    sp.set(bytes_out=len(blob))
                blobs.append(blob)
        return blobs, reg.spans, os.getpid()
    telemetry.disable()
    return [comp.compress(slab) for slab in slabs], None, os.getpid()


def _decompress_slab_task(payload):
    start, blobs, trace = payload
    if trace:
        with telemetry.recording() as reg:
            out = []
            for i, blob in enumerate(blobs):
                with telemetry.span("slab.read", index=start + i,
                                    bytes_in=len(blob)) as sp:
                    arr = decompress_any(blob)
                    sp.set(bytes_out=arr.nbytes)
                out.append(arr)
        return out, reg.spans, os.getpid()
    telemetry.disable()
    return [decompress_any(blob) for blob in blobs], None, os.getpid()


def _compress_field_task(payload):
    index, data, codec, kwargs, trace = payload
    if trace:
        with telemetry.recording() as reg:
            with telemetry.span("runtime.field", index=index, codec=codec,
                                bytes_in=data.nbytes) as sp:
                blob = get_compressor(codec, **kwargs).compress(data)
                sp.set(bytes_out=len(blob))
        return blob, reg.spans, os.getpid()
    telemetry.disable()
    return get_compressor(codec, **kwargs).compress(data), None, os.getpid()


def _decompress_field_task(payload):
    index, blob, trace = payload
    if trace:
        with telemetry.recording() as reg:
            with telemetry.span("runtime.field", index=index,
                                bytes_in=len(blob)) as sp:
                out = decompress_any(blob)
                sp.set(bytes_out=out.nbytes)
        return out, reg.spans, os.getpid()
    telemetry.disable()
    return decompress_any(blob), None, os.getpid()


# -- parallel slab runtime --------------------------------------------------

def parallel_compress_slabs(data: np.ndarray, slab_planes: int, *,
                            workers: int | str | None = None,
                            min_parallel_bytes: int | None = None,
                            **writer_kwargs) -> bytes:
    """Slab-stream a field like :func:`repro.streaming.compress_slabs`,
    compressing slab groups concurrently across worker processes.

    The output is **byte-identical** to the serial path for any
    ``workers`` value: slabs are cut at the same plane boundaries,
    compressed by the same deterministic codec configuration, and framed
    in their original order. Fields below ``min_parallel_bytes`` raw
    bytes (default :data:`PARALLEL_MIN_ENCODE_BYTES`) take the serial
    path outright — IPC overhead dwarfs the codec work there.
    """
    workers = resolve_workers(workers)
    if min_parallel_bytes is None:
        min_parallel_bytes = PARALLEL_MIN_ENCODE_BYTES
    if workers <= 1 or data.nbytes < min_parallel_bytes:
        return compress_slabs(data, slab_planes, **writer_kwargs)
    if slab_planes < 1:
        raise ConfigError("slab_planes must be >= 1")
    if writer_kwargs.get("mode") == "rel" \
            and "value_range" not in writer_kwargs:
        writer_kwargs["value_range"] = float(data.max() - data.min())
    # the writer validates the config and resolves rel->abs exactly as the
    # serial path does; its (codec, eb, kwargs) config is the work spec
    writer = SlabWriter(**writer_kwargs)
    slabs = [np.ascontiguousarray(data[start:start + slab_planes])
             for start in range(0, data.shape[0], slab_planes)]
    if not slabs:
        raise ConfigError("no slabs appended")
    trace = telemetry.enabled()
    with telemetry.span("runtime.compress_slabs", n_slabs=len(slabs),
                        workers=workers, bytes_in=data.nbytes) as sp:
        offset = _trace_offset()
        payloads = [(s, slabs[s:e], writer.codec, writer.eb,
                     writer.codec_kwargs, trace)
                    for s, e in _chunk_bounds(len(slabs), workers)]
        results = _run_batch(_compress_slab_task, payloads, workers)
        _merge_worker_trace(results, offset)
        stream = frame_slabs([blob for blobs, _, _ in results
                              for blob in blobs])
        sp.set(bytes_out=len(stream))
    return stream


def parallel_decompress_slabs(stream: bytes, *,
                              workers: int | str | None = None,
                              min_parallel_bytes: int | None = None
                              ) -> np.ndarray:
    """Reassemble a slab stream, decoding slab groups concurrently.

    Streams below ``min_parallel_bytes`` compressed bytes (default
    :data:`PARALLEL_MIN_DECODE_BYTES`) decode serially regardless of
    ``workers`` — decode is cheap relative to shipping every decoded
    slab back through a pipe.
    """
    workers = resolve_workers(workers)
    if min_parallel_bytes is None:
        min_parallel_bytes = PARALLEL_MIN_DECODE_BYTES
    if workers <= 1 or len(stream) < min_parallel_bytes:
        return decompress_slabs(stream)
    reader = SlabReader(stream)
    trace = telemetry.enabled()
    with telemetry.span("runtime.decompress_slabs", n_slabs=len(reader),
                        workers=workers, bytes_in=len(stream)) as sp:
        offset = _trace_offset()
        blobs = [reader.slab_bytes(i) for i in range(len(reader))]
        payloads = [(s, blobs[s:e], trace)
                    for s, e in _chunk_bounds(len(blobs), workers)]
        results = _run_batch(_decompress_slab_task, payloads, workers)
        _merge_worker_trace(results, offset)
        out = np.concatenate([arr for arrs, _, _ in results
                              for arr in arrs], axis=0)
        sp.set(bytes_out=out.nbytes)
    return out


# -- many-field batches -----------------------------------------------------

def map_compress(fields, codec: str = "cuszi", *,
                 workers: int | str | None = None,
                 per_item: list[dict] | None = None,
                 **codec_kwargs) -> list[bytes]:
    """Compress a batch of fields, returning blobs in input order.

    ``per_item`` optionally overrides the codec configuration of single
    items (a dict per field; an item dict may also override ``"codec"``).
    With ``workers`` serial this is a plain loop — same results, same
    spans — so callers can thread the knob through unconditionally.
    """
    fields = list(fields)
    per_item = list(per_item) if per_item is not None else [{}] * len(fields)
    if len(per_item) != len(fields):
        raise ConfigError(f"per_item has {len(per_item)} entries for "
                          f"{len(fields)} fields")
    configs = []
    for overrides in per_item:
        overrides = dict(overrides)
        item_codec = overrides.pop("codec", codec)
        configs.append((item_codec, {**codec_kwargs, **overrides}))
    workers = resolve_workers(workers)
    with telemetry.span("runtime.map_compress", n_fields=len(fields),
                        workers=workers) as root:
        if workers <= 1:
            blobs = []
            for i, (data, (item_codec, kwargs)) in enumerate(
                    zip(fields, configs)):
                with telemetry.span("runtime.field", index=i,
                                    codec=item_codec,
                                    bytes_in=data.nbytes) as sp:
                    blob = get_compressor(item_codec, **kwargs
                                          ).compress(data)
                    sp.set(bytes_out=len(blob))
                blobs.append(blob)
        else:
            trace = telemetry.enabled()
            offset = _trace_offset()
            payloads = [(i, data, item_codec, kwargs, trace)
                        for i, (data, (item_codec, kwargs))
                        in enumerate(zip(fields, configs))]
            results = _run_batch(_compress_field_task, payloads, workers)
            _merge_worker_trace(results, offset)
            blobs = [blob for blob, _, _ in results]
        root.set(bytes_out=sum(len(b) for b in blobs))
    return blobs


def map_decompress(blobs, *, workers: int | str | None = None
                   ) -> list[np.ndarray]:
    """Decompress a batch of blobs, returning arrays in input order."""
    blobs = list(blobs)
    workers = resolve_workers(workers)
    with telemetry.span("runtime.map_decompress", n_fields=len(blobs),
                        workers=workers):
        if workers <= 1:
            out = []
            for i, blob in enumerate(blobs):
                with telemetry.span("runtime.field", index=i,
                                    bytes_in=len(blob)) as sp:
                    arr = decompress_any(blob)
                    sp.set(bytes_out=arr.nbytes)
                out.append(arr)
            return out
        trace = telemetry.enabled()
        offset = _trace_offset()
        payloads = [(i, blob, trace) for i, blob in enumerate(blobs)]
        results = _run_batch(_decompress_field_task, payloads, workers)
        _merge_worker_trace(results, offset)
        return [arr for arr, _, _ in results]
