"""Process-pool batch engine: parallel slabs, field maps, worker traces.

The GPU design this repo reproduces gets its speed from coarse-grained
independence — one thread block per Huffman chunk, one stream per field —
and the CPU substrate has the same independence sitting idle: every slab
of a :class:`~repro.streaming.SlabWriter` stream and every field of a
batch is a self-contained archive. This module exploits that with a
process pool:

* :func:`parallel_compress_slabs` / :func:`parallel_decompress_slabs`
  shard a field along axis 0 (the ``SlabWriter`` framing, bit for bit)
  and run the per-slab codec work across workers, reassembling **in
  order** so the output is byte-identical to the serial path;
* :func:`map_compress` / :func:`map_decompress` run many-field batches
  (the experiments harness, the field archive, the transfer pipeline);
* worker processes record their own telemetry spans and ship them back,
  where they are grafted into the parent trace
  (:func:`repro.telemetry.merge_spans`) — ``repro trace`` then shows the
  per-slab concurrency lanes by worker pid.

Everything is gated behind a ``workers=`` knob: the default (``None``)
stays serial, ``workers="auto"`` uses every core, and any explicit
integer pins the pool size. Serial requests never touch
``multiprocessing`` at all, so the default path is exactly the code that
existed before this module.

Workers warm their own caches exactly like the parent: the Huffman
codebook LRU *and* the compiled pass-plan LRU
(:mod:`repro.core.ginterp.plans`) are per-process, so a worker compiles
each slab geometry once on its first task and reuses it for the rest of
the batch (same-shape slabs all share one plan entry).

Two transports carry payloads across the process boundary:

* ``"shm"`` (the default wherever ``multiprocessing.shared_memory``
  exists) — a persistent worker-daemon pool
  (:mod:`repro.runtime.workers`) moving slabs and blobs through
  shared-memory arenas; only offsets/lengths and codec config are
  pickled. Daemons are long-lived, so their plan/codebook/orchestrator
  caches stay warm *across* requests, not just within one batch.
* ``"pickle"`` — the original per-call ``ProcessPoolExecutor`` round
  trip, kept as the portable fallback and selectable with
  ``transport="pickle"`` or ``REPRO_TRANSPORT=pickle``.

Both transports produce output byte-identical to the serial path; they
differ only in where the bytes travel and what the break-even size floor
is (:data:`SHM_MIN_ENCODE_BYTES` vs :data:`PARALLEL_MIN_ENCODE_BYTES`).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro import telemetry
from repro.telemetry import recorder
from repro.common.errors import ConfigError
from repro.registry import decompress_any, get_compressor
from repro.runtime import shm as shm_transport
from repro.runtime.workers import (BrokenWorkerPool, ShmPool,
                                   TransportStats, WorkerTaskError)
from repro.runtime.shm import ArenaError
from repro.streaming import SlabWriter, SlabReader, compress_slabs, \
    decompress_slabs, frame_slabs

__all__ = ["resolve_workers", "parallel_compress_slabs",
           "parallel_decompress_slabs", "map_compress", "map_decompress",
           "run_batch", "shutdown_pools", "serial_fallbacks",
           "reset_serial_fallbacks", "transport_kind", "transport_stats",
           "reset_transport_stats",
           "PARALLEL_MIN_ENCODE_BYTES", "PARALLEL_MIN_DECODE_BYTES",
           "SHM_MIN_ENCODE_BYTES", "SHM_MIN_DECODE_BYTES"]

#: fields smaller than this (raw bytes) compress serially even when a
#: pool is requested **on the pickle transport** — pickling the slabs
#: out and the blobs back costs more than the codec work saved
PARALLEL_MIN_ENCODE_BYTES = 8 * 1024 * 1024
#: streams smaller than this (compressed bytes) decompress serially on
#: the pickle transport. Decode is several times cheaper than encode,
#: and every decoded slab must be pickled back whole, so the break-even
#: point sits far above tiny benchmark streams (the 64^3 Nyx field's
#: ~50 KiB stream decoded 5x *slower* on a forced pool).
PARALLEL_MIN_DECODE_BYTES = 2 * 1024 * 1024
#: shm-transport break-even floors. The zero-copy hand-off removes the
#: per-payload serialize/deserialize tax the old floors priced in, so
#: the pool pays off roughly an order of magnitude earlier: one memcpy
#: in, one out, and a constant ~100 us of queue dispatch per request.
SHM_MIN_ENCODE_BYTES = 1 * 1024 * 1024
SHM_MIN_DECODE_BYTES = 256 * 1024


def transport_kind(transport: str | None = None) -> str:
    """Resolve the effective payload transport: ``"shm"`` or ``"pickle"``.

    Explicit ``transport=`` wins, then the ``REPRO_TRANSPORT``
    environment variable, then platform capability (shm wherever
    ``multiprocessing.shared_memory`` imports).
    """
    kind = transport or os.environ.get("REPRO_TRANSPORT") or None
    if kind is None:
        return "shm" if shm_transport.available() else "pickle"
    if kind not in ("shm", "pickle"):
        raise ConfigError(f"transport must be 'shm' or 'pickle', "
                          f"got {kind!r}")
    return kind


def _encode_floor(kind: str) -> int:
    return SHM_MIN_ENCODE_BYTES if kind == "shm" \
        else PARALLEL_MIN_ENCODE_BYTES


def _decode_floor(kind: str) -> int:
    return SHM_MIN_DECODE_BYTES if kind == "shm" \
        else PARALLEL_MIN_DECODE_BYTES


# -- serial-fallback accounting ---------------------------------------------

_fallback_lock = threading.Lock()
#: why a pooled request ran serially: below the IPC break-even size
#: floor (expected, tunable), a pool that could not be (re)spawned, or a
#: worker daemon that died mid-request (both environment problems
#: ``repro doctor`` should flag)
_fallback_counts = {"size_floor": 0, "spawn_failure": 0,
                    "worker_crash": 0}


def serial_fallbacks() -> dict[str, int]:
    """Counts of pooled requests that degraded to the serial path."""
    with _fallback_lock:
        return dict(_fallback_counts)


def reset_serial_fallbacks() -> None:
    with _fallback_lock:
        for k in _fallback_counts:
            _fallback_counts[k] = 0


def _note_fallback(reason: str, op: str, transport: str | None = None,
                   floor: int | None = None) -> None:
    with _fallback_lock:
        _fallback_counts[reason] += 1
    telemetry.incr(f"runtime.serial_fallback.{reason}")
    recorder.count(f"runtime.serial_fallback.{reason}")
    attrs = {"serial_fallback": reason, "serial_fallback_op": op}
    # ledger-visible context: which transport's floor/pool made the call
    if transport is not None:
        attrs["serial_fallback_transport"] = transport
    if floor is not None:
        attrs["serial_fallback_floor"] = int(floor)
    recorder.annotate(**attrs)


# -- transport accounting ----------------------------------------------------

_transport_lock = threading.Lock()
_transport_totals = {"shm_bytes": 0, "pickled_bytes": 0,
                     "copies_avoided": 0, "requests": 0}


def transport_stats() -> dict[str, int]:
    """Cumulative bytes moved across the process boundary, by mechanism.

    ``shm_bytes`` crossed through shared-memory arenas (one memcpy per
    direction, nothing serialized), ``pickled_bytes`` crossed the
    control/data queues serialized, ``copies_avoided`` counts payloads
    that skipped pickling entirely. The bench emitter snapshots this
    around its transport workload.
    """
    with _transport_lock:
        return dict(_transport_totals)


def reset_transport_stats() -> None:
    with _transport_lock:
        for k in _transport_totals:
            _transport_totals[k] = 0


def _note_transport(cap, kind: str, stats: TransportStats) -> None:
    with _transport_lock:
        _transport_totals["shm_bytes"] += stats.shm_bytes
        _transport_totals["pickled_bytes"] += stats.pickled_bytes
        _transport_totals["copies_avoided"] += stats.copies_avoided
        _transport_totals["requests"] += 1
    telemetry.incr("runtime.transport.shm_bytes", stats.shm_bytes)
    telemetry.incr("runtime.transport.pickled_bytes",
                   stats.pickled_bytes)
    cap.set(transport=kind, transport_shm_bytes=stats.shm_bytes,
            transport_pickled_bytes=stats.pickled_bytes,
            transport_copies_avoided=stats.copies_avoided)


# -- worker-count knob ------------------------------------------------------

def _usable_cpus() -> int:
    """CPUs this process may actually run on. ``os.cpu_count()`` reports
    the machine; CI runners and containers pin processes to a subset via
    affinity/cgroups, and sizing ``"auto"`` pools (or reporting
    ``cpu_count`` in the bench doc) off the machine-wide number is
    wrong on both sides of that split."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | str | None) -> int:
    """Normalize the ``workers=`` knob to a concrete pool size.

    ``None``/``0``/``1`` mean serial, ``"auto"`` means one worker per
    core, and a positive integer pins the size. Anything else is a
    configuration error.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return max(1, _usable_cpus())
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(f"workers must be None, 'auto', or an int, "
                          f"got {workers!r}")
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return max(1, workers)


# -- pool lifecycle ---------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}
_pool_lock = threading.Lock()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    with _pool_lock:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def _evict_pool(workers: int) -> None:
    with _pool_lock:
        pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


_SHM_POOLS: dict[int, ShmPool] = {}


def _get_shm_pool(workers: int) -> ShmPool:
    with _pool_lock:
        pool = _SHM_POOLS.get(workers)
        if pool is not None and not pool.alive():
            _SHM_POOLS.pop(workers, None)
            pool.shutdown()
            pool = None
        if pool is None:
            pool = ShmPool(workers)
            _SHM_POOLS[workers] = pool
        return pool


def _evict_shm_pool(workers: int) -> None:
    """Tear down a crashed daemon pool — this unlinks its arenas, so a
    killed worker never leaves ``/dev/shm`` segments behind."""
    with _pool_lock:
        pool = _SHM_POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown()


def shutdown_pools() -> None:
    """Shut down every cached worker pool (atexit-registered)."""
    with _pool_lock:
        pools = list(_POOLS.values())
        _POOLS.clear()
        shm_pools = list(_SHM_POOLS.values())
        _SHM_POOLS.clear()
    for pool in pools:
        pool.shutdown()
    for pool in shm_pools:
        pool.shutdown()


atexit.register(shutdown_pools)


# -- shm transport dispatch --------------------------------------------------

def _shm_attempt(op: str, workers: int, invoke):
    """Run one request on the daemon pool; returns ``(status, result)``.

    ``status`` tells the caller how to proceed: ``"ok"`` (result holds
    the :class:`~repro.runtime.workers.RequestResult`), ``"unavailable"``
    (no shm on this platform/env — use the pickle transport),
    ``"crashed"`` (a worker died; the pool was evicted and its arenas
    unlinked — run serial), or ``"task_error"`` (the work itself raised
    in a worker — re-run serial so the real exception surfaces with its
    original type).
    """
    try:
        pool = _get_shm_pool(workers)
    except ArenaError:
        telemetry.incr("runtime.transport.shm_unavailable")
        return "unavailable", None
    try:
        return "ok", invoke(pool)
    except BrokenWorkerPool:
        _evict_shm_pool(workers)
        _note_fallback("worker_crash", op, transport="shm")
        return "crashed", None
    except WorkerTaskError:
        return "task_error", None
    except ArenaError:  # pragma: no cover - /dev/shm exhausted mid-grow
        telemetry.incr("runtime.transport.shm_unavailable")
        return "unavailable", None


def _absorb_shm_result(cap, rr, offset_s: float):
    """Merge a shm request's worker traces/aux and account transport."""
    results = [(None, o.spans, o.pid, o.aux) for o in rr.outcomes]
    _merge_worker_trace(results, offset_s)
    _merge_worker_aux(cap, results)
    _note_transport(cap, "shm", rr.stats)
    return rr.final


def _run_batch(task, payloads: list, workers: int) -> list:
    """Run ``task`` over ``payloads`` on the pool, results in order.

    A pool broken by a dead worker (e.g. an OOM-killed child) is evicted
    and rebuilt once before the error propagates.
    """
    for attempt in (0, 1):
        pool = _get_pool(workers)
        try:
            return list(pool.map(task, payloads))
        except BrokenProcessPool:
            _evict_pool(workers)
            if attempt:
                raise
    raise AssertionError("unreachable")


def run_batch(task, payloads: list, workers: int | str | None) -> list:
    """Run a picklable ``task`` over ``payloads`` on the shared pool.

    Results come back in input order. This is the raw batch primitive the
    slab/field helpers are built on, exposed for other coarse-grained
    fan-outs (the lossless orchestrator's block-parallel GLE route).
    ``workers <= 1`` degrades to a plain in-process loop.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return [task(p) for p in payloads]
    return _run_batch(task, payloads, workers)


def _merge_worker_trace(results: list, offset_s: float) -> None:
    """Graft per-item worker spans back into the parent trace, stamped
    with the run's trace id so spans and ledger records stitch."""
    if not telemetry.enabled():
        return
    trace_id = recorder.current_trace_id()
    extra = {"trace_id": trace_id} if trace_id else {}
    for _, spans, pid, _aux in results:
        if spans:
            telemetry.merge_spans(spans, offset_s=offset_s,
                                  worker_pid=pid, **extra)


def _merge_worker_aux(cap, results: list) -> None:
    """Fold each worker task's cache/memory aux into the parent's
    flight-recorder capture (worker rings die with the worker; the aux
    dict is the part that must survive the process boundary)."""
    for _res, _spans, _pid, aux in results:
        cap.merge_worker(aux)


def _worker_baseline():
    """Cache-counter baseline at worker-task start (None when the
    recorder is opted out via ``REPRO_FLIGHT_RECORDER=0``)."""
    return recorder.worker_baseline() if recorder.enabled() else None


def _worker_aux(baseline):
    return recorder.worker_aux(baseline) if recorder.enabled() else None


def _trace_offset() -> float:
    """Parent-clock offset applied to worker spans (their epoch is 0)."""
    if not telemetry.enabled():
        return 0.0
    return time.perf_counter() - telemetry.get_registry().epoch


# -- worker entry points (module-level: payloads must survive pickle) -------

def _chunk_bounds(n_items: int, n_groups: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``(start, end)`` split of ``n_items``."""
    n_groups = max(1, min(n_groups, n_items))
    base, extra = divmod(n_items, n_groups)
    bounds = []
    start = 0
    for g in range(n_groups):
        end = start + base + (1 if g < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _compress_slab_task(payload):
    """One pool task = one contiguous *group* of slabs.

    Grouping amortizes pickle/dispatch overhead over the batch and lets
    each worker reuse its warm codec caches across its whole share. The
    payload's trace context is adopted for the task, so every run record
    the worker appends carries the parent run's ``trace_id``.
    """
    start, slabs, codec, eb, kwargs, trace, ctx = payload
    base = _worker_baseline()
    comp = get_compressor(codec, eb=eb, mode="abs", **kwargs)
    with recorder.trace_scope(ctx):
        if trace:
            with telemetry.recording() as reg:
                blobs = []
                for i, slab in enumerate(slabs):
                    with telemetry.span("slab.append", index=start + i,
                                        bytes_in=slab.nbytes) as sp:
                        blob = comp.compress(slab)
                        sp.set(bytes_out=len(blob))
                    blobs.append(blob)
            return blobs, reg.spans, os.getpid(), _worker_aux(base)
        telemetry.disable()
        return [comp.compress(slab) for slab in slabs], None, \
            os.getpid(), _worker_aux(base)


def _decompress_slab_task(payload):
    start, blobs, trace, ctx = payload
    base = _worker_baseline()
    with recorder.trace_scope(ctx):
        if trace:
            with telemetry.recording() as reg:
                out = []
                for i, blob in enumerate(blobs):
                    with telemetry.span("slab.read", index=start + i,
                                        bytes_in=len(blob)) as sp:
                        arr = decompress_any(blob)
                        sp.set(bytes_out=arr.nbytes)
                    out.append(arr)
            return out, reg.spans, os.getpid(), _worker_aux(base)
        telemetry.disable()
        return [decompress_any(blob) for blob in blobs], None, \
            os.getpid(), _worker_aux(base)


def _compress_field_task(payload):
    index, data, codec, kwargs, trace, ctx = payload
    base = _worker_baseline()
    with recorder.trace_scope(ctx):
        if trace:
            with telemetry.recording() as reg:
                with telemetry.span("runtime.field", index=index,
                                    codec=codec,
                                    bytes_in=data.nbytes) as sp:
                    blob = get_compressor(codec, **kwargs).compress(data)
                    sp.set(bytes_out=len(blob))
            return blob, reg.spans, os.getpid(), _worker_aux(base)
        telemetry.disable()
        return get_compressor(codec, **kwargs).compress(data), None, \
            os.getpid(), _worker_aux(base)


def _decompress_field_task(payload):
    index, blob, trace, ctx = payload
    base = _worker_baseline()
    with recorder.trace_scope(ctx):
        if trace:
            with telemetry.recording() as reg:
                with telemetry.span("runtime.field", index=index,
                                    bytes_in=len(blob)) as sp:
                    out = decompress_any(blob)
                    sp.set(bytes_out=out.nbytes)
            return out, reg.spans, os.getpid(), _worker_aux(base)
        telemetry.disable()
        return decompress_any(blob), None, os.getpid(), _worker_aux(base)


# -- parallel slab runtime --------------------------------------------------

def parallel_compress_slabs(data: np.ndarray, slab_planes: int, *,
                            workers: int | str | None = None,
                            min_parallel_bytes: int | None = None,
                            transport: str | None = None,
                            **writer_kwargs) -> bytes:
    """Slab-stream a field like :func:`repro.streaming.compress_slabs`,
    compressing slab groups concurrently across worker processes.

    The output is **byte-identical** to the serial path for any
    ``workers``/``transport`` value: slabs are cut at the same plane
    boundaries, compressed by the same deterministic codec
    configuration, and framed in their original order. Fields below
    ``min_parallel_bytes`` raw bytes (default: the active transport's
    floor, :data:`SHM_MIN_ENCODE_BYTES` or
    :data:`PARALLEL_MIN_ENCODE_BYTES`) take the serial path outright —
    IPC overhead dwarfs the codec work there.
    """
    workers = resolve_workers(workers)
    kind = transport_kind(transport)
    if min_parallel_bytes is None:
        min_parallel_bytes = _encode_floor(kind)
    if workers <= 1 or data.nbytes < min_parallel_bytes:
        if workers > 1:
            # a pooled request degraded to serial is still a run the
            # ledger should see — open the capture so the fallback
            # counter/annotation land in a record
            with recorder.capture("runtime.compress_slabs",
                                  workers=workers,
                                  bytes_in=data.nbytes) as cap:
                _note_fallback("size_floor", "compress_slabs",
                               transport=kind, floor=min_parallel_bytes)
                stream = compress_slabs(data, slab_planes,
                                        **writer_kwargs)
                cap.set(bytes_out=len(stream))
            return stream
        return compress_slabs(data, slab_planes, **writer_kwargs)
    if slab_planes < 1:
        raise ConfigError("slab_planes must be >= 1")
    if writer_kwargs.get("mode") == "rel" \
            and "value_range" not in writer_kwargs:
        writer_kwargs["value_range"] = float(data.max() - data.min())
    # the writer validates the config and resolves rel->abs exactly as the
    # serial path does; its (codec, eb, kwargs) config is the work spec
    writer = SlabWriter(**writer_kwargs)
    slabs = [np.ascontiguousarray(data[start:start + slab_planes])
             for start in range(0, data.shape[0], slab_planes)]
    if not slabs:
        raise ConfigError("no slabs appended")
    trace = telemetry.enabled()
    with recorder.capture("runtime.compress_slabs", workers=workers,
                          n_slabs=len(slabs)) as cap, \
            telemetry.span("runtime.compress_slabs", n_slabs=len(slabs),
                           workers=workers, bytes_in=data.nbytes) as sp:
        offset = _trace_offset()
        ctx = recorder.propagation_context()
        bounds = _chunk_bounds(len(slabs), workers)
        stream = None
        if kind == "shm":
            status, rr = _shm_attempt(
                "compress_slabs", workers,
                lambda pool: pool.compress_slabs(
                    slabs, bounds, writer.codec, writer.eb,
                    writer.codec_kwargs, trace, ctx,
                    consume=frame_slabs))
            if status == "ok":
                stream = _absorb_shm_result(cap, rr, offset)
            elif status == "unavailable":
                kind = "pickle"
            else:  # crashed / task_error -> serial (re-raises for real)
                stream = compress_slabs(data, slab_planes,
                                        **writer_kwargs)
        if stream is None:
            payloads = [(s, slabs[s:e], writer.codec, writer.eb,
                         writer.codec_kwargs, trace, ctx)
                        for s, e in bounds]
            try:
                results = _run_batch(_compress_slab_task, payloads,
                                     workers)
            except (BrokenProcessPool, OSError):
                _note_fallback("spawn_failure", "compress_slabs",
                               transport=kind)
                return compress_slabs(data, slab_planes, **writer_kwargs)
            _merge_worker_trace(results, offset)
            _merge_worker_aux(cap, results)
            stream = frame_slabs([blob for blobs, _, _, _ in results
                                  for blob in blobs])
            _note_transport(cap, "pickle", TransportStats(
                pickled_bytes=data.nbytes + len(stream),
                items=len(slabs)))
        sp.set(bytes_out=len(stream))
        cap.set(bytes_in=data.nbytes, bytes_out=len(stream))
    return stream


def parallel_decompress_slabs(stream: bytes, *,
                              workers: int | str | None = None,
                              min_parallel_bytes: int | None = None,
                              transport: str | None = None
                              ) -> np.ndarray:
    """Reassemble a slab stream, decoding slab groups concurrently.

    Streams below ``min_parallel_bytes`` compressed bytes (default: the
    active transport's floor, :data:`SHM_MIN_DECODE_BYTES` or
    :data:`PARALLEL_MIN_DECODE_BYTES`) decode serially regardless of
    ``workers`` — decode is cheap relative to moving every decoded slab
    back across the process boundary.
    """
    workers = resolve_workers(workers)
    kind = transport_kind(transport)
    if min_parallel_bytes is None:
        min_parallel_bytes = _decode_floor(kind)
    if workers <= 1 or len(stream) < min_parallel_bytes:
        if workers > 1:
            with recorder.capture("runtime.decompress_slabs",
                                  workers=workers,
                                  bytes_in=len(stream)) as cap:
                _note_fallback("size_floor", "decompress_slabs",
                               transport=kind, floor=min_parallel_bytes)
                out = decompress_slabs(stream)
                cap.set(bytes_out=out.nbytes)
            return out
        return decompress_slabs(stream)
    reader = SlabReader(stream)
    trace = telemetry.enabled()
    with recorder.capture("runtime.decompress_slabs", workers=workers,
                          n_slabs=len(reader)) as cap, \
            telemetry.span("runtime.decompress_slabs", n_slabs=len(reader),
                           workers=workers, bytes_in=len(stream)) as sp:
        offset = _trace_offset()
        ctx = recorder.propagation_context()
        bounds = _chunk_bounds(len(reader), workers)
        out = None
        if kind == "shm":
            spans = [reader.slab_span(i) for i in range(len(reader))]
            status, rr = _shm_attempt(
                "decompress_slabs", workers,
                lambda pool: pool.decompress_slabs(
                    stream, spans, bounds, trace, ctx,
                    consume=lambda arrs: np.concatenate(arrs, axis=0)))
            if status == "ok":
                out = _absorb_shm_result(cap, rr, offset)
            elif status == "unavailable":
                kind = "pickle"
            else:
                out = decompress_slabs(stream)
        if out is None:
            blobs = [reader.slab_bytes(i) for i in range(len(reader))]
            payloads = [(s, blobs[s:e], trace, ctx) for s, e in bounds]
            try:
                results = _run_batch(_decompress_slab_task, payloads,
                                     workers)
            except (BrokenProcessPool, OSError):
                _note_fallback("spawn_failure", "decompress_slabs",
                               transport=kind)
                return decompress_slabs(stream)
            _merge_worker_trace(results, offset)
            _merge_worker_aux(cap, results)
            out = np.concatenate([arr for arrs, _, _, _ in results
                                  for arr in arrs], axis=0)
            _note_transport(cap, "pickle", TransportStats(
                pickled_bytes=len(stream) + out.nbytes,
                items=len(reader)))
        sp.set(bytes_out=out.nbytes)
        cap.set(bytes_in=len(stream), bytes_out=out.nbytes)
    return out


# -- many-field batches -----------------------------------------------------

def map_compress(fields, codec: str = "cuszi", *,
                 workers: int | str | None = None,
                 per_item: list[dict] | None = None,
                 transport: str | None = None,
                 **codec_kwargs) -> list[bytes]:
    """Compress a batch of fields, returning blobs in input order.

    ``per_item`` optionally overrides the codec configuration of single
    items (a dict per field; an item dict may also override ``"codec"``).
    With ``workers`` serial this is a plain loop — same results, same
    spans — so callers can thread the knob through unconditionally.
    """
    fields = list(fields)
    per_item = list(per_item) if per_item is not None else [{}] * len(fields)
    if len(per_item) != len(fields):
        raise ConfigError(f"per_item has {len(per_item)} entries for "
                          f"{len(fields)} fields")
    configs = []
    for overrides in per_item:
        overrides = dict(overrides)
        item_codec = overrides.pop("codec", codec)
        configs.append((item_codec, {**codec_kwargs, **overrides}))
    workers = resolve_workers(workers)

    def _serial() -> list[bytes]:
        blobs = []
        for i, (data, (item_codec, kwargs)) in enumerate(
                zip(fields, configs)):
            with telemetry.span("runtime.field", index=i,
                                codec=item_codec,
                                bytes_in=data.nbytes) as sp:
                blob = get_compressor(item_codec, **kwargs
                                      ).compress(data)
                sp.set(bytes_out=len(blob))
            blobs.append(blob)
        return blobs

    with recorder.capture("runtime.map_compress", workers=workers,
                          n_fields=len(fields)) as cap, \
            telemetry.span("runtime.map_compress", n_fields=len(fields),
                           workers=workers) as root:
        if workers <= 1:
            blobs = _serial()
        else:
            kind = transport_kind(transport)
            trace = telemetry.enabled()
            offset = _trace_offset()
            ctx = recorder.propagation_context()
            blobs = None
            if kind == "shm":
                bounds = _chunk_bounds(len(fields), workers)
                status, rr = _shm_attempt(
                    "map_compress", workers,
                    lambda pool: pool.compress_fields(
                        fields, configs, bounds, trace, ctx,
                        consume=lambda views: [bytes(v) for v in views]))
                if status == "ok":
                    blobs = _absorb_shm_result(cap, rr, offset)
                elif status in ("crashed", "task_error"):
                    blobs = _serial()
            if blobs is None:
                payloads = [(i, data, item_codec, kwargs, trace, ctx)
                            for i, (data, (item_codec, kwargs))
                            in enumerate(zip(fields, configs))]
                try:
                    results = _run_batch(_compress_field_task, payloads,
                                         workers)
                except (BrokenProcessPool, OSError):
                    _note_fallback("spawn_failure", "map_compress",
                                   transport="pickle")
                    results = None
                if results is None:
                    blobs = _serial()
                else:
                    _merge_worker_trace(results, offset)
                    _merge_worker_aux(cap, results)
                    blobs = [blob for blob, _, _, _ in results]
                    _note_transport(cap, "pickle", TransportStats(
                        pickled_bytes=sum(d.nbytes for d in fields)
                        + sum(len(b) for b in blobs),
                        items=len(fields)))
        root.set(bytes_out=sum(len(b) for b in blobs))
        cap.set(bytes_in=sum(d.nbytes for d in fields),
                bytes_out=sum(len(b) for b in blobs))
    return blobs


def map_decompress(blobs, *, workers: int | str | None = None,
                   transport: str | None = None) -> list[np.ndarray]:
    """Decompress a batch of blobs, returning arrays in input order."""
    blobs = list(blobs)
    workers = resolve_workers(workers)

    def _serial() -> list[np.ndarray]:
        out = []
        for i, blob in enumerate(blobs):
            with telemetry.span("runtime.field", index=i,
                                bytes_in=len(blob)) as sp:
                arr = decompress_any(blob)
                sp.set(bytes_out=arr.nbytes)
            out.append(arr)
        return out

    with recorder.capture("runtime.map_decompress", workers=workers,
                          n_fields=len(blobs)) as cap, \
            telemetry.span("runtime.map_decompress", n_fields=len(blobs),
                           workers=workers):
        cap.set(bytes_in=sum(len(b) for b in blobs))
        if workers <= 1:
            out = _serial()
        else:
            kind = transport_kind(transport)
            trace = telemetry.enabled()
            offset = _trace_offset()
            ctx = recorder.propagation_context()
            out = None
            if kind == "shm":
                bounds = _chunk_bounds(len(blobs), workers)
                status, rr = _shm_attempt(
                    "map_decompress", workers,
                    lambda pool: pool.decompress_fields(
                        blobs, bounds, trace, ctx,
                        # arena-backed views die at the next request;
                        # np.array copies each result out exactly once
                        consume=lambda arrs: [np.array(a)
                                              for a in arrs]))
                if status == "ok":
                    out = _absorb_shm_result(cap, rr, offset)
                elif status in ("crashed", "task_error"):
                    out = _serial()
            if out is None:
                payloads = [(i, blob, trace, ctx)
                            for i, blob in enumerate(blobs)]
                try:
                    results = _run_batch(_decompress_field_task,
                                         payloads, workers)
                except (BrokenProcessPool, OSError):
                    _note_fallback("spawn_failure", "map_decompress",
                                   transport="pickle")
                    results = None
                if results is None:
                    out = _serial()
                else:
                    _merge_worker_trace(results, offset)
                    _merge_worker_aux(cap, results)
                    out = [arr for arr, _, _, _ in results]
                    _note_transport(cap, "pickle", TransportStats(
                        pickled_bytes=sum(len(b) for b in blobs)
                        + sum(a.nbytes for a in out),
                        items=len(blobs)))
        cap.set(bytes_out=sum(a.nbytes for a in out))
        return out
