"""Out-of-core tiled compression: fields larger than RAM, bounded RSS.

The real SDRBench shapes (449^3 RTM timesteps, 512^2 x 512 Miranda) do
not fit the resident-set budgets of shared nodes, and the in-memory
paths (:func:`repro.streaming.compress_slabs`, the runtime pool) all
start by materializing the whole field. This module keeps the field on
disk: the input is **memory-mapped**, one axis-0 tile at a time is
faulted in, compressed, and its blob appended to the output file through
:class:`repro.streaming.SlabStreamWriter` — so peak RSS is bounded by
one tile plus codec workspace, independent of field size.

The output is the ordinary ``RPST`` slab stream, **byte-identical** to
``compress_slabs(field, slab_planes=tile_planes, ...)`` over the same
data — every existing consumer (``decompress_slabs``,
:class:`~repro.streaming.SlabReader`, the parallel runtime) reads it
unchanged, and :func:`tiled_decompress_file` reverses it with the same
bounded-RSS discipline (one decoded tile in memory, appended to the
output file).

``mode="rel"`` needs the global value range; a streaming min/max pass
computes it tile-by-tile in the array's dtype, reproducing
``float(data.max() - data.min())`` bit-for-bit so the resolved absolute
bound — and therefore the stream — matches the in-memory path.
"""

from __future__ import annotations

import math
import mmap
import os

import numpy as np

from repro import telemetry
from repro.telemetry import recorder
from repro.common.errors import ConfigError
from repro.registry import decompress_any, get_compressor
from repro.streaming import SlabReader, SlabStreamWriter, SlabWriter

__all__ = ["tiled_compress_file", "tiled_decompress_file",
           "resolve_tile_planes", "WORKSPACE_FACTOR"]

#: codec working-set multiple of the raw tile: quant codes, outlier
#: streams, Huffman buffers and the container copy all scale with the
#: tile, and ~8x raw is a conservative envelope for the cuszi pipeline
WORKSPACE_FACTOR = 8


def resolve_tile_planes(shape: tuple, dtype, memory_budget_bytes: int,
                        workspace_factor: int = WORKSPACE_FACTOR) -> int:
    """Planes per tile so ``tile_bytes * workspace_factor`` fits the
    budget (always at least one plane — a single plane that blows the
    budget is a configuration problem the RSS test will surface, not
    something to silently split)."""
    if memory_budget_bytes <= 0:
        raise ConfigError("memory budget must be positive")
    plane_elems = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
    plane_bytes = max(1, plane_elems * np.dtype(dtype).itemsize)
    planes = memory_budget_bytes // (plane_bytes * workspace_factor)
    return int(max(1, min(planes, shape[0])))


def _streaming_value_range(data: np.memmap, tile_planes: int) -> float:
    """Global ``float(max - min)`` without loading the field: running
    min/max kept as scalars of the array dtype, subtracted in that dtype
    — bit-identical to the in-memory resolution."""
    gmin = gmax = None
    for start in range(0, data.shape[0], tile_planes):
        tile = data[start:start + tile_planes]
        tmin, tmax = tile.min(), tile.max()
        gmin = tmin if gmin is None else min(gmin, tmin)
        gmax = tmax if gmax is None else max(gmax, tmax)
    return float(gmax - gmin)


def tiled_compress_file(in_path, shape: tuple, *, out_path,
                        dtype=np.float32,
                        tile_planes: int | None = None,
                        memory_budget_bytes: int | None = None,
                        codec: str = "cuszi", eb: float = 1e-3,
                        mode: str = "abs",
                        value_range: float | None = None,
                        **codec_kwargs) -> dict:
    """Compress a raw on-disk field into a slab stream, out of core.

    ``in_path`` holds the field as flat binary in C order (``.raw`` /
    ``ndarray.tofile`` layout). Exactly one of ``tile_planes`` or
    ``memory_budget_bytes`` picks the tile size. Returns a summary dict
    (``n_tiles``, ``tile_planes``, ``bytes_in``, ``bytes_out``,
    ``value_range`` when resolved).
    """
    shape = tuple(int(s) for s in shape)
    if not shape or any(s <= 0 for s in shape):
        raise ConfigError(f"invalid field shape {shape}")
    dtype = np.dtype(dtype)
    if tile_planes is None:
        if memory_budget_bytes is None:
            raise ConfigError(
                "tiled compress needs tile_planes or memory_budget_bytes")
        tile_planes = resolve_tile_planes(shape, dtype,
                                          memory_budget_bytes)
    if tile_planes < 1:
        raise ConfigError("tile_planes must be >= 1")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    actual = os.path.getsize(in_path)
    if actual != expected:
        raise ConfigError(
            f"{in_path}: {actual} bytes on disk, shape {shape} "
            f"({dtype}) needs {expected}")

    data = np.memmap(in_path, dtype=dtype, mode="r", shape=shape)
    try:
        if mode == "rel" and value_range is None:
            value_range = _streaming_value_range(data, tile_planes)
        # SlabWriter validates the config and resolves rel->abs exactly
        # as the in-memory path; its (codec, eb, kwargs) is the work spec
        writer = SlabWriter(codec=codec, eb=eb, mode=mode,
                            value_range=value_range, **codec_kwargs)
        n_tiles = math.ceil(shape[0] / tile_planes)
        with recorder.capture("runtime.tiled_compress", codec=codec,
                              n_tiles=n_tiles, tile_planes=tile_planes,
                              bytes_in=expected) as cap, \
                telemetry.span("runtime.tiled_compress",
                               n_tiles=n_tiles, tile_planes=tile_planes,
                               bytes_in=expected) as sp, \
                open(out_path, "wb") as fp:
            stream = SlabStreamWriter(fp, n_tiles)
            for i, start in enumerate(range(0, shape[0], tile_planes)):
                tile = np.ascontiguousarray(
                    data[start:start + tile_planes])
                with telemetry.span("slab.append", index=i,
                                    bytes_in=tile.nbytes) as tsp:
                    blob = get_compressor(
                        writer.codec, eb=writer.eb, mode="abs",
                        **writer.codec_kwargs).compress(tile)
                    tsp.set(bytes_out=len(blob))
                stream.append_blob(blob)
                del tile, blob  # the RSS bound: nothing outlives its tile
            stream.close()
            sp.set(bytes_out=stream.bytes_out)
            cap.set(bytes_out=stream.bytes_out)
            if memory_budget_bytes is not None:
                cap.set(memory_budget_bytes=int(memory_budget_bytes))
    finally:
        del data  # drop the mapping promptly (memmap closes on gc)
    out = {"n_tiles": n_tiles, "tile_planes": int(tile_planes),
           "bytes_in": expected, "bytes_out": stream.bytes_out,
           "shape": shape, "dtype": dtype.str}
    if mode == "rel":
        out["value_range"] = float(value_range)
    return out


def tiled_decompress_file(stream_path, out_path) -> dict:
    """Decode a slab stream to a raw on-disk field, out of core.

    The stream file is memory-mapped (the slab table is parsed without
    materializing it) and tiles are decoded one at a time, each appended
    to ``out_path`` and dropped — peak RSS is one compressed tile plus
    its decoded planes. Returns ``shape``/``dtype``/``n_tiles`` so the
    caller can re-map the output.
    """
    with open(stream_path, "rb") as f, \
            mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ) as mm:
        reader = SlabReader(mm)
        n_tiles = len(reader)
        planes = 0
        tail = None
        dtype = None
        bytes_out = 0
        with recorder.capture("runtime.tiled_decompress",
                              n_tiles=n_tiles,
                              bytes_in=len(mm)) as cap, \
                telemetry.span("runtime.tiled_decompress",
                               n_tiles=n_tiles,
                               bytes_in=len(mm)) as sp, \
                open(out_path, "wb") as out_fp:
            for i in range(n_tiles):
                tile = reader.read_slab(i)
                if tail is None:
                    tail, dtype = tile.shape[1:], tile.dtype
                elif tile.shape[1:] != tail:
                    raise ConfigError(
                        f"tile {i} cross-section {tile.shape[1:]} != "
                        f"first tile's {tail}")
                planes += tile.shape[0]
                bytes_out += tile.nbytes
                np.ascontiguousarray(tile).tofile(out_fp)
                del tile
            sp.set(bytes_out=bytes_out)
            cap.set(bytes_out=bytes_out)
    return {"shape": (planes, *tail), "dtype": dtype.str,
            "n_tiles": n_tiles, "bytes_out": bytes_out}
