"""Shared-memory slab arenas: the zero-copy transport substrate.

The pickle transport the PR-2 pool used serialized every slab out to the
worker and every blob back — four buffer copies plus two pipe traversals
per payload, which is why small-stream parallel decompress benched *6.7x
slower* than serial. This module provides the replacement substrate: a
named ``multiprocessing.shared_memory`` segment (an :class:`Arena`) that
both sides map once, so a payload crosses the process boundary as **one**
``memcpy`` into the arena and an ``(offset, length)`` pair in a tiny
control message. Nothing is pickled but control metadata.

Layout of one arena segment::

    +--------+------------------------------------------------------+
    | header |  data ...                                 (bump-grows) |
    +--------+------------------------------------------------------+
    0        64
    [0:8)  u64 cursor — next free offset, 64-byte aligned

* the **parent** owns every arena: it creates, grows and unlinks them
  (workers only ever attach);
* allocation is a bump cursor. The parent resets it between requests
  (requests are serialized by the pool), and workers reserving result
  space advance it under a cross-process lock;
* a reservation that does not fit returns ``None`` — callers degrade to
  shipping that one payload inline through the control queue, so a
  too-small arena is a throughput issue, never a correctness one.

Segment lifecycle is the dangerous part: an abnormally killed process
must not leave ``/dev/shm`` littered. Every created arena registers in a
module-level set that an ``atexit`` hook drains, and the pool
additionally unlinks arenas on worker-crash recovery (see
:mod:`repro.runtime.workers`).
"""

from __future__ import annotations

import atexit
import os
import struct
import threading

__all__ = ["Arena", "ArenaError", "available", "live_arena_names",
           "unlink_all", "HEADER_BYTES", "ALIGN", "NAME_PREFIX"]

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - ancient/exotic platform
    _shm = None

#: bytes reserved at the start of every segment for the bump cursor
HEADER_BYTES = 64
#: allocation granularity — keeps ndarray views cache-line aligned
ALIGN = 64
#: /dev/shm name prefix for every arena this process creates; the leak
#: test (and an operator's ``ls /dev/shm``) can spot ours at a glance
NAME_PREFIX = "repro-arena"

_CURSOR = struct.Struct("<Q")


class ArenaError(RuntimeError):
    """Shared-memory transport is unavailable or an arena op failed."""


def available() -> bool:
    """Can this platform back the shm transport at all?"""
    return _shm is not None


# -- leak protection ---------------------------------------------------------

_live_lock = threading.Lock()
_live: dict[str, "Arena"] = {}


def _track(arena: "Arena") -> None:
    with _live_lock:
        _live[arena.name] = arena


def _untrack(name: str) -> None:
    with _live_lock:
        _live.pop(name, None)


def live_arena_names() -> list[str]:
    """Names of every arena this process created and has not unlinked."""
    with _live_lock:
        return sorted(_live)


def unlink_all() -> None:
    """Unlink every still-live arena (the atexit safety net)."""
    with _live_lock:
        arenas = list(_live.values())
        _live.clear()
    for arena in arenas:
        arena.destroy(_untrack_self=False)


atexit.register(unlink_all)


def _reset_after_fork() -> None:
    # A forked child inherits the parent's tracked Arena objects (owner
    # flag included) — but the segments belong to the parent, and the
    # child's atexit must not unlink them out from under it.
    global _live_lock
    _live_lock = threading.Lock()
    _live.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def _round_up(n: int, align: int = ALIGN) -> int:
    return (n + align - 1) // align * align


class Arena:
    """One named shared-memory segment with a bump allocator.

    Created by the parent (:meth:`create`), attached by workers
    (:meth:`attach`). The owner unlinks; attachers only close their
    mapping. All offsets handed out are :data:`ALIGN`-aligned and point
    past the header.
    """

    __slots__ = ("_seg", "name", "size", "owner")

    def __init__(self, seg, owner: bool):
        self._seg = seg
        self.name = seg.name
        self.size = seg.size
        self.owner = owner

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, nbytes: int, tag: str = "a") -> "Arena":
        """Create (and own) a fresh segment of at least ``nbytes`` of
        usable data space."""
        if _shm is None:
            raise ArenaError("multiprocessing.shared_memory unavailable")
        total = _round_up(max(int(nbytes), ALIGN) + HEADER_BYTES)
        name = (f"{NAME_PREFIX}-{os.getpid()}-{tag}-"
                f"{os.urandom(4).hex()}")
        try:
            seg = _shm.SharedMemory(name=name, create=True, size=total)
        except OSError as exc:  # pragma: no cover - /dev/shm full, perms
            raise ArenaError(f"cannot create shm segment: {exc}") from exc
        arena = cls(seg, owner=True)
        arena.reset()
        _track(arena)
        return arena

    @classmethod
    def attach(cls, name: str) -> "Arena":
        """Map an existing segment (worker side; never unlinks)."""
        if _shm is None:
            raise ArenaError("multiprocessing.shared_memory unavailable")
        try:
            seg = _shm.SharedMemory(name=name)
        except (OSError, FileNotFoundError) as exc:
            raise ArenaError(f"cannot attach shm segment {name!r}: "
                             f"{exc}") from exc
        # NOTE: attaching re-registers the name with the resource
        # tracker, but pool workers inherit the *parent's* tracker
        # (fork and spawn both forward it), where registration is a
        # set-add — idempotent. Do not unregister here: that would
        # remove the parent's own registration from the shared tracker
        # and corrupt its cache when the parent later unlinks.
        return cls(seg, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        try:
            self._seg.close()
        except (OSError, BufferError):  # pragma: no cover - exported view
            pass

    def destroy(self, _untrack_self: bool = True) -> None:
        """Close and — when owner — unlink the segment."""
        self.close()
        if self.owner:
            try:
                self._seg.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass                              # already gone
            if _untrack_self:
                _untrack(self.name)

    # -- allocation ---------------------------------------------------------

    @property
    def buf(self) -> memoryview:
        return self._seg.buf

    @property
    def data_bytes(self) -> int:
        """Usable data capacity (past the header)."""
        return self.size - HEADER_BYTES

    def reset(self) -> None:
        """Rewind the bump cursor (owner, between serialized requests)."""
        _CURSOR.pack_into(self._seg.buf, 0, HEADER_BYTES)

    def cursor(self) -> int:
        return _CURSOR.unpack_from(self._seg.buf, 0)[0]

    def reserve(self, nbytes: int, lock=None) -> int | None:
        """Reserve ``nbytes`` of arena space; returns the offset or
        ``None`` when the segment is full.

        ``lock`` (a ``multiprocessing.Lock``) guards the cursor when
        concurrent workers allocate from the same arena; the parent's
        serialized writes may pass ``None``.
        """
        need = _round_up(int(nbytes))
        if lock is not None:
            if not lock.acquire(timeout=10.0):  # pragma: no cover -
                raise ArenaError("arena cursor lock timed out")  # wedged
        try:
            off = self.cursor()
            if off + need > self.size:
                return None
            _CURSOR.pack_into(self._seg.buf, 0, off + need)
            return off
        finally:
            if lock is not None:
                lock.release()

    def write(self, data, lock=None) -> int | None:
        """Reserve space for and copy in one bytes-like payload."""
        view = memoryview(data).cast("B")
        off = self.reserve(view.nbytes, lock=lock)
        if off is None:
            return None
        self._seg.buf[off:off + view.nbytes] = view
        return off

    def view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy window into the arena (valid until reset/close)."""
        return self._seg.buf[offset:offset + int(nbytes)]
