"""Persistent worker daemons over shared-memory arenas.

The PR-2 pool paid two taxes on every request: per-call pickle transport
(slabs out, blobs back) and cold per-task process state. This module
replaces both. A :class:`ShmPool` holds long-lived worker processes that
loop on a control queue; payloads cross through two :class:`Arena`
segments (:mod:`repro.runtime.shm`) — the parent writes inputs into the
input arena, workers compress/decompress **in place** and write results
into the output arena under a cross-process cursor lock, and only small
control tuples (offsets, lengths, codec config, trace context) are ever
pickled.

Because workers are daemons, not per-batch forks, their per-process
caches — compiled interpolation plans, Huffman codebooks/decode tables,
the lossless orchestrator's plan cache — stay **warm across requests and
batches**. Each task ships its cache-counter deltas back on the existing
aux channel; the pool accumulates them and registers a
``runtime.workers`` provider in the telemetry cache registry
(:mod:`repro.telemetry.caches`), so worker-resident cache behaviour
shows up in ``repro doctor``, ``repro_cache_*`` metrics and per-run
ledger records exactly like parent-resident caches.

Failure discipline:

* a worker that dies (OOM kill, segfault) surfaces as
  :class:`BrokenWorkerPool` — the pool tears down, **unlinks its
  arenas**, and the caller degrades to the serial path;
* a worker *task* that raises surfaces as :class:`WorkerTaskError` — the
  caller re-runs serially, which reproduces the real exception with its
  original type;
* an output arena too small for a result degrades that one payload to
  inline queue transport (counted as ``pickled_bytes``), never an error.

Requests are serialized by a pool-level lock: concurrency comes from the
worker processes, and any number of application threads can share one
pool safely.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field

import numpy as np

import multiprocessing as mp

from repro.runtime.shm import Arena, ArenaError, available as shm_available

__all__ = ["ShmPool", "BrokenWorkerPool", "WorkerTaskError",
           "DEFAULT_INPUT_BYTES", "DEFAULT_OUTPUT_BYTES",
           "DEFAULT_WORKER_CACHE_LIMIT", "pool_cache_stats"]

#: initial arena sizes; both grow geometrically on demand
DEFAULT_INPUT_BYTES = 8 << 20
DEFAULT_OUTPUT_BYTES = 8 << 20

#: first-guess decoded/compressed expansion for sizing the decompress
#: output arena before any ratio has been observed
_INITIAL_DECODE_RATIO = 24.0

#: seconds between result polls (each poll re-checks worker liveness)
_POLL_S = 0.2

#: per-worker entry floor applied to the worker-resident LRUs (compiled
#: plans, autotune profiles); ``REPRO_WORKER_CACHE_LIMIT`` overrides.
#: The old implicit limits (16 plans / 32 profiles) thrashed on
#: many-field batches — the committed bench showed 19 evictions at a
#: 43% hit ratio — while the entries themselves are small
DEFAULT_WORKER_CACHE_LIMIT = 64


def _worker_cache_limit() -> int:
    raw = os.environ.get("REPRO_WORKER_CACHE_LIMIT", "")
    try:
        limit = int(raw)
    except ValueError:
        return DEFAULT_WORKER_CACHE_LIMIT
    return max(1, limit)


class BrokenWorkerPool(RuntimeError):
    """A worker process died; the pool is no longer usable."""


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker (the work itself failed)."""


# -- worker process side -----------------------------------------------------

#: worker-side arena attach cache, name -> Arena
_attached: dict[str, Arena] = {}


def _attach(name: str, active: tuple) -> Arena:
    for stale in [n for n in _attached if n not in active]:
        _attached.pop(stale).close()
    arena = _attached.get(name)
    if arena is None:
        arena = _attached[name] = Arena.attach(name)
    return arena


def _in_array(arena: Arena, off: int, shape, dtype) -> np.ndarray:
    """Zero-copy ndarray view over arena-resident input bytes."""
    return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                      buffer=arena.buf, offset=off)


def _ship_bytes(out: Arena, lock, blob: bytes):
    """Result blob -> arena when it fits, else inline ('r') fallback."""
    off = out.reserve(len(blob), lock=lock)
    if off is None:
        return ("r", blob)
    out.buf[off:off + len(blob)] = blob
    return ("s", off, len(blob))


def _ship_array(out: Arena, lock, arr: np.ndarray):
    arr = np.ascontiguousarray(arr)
    off = out.reserve(arr.nbytes, lock=lock)
    if off is None:
        return ("r", arr)
    dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=out.buf,
                     offset=off)
    np.copyto(dst, arr)
    return ("s", off, arr.nbytes, arr.shape, arr.dtype.str)


#: raw codebook-length blobs this worker already expanded into decode
#: tables/LUTs — warm hints are idempotent, so re-sends are skipped
_warmed_codebooks: set[bytes] = set()


def _warm_from_ctrl(ctrl: dict) -> None:
    """Expand parent-shipped warm codebook hints into this worker's
    decode-table and LUT caches before the task body runs.

    The parent piggybacks its most-recently-used Huffman length vectors
    on every task's control dict (they are ~1 KiB each), so a freshly
    spawned daemon builds its decode surfaces once, here, instead of
    paying the table+LUT build inside the first decode request."""
    hints = ctrl.get("warm_lengths")
    if not hints:
        return
    from repro.huffman.canonical import warm_tables
    fresh = [blob for blob in hints if blob not in _warmed_codebooks]
    if fresh:
        warm_tables(fresh)
        _warmed_codebooks.update(fresh)


#: highest cache-limit hint already applied in this worker process
_applied_cache_limit = 0


def _apply_cache_limits(ctrl: dict) -> None:
    """Raise this worker's LRU entry limits to the pool-configured floor.

    Only ever raises (``max`` with the current limit) and only re-applies
    when the hint grows, so the hot path pays one integer compare."""
    global _applied_cache_limit
    limit = int(ctrl.get("cache_limit") or 0)
    if limit <= _applied_cache_limit:
        return
    # NB: the package re-exports a *function* named ``autotune`` that
    # shadows the submodule attribute, so resolve the module explicitly
    import importlib
    autotune_mod = importlib.import_module("repro.core.ginterp.autotune")
    from repro.core.ginterp import plans
    plans.set_plan_cache_limit(
        max(plans.plan_cache_stats()["limit"], limit))
    autotune_mod.set_autotune_cache_limit(
        max(autotune_mod.autotune_cache_stats()["limit"], limit))
    _applied_cache_limit = limit


def _run_task(kind: str, ctrl: dict, lock):
    from repro import telemetry
    from repro.telemetry import recorder
    from repro.registry import decompress_any, get_compressor

    active = (ctrl["in_name"], ctrl["out_name"])
    arena_in = _attach(ctrl["in_name"], active)
    arena_out = _attach(ctrl["out_name"], active)
    trace = ctrl["trace"]
    base = recorder.worker_baseline() if recorder.enabled() else None
    _apply_cache_limits(ctrl)
    _warm_from_ctrl(ctrl)

    def _execute():
        meta = []
        if kind == "compress_slabs":
            comp = get_compressor(ctrl["codec"], eb=ctrl["eb"],
                                  mode="abs", **ctrl["kwargs"])
            start = ctrl["start"]
            for i, (off, shape, dtype) in enumerate(ctrl["items"]):
                slab = _in_array(arena_in, off, shape, dtype)
                with telemetry.span("slab.append", index=start + i,
                                    bytes_in=slab.nbytes) as sp:
                    blob = comp.compress(slab)
                    sp.set(bytes_out=len(blob))
                meta.append(_ship_bytes(arena_out, lock, blob))
        elif kind == "decompress_slabs":
            start = ctrl["start"]
            for i, (off, nbytes) in enumerate(ctrl["items"]):
                blob = bytes(arena_in.view(off, nbytes))
                with telemetry.span("slab.read", index=start + i,
                                    bytes_in=nbytes) as sp:
                    arr = decompress_any(blob)
                    sp.set(bytes_out=arr.nbytes)
                meta.append(_ship_array(arena_out, lock, arr))
        elif kind == "compress_fields":
            for index, off, shape, dtype, codec, kwargs in ctrl["items"]:
                data = _in_array(arena_in, off, shape, dtype)
                with telemetry.span("runtime.field", index=index,
                                    codec=codec,
                                    bytes_in=data.nbytes) as sp:
                    blob = get_compressor(codec, **kwargs).compress(data)
                    sp.set(bytes_out=len(blob))
                meta.append(_ship_bytes(arena_out, lock, blob))
        elif kind == "decompress_fields":
            for index, off, nbytes in ctrl["items"]:
                blob = bytes(arena_in.view(off, nbytes))
                with telemetry.span("runtime.field", index=index,
                                    bytes_in=nbytes) as sp:
                    arr = decompress_any(blob)
                    sp.set(bytes_out=arr.nbytes)
                meta.append(_ship_array(arena_out, lock, arr))
        else:  # pragma: no cover - parent/worker version skew
            raise ValueError(f"unknown task kind {kind!r}")
        return meta

    with recorder.trace_scope(ctrl.get("tctx")):
        if trace:
            with telemetry.recording() as reg:
                meta = _execute()
            spans = reg.spans
        else:
            telemetry.disable()
            meta = _execute()
            spans = None
    aux = recorder.worker_aux(base) if recorder.enabled() else None
    return meta, spans, aux


def _worker_main(task_q, result_q, out_lock) -> None:
    """Daemon loop: pull tasks until the stop sentinel arrives.

    ``out_lock`` is the cross-process cursor lock for the output arena —
    inherited at process creation because ``multiprocessing`` locks
    cannot travel through a queue.
    """
    pid = os.getpid()
    while True:
        msg = task_q.get()
        if msg is None:
            break
        task_id, kind, ctrl = msg
        try:
            meta, spans, aux = _run_task(kind, ctrl, out_lock)
            result_q.put((task_id, "ok", meta, spans, pid, aux))
        except BaseException as exc:  # noqa: BLE001 - must answer parent
            result_q.put((task_id, "error",
                          f"{type(exc).__name__}: {exc}", None, pid,
                          None))
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                break
    for arena in _attached.values():
        arena.close()
    _attached.clear()


# -- parent side -------------------------------------------------------------

@dataclass
class TaskOutcome:
    """Per-task results the pool hands back to the runtime layer."""

    meta: list
    spans: list | None
    pid: int
    aux: dict | None


@dataclass
class TransportStats:
    """Bytes that crossed the process boundary, by mechanism."""

    shm_bytes: int = 0
    pickled_bytes: int = 0
    items: int = 0
    #: payloads that crossed with no serialization (arena both ways)
    copies_avoided: int = 0


@dataclass
class RequestResult:
    final: object
    outcomes: list[TaskOutcome] = field(default_factory=list)
    stats: TransportStats = field(default_factory=TransportStats)


def _preferred_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ShmPool:
    """A persistent worker-daemon pool over shared-memory arenas."""

    def __init__(self, workers: int, *,
                 input_bytes: int = DEFAULT_INPUT_BYTES,
                 output_bytes: int = DEFAULT_OUTPUT_BYTES):
        if not shm_available():
            raise ArenaError("shared-memory transport unavailable")
        self.workers = int(workers)
        self.cache_limit = _worker_cache_limit()
        self._ctx = _preferred_context()
        self._lock = threading.Lock()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._out_lock = self._ctx.Lock()
        self._req = 0
        self._closed = False
        self._decode_ratio = _INITIAL_DECODE_RATIO
        self._cache_totals = {"hits": 0, "misses": 0, "evictions": 0}
        self._worker_peak_rss_kb = 0
        self._arena_in = Arena.create(input_bytes, tag="in")
        self._arena_out = Arena.create(output_bytes, tag="out")
        try:
            self._procs = [
                self._ctx.Process(target=_worker_main,
                                  args=(self._task_q, self._result_q,
                                        self._out_lock),
                                  daemon=True, name=f"repro-shm-{i}")
                for i in range(self.workers)]
            for p in self._procs:
                p.start()
        except (OSError, ValueError) as exc:
            self._destroy_arenas()
            raise ArenaError(f"cannot start workers: {exc}") from exc
        _register_pool(self)

    # -- lifecycle ----------------------------------------------------------

    def alive(self) -> bool:
        return (not self._closed
                and all(p.is_alive() for p in self._procs))

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs if p.pid]

    def _destroy_arenas(self) -> None:
        for name in ("_arena_in", "_arena_out"):
            arena = getattr(self, name, None)
            if arena is not None:
                arena.destroy()
                setattr(self, name, None)

    def shutdown(self) -> None:
        """Stop workers, reap them, and unlink both arenas."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_q.put_nowait(None)
            except (OSError, ValueError):  # pragma: no cover - q closed
                break
        for p in self._procs:
            p.join(timeout=2.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for q in (self._task_q, self._result_q):
            q.close()
            q.cancel_join_thread()
        self._destroy_arenas()
        _unregister_pool(self)

    # -- arena management ---------------------------------------------------

    def _ensure(self, which: str, need: int) -> Arena:
        attr = "_arena_in" if which == "in" else "_arena_out"
        arena = getattr(self, attr)
        if arena is None or arena.data_bytes < need:
            grown = max(int(need * 1.25),
                        arena.size * 2 if arena else 0,
                        DEFAULT_INPUT_BYTES)
            fresh = Arena.create(grown, tag=which)
            if arena is not None:
                arena.destroy()
            setattr(self, attr, fresh)
            arena = fresh
        arena.reset()
        return arena

    def _observe_result_bytes(self, kind: str, in_bytes: int,
                              out_bytes: int) -> None:
        """Track the decode expansion ratio so the output arena is sized
        right *before* the next decompress request, not after it spills."""
        if kind.startswith("decompress") and in_bytes > 0:
            ratio = out_bytes / in_bytes
            self._decode_ratio = max(2.0, ratio * 1.3,
                                     self._decode_ratio * 0.5)

    # -- request machinery --------------------------------------------------

    def _submit(self, tasks: list) -> dict[int, TaskOutcome]:
        self._req += 1
        req = self._req
        for idx, (kind, ctrl) in enumerate(tasks):
            self._task_q.put(((req, idx), kind, ctrl))
        got: dict[int, TaskOutcome] = {}
        errors: list[str] = []
        while len(got) + len(errors) < len(tasks):
            try:
                msg = self._result_q.get(timeout=_POLL_S)
            except queue.Empty:
                if not all(p.is_alive() for p in self._procs):
                    raise BrokenWorkerPool(
                        "a shm pool worker died mid-request")
                continue
            (mreq, idx), status, meta, spans, pid, aux = msg
            if mreq != req:        # stale result from an aborted request
                continue
            if status != "ok":
                errors.append(str(meta))
                continue
            got[idx] = TaskOutcome(meta=meta, spans=spans, pid=pid,
                                   aux=aux)
        if errors:
            raise WorkerTaskError(errors[0])
        for outcome in got.values():
            self._merge_cache_totals(outcome.aux)
        return got

    def _merge_cache_totals(self, aux: dict | None) -> None:
        if not aux:
            return
        for key, val in (aux.get("caches") or {}).items():
            if key in self._cache_totals and val:
                self._cache_totals[key] += int(val)
        if aux.get("peak_rss_kb"):
            self._worker_peak_rss_kb = max(self._worker_peak_rss_kb,
                                           int(aux["peak_rss_kb"]))

    def cache_stats(self) -> dict:
        """Accumulated worker-resident cache counters (registry shape).

        ``limit`` is the configured per-worker LRU entry floor
        (:data:`DEFAULT_WORKER_CACHE_LIMIT` / ``REPRO_WORKER_CACHE_LIMIT``),
        not the pool width — the old pool-width value made the registry
        read as a 2-entry cache when the actual worker LRUs held dozens.
        """
        alive = sum(1 for p in self._procs if p.is_alive()) \
            if not self._closed else 0
        return {**self._cache_totals, "size": alive,
                "limit": self.cache_limit,
                "size_bytes": self._worker_peak_rss_kb * 1024}

    def _common_ctrl(self, trace: bool, tctx) -> dict:
        from repro.huffman.canonical import warm_lengths
        return {"in_name": self._arena_in.name,
                "out_name": self._arena_out.name,
                "trace": trace, "tctx": tctx,
                # the per-worker LRU entry floor; applied once per worker
                # (and again only if it grows)
                "cache_limit": self.cache_limit,
                # warm codebook hints ride along on the existing control
                # path (the aux channel's parent-bound mirror): workers
                # prebuild decode tables/LUTs for the parent's hottest
                # codebooks instead of cold-filling on first decode
                "warm_lengths": warm_lengths(limit=4)}

    def _finish(self, kind: str, tasks: list, stats: TransportStats,
                materialize, consume, in_bytes: int = 0) -> RequestResult:
        """Collect, decode result metadata in task order, and hand the
        still-arena-backed payloads to ``consume`` under the pool lock
        (views into the output arena die at the next request)."""
        got = self._submit(tasks)
        outcomes = [got[i] for i in range(len(tasks))]
        payloads = []
        for outcome in outcomes:
            for entry in outcome.meta:
                payloads.append(materialize(entry, stats))
        self._observe_result_bytes(kind, in_bytes,
                                   sum(getattr(p, "nbytes", None)
                                       or len(p) for p in payloads))
        final = consume(payloads)
        return RequestResult(final=final, outcomes=outcomes, stats=stats)

    def _materialize_bytes(self, entry, stats: TransportStats):
        if entry[0] == "s":
            _, off, nbytes = entry
            stats.shm_bytes += nbytes
            stats.copies_avoided += 1
            return self._arena_out.view(off, nbytes)
        stats.pickled_bytes += len(entry[1])
        return entry[1]

    def _materialize_array(self, entry, stats: TransportStats):
        if entry[0] == "s":
            _, off, nbytes, shape, dtype = entry
            stats.shm_bytes += nbytes
            stats.copies_avoided += 1
            return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                              buffer=self._arena_out.buf, offset=off)
        stats.pickled_bytes += entry[1].nbytes
        return entry[1]

    # -- public request kinds -----------------------------------------------

    def compress_slabs(self, slabs: list[np.ndarray], bounds: list,
                       codec: str, eb: float, kwargs: dict,
                       trace: bool, tctx, consume) -> RequestResult:
        """Compress slab groups; ``consume`` sees ordered blob views."""
        with self._lock:
            self._check_open()
            total = sum(s.nbytes for s in slabs)
            arena_in = self._ensure("in", total + 64 * len(slabs))
            self._ensure("out", int(total * 1.5) + (1 << 20))
            stats = TransportStats(items=len(slabs))
            items = []
            for slab in slabs:
                off = arena_in.write(np.ascontiguousarray(slab))
                assert off is not None, "input arena sized for request"
                stats.shm_bytes += slab.nbytes
                items.append((off, slab.shape, slab.dtype.str))
            common = self._common_ctrl(trace, tctx)
            tasks = [("compress_slabs",
                      {**common, "start": s, "items": items[s:e],
                       "codec": codec, "eb": eb, "kwargs": kwargs})
                     for s, e in bounds]
            return self._finish("compress_slabs", tasks, stats,
                                self._materialize_bytes, consume)

    def decompress_slabs(self, stream, offsets: list, bounds: list,
                         trace: bool, tctx, consume) -> RequestResult:
        """Decode slab groups of one framed stream; ``consume`` sees
        ordered ndarray views. The whole stream is written into the
        arena once; items address it by (offset, length)."""
        with self._lock:
            self._check_open()
            arena_in = self._ensure("in", len(stream) + 64)
            self._ensure("out",
                         int(len(stream) * self._decode_ratio) + (1 << 20))
            base = arena_in.write(stream)
            assert base is not None, "input arena sized for request"
            stats = TransportStats(items=len(offsets),
                                   shm_bytes=len(stream))
            items = [(base + off, length) for off, length in offsets]
            common = self._common_ctrl(trace, tctx)
            tasks = [("decompress_slabs",
                      {**common, "start": s, "items": items[s:e]})
                     for s, e in bounds]
            return self._finish("decompress_slabs", tasks, stats,
                                self._materialize_array, consume,
                                in_bytes=len(stream))

    def compress_fields(self, fields: list[np.ndarray], configs: list,
                        bounds: list, trace: bool, tctx,
                        consume) -> RequestResult:
        with self._lock:
            self._check_open()
            total = sum(f.nbytes for f in fields)
            arena_in = self._ensure("in", total + 64 * len(fields))
            self._ensure("out", int(total * 1.5) + (1 << 20))
            stats = TransportStats(items=len(fields))
            items = []
            for i, (data, (codec, kwargs)) in enumerate(
                    zip(fields, configs)):
                off = arena_in.write(np.ascontiguousarray(data))
                assert off is not None, "input arena sized for request"
                stats.shm_bytes += data.nbytes
                items.append((i, off, data.shape, data.dtype.str,
                              codec, kwargs))
            common = self._common_ctrl(trace, tctx)
            tasks = [("compress_fields", {**common, "items": items[s:e]})
                     for s, e in bounds]
            return self._finish("compress_fields", tasks, stats,
                                self._materialize_bytes, consume)

    def decompress_fields(self, blobs: list, bounds: list, trace: bool,
                          tctx, consume) -> RequestResult:
        with self._lock:
            self._check_open()
            total = sum(len(b) for b in blobs)
            arena_in = self._ensure("in", total + 64 * len(blobs))
            self._ensure("out",
                         int(total * self._decode_ratio) + (1 << 20))
            stats = TransportStats(items=len(blobs))
            items = []
            for i, blob in enumerate(blobs):
                off = arena_in.write(blob)
                assert off is not None, "input arena sized for request"
                stats.shm_bytes += len(blob)
                items.append((i, off, len(blob)))
            common = self._common_ctrl(trace, tctx)
            tasks = [("decompress_fields",
                      {**common, "items": items[s:e]})
                     for s, e in bounds]
            return self._finish("decompress_fields", tasks, stats,
                                self._materialize_array, consume,
                                in_bytes=total)

    def _check_open(self) -> None:
        if self._closed:
            raise BrokenWorkerPool("pool is shut down")
        if not all(p.is_alive() for p in self._procs):
            raise BrokenWorkerPool("a shm pool worker is dead")


# -- cache-registry integration ---------------------------------------------

_pools_lock = threading.Lock()
_pools: list[ShmPool] = []
_provider_registered = False


def _register_pool(pool: ShmPool) -> None:
    global _provider_registered
    with _pools_lock:
        _pools.append(pool)
        if not _provider_registered:
            from repro.telemetry import caches
            caches.register("runtime.workers", pool_cache_stats)
            _provider_registered = True


def _unregister_pool(pool: ShmPool) -> None:
    with _pools_lock:
        if pool in _pools:
            _pools.remove(pool)


def pool_cache_stats() -> dict:
    """Worker-resident cache counters summed over live shm pools.

    This is the ``runtime.workers`` provider in the telemetry cache
    registry: ``hits``/``misses``/``evictions`` accumulate the per-task
    deltas workers ship back on the aux channel, ``size`` is the live
    worker count, ``limit`` the configured per-worker LRU entry floor
    (summed over pools), and ``size_bytes`` the highest worker peak RSS
    observed.
    """
    with _pools_lock:
        pools = list(_pools)
    out = {"hits": 0, "misses": 0, "evictions": 0, "size": 0,
           "limit": 0, "size_bytes": 0}
    for pool in pools:
        stats = pool.cache_stats()
        for key in ("hits", "misses", "evictions", "size", "limit"):
            out[key] += stats[key]
        out["size_bytes"] = max(out["size_bytes"], stats["size_bytes"])
    return out
