"""repro.runtime — parallel batch engine for slab and field batches.

See :mod:`repro.runtime.pool` for the engine. Public surface:

* :func:`parallel_compress_slabs` / :func:`parallel_decompress_slabs` —
  shard one field into independent slabs and run them across workers,
  byte-identical to the serial :mod:`repro.streaming` path;
* :func:`map_compress` / :func:`map_decompress` — many-field batches;
* :func:`resolve_workers` — the shared ``workers=`` knob
  (``None`` = serial, ``"auto"`` = one worker per usable core);
* :func:`transport_kind` — which payload transport is active
  (``"shm"`` zero-copy arenas via :mod:`repro.runtime.workers`, or the
  ``"pickle"`` executor fallback); ``transport_stats`` totals the bytes
  each mechanism moved;
* :func:`tiled_compress_file` / :func:`tiled_decompress_file` — the
  out-of-core path (:mod:`repro.runtime.tiled`): memory-mapped input,
  bounded peak RSS, byte-identical ``RPST`` streams;
* :func:`shutdown_pools` — tear down the cached worker pools (both
  transports) and unlink their shared-memory arenas.
"""

from repro.runtime.pool import (map_compress, map_decompress,
                                parallel_compress_slabs,
                                parallel_decompress_slabs,
                                resolve_workers, shutdown_pools,
                                transport_kind, transport_stats)
from repro.runtime.tiled import (resolve_tile_planes,
                                 tiled_compress_file,
                                 tiled_decompress_file)

__all__ = ["parallel_compress_slabs", "parallel_decompress_slabs",
           "map_compress", "map_decompress", "resolve_workers",
           "shutdown_pools", "transport_kind", "transport_stats",
           "tiled_compress_file", "tiled_decompress_file",
           "resolve_tile_planes"]
