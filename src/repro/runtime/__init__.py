"""repro.runtime — process-pool batch engine for slab and field batches.

See :mod:`repro.runtime.pool` for the engine. Public surface:

* :func:`parallel_compress_slabs` / :func:`parallel_decompress_slabs` —
  shard one field into independent slabs and run them across workers,
  byte-identical to the serial :mod:`repro.streaming` path;
* :func:`map_compress` / :func:`map_decompress` — many-field batches;
* :func:`resolve_workers` — the shared ``workers=`` knob
  (``None`` = serial, ``"auto"`` = one worker per core);
* :func:`shutdown_pools` — tear down the cached worker pools.
"""

from repro.runtime.pool import (map_compress, map_decompress,
                                parallel_compress_slabs,
                                parallel_decompress_slabs,
                                resolve_workers, shutdown_pools)

__all__ = ["parallel_compress_slabs", "parallel_decompress_slabs",
           "map_compress", "map_decompress", "resolve_workers",
           "shutdown_pools"]
