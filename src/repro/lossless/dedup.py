"""Zero-block deduplication (the FZ-GPU lossless back end).

After bit-shuffling, the high-order bit planes of quant-codes are almost
entirely zero bytes. FZ-GPU's dictionary-free "dedup" drops fixed-size
zero blocks, keeping only a presence bitmap plus the nonzero literals — a
pure compaction that maps to one GPU scan + scatter.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.common.errors import CodecError

__all__ = ["dedup_zero_blocks", "restore_zero_blocks", "DEDUP_BLOCK"]

#: bytes per dedup unit
DEDUP_BLOCK = 32

_HDR = struct.Struct("<QI")  # original length, n_blocks


def dedup_zero_blocks(data: bytes, block: int = DEDUP_BLOCK) -> bytes:
    """Drop all-zero ``block``-byte units, keeping a bitmap + literals."""
    arr = np.frombuffer(data, dtype=np.uint8)
    n = arr.size
    n_blocks = -(-n // block) if n else 0
    pad = n_blocks * block - n
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, np.uint8)])
    blocks = arr.reshape(n_blocks, block) if n_blocks else \
        arr.reshape(0, block)
    nonzero = blocks.any(axis=1)
    bitmap = np.packbits(nonzero.astype(np.uint8))
    literals = blocks[nonzero]
    return (_HDR.pack(n, n_blocks) + bitmap.tobytes()
            + literals.tobytes())


def restore_zero_blocks(blob: bytes, block: int = DEDUP_BLOCK) -> bytes:
    """Invert :func:`dedup_zero_blocks`."""
    if len(blob) < _HDR.size:
        raise CodecError("truncated dedup header")
    n, n_blocks = _HDR.unpack_from(blob, 0)
    pos = _HDR.size
    nbm = -(-n_blocks // 8)
    bitmap = np.frombuffer(blob, np.uint8, nbm, pos)
    pos += nbm
    nonzero = np.unpackbits(bitmap, count=n_blocks).astype(bool)
    n_lit = int(nonzero.sum())
    literals = np.frombuffer(blob, np.uint8, n_lit * block, pos)
    pos += n_lit * block
    if pos != len(blob):
        raise CodecError("trailing bytes in dedup frame")
    out = np.zeros((n_blocks, block), dtype=np.uint8)
    out[nonzero] = literals.reshape(n_lit, block)
    return out.ravel()[:n].tobytes()
