"""GLE — the Bitcomp-lossless stand-in (paper §VI-B).

NVIDIA Bitcomp is proprietary; the paper uses it as a *repeated-pattern
canceling* pass over Huffman output, whose gains come from the long runs of
identical bytes that highly concentrated quant-codes leave behind (e.g.
continuous ``0x00`` when the dominant code has a 1-bit codeword). GLE
removes exactly that redundancy class with two GPU-friendly passes:

1. **Word RLE** — the stream is viewed as 32-bit words; maximal runs of a
   repeated word with length >= ``MIN_RUN`` become ``(value, count)``
   tokens, everything else is grouped into literal segments. Run detection
   is a diff + compact (GPU: ballot/scan), reconstruction a masked scatter
   (GPU: scatter after exclusive scan).
2. **Block bit-width reduction** — the literal bytes are split into
   fixed-size blocks; each block is packed at the minimal bit width of its
   bytes (GPU: per-block reduce + shuffle pack). Blocks are grouped by
   width so each width class is one :func:`pack_uint` call. Blocks of
   entropy-coded bytes typically stay at width 8 (1-byte header overhead
   per block); sparse structures (chunk-length tables, anchor mantissa
   tails) shrink.

Both stages can be gated individually (``rle=``/``pack=``): the
per-segment orchestrator (:mod:`repro.lossless.orchestrator`) uses this to
skip a stage its cost model already knows will not pay, without a wasted
trial encode. The frame records which stages actually ran, so every
combination decodes through the same :func:`gle_decompress`.

The encoder never expands beyond a 17-byte frame + ~0.4%: if a stage does
not pay for itself it is marked stored-as-is in the frame flags.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.common.bitpack import bit_length, pack_uint, unpack_uint
from repro.common.errors import CorruptStreamError

__all__ = ["gle_compress", "gle_decompress", "GLECodec",
           "MIN_RUN", "PACK_BLOCK"]

#: A run of identical 32-bit words must be at least this long to tokenize.
MIN_RUN = 4
#: Block size (bytes) for the bit-width reduction pass.
PACK_BLOCK = 512

_FRAME = struct.Struct("<4sBQI")  # magic, flags, orig length, crc32
_MAGIC = b"GLE1"
_FLAG_RLE = 1
_FLAG_PACK = 2
#: frame carries no payload checksum (crc field is 0). Set by callers that
#: already checksum the enclosing frame (the per-segment orchestrator), so
#: integrity is still verified end-to-end without paying for it twice.
_FLAG_NOCRC = 4

_RLE_HDR = struct.Struct("<II")  # n_tokens, n_literal_words
_RUN_BIT = np.uint32(0x80000000)


def _as_bytes_view(data) -> np.ndarray:
    """Zero-copy uint8 view of bytes/bytearray/memoryview/ndarray input."""
    if isinstance(data, np.ndarray):
        if not data.flags.c_contiguous:
            data = np.ascontiguousarray(data)
        return data.view(np.uint8).ravel()
    return np.frombuffer(data, dtype=np.uint8)


def _word_rle_encode(data: np.ndarray) -> bytes | None:
    """Stage 1 encode. Returns None when RLE would not shrink the stream."""
    pad = (-data.size) % 4
    if pad:
        data = np.concatenate([data, np.zeros(pad, np.uint8)])
    words = data.view(np.uint32)
    n = words.size
    if n < MIN_RUN:
        return None
    # maximal runs without materializing every segment boundary: AND
    # shifted equality masks so runm[i] == "words[i:i+MIN_RUN] all equal".
    # Contiguous True blocks then map 1:1 onto maximal runs (two adjacent
    # maximal runs always break the chain at their join), so only the few
    # block edges are compacted — not the ~n word-change boundaries.
    eq = words[1:] == words[:-1]
    m = n - MIN_RUN + 1
    runm = eq[:m] & eq[1:m + 1] if MIN_RUN > 2 else eq[:m].copy()
    for k in range(2, MIN_RUN - 1):
        runm &= eq[k:m + k]
    ri = runm.view(np.int8)
    edges = ri[1:] - ri[:-1]
    # nonzero over bool comparisons: ~5x faster than compacting the
    # int8 edge array directly
    run_start = np.flatnonzero(edges == 1) + 1
    block_end = np.flatnonzero(edges == -1) + 1
    if ri[0]:
        run_start = np.concatenate([np.zeros(1, np.int64), run_start])
    if ri[-1]:
        block_end = np.concatenate([block_end,
                                    np.full(1, m, dtype=np.int64)])
    n_long = run_start.size
    if n_long == 0:
        return None
    run_len = (block_end - run_start) + (MIN_RUN - 1)
    saved = int(run_len.sum() - 2 * n_long) * 4  # each long run -> 2 words
    if saved <= n_long * 2 + _RLE_HDR.size + 64:  # token overhead margin
        return None

    run_values = words[run_start]
    # interleaved token stream: literal gap, run, literal gap, run, ...,
    # final literal tail. A token is a u32 word count with the high bit
    # flagging runs; zero-length literal gaps keep the alternation regular
    # (the decoder skips empty segments for free).
    run_end = run_start + run_len
    lit_len = np.empty(n_long + 1, dtype=np.int64)
    lit_len[0] = run_start[0]
    np.subtract(run_start[1:], run_end[:-1], out=lit_len[1:-1])
    lit_len[-1] = n - run_end[-1]
    if n >= 0x80000000:
        return None  # absurdly long segment; bail to stored
    tokens = np.empty(2 * n_long + 1, dtype=np.uint32)
    tokens[0::2] = lit_len
    tokens[1::2] = run_len.astype(np.uint32) | _RUN_BIT
    n_lit = n - int(run_len.sum())
    total = _RLE_HDR.size + 4 * (tokens.size + n_long + n_lit)
    if total >= 4 * n:
        return None
    # single preallocated output; literal words (everything not inside a
    # long run, in order) are compressed straight into it. The membership
    # mask repeats over the ~2*n_long interleaved segments, far fewer
    # than the per-word-change segments.
    out = np.empty(total, dtype=np.uint8)
    _RLE_HDR.pack_into(out, 0, tokens.size, n_lit)
    u32 = out[_RLE_HDR.size:].view(np.uint32)
    u32[:tokens.size] = tokens
    u32[tokens.size:tokens.size + n_long] = run_values
    seg_len = np.empty(2 * n_long + 1, dtype=np.int64)
    seg_len[0::2] = lit_len
    seg_len[1::2] = run_len
    is_lit = np.zeros(2 * n_long + 1, dtype=bool)
    is_lit[0::2] = True
    u32[tokens.size + n_long:] = words[np.repeat(is_lit, seg_len)]
    return out


def _word_rle_decode(blob: bytes, original_padded_len: int) -> np.ndarray:
    """Stage 1 decode back to the padded word stream (as uint8)."""
    if len(blob) < _RLE_HDR.size:
        raise CorruptStreamError("truncated GLE RLE header")
    n_tokens, n_lit = _RLE_HDR.unpack_from(blob, 0)
    pos = _RLE_HDR.size
    if len(blob) < pos + 4 * n_tokens:
        raise CorruptStreamError("truncated GLE RLE token table")
    tokens = np.frombuffer(blob, np.uint32, n_tokens, pos)
    pos += 4 * n_tokens
    is_run = (tokens & _RUN_BIT) != 0
    seg_words = (tokens & ~_RUN_BIT).astype(np.int64)
    n_runs = int(is_run.sum())
    if len(blob) < pos + 4 * (n_runs + n_lit):
        raise CorruptStreamError("truncated GLE RLE payload")
    run_values = np.frombuffer(blob, np.uint32, n_runs, pos)
    pos += 4 * n_runs
    literal_words = np.frombuffer(blob, np.uint32, n_lit, pos)
    pos += 4 * n_lit
    if pos != len(blob):
        raise CorruptStreamError("trailing bytes in GLE RLE frame")

    total = int(seg_words.sum())
    if total * 4 != original_padded_len:
        raise CorruptStreamError("GLE RLE length mismatch")
    # scatter reconstruction: one boolean run/literal mask over the output
    # (a repeat off the token table), runs expanded by a second repeat,
    # literals copied through the complementary mask
    out = np.empty(total, dtype=np.uint32)
    in_run = np.repeat(is_run, seg_words)
    if n_runs:
        out[in_run] = np.repeat(run_values, seg_words[is_run])
    n_lit_expected = total - int(seg_words[is_run].sum())
    if n_lit_expected != literal_words.size:
        raise CorruptStreamError("GLE literal count mismatch")
    if n_lit:
        out[~in_run] = literal_words
    return out.view(np.uint8)


def _pack_encode(data: np.ndarray) -> bytes | None:
    """Stage 2 encode: per-block byte bit-width packing."""
    n = data.size
    if n == 0:
        return None
    n_blocks = -(-n // PACK_BLOCK)
    pad = n_blocks * PACK_BLOCK - n
    if pad:
        data = np.concatenate([data, np.zeros(pad, np.uint8)])
    blocks = data.reshape(n_blocks, PACK_BLOCK)
    widths = bit_length(blocks.max(axis=1))
    packed_bits = widths.astype(np.int64) * PACK_BLOCK
    est = n_blocks + int(np.sum(-(-packed_bits // 8)))
    if est >= n:
        return None
    parts = [struct.pack("<QI", n, n_blocks), widths.tobytes()]
    # group blocks by width so each group is one vectorized pack
    for w in range(1, 9):
        sel = widths == w
        if not np.any(sel):
            continue
        parts.append(pack_uint(blocks[sel].ravel(), w).tobytes())
    out = b"".join(parts)
    if len(out) >= n:
        return None
    return out


def _pack_decode(blob: bytes) -> np.ndarray:
    """Stage 2 decode (returns the byte stream as uint8)."""
    if len(blob) < 12:
        raise CorruptStreamError("truncated GLE pack header")
    n, n_blocks = struct.unpack_from("<QI", blob, 0)
    pos = 12
    if len(blob) < pos + n_blocks:
        raise CorruptStreamError("truncated GLE pack width table")
    widths = np.frombuffer(blob, np.uint8, n_blocks, pos)
    pos += n_blocks
    out = np.zeros((n_blocks, PACK_BLOCK), dtype=np.uint8)
    for w in range(1, 9):
        sel = widths == w
        cnt = int(sel.sum())
        if cnt == 0:
            continue
        nbytes = -(-cnt * PACK_BLOCK * w // 8)
        if len(blob) < pos + nbytes:
            raise CorruptStreamError("truncated GLE pack payload")
        chunk = np.frombuffer(blob, np.uint8, nbytes, pos)
        pos += nbytes
        if w == 8:
            out[sel] = chunk.reshape(cnt, PACK_BLOCK)
        else:
            vals = unpack_uint(chunk, w, cnt * PACK_BLOCK)
            out[sel] = vals.reshape(cnt, PACK_BLOCK).astype(np.uint8)
    if pos != len(blob):
        raise CorruptStreamError("trailing bytes in GLE pack frame")
    return out.reshape(-1)[:n]


def gle_compress(data, *, rle: bool = True, pack: bool = True,
                 checksum: bool = True) -> bytes:
    """Compress arbitrary bytes with the two-stage GLE scheme.

    ``data`` may be ``bytes``, a ``memoryview``, or a NumPy buffer — it is
    viewed, never copied. ``rle=False`` / ``pack=False`` skip a stage
    outright (the orchestrator's pre-decided single-stage backends);
    ``checksum=False`` omits the payload CRC for callers that verify the
    enclosing frame themselves. The frame records which stages actually
    ran, so incompressible input costs only the 17-byte frame header and
    every combination decodes through :func:`gle_decompress`.
    """
    arr = _as_bytes_view(data)
    orig_len = arr.size
    if checksum:
        crc = zlib.crc32(arr)
        flags = 0
    else:
        crc = 0
        flags = _FLAG_NOCRC
    stage = arr
    if rle:
        enc = _word_rle_encode(stage)
        if enc is not None:
            stage = np.frombuffer(enc, dtype=np.uint8)
            flags |= _FLAG_RLE
    if pack:
        enc = _pack_encode(stage)
        if enc is not None:
            stage = np.frombuffer(enc, dtype=np.uint8)
            flags |= _FLAG_PACK
    return b"".join((_FRAME.pack(_MAGIC, flags, orig_len, crc),
                     memoryview(stage)))


def gle_decompress(blob) -> bytes:
    """Invert :func:`gle_compress`.

    Raises :class:`~repro.common.errors.CorruptStreamError` on bad magic,
    truncated frames, and checksum mismatch.
    """
    blob = bytes(blob)
    if len(blob) < _FRAME.size:
        raise CorruptStreamError("truncated GLE frame")
    magic, flags, orig_len, crc = _FRAME.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise CorruptStreamError("bad GLE magic")
    stage = np.frombuffer(blob, np.uint8, offset=_FRAME.size)
    if flags & _FLAG_PACK:
        stage = _pack_decode(stage)
    if flags & _FLAG_RLE:
        padded_len = orig_len + ((-orig_len) % 4)
        stage = _word_rle_decode(stage, padded_len)
    if stage.size < orig_len:
        raise CorruptStreamError("GLE frame shorter than recorded length")
    out = stage[:orig_len].tobytes()
    if not (flags & _FLAG_NOCRC) and zlib.crc32(out) != crc:
        raise CorruptStreamError(
            "GLE payload checksum mismatch (corrupt frame)")
    return out


class GLECodec:
    """Object wrapper satisfying the lossless-codec protocol.

    ``rle=``/``pack=`` gate the two stages; the all-on default is the
    registered ``"gle"`` codec, the single-stage variants back the
    orchestrator's ``"gle-rle"`` / ``"gle-pack"`` backends.
    """

    name = "gle"

    def __init__(self, rle: bool = True, pack: bool = True):
        self.rle = bool(rle)
        self.pack = bool(pack)

    def compress_bytes(self, data) -> bytes:
        return gle_compress(data, rle=self.rle, pack=self.pack)

    def decompress_bytes(self, blob) -> bytes:
        return gle_decompress(blob)
