"""GLE — the Bitcomp-lossless stand-in (paper §VI-B).

NVIDIA Bitcomp is proprietary; the paper uses it as a *repeated-pattern
canceling* pass over Huffman output, whose gains come from the long runs of
identical bytes that highly concentrated quant-codes leave behind (e.g.
continuous ``0x00`` when the dominant code has a 1-bit codeword). GLE
removes exactly that redundancy class with two GPU-friendly passes:

1. **Word RLE** — the stream is viewed as 32-bit words; maximal runs of a
   repeated word with length >= ``MIN_RUN`` become ``(value, count)``
   tokens, everything else is grouped into literal segments. Run detection
   is a diff + compact (GPU: ballot/scan), reconstruction a ``repeat``
   (GPU: scatter after exclusive scan).
2. **Block bit-width reduction** — the literal bytes are split into
   fixed-size blocks; each block is packed at the minimal bit width of its
   bytes (GPU: per-block reduce + shuffle pack). Blocks of entropy-coded
   bytes typically stay at width 8 (1-byte header overhead per block);
   sparse structures (chunk-length tables, anchor mantissa tails) shrink.

The encoder never expands beyond a 17-byte frame + ~0.4%: if a stage does
not pay for itself it is marked stored-as-is in the frame flags.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.common.bitpack import bit_length, pack_uint, unpack_uint
from repro.common.errors import CodecError
from repro.common.scan import concat_ranges

__all__ = ["gle_compress", "gle_decompress", "GLECodec",
           "MIN_RUN", "PACK_BLOCK"]

#: A run of identical 32-bit words must be at least this long to tokenize.
MIN_RUN = 4
#: Block size (bytes) for the bit-width reduction pass.
PACK_BLOCK = 512

_FRAME = struct.Struct("<4sBQI")  # magic, flags, orig length, crc32
_MAGIC = b"GLE1"
_FLAG_RLE = 1
_FLAG_PACK = 2

_RLE_HDR = struct.Struct("<II")  # n_tokens, n_literal_words
_RUN_BIT = np.uint32(0x80000000)


def _word_rle_encode(data: bytes) -> bytes | None:
    """Stage 1 encode. Returns None when RLE would not shrink the stream."""
    pad = (-len(data)) % 4
    padded = data + b"\x00" * pad
    words = np.frombuffer(padded, dtype=np.uint32)
    n = words.size
    if n == 0:
        return None
    # maximal runs: boundaries where the word changes
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(words[1:], words[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, n))
    values = words[starts]

    long = counts >= MIN_RUN
    n_long = int(long.sum())
    saved = int((counts[long] - 2).sum()) * 4  # each long run -> 2 words
    if saved <= n_long * 2 + _RLE_HDR.size + 64:  # token overhead margin
        return None

    # group consecutive short runs into literal segments
    kinds = long.astype(np.int8)
    seg_break = np.empty(kinds.size, dtype=bool)
    seg_break[0] = True
    np.not_equal(kinds[1:], kinds[:-1], out=seg_break[1:])
    seg_break |= kinds == 1  # every long run is its own segment
    seg_starts = np.flatnonzero(seg_break)
    seg_is_run = kinds[seg_starts] == 1
    seg_end = np.append(seg_starts[1:], counts.size)
    # words covered by each segment
    cum_words = np.concatenate(([0], np.cumsum(counts)))
    seg_words = cum_words[np.append(seg_starts[1:], counts.size)] \
        - cum_words[seg_starts]
    # token stream: u32 per segment with high bit = run flag, low 31 = word
    # count; runs additionally carry their value; literals carry the words.
    if np.any(seg_words >= 0x80000000):
        return None  # absurdly long segment; bail to stored
    tokens = seg_words.astype(np.uint32)
    tokens[seg_is_run] |= _RUN_BIT
    run_values = values[seg_starts[seg_is_run]]
    # literal words: everything not inside a long run, in order
    keep = np.repeat(~long, counts)
    literal_words = words[keep]
    del seg_end
    out = (_RLE_HDR.pack(tokens.size, literal_words.size)
           + tokens.tobytes() + run_values.tobytes()
           + literal_words.tobytes())
    if len(out) >= len(padded):
        return None
    return out


def _word_rle_decode(blob: bytes, original_padded_len: int) -> bytes:
    """Stage 1 decode back to the padded word stream."""
    if len(blob) < _RLE_HDR.size:
        raise CodecError("truncated GLE RLE header")
    n_tokens, n_lit = _RLE_HDR.unpack_from(blob, 0)
    pos = _RLE_HDR.size
    tokens = np.frombuffer(blob, np.uint32, n_tokens, pos)
    pos += 4 * n_tokens
    is_run = (tokens & _RUN_BIT) != 0
    seg_words = (tokens & ~_RUN_BIT).astype(np.int64)
    n_runs = int(is_run.sum())
    run_values = np.frombuffer(blob, np.uint32, n_runs, pos)
    pos += 4 * n_runs
    literal_words = np.frombuffer(blob, np.uint32, n_lit, pos)
    pos += 4 * n_lit
    if pos != len(blob):
        raise CodecError("trailing bytes in GLE RLE frame")

    total = int(seg_words.sum())
    if total * 4 != original_padded_len:
        raise CodecError("GLE RLE length mismatch")
    out = np.empty(total, dtype=np.uint32)
    seg_off = np.concatenate(([0], np.cumsum(seg_words)))
    # runs: repeat values across their spans
    run_off = seg_off[:-1][is_run]
    run_len = seg_words[is_run]
    if n_runs:
        idx = np.repeat(run_off, run_len) + concat_ranges(run_len)
        out[idx] = np.repeat(run_values, run_len)
    # literals: contiguous copy per segment
    lit_off = seg_off[:-1][~is_run]
    lit_len = seg_words[~is_run]
    if n_lit:
        idx = np.repeat(lit_off, lit_len) + concat_ranges(lit_len)
        if idx.size != literal_words.size:
            raise CodecError("GLE literal count mismatch")
        out[idx] = literal_words
    return out.tobytes()



def _pack_encode(data: bytes) -> bytes | None:
    """Stage 2 encode: per-block byte bit-width packing."""
    arr = np.frombuffer(data, dtype=np.uint8)
    n = arr.size
    if n == 0:
        return None
    n_blocks = -(-n // PACK_BLOCK)
    pad = n_blocks * PACK_BLOCK - n
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, np.uint8)])
    blocks = arr.reshape(n_blocks, PACK_BLOCK)
    widths = bit_length(blocks.max(axis=1))
    packed_bits = widths.astype(np.int64) * PACK_BLOCK
    est = n_blocks + int(np.sum(-(-packed_bits // 8)))
    if est >= n:
        return None
    parts = [struct.pack("<QI", n, n_blocks), widths.tobytes()]
    # group blocks by width so each group is one vectorized pack
    for w in range(0, 9):
        sel = widths == w
        if not np.any(sel) or w == 0:
            continue
        parts.append(pack_uint(blocks[sel].ravel(), w).tobytes())
    out = b"".join(parts)
    if len(out) >= n:
        return None
    return out


def _pack_decode(blob: bytes) -> bytes:
    """Stage 2 decode."""
    if len(blob) < 12:
        raise CodecError("truncated GLE pack header")
    n, n_blocks = struct.unpack_from("<QI", blob, 0)
    pos = 12
    widths = np.frombuffer(blob, np.uint8, n_blocks, pos)
    pos += n_blocks
    out = np.zeros((n_blocks, PACK_BLOCK), dtype=np.uint8)
    for w in range(1, 9):
        sel = widths == w
        cnt = int(sel.sum())
        if cnt == 0:
            continue
        nbytes = -(-cnt * PACK_BLOCK * w // 8)
        chunk = np.frombuffer(blob, np.uint8, nbytes, pos)
        pos += nbytes
        vals = unpack_uint(chunk, w, cnt * PACK_BLOCK)
        out[sel] = vals.reshape(cnt, PACK_BLOCK).astype(np.uint8)
    if pos != len(blob):
        raise CodecError("trailing bytes in GLE pack frame")
    return out.ravel()[:n].tobytes()


def gle_compress(data: bytes) -> bytes:
    """Compress arbitrary bytes with the two-stage GLE scheme.

    The frame records which stages actually ran, so incompressible input
    costs only the 13-byte frame header.
    """
    data = bytes(data)
    flags = 0
    stage = data
    rle = _word_rle_encode(stage)
    if rle is not None:
        stage = rle
        flags |= _FLAG_RLE
    packed = _pack_encode(stage)
    if packed is not None:
        stage = packed
        flags |= _FLAG_PACK
    return _FRAME.pack(_MAGIC, flags, len(data),
                       zlib.crc32(data)) + stage


def gle_decompress(blob: bytes) -> bytes:
    """Invert :func:`gle_compress`."""
    if len(blob) < _FRAME.size:
        raise CodecError("truncated GLE frame")
    magic, flags, orig_len, crc = _FRAME.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise CodecError("bad GLE magic")
    stage = blob[_FRAME.size:]
    if flags & _FLAG_PACK:
        stage = _pack_decode(stage)
    if flags & _FLAG_RLE:
        padded_len = orig_len + ((-orig_len) % 4)
        stage = _word_rle_decode(stage, padded_len)
    if len(stage) < orig_len:
        raise CodecError("GLE frame shorter than recorded length")
    out = bytes(stage[:orig_len])
    if zlib.crc32(out) != crc:
        raise CodecError("GLE payload checksum mismatch (corrupt frame)")
    return out


class GLECodec:
    """Object wrapper satisfying the lossless-codec protocol."""

    name = "gle"

    def compress_bytes(self, data: bytes) -> bytes:
        return gle_compress(data)

    def decompress_bytes(self, blob: bytes) -> bytes:
        return gle_decompress(blob)
