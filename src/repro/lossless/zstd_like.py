"""Dictionary de-redundancy stage for the CPU reference compressors.

CPU SZ3 and QoZ finish with Zstd; Zstd is unavailable offline, so the
stdlib's zlib (same LZ77+entropy family, lower ratio/speed) stands in. The
substitution is recorded in DESIGN.md §1; only the CPU baselines use it, so
it does not touch any GPU-side result.
"""

from __future__ import annotations

import zlib

from repro.common.errors import CodecError

__all__ = ["ZlibCodec"]


def _byte_view(data) -> memoryview:
    """A flat uint8 view over bytes/bytearray/memoryview/NumPy buffers.

    Contiguous inputs are never copied — zlib consumes the buffer
    directly; only a non-contiguous view (e.g. a sliced array) pays for
    a compaction.
    """
    view = memoryview(data)
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B") if view.c_contiguous \
            else memoryview(view.tobytes())
    return view


class ZlibCodec:
    """zlib wrapper with the common lossless-codec protocol."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError(f"zlib level must be 1..9, got {level}")
        self.level = level

    def compress_bytes(self, data) -> bytes:
        return zlib.compress(_byte_view(data), self.level)

    def decompress_bytes(self, blob) -> bytes:
        try:
            return zlib.decompress(_byte_view(blob))
        except zlib.error as exc:
            raise CodecError(f"zlib decode failed: {exc}")
