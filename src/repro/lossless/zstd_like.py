"""Dictionary de-redundancy stage for the CPU reference compressors.

CPU SZ3 and QoZ finish with Zstd; Zstd is unavailable offline, so the
stdlib's zlib (same LZ77+entropy family, lower ratio/speed) stands in. The
substitution is recorded in DESIGN.md §1; only the CPU baselines use it, so
it does not touch any GPU-side result.
"""

from __future__ import annotations

import zlib

from repro.common.errors import CodecError

__all__ = ["ZlibCodec"]


class ZlibCodec:
    """zlib wrapper with the common lossless-codec protocol."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError(f"zlib level must be 1..9, got {level}")
        self.level = level

    def compress_bytes(self, data: bytes) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decompress_bytes(self, blob: bytes) -> bytes:
        try:
            return zlib.decompress(bytes(blob))
        except zlib.error as exc:
            raise CodecError(f"zlib decode failed: {exc}")
