"""Bit-shuffle transform (the FZ-GPU lossless front end).

FZ-GPU replaces cuSZ's Huffman stage with a bit-shuffle followed by
zero-block dedup: transposing the bit matrix of 16-bit quant-codes gathers
the (almost always zero) high-order bit planes into long zero byte runs that
the dedup stage then drops. On the GPU this is a warp shuffle; here it is an
``unpackbits -> transpose -> packbits`` round trip.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError

__all__ = ["bitshuffle", "bitunshuffle"]


def bitshuffle(values: np.ndarray) -> np.ndarray:
    """Transpose the bit matrix of an unsigned-integer array.

    Input of ``n`` values of ``w``-bit width becomes a uint8 stream of
    ``n*w/8`` bytes laid out plane-major: all values' bit ``w-1`` first,
    then bit ``w-2``, etc.
    """
    values = np.asarray(values)
    if values.dtype not in (np.uint8, np.uint16, np.uint32, np.uint64):
        raise CodecError(f"bitshuffle expects unsigned ints, got "
                         f"{values.dtype}")
    n = values.size
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    width = values.dtype.itemsize * 8
    # big-endian byte view so unpackbits yields MSB-first bit columns
    be = values.ravel().astype(values.dtype.newbyteorder(">"))
    bits = np.unpackbits(be.view(np.uint8)).reshape(n, width)
    return np.packbits(bits.T.ravel())


def bitunshuffle(stream: np.ndarray, dtype: np.dtype,
                 count: int) -> np.ndarray:
    """Invert :func:`bitshuffle` given the element dtype and count."""
    dtype = np.dtype(dtype)
    width = dtype.itemsize * 8
    if count == 0:
        return np.empty(0, dtype=dtype)
    stream = np.asarray(stream, dtype=np.uint8)
    total_bits = count * width
    if stream.size * 8 < total_bits:
        raise CodecError("bitshuffle stream too short")
    planes = np.unpackbits(stream, count=total_bits).reshape(width, count)
    packed = np.packbits(planes.T.ravel())
    return packed.view(dtype.newbyteorder(">"))[:count].astype(dtype)
