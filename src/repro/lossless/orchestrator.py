"""Segment-aware lossless orchestration (the Bitcomp-synergy stage).

The paper pairs Huffman with a repeated-pattern-canceling lossless pass
(§VI-B); "Boosting Scientific Error-Bounded Lossy Compression through
Optimized Synergistic Lossy-Lossless Orchestration" shows the treatment
should be chosen *per stream*, not once per archive: the Huffman payload,
the chunk-length table, the anchor grid and the outlier list have wildly
different statistics, and a codec that pays for one wastes time (or
ratio) on another.

This module is that orchestration layer:

* a **backend registry** — ``store``, ``gle``, ``gle-rle``, ``gle-pack``,
  ``zlib``, and ``gle-blocks`` (the block-parallel GLE route for
  oversized streams) — every backend a plain ``encode(bytes) -> bytes`` /
  ``decode(bytes) -> bytes`` pair;
* a **sampling cost model** — byte entropy, word-run mass, top-word
  concentration and per-block width mass over a bounded prefix sample —
  that predicts each backend's output size and picks the cheapest one
  that clears its speed gate, *without* trial-encoding losers;
* a **container-aware splitter** that breaks an ``RPRC`` container into
  its framing header, the Huffman stream's (head, chunk-length table,
  payload) parts and the side segments; any non-container input is
  orchestrated as a single ``raw`` stream;
* a **self-describing frame** (``ORC1``) recording the per-stream backend
  choices, with a whole-payload CRC32, whose decoder also accepts every
  pre-orchestrator single-codec blob (bare GLE frames, zlib streams,
  stored containers) for backward compatibility.

Reassembly is pure ordered concatenation, so a round trip is
byte-identical to the input container by construction — the lossy layers
above never observe the orchestration.
"""

from __future__ import annotations

import struct
import threading
import weakref
import zlib

import numpy as np

from repro import telemetry
from repro.telemetry import caches, recorder
from repro.common.bitpack import bit_length
from repro.common.errors import ConfigError, CorruptStreamError
from repro.lossless.gle import (MIN_RUN, PACK_BLOCK, _as_bytes_view,
                                gle_compress, gle_decompress)

__all__ = ["OrchestratorCodec", "orchestrate_compress",
           "orchestrate_decompress", "split_streams", "stream_stats",
           "choose_backend", "backend_names", "StreamStats",
           "plan_cache_stats", "never_expand_trips",
           "SAMPLE_CAP", "PARALLEL_MIN_BYTES", "PARALLEL_BLOCK"]

_MAGIC = b"ORC1"
# magic, version, flags, crc32, n_streams
_FRAME_HDR = struct.Struct("<4sBBIB")
_VERSION = 1
_STREAM_HDR = struct.Struct("<BQ")     # backend id, encoded length
#: frame flag: the input is an ``RPRC`` container whose own CRC32 (it
#: covers every byte after the 10-byte container prologue) carries the
#: integrity check; the frame's crc field is 0 and the decoder verifies
#: the container checksum instead of paying for a second one on encode.
_ORC_FLAG_EXTCRC = 1

#: bytes of each stream the cost model actually looks at
SAMPLE_CAP = 16384
#: below this size a stream is stored outright — no model, no backend
MIN_MODEL_BYTES = 64
#: ``zlib`` is only considered up to this size per profile (it is an
#: order of magnitude slower than GLE; past the cap the model must pick a
#: scan/pack backend or store)
ZLIB_CAP = {"fast": 0, "balanced": 4096, "ratio": None}
#: projected size fraction zlib must clear per profile. ``balanced``
#: demands a ~2x crunch: deflate is the slowest backend in the registry,
#: and shaving a couple hundred bytes off a small side stream costs more
#: wall time than the entire scan family spends on the payload.
_ZLIB_GATE = {"fast": 0.0, "balanced": 0.5, "ratio": 0.95}
#: deflate effort per profile; ``balanced`` takes level 1 — on the small
#: side streams zlib is allowed to touch, level 6 costs ~2x the time for
#: a few tens of bytes
_ZLIB_LEVEL = {"fast": 1, "balanced": 1, "ratio": 6}
#: plan-cache entries kept per codec instance (distinct segment layouts)
_PLAN_CACHE_MAX = 8
#: streams at least this large take the block-parallel GLE route
PARALLEL_MIN_BYTES = 32 * 1024 * 1024
#: block size of the parallel route (one pool task per block)
PARALLEL_BLOCK = 4 * 1024 * 1024
#: block size used to estimate the bit-width-pack saving from a sample
_PACK_EST_BLOCK = PACK_BLOCK
#: a backend must project at most this size fraction to beat "store" —
#: a projected saving under ~5% is not worth an encode pass
_STORE_BIAS = 0.95


# -- introspection (unified cache registry + doctor counters) ---------------

_stats_lock = threading.Lock()
#: header-fingerprint plan-cache counters, aggregated across every codec
#: instance (the cache dicts themselves stay per-instance)
_plan_stats = {"hits": 0, "misses": 0, "evictions": 0}
#: times the never-expand guard replaced a mispredicted backend by store
_never_expand = 0
#: live OrchestratorCodec instances, for plan-cache occupancy accounting
_live_codecs: "weakref.WeakSet[OrchestratorCodec]" = weakref.WeakSet()


_PLAN_EVENTS = {"hits": "hit", "misses": "miss", "evictions": "eviction"}


def _note_plan(event: str) -> None:
    with _stats_lock:
        _plan_stats[event] += 1
    telemetry.incr("lossless.plan_cache." + _PLAN_EVENTS[event])


def plan_cache_stats() -> dict[str, int]:
    """Aggregate hit/miss/eviction counters and occupancy of every live
    instance's header-fingerprint plan cache."""
    with _stats_lock:
        stats = dict(_plan_stats)
    size = size_bytes = 0
    for codec in list(_live_codecs):
        pc = codec._plan_cache
        if not pc:
            continue
        size += len(pc)
        for probes, spans, plan, names in pc.values():
            size_bytes += (sum(len(pb) for _off, pb in probes)
                           + 16 * len(spans)
                           + sum(len(nm) + 8 for nm in names))
    return {**stats, "size": size, "limit": _PLAN_CACHE_MAX,
            "size_bytes": size_bytes}


def never_expand_trips() -> int:
    """How often the never-expand guard overrode a mispredicted backend."""
    with _stats_lock:
        return _never_expand


def _note_never_expand() -> None:
    global _never_expand
    with _stats_lock:
        _never_expand += 1
    telemetry.incr("lossless.never_expand")
    recorder.count("lossless.never_expand")


caches.register("lossless.orchestrator_plan", plan_cache_stats)


# -- backend registry -------------------------------------------------------

def _store_encode(view, checksum):
    return view


def _blocks_encode(view, checksum, workers=None):
    """Block-parallel GLE: fixed blocks, ordered reassembly.

    The sub-frame is deterministic in the block split, so the bytes are
    identical whether the blocks were encoded serially or on a pool.
    """
    n = len(view)
    bounds = range(0, n, PARALLEL_BLOCK)
    blocks = [view[s:s + PARALLEL_BLOCK] for s in bounds]
    from repro.runtime.pool import resolve_workers, run_batch
    nworkers = resolve_workers(workers if workers is not None else "auto")
    if nworkers > 1 and len(blocks) > 1:
        payloads = [bytes(b) for b in blocks]
        encoded = run_batch(_gle_block_task, payloads, nworkers)
    else:
        encoded = [gle_compress(b, checksum=False) for b in blocks]
    parts = [struct.pack("<I", len(encoded))]
    parts += [struct.pack("<Q", len(e)) for e in encoded]
    return b"".join(parts) + b"".join(encoded)


def _gle_block_task(block: bytes) -> bytes:
    return gle_compress(block, checksum=False)


def _blocks_decode(blob):
    if len(blob) < 4:
        raise CorruptStreamError("truncated GLE block table")
    (n_blocks,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    if len(blob) < pos + 8 * n_blocks:
        raise CorruptStreamError("truncated GLE block table")
    lens = struct.unpack_from(f"<{n_blocks}Q", blob, pos)
    pos += 8 * n_blocks
    out = []
    for length in lens:
        if len(blob) < pos + length:
            raise CorruptStreamError("truncated GLE block payload")
        out.append(gle_decompress(blob[pos:pos + length]))
        pos += length
    if pos != len(blob):
        raise CorruptStreamError("trailing bytes after GLE blocks")
    return b"".join(out)


#: id -> (name, encode(view, checksum), decode(blob)); ids are wire format.
_BACKENDS = {
    0: ("store", _store_encode, bytes),
    1: ("gle", lambda v, c: gle_compress(v, checksum=c), gle_decompress),
    2: ("gle-rle", lambda v, c: gle_compress(v, pack=False, checksum=c),
        gle_decompress),
    3: ("gle-pack", lambda v, c: gle_compress(v, rle=False, checksum=c),
        gle_decompress),
    4: ("zlib", lambda v, c: zlib.compress(v, 6), zlib.decompress),
    5: ("gle-blocks", _blocks_encode, _blocks_decode),
}
_BACKEND_IDS = {name: bid for bid, (name, _, _) in _BACKENDS.items()}


def backend_names() -> list[str]:
    """The registered per-segment backend names."""
    return [name for name, _, _ in _BACKENDS.values()]


# -- container-aware stream splitting ---------------------------------------

_CONTAINER_MAGIC = b"RPRC"
_HUFF_HDR = struct.Struct("<QIIII")   # mirrors repro.huffman.codec._HDR


def _split_huffman(name: str, view: memoryview):
    """Split a chunked-Huffman segment at its fixed internal boundaries:
    header+code lengths, the per-chunk bit-length table, the payload."""
    if len(view) < _HUFF_HDR.size:
        return [(name, view)]
    _n, alphabet, _chunk, n_chunks, _crc = _HUFF_HDR.unpack_from(view, 0)
    head_end = _HUFF_HDR.size + alphabet
    table_end = head_end + 4 * n_chunks
    if table_end > len(view):
        return [(name, view)]
    return [(f"{name}.head", view[:head_end]),
            (f"{name}.chunks", view[head_end:table_end]),
            (f"{name}.payload", view[table_end:])]


def split_streams(data) -> list[tuple[str, memoryview]]:
    """Break input bytes into independently-treatable streams.

    An ``RPRC`` container yields its framing header plus one stream per
    segment (the Huffman segment further split into head / chunk-length
    table / payload); anything else is one ``raw`` stream. Concatenating
    the stream views always reproduces the input bytes exactly.
    """
    view = memoryview(data)
    if len(view) < 10 or bytes(view[:4]) != _CONTAINER_MAGIC:
        return [("raw", view)]
    try:
        # walk the container layout far enough to find payload offsets;
        # full validation (CRC, JSON) stays with parse_container
        pos = 10                       # magic, version, crc32
        (clen,) = struct.unpack_from("<B", view, pos)
        pos += 1 + clen
        (mlen,) = struct.unpack_from("<I", view, pos)
        pos += 4 + mlen
        (nseg,) = struct.unpack_from("<H", view, pos)
        pos += 2
        table = []
        for _ in range(nseg):
            (nlen,) = struct.unpack_from("<B", view, pos)
            name = bytes(view[pos + 1:pos + 1 + nlen]).decode("utf-8")
            pos += 1 + nlen
            (slen,) = struct.unpack_from("<Q", view, pos)
            pos += 8
            table.append((name, slen))
        streams = [("header", view[:pos])]
        for name, slen in table:
            if pos + slen > len(view):
                raise ValueError("truncated segment")
            seg = view[pos:pos + slen]
            pos += slen
            if name == "huffman":
                streams.extend(_split_huffman(name, seg))
            else:
                streams.append((name, seg))
        if pos != len(view):
            raise ValueError("trailing bytes")
        return streams
    except (struct.error, ValueError, UnicodeDecodeError):
        return [("raw", view)]


# -- sampling cost model ----------------------------------------------------

class StreamStats:
    """Statistics of a bounded prefix sample of one stream."""

    __slots__ = ("n", "entropy_bits", "run_frac", "top_word_frac",
                 "pack_frac")

    def __init__(self, n, entropy_bits, run_frac, top_word_frac, pack_frac):
        self.n = n
        self.entropy_bits = entropy_bits      # bits/byte over the sample
        self.run_frac = run_frac              # word mass inside long runs
        self.top_word_frac = top_word_frac    # most common word's share
        self.pack_frac = pack_frac            # est. packed size fraction

    def __repr__(self):
        return (f"StreamStats(n={self.n}, H={self.entropy_bits:.2f}, "
                f"runs={self.run_frac:.2f}, top={self.top_word_frac:.2f}, "
                f"pack={self.pack_frac:.2f})")


#: power-of-two bin edges turning a block max byte into its bit width
_WIDTH_BINS = 2 ** np.arange(8)


def _entropy_bits(sample: np.ndarray) -> float:
    """Shannon entropy (bits/byte) of a byte sample."""
    counts = np.bincount(sample, minlength=256)
    p = counts[counts > 0] / sample.size
    return float(-(p * np.log2(p)).sum())


def _run_frac(words: np.ndarray) -> float:
    """Fraction of words inside runs of length >= ``MIN_RUN``.

    Pure reductions — a run of length ``L`` covers ``L - MIN_RUN + 1``
    positions of the ANDed shifted-equality mask plus ``MIN_RUN - 1`` per
    rising edge, so two ``count_nonzero`` calls recover the exact mass
    without compacting segment boundaries.
    """
    n = words.size
    if n < MIN_RUN:
        return 0.0
    eq = words[1:] == words[:-1]
    m = n - MIN_RUN + 1
    runm = eq[:m].copy()
    for k in range(1, MIN_RUN - 1):
        runm &= eq[k:m + k]
    inside = int(np.count_nonzero(runm))
    if not inside:
        return 0.0
    blocks = int(np.count_nonzero(runm[1:] & ~runm[:-1])) + int(runm[0])
    return float((inside + (MIN_RUN - 1) * blocks) / n)


def _top_word_frac(words: np.ndarray) -> float:
    """Most common word's share over a small sub-sample (unique sorts)."""
    sub = words[:1024]
    if sub.size == 0:
        return 0.0
    _, sub_counts = np.unique(sub, return_counts=True)
    return float(sub_counts.max() / sub.size)


def _pack_frac(sample: np.ndarray) -> float:
    """Estimated bit-width-pack size fraction: mean block width / 8."""
    nb = sample.size // _PACK_EST_BLOCK
    if nb:
        block_max = sample[:nb * _PACK_EST_BLOCK] \
            .reshape(nb, _PACK_EST_BLOCK).max(axis=1)
        return float(np.digitize(block_max, _WIDTH_BINS).mean() / 8.0)
    return int(sample.max()).bit_length() / 8.0


def stream_stats(data, sample_cap: int = SAMPLE_CAP) -> StreamStats:
    """Measure every cost-model signal over a bounded prefix sample.

    The encode hot path computes these lazily (a signal the decision tree
    never reaches is never measured); this eager variant backs tests,
    diagnostics and the benchmark's per-segment report.
    """
    view = memoryview(data)
    n = len(view)
    sample = np.frombuffer(view[:min(n, sample_cap)], dtype=np.uint8)
    if sample.size == 0:
        return StreamStats(n, 8.0, 0.0, 0.0, 1.0)
    words = sample[:sample.size - (sample.size % 4)].view(np.uint32)
    return StreamStats(n, _entropy_bits(sample), _run_frac(words),
                       _top_word_frac(words), _pack_frac(sample))


def _zlib_est(entropy_bits: float) -> float:
    """Projected deflate size fraction from byte entropy.

    The 1.03 factor and the constant calibrate deflate's literal-coding
    overhead: near-incompressible streams (anchors) land *above* the
    entropy bound and must fail the store bias rather than waste the
    slowest encode in the registry on a ~4% saving.
    """
    return entropy_bits / 8.0 * 1.03 + 0.03


def _pick(n, run_frac, pack_frac, top_word_frac, entropy_bits, profile):
    """Shared two-tier decision tree over lazily-supplied signals.

    Every signal argument is a zero-argument callable, evaluated only on
    the branches that consult it — the encode hot path passes closures
    over the sample, the eager :func:`choose_backend` passes precomputed
    stats.

    Below the profile's zlib cap, deflate (with its own Huffman stage)
    dominates the scan/pack family on ratio at negligible absolute cost,
    so byte entropy alone decides store-vs-zlib. Above the cap only the
    GPU-style scan backends are admissible (plus zlib at any size for
    the ``ratio`` profile, which opts into the speed hit).
    """
    cap = ZLIB_CAP[profile]
    if cap is not None and n <= cap:
        return "zlib" if _zlib_est(entropy_bits()) <= _ZLIB_GATE[profile] \
            else "store"
    candidates = {"store": 1.0}
    rf = run_frac()
    if rf >= 0.05:
        est_rle = 1.0 - max(0.0, rf - 2.0 * MIN_RUN / n)
        # pack the RLE residue too when the sample says literals are
        # narrow or one word dominates (its removal leaves low widths)
        pf = pack_frac()
        if pf < 0.95 or top_word_frac() >= 0.75:
            candidates["gle"] = est_rle * min(pf + 1.0 / 512.0, 1.0)
        else:
            candidates["gle-rle"] = est_rle
    else:
        est_pack = pack_frac() + 1.0 / 512.0
        if est_pack < 0.97:
            candidates["gle-pack"] = est_pack
    if cap is None:
        candidates["zlib"] = _zlib_est(entropy_bits())
    best = min(candidates, key=lambda k: (candidates[k], k != "store"))
    if candidates[best] > _STORE_BIAS:
        return "store"          # projected saving too thin for a pass
    if best in ("gle", "gle-rle", "gle-pack") and n >= PARALLEL_MIN_BYTES:
        return "gle-blocks"
    return best


def choose_backend(stats: StreamStats, profile: str = "balanced") -> str:
    """Pick a backend from the sampled signals — no trial encodes.

    The decision minimizes the *estimated* output size among the backends
    whose speed class the profile admits, with a store bias: a backend
    must promise a real saving to be worth its pass.
    """
    if profile not in ZLIB_CAP:
        raise ConfigError(f"unknown orchestrator profile {profile!r}; "
                          f"choose from {sorted(ZLIB_CAP)}")
    if stats.n < MIN_MODEL_BYTES:
        return "store"
    return _pick(stats.n, lambda: stats.run_frac, lambda: stats.pack_frac,
                 lambda: stats.top_word_frac, lambda: stats.entropy_bits,
                 profile)


def _decide(view: memoryview, profile: str) -> str:
    """Hot-path backend choice: sample once, measure signals lazily.

    Decision-equivalent to ``choose_backend(stream_stats(view), profile)``
    but a signal the tree never reaches is never measured — small streams
    pay only the entropy histogram, large streams never pay it (in the
    default profile) because zlib is capped out at their size.
    """
    n = len(view)
    if n < MIN_MODEL_BYTES:
        return "store"
    sample = np.frombuffer(view[:min(n, SAMPLE_CAP)], dtype=np.uint8)
    words = sample[:sample.size - (sample.size % 4)].view(np.uint32)
    return _pick(n, lambda: _run_frac(words), lambda: _pack_frac(sample),
                 lambda: _top_word_frac(words),
                 lambda: _entropy_bits(sample), profile)


# -- frame encode / decode --------------------------------------------------

def orchestrate_compress(data, *, profile: str = "balanced",
                         workers=None, plan_cache: dict | None = None)\
        -> bytes:
    """Compress ``data`` with a per-stream backend choice (``ORC1`` frame).

    ``data`` may be ``bytes``, ``memoryview`` or a NumPy buffer. For an
    ``RPRC`` container input, integrity rides on the container's own
    CRC32 (re-verified by the decoder); anything else gets a whole-input
    CRC32 in the frame. Per-stream GLE frames always skip their own
    checksums.

    ``plan_cache`` (managed by :class:`OrchestratorCodec`) remembers, per
    distinct container shape, both the backend choices and the segment
    spans. A warm hit is validated by fingerprint — the container's
    framing header plus a small probe of each Huffman sub-header must
    match byte-for-byte — which pins the segment table, so repeated
    compressions of same-shaped containers (slab loops, timestep sweeps)
    skip the split *and* the sampling pass. Any layout change misses the
    fingerprint and re-samples; the never-expand guard below keeps a
    stale plan safe at worst suboptimal.
    """
    if profile not in ZLIB_CAP:
        raise ConfigError(f"unknown orchestrator profile {profile!r}; "
                          f"choose from {sorted(ZLIB_CAP)}")
    view = memoryview(_as_bytes_view(data))
    plan = names = None
    key = None
    if plan_cache is not None:
        key = ("fp", len(view), profile)
        hit = plan_cache.get(key)
        if hit is not None:
            probes, spans, plan, names = hit
            if all(view[off:off + len(pb)] == pb for off, pb in probes):
                streams = [(None, view[s:e]) for s, e in spans]
                flags, crc = _ORC_FLAG_EXTCRC, 0
            else:
                plan = names = None
    cached = plan is not None
    if plan_cache is not None:
        _note_plan("hits" if cached else "misses")
    if not cached:
        streams = split_streams(view)
        if len(view) >= 10 and view[:4] == _CONTAINER_MAGIC \
                and streams[0][0] != "raw":
            flags, crc = _ORC_FLAG_EXTCRC, 0
        else:
            flags, crc = 0, zlib.crc32(view)
    with telemetry.span("lossless.orchestrate", profile=profile,
                        n_streams=len(streams), bytes_in=len(view),
                        plan_cached=cached) as root:
        if not cached:
            plan = [_decide(sv, profile) for _, sv in streams]
            names = []
            for name, _ in streams:
                nb = name.encode("utf-8")
                names.append(struct.pack("<B", len(nb)) + nb)
            if plan_cache is not None and flags & _ORC_FLAG_EXTCRC:
                # fingerprint: the framing header determines the segment
                # table; the Huffman sub-split additionally depends on the
                # first _HUFF_HDR bytes of each huffman segment, so probe
                # those too. A probe mismatch just falls back to a cold
                # pass — and even a hypothetical stale split stays
                # byte-correct, because decode is ordered concatenation.
                spans = []
                pos = 0
                probes = [(0, bytes(streams[0][1]))]
                for name, sv in streams:
                    spans.append((pos, pos + len(sv)))
                    if name.endswith(".head"):
                        probes.append(
                            (pos, bytes(sv[:_HUFF_HDR.size])))
                    pos += len(sv)
                if len(plan_cache) >= _PLAN_CACHE_MAX:
                    plan_cache.pop(next(iter(plan_cache)))
                    _note_plan("evictions")
                plan_cache[key] = (probes, spans, plan, names)
        zlevel = _ZLIB_LEVEL[profile]
        table: list[bytes] = []
        payloads = []
        used: list[str] = []
        for i, (name, sv) in enumerate(streams):
            backend = plan[i]
            # per-segment spans ride only on the sampling pass; the warm
            # plan-hit path keeps just counters and the root span
            sp = cm = None
            if not cached:
                cm = telemetry.span("lossless.segment", segment=name,
                                    backend=backend, bytes_in=len(sv))
                sp = cm.__enter__()
            bid = _BACKEND_IDS[backend]
            if backend == "gle-blocks":
                enc = _blocks_encode(sv, False, workers)
            elif backend == "zlib":
                enc = zlib.compress(sv, zlevel)
            else:
                enc = _BACKENDS[bid][1](sv, False)
            if len(enc) >= len(sv) and backend != "store":
                # the model mispredicted; never ship an expansion
                backend, bid, enc = "store", 0, sv
                _note_never_expand()
                if sp is not None:
                    sp.set(backend="store")
            if cm is not None:
                sp.set(bytes_out=len(enc))
                cm.__exit__(None, None, None)
            telemetry.incr(f"lossless.backend.{backend}")
            used.append(backend)
            table.append(names[i] + _STREAM_HDR.pack(bid, len(enc)))
            payloads.append(enc)
        out = b"".join(
            [_FRAME_HDR.pack(_MAGIC, _VERSION, flags, crc, len(streams))]
            + table + payloads)
        root.set(bytes_out=len(out))
    # flight-recorder context propagation: the enclosing pipeline run (if
    # any) records which per-segment plan this lossless pass chose
    recorder.annotate(lossless_profile=profile, lossless_plan=used,
                      lossless_plan_cached=cached)
    return out


def _decode_legacy(blob: bytes) -> bytes:
    """Decode a pre-orchestrator single-codec blob.

    Pipelines before the per-segment frame wrapped the whole container
    with exactly one codec; those blobs are recognized by their own
    magic: a bare GLE frame, a stored ``RPRC`` container, or a zlib
    stream.
    """
    if blob[:4] == b"GLE1":
        return gle_decompress(blob)
    if blob[:4] == _CONTAINER_MAGIC:
        return bytes(blob)
    try:
        return zlib.decompress(blob)
    except zlib.error:
        raise CorruptStreamError(
            "not an orchestrated frame nor a known single-codec blob")


#: frames at or below this size take the dispatch-free decode path: on
#: tiny containers (the 64**3 single-field case) the per-segment span
#: bookkeeping and name decodes cost more than the byte decoding itself,
#: which is how orchestrated decode previously lost to bare GLE
_SMALL_DECODE_BYTES = 1 << 16


def orchestrate_decompress(blob) -> bytes:
    """Invert :func:`orchestrate_compress`; accepts legacy blobs too."""
    blob = bytes(blob)
    if blob[:4] != _MAGIC:
        return _decode_legacy(blob)
    if len(blob) < _FRAME_HDR.size:
        raise CorruptStreamError("truncated orchestrator frame")
    _, version, flags, crc, n_streams = _FRAME_HDR.unpack_from(blob, 0)
    if version != _VERSION:
        raise CorruptStreamError(
            f"unsupported orchestrator frame version {version}")
    pos = _FRAME_HDR.size
    table = []
    for _ in range(n_streams):
        if pos + 1 > len(blob):
            raise CorruptStreamError("truncated orchestrator stream table")
        nlen = blob[pos]
        pos += 1
        raw_name = blob[pos:pos + nlen]     # decoded to str lazily: only
        pos += nlen                         # spans and errors need text
        if pos + _STREAM_HDR.size > len(blob):
            raise CorruptStreamError("truncated orchestrator stream table")
        bid, enc_len = _STREAM_HDR.unpack_from(blob, pos)
        pos += _STREAM_HDR.size
        if bid not in _BACKENDS:
            raise CorruptStreamError(
                f"unknown orchestrator backend id {bid}")
        table.append((raw_name, bid, enc_len))
    if len(blob) <= _SMALL_DECODE_BYTES:
        # small-frame fast path: identical decoding and CRC verification,
        # no per-segment span setup or name decoding
        telemetry.incr("lossless.small_decode")
        parts = []
        for raw_name, bid, enc_len in table:
            if pos + enc_len > len(blob):
                raise CorruptStreamError(
                    "truncated orchestrator stream "
                    f"{raw_name.decode('utf-8', 'replace')!r}")
            try:
                parts.append(_BACKENDS[bid][2](blob[pos:pos + enc_len]))
            except zlib.error as exc:
                raise CorruptStreamError(
                    f"stream {raw_name.decode('utf-8', 'replace')!r} "
                    f"failed to decode: {exc}")
            pos += enc_len
        return _finish_frame(parts, pos, blob, flags, crc)
    parts = []
    with telemetry.span("lossless.orchestrate_decode",
                        n_streams=n_streams, bytes_in=len(blob)) as root:
        for raw_name, bid, enc_len in table:
            name = raw_name.decode("utf-8", "replace")
            if pos + enc_len > len(blob):
                raise CorruptStreamError(
                    f"truncated orchestrator stream {name!r}")
            bname, _, decode = _BACKENDS[bid]
            with telemetry.span("lossless.segment", segment=name,
                                backend=bname, bytes_in=enc_len) as sp:
                try:
                    parts.append(decode(blob[pos:pos + enc_len]))
                except zlib.error as exc:
                    raise CorruptStreamError(
                        f"stream {name!r} failed to decode: {exc}")
                sp.set(bytes_out=len(parts[-1]))
            pos += enc_len
        out = _finish_frame(parts, pos, blob, flags, crc)
        root.set(bytes_out=len(out))
    return out


def _finish_frame(parts: list, pos: int, blob: bytes, flags: int,
                  crc: int) -> bytes:
    """Shared frame-tail validation: exact length, then payload CRC."""
    if pos != len(blob):
        raise CorruptStreamError(
            "trailing bytes after orchestrator streams")
    out = b"".join(parts)
    if flags & _ORC_FLAG_EXTCRC:
        # integrity was delegated to the container's own checksum
        if (len(out) < 10 or out[:4] != _CONTAINER_MAGIC
                or zlib.crc32(out[10:])
                != struct.unpack_from("<I", out, 6)[0]):
            raise CorruptStreamError(
                "orchestrator payload checksum mismatch "
                "(container CRC, corrupt frame)")
    elif zlib.crc32(out) != crc:
        raise CorruptStreamError(
            "orchestrator payload checksum mismatch (corrupt frame)")
    return out


class OrchestratorCodec:
    """Lossless-codec-protocol wrapper (registered as ``"auto"``).

    Parameters
    ----------
    profile:
        ``"fast"`` (GLE family only), ``"balanced"`` (zlib admitted for
        small streams — the default), ``"ratio"`` (zlib considered at any
        size).
    workers:
        Worker knob for the block-parallel route on oversized streams
        (``None`` lets the runtime decide; the frame bytes do not depend
        on it).
    plan_cache:
        Reuse backend choices across compressions whose segment layout
        (stream names and lengths) repeats — the slab-loop case, where
        sampling every container again buys nothing. Layout changes
        re-sample; the never-expand guard bounds a stale plan's cost at
        a suboptimal pick. ``False`` samples every call.
    """

    name = "auto"

    def __init__(self, profile: str = "balanced", workers=None,
                 plan_cache: bool = True):
        if profile not in ZLIB_CAP:
            raise ConfigError(f"unknown orchestrator profile {profile!r}; "
                              f"choose from {sorted(ZLIB_CAP)}")
        self.profile = profile
        self.workers = workers
        self._plan_cache: dict | None = {} if plan_cache else None
        _live_codecs.add(self)

    def compress_bytes(self, data) -> bytes:
        return orchestrate_compress(data, profile=self.profile,
                                    workers=self.workers,
                                    plan_cache=self._plan_cache)

    def decompress_bytes(self, blob) -> bytes:
        return orchestrate_decompress(blob)
