"""Lossless de-redundancy encoders.

Three encoders live here, each matching a role from the paper:

* :mod:`repro.lossless.gle` — "GPU Lossless Encoder", the stand-in for
  NVIDIA Bitcomp-lossless (§VI-B): a pattern-canceling pass over already
  entropy-coded bytes (word run-length + per-block bit-width reduction),
  built from scan/compact primitives that map 1:1 onto GPU kernels.
* :mod:`repro.lossless.bitshuffle` — the bit-transpose stage of FZ-GPU.
* :mod:`repro.lossless.zstd_like` — zlib wrapper standing in for the Zstd
  stage of the CPU compressors (SZ3/QoZ).

All expose ``compress_bytes`` / ``decompress_bytes`` and are registered by
name for pipeline configuration.
"""

from repro.lossless.gle import GLECodec, gle_compress, gle_decompress
from repro.lossless.bitshuffle import bitshuffle, bitunshuffle
from repro.lossless.zstd_like import ZlibCodec

from repro.common.errors import ConfigError


class _Passthrough:
    """No-op lossless stage (the "without Bitcomp" pipeline variant)."""

    name = "none"

    def compress_bytes(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress_bytes(self, blob: bytes) -> bytes:
        return bytes(blob)


_CODECS = {
    "none": _Passthrough,
    "gle": GLECodec,
    "zlib": ZlibCodec,
}


def get_lossless(name: str):
    """Instantiate a registered lossless codec by name."""
    try:
        return _CODECS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown lossless codec {name!r}; choose from "
            f"{sorted(_CODECS)}")


__all__ = [
    "GLECodec",
    "gle_compress",
    "gle_decompress",
    "bitshuffle",
    "bitunshuffle",
    "ZlibCodec",
    "get_lossless",
]
