"""Lossless de-redundancy encoders.

Four encoders live here, each matching a role from the paper:

* :mod:`repro.lossless.gle` — "GPU Lossless Encoder", the stand-in for
  NVIDIA Bitcomp-lossless (§VI-B): a pattern-canceling pass over already
  entropy-coded bytes (word run-length + per-block bit-width reduction),
  built from scan/compact primitives that map 1:1 onto GPU kernels.
* :mod:`repro.lossless.orchestrator` — the segment-aware layer above it:
  a sampling cost model picks one backend (``gle``/``gle-rle``/
  ``gle-pack``/``zlib``/``store``) *per container stream* instead of one
  codec for the whole archive. Registered as ``"auto"``, the pipeline
  default.
* :mod:`repro.lossless.bitshuffle` — the bit-transpose stage of FZ-GPU.
* :mod:`repro.lossless.zstd_like` — zlib wrapper standing in for the Zstd
  stage of the CPU compressors (SZ3/QoZ).

All expose ``compress_bytes`` / ``decompress_bytes`` and are registered by
name for pipeline configuration.
"""

from repro.lossless.gle import GLECodec, gle_compress, gle_decompress
from repro.lossless.bitshuffle import bitshuffle, bitunshuffle
from repro.lossless.zstd_like import ZlibCodec
from repro.lossless.orchestrator import (OrchestratorCodec,
                                         orchestrate_compress,
                                         orchestrate_decompress)

from repro.common.errors import ConfigError


class _Passthrough:
    """No-op lossless stage (the "without Bitcomp" pipeline variant)."""

    name = "none"

    def compress_bytes(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress_bytes(self, blob: bytes) -> bytes:
        return bytes(blob)


_CODECS = {
    "none": _Passthrough,
    "gle": GLECodec,
    "zlib": ZlibCodec,
    "auto": OrchestratorCodec,
}


def get_lossless(name: str, **kwargs):
    """Instantiate a registered lossless codec by name.

    ``kwargs`` forward to the codec constructor (e.g. the orchestrator's
    ``profile=``/``workers=`` knobs, ``ZlibCodec(level=...)``).
    """
    try:
        cls = _CODECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown lossless codec {name!r}; choose from "
            f"{sorted(_CODECS)}")
    return cls(**kwargs)


__all__ = [
    "GLECodec",
    "gle_compress",
    "gle_decompress",
    "OrchestratorCodec",
    "orchestrate_compress",
    "orchestrate_decompress",
    "bitshuffle",
    "bitunshuffle",
    "ZlibCodec",
    "get_lossless",
]
