"""Fig. 8: decompression quality at an *aligned* compression ratio.

The paper fixes one compression ratio per snapshot (e.g. ~27 on JHTDB,
~80 on S3D-CO), tunes each compressor to hit it, and compares the visual
quality of the reconstructions. Offline, the visualization itself is a
slice dump; the quantitative comparison is PSNR and SSIM at the aligned
CR — the paper's headline being cuSZ-i far ahead (e.g. 70.2 dB vs 62.2 dB
second-best on JHTDB; 81.3 dB vs 37.8 dB on S3D).

Each compressor's knob (eb or rate) is bisected until the achieved CR is
within tolerance of the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.metrics import psnr, ssim_3d
from repro.datasets import load_field
from repro.experiments.harness import format_table
from repro.registry import get_compressor
from repro.tools import calibrate_to_ratio

__all__ = ["run", "Fig8Result", "calibrate_to_ratio"]

CODECS = ("cuszi", "cusz", "cuszp", "cuszx", "fzgpu", "cuzfp")



@dataclass
class Fig8Result:
    #: {(snapshot, codec): dict(cr, psnr, ssim, knob)}
    cells: dict = field(default_factory=dict)
    slices: dict = field(default_factory=dict)  # center-slice arrays

    def format(self) -> str:
        parts = []
        snaps = sorted({k[0] for k in self.cells})
        for snap in snaps:
            headers = ["codec", "CR", "psnr dB", "ssim", "knob"]
            rows = []
            for (s, codec), d in sorted(self.cells.items()):
                if s != snap:
                    continue
                rows.append([codec, f"{d['cr']:.1f}", f"{d['psnr']:.2f}",
                             f"{d['ssim']:.4f}", f"{d['knob']:.2e}"])
            parts.append(format_table(
                headers, rows,
                title=f"Fig. 8 — fixed-CR quality on {snap}"))
        return "\n\n".join(parts)


def run(scale: str = "small", save_slices: bool = False) -> Fig8Result:
    """Regenerate Fig. 8's aligned-CR comparison."""
    cases = [("jhtdb/u", load_field("jhtdb", "u"), 27.0),
             ("s3d/CO", load_field("s3d", "CO"), 80.0)]
    if scale == "small":
        cases = cases[:1]
    result = Fig8Result()
    for snap, data, target in cases:
        for codec in CODECS:
            blob, cr, knob = calibrate_to_ratio(codec, data, target)
            comp = get_compressor(codec)
            recon = comp.decompress(blob)
            result.cells[(snap, codec)] = {
                "cr": cr, "knob": knob,
                "psnr": psnr(data, recon),
                "ssim": ssim_3d(data, recon),
            }
            if save_slices:
                mid = data.shape[0] // 2
                result.slices[(snap, codec)] = recon[mid].copy()
        if save_slices:
            result.slices[(snap, "original")] = data[data.shape[0] // 2]
    return result


if __name__ == "__main__":
    print(run().format())
