"""Table III: fixed-error-bound compression ratios, without and with the
de-redundancy pass (GLE as the Bitcomp-lossless stand-in).

For each dataset and error bound, the compression ratio is the
size-weighted aggregate over the dataset's fields (total original bytes /
total compressed bytes), mirroring how the paper reports per-dataset CRs
over multi-file datasets. The cuSZ-i advantage column reproduces the
paper's "Advant.%" = (CR_cuszi / best-other - 1) * 100.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import load_field
from repro.experiments.harness import (EB_GRID, format_table,
                                       run_codec_batch, scale_fields)

__all__ = ["run", "Table3Result", "CODECS"]

#: the Table III compressor columns (cuZFP excluded: no absolute-eb mode)
CODECS = ("cusz", "cuszp", "cuszx", "fzgpu", "cuszi")


@dataclass
class Table3Result:
    """All Table III cells: {(dataset, eb, lossless, codec): ratio}."""

    cells: dict = field(default_factory=dict)
    scale: str = "small"

    def ratio(self, dataset: str, eb: float, lossless: str,
              codec: str) -> float:
        return self.cells[(dataset, eb, lossless, codec)]

    def advantage(self, dataset: str, eb: float, lossless: str) -> float:
        """cuSZ-i's % advantage over the best other codec (paper col 6/vi)."""
        others = [self.ratio(dataset, eb, lossless, c) for c in CODECS
                  if c != "cuszi"]
        best = max(others)
        return (self.ratio(dataset, eb, lossless, "cuszi") / best - 1) * 100

    def format(self) -> str:
        parts = []
        for lossless, label in (("none", "without de-redundancy (cols 1-6)"),
                                ("gle", "with GLE/Bitcomp (cols i-vi)")):
            headers = ["dataset", "eb"] + list(CODECS) + ["Advant.%"]
            rows = []
            datasets = sorted({k[0] for k in self.cells})
            for ds in datasets:
                for eb in EB_GRID:
                    row = [ds, f"{eb:.0e}"]
                    for c in CODECS:
                        row.append(f"{self.ratio(ds, eb, lossless, c):.1f}")
                    row.append(f"{self.advantage(ds, eb, lossless):+.1f}")
                    rows.append(row)
            parts.append(format_table(headers, rows,
                                      title=f"Table III — {label}"))
        return "\n\n".join(parts)


def run(scale: str = "small", ebs=EB_GRID,
        workers: int | str | None = None) -> Table3Result:
    """Regenerate Table III.

    ``workers`` fans each dataset's fields out across processes
    (:mod:`repro.runtime`); the cells are identical for any value.
    """
    result = Table3Result(scale=scale)
    pairs = scale_fields(scale)
    by_dataset: dict[str, list[str]] = {}
    for ds, fld in pairs:
        by_dataset.setdefault(ds, []).append(fld)
    for ds, flds in by_dataset.items():
        fields_data = [(ds, fld, load_field(ds, fld)) for fld in flds]
        for eb in ebs:
            for lossless in ("none", "gle"):
                for codec in CODECS:
                    runs = run_codec_batch(codec, fields_data, eb=eb,
                                           lossless=lossless, verify=False,
                                           workers=workers)
                    orig = sum(r.original_bytes for r in runs)
                    comp = sum(r.compressed_bytes for r in runs)
                    result.cells[(ds, eb, lossless, codec)] = orig / comp
    return result


if __name__ == "__main__":
    print(run().format())
