"""Throughput-ratio Pareto front (paper §VII-C.4, closing claim).

The paper argues cuSZ-i "established the Pareto front in scenarios of
transferring data over bandwidth-limited channels": no other GPU
compressor offers both a higher ratio and a higher throughput. This module
computes, per dataset and error bound, each compressor's (compression
throughput, compression ratio) point on the modelled A100 and reports
which points are Pareto-optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import load_field
from repro.experiments.harness import format_table, run_codec
from repro.gpu import A100_THETA, estimate_throughput

__all__ = ["run", "ParetoResult", "pareto_front"]

CODECS = ("cuszi", "cusz", "cuszp", "cuszx", "fzgpu")


def pareto_front(points: dict[str, tuple[float, float]]) -> set[str]:
    """Names whose (throughput, ratio) point no other point dominates."""
    front = set()
    for name, (tp, cr) in points.items():
        dominated = any(
            otp >= tp and ocr >= cr and (otp > tp or ocr > cr)
            for oname, (otp, ocr) in points.items() if oname != name)
        if not dominated:
            front.add(name)
    return front


@dataclass
class ParetoResult:
    #: {(dataset, eb, codec): (throughput GB/s, ratio)}
    points: dict = field(default_factory=dict)
    #: {(dataset, eb): set of Pareto-optimal codec names}
    fronts: dict = field(default_factory=dict)

    def format(self) -> str:
        headers = ["dataset", "eb", "codec", "GB/s", "ratio", "on front"]
        rows = []
        for (ds, eb, codec), (tp, cr) in sorted(self.points.items()):
            on = codec in self.fronts[(ds, eb)]
            rows.append([ds, f"{eb:.0e}", codec, f"{tp:.0f}",
                         f"{cr:.1f}", "yes" if on else ""])
        return format_table(
            headers, rows,
            title="Throughput-ratio Pareto points (A100 model, with GLE)")


def run(scale: str = "small", ebs=(1e-2, 1e-3)) -> ParetoResult:
    """Compute the Pareto analysis on representative fields."""
    reps = [("jhtdb", "u"), ("qmcpack", "einspline")]
    if scale == "full":
        reps += [("miranda", "density"), ("nyx", "baryon_density"),
                 ("rtm", "snap1400"), ("s3d", "CO")]
    n_model = 512 ** 3
    result = ParetoResult()
    for ds, fld in reps:
        data = load_field(ds, fld)
        for eb in ebs:
            pts = {}
            for codec in CODECS:
                r = run_codec(codec, data, dataset=ds, field=fld, eb=eb,
                              lossless="gle", verify=False)
                cb = int(n_model * 4 / r.ratio)
                tp = estimate_throughput(codec, "compress", n_model, cb,
                                         A100_THETA,
                                         lossless="gle").throughput_gbps
                pts[codec] = (tp, r.ratio)
                result.points[(ds, eb, codec)] = (tp, r.ratio)
            result.fronts[(ds, eb)] = pareto_front(pts)
    return result


if __name__ == "__main__":
    print(run().format())
