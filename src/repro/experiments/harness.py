"""Shared experiment plumbing: codec runs, field selection, table text."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.common.errors import ConfigError
from repro.common.metrics import bit_rate, max_abs_error, psnr
from repro.datasets import get_dataset, dataset_names
from repro.registry import get_compressor

__all__ = ["CompressionRun", "run_codec", "run_codec_batch",
           "scale_fields", "EB_GRID", "format_table"]

#: the paper's Table III error bounds (value-range relative)
EB_GRID = (1e-2, 1e-3, 1e-4)


@dataclass
class CompressionRun:
    """Measured outcome of one (codec, field, settings) run."""

    codec: str
    dataset: str
    field: str
    eb: float | None
    lossless: str
    compressed_bytes: int
    n_elements: int
    original_bytes: int
    psnr: float
    max_err: float

    @property
    def ratio(self) -> float:
        return self.original_bytes / self.compressed_bytes

    @property
    def bit_rate(self) -> float:
        return bit_rate(self.n_elements, self.compressed_bytes)


def run_codec(codec: str, data: np.ndarray, *, dataset: str = "",
              field: str = "", eb: float | None = None,
              lossless: str = "none", mode: str = "rel",
              verify: bool = True, **kwargs) -> CompressionRun:
    """Compress + decompress one field, measuring size and quality.

    ``eb=None`` is for fixed-rate codecs (pass ``rate=`` through kwargs).
    """
    if eb is not None:
        comp = get_compressor(codec, eb=eb, mode=mode, lossless=lossless,
                              **kwargs)
    else:
        comp = get_compressor(codec, lossless=lossless, **kwargs)
    with telemetry.span("experiment.compress", codec=codec,
                        dataset=dataset, field=field,
                        bytes_in=data.nbytes) as sp:
        blob = comp.compress(data)
        sp.set(bytes_out=len(blob))
    telemetry.incr("experiment.runs")
    if verify:
        with telemetry.span("experiment.decompress", codec=codec,
                            dataset=dataset, field=field,
                            bytes_in=len(blob)):
            recon = comp.decompress(blob)
        quality = psnr(data, recon)
        err = max_abs_error(data, recon)
    else:
        quality = float("nan")
        err = float("nan")
    return CompressionRun(codec=codec, dataset=dataset, field=field,
                          eb=eb, lossless=lossless,
                          compressed_bytes=len(blob),
                          n_elements=data.size,
                          original_bytes=data.nbytes,
                          psnr=quality, max_err=err)


def run_codec_batch(codec: str, fields: list[tuple[str, str, np.ndarray]],
                    *, eb: float | None = None, lossless: str = "none",
                    mode: str = "rel", verify: bool = True,
                    workers: int | str | None = None,
                    transport: str | None = None,
                    **kwargs) -> list[CompressionRun]:
    """Batch form of :func:`run_codec` over many ``(dataset, field,
    data)`` triples, fanned out via :mod:`repro.runtime`.

    Results are identical to calling :func:`run_codec` per field (same
    blobs, same metrics) — ``workers`` only changes where the codec work
    runs and ``transport`` which pool transport carries the payloads
    (``"shm"``/``"pickle"``, default auto). The default stays serial.
    """
    from repro.runtime import map_compress, map_decompress
    fields = list(fields)
    codec_kwargs = dict(kwargs, lossless=lossless)
    if eb is not None:
        codec_kwargs.update(eb=eb, mode=mode)
    with telemetry.span("experiment.batch", codec=codec,
                        n_fields=len(fields)):
        blobs = map_compress([data for _, _, data in fields], codec,
                             workers=workers, transport=transport,
                             **codec_kwargs)
        telemetry.incr("experiment.runs", len(fields))
        if verify:
            recons = map_decompress(blobs, workers=workers,
                                    transport=transport)
        else:
            recons = [None] * len(fields)
    runs = []
    for (dataset, field, data), blob, recon in zip(fields, blobs, recons):
        if recon is not None:
            quality = psnr(data, recon)
            err = max_abs_error(data, recon)
        else:
            quality = float("nan")
            err = float("nan")
        runs.append(CompressionRun(
            codec=codec, dataset=dataset, field=field, eb=eb,
            lossless=lossless, compressed_bytes=len(blob),
            n_elements=data.size, original_bytes=data.nbytes,
            psnr=quality, max_err=err))
    return runs


def scale_fields(scale: str) -> list[tuple[str, str]]:
    """(dataset, field) pairs to evaluate at a given scale.

    ``small``: one representative field per dataset; ``full``: every
    registered field of every dataset.
    """
    if scale == "small":
        return [("jhtdb", "u"), ("miranda", "density"),
                ("nyx", "baryon_density"), ("qmcpack", "einspline"),
                ("rtm", "snap1400"), ("s3d", "CO")]
    if scale == "full":
        pairs: list[tuple[str, str]] = []
        for ds in dataset_names():
            for fld in get_dataset(ds).fields:
                pairs.append((ds, fld))
        return pairs
    raise ConfigError(f"unknown scale {scale!r}; use 'small' or 'full'")


def format_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
