"""Fig. 5: nonzero quant-code counts — CPU SZ3 vs G-Interp vs GPU Lorenzo.

The paper visualizes, on Miranda-pressure at two relative error bounds,
how many quant-codes are nonzero (prediction error above eb) for each
predictor, showing G-Interp lands close to CPU SZ3 and far below Lorenzo.
This module reproduces the counts (and the nonzero-amplitude histogram the
dot coloring encodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.interp_cpu import pow2ceil
from repro.baselines.lorenzo import lorenzo_delta, lorenzo_prequantize
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp import InterpSpec, interp_compress
from repro.core.pipeline import DEFAULT_WINDOW
from repro.datasets import load_field
from repro.experiments.harness import format_table

__all__ = ["run", "Fig5Result", "predictor_nonzeros"]

RADIUS = 512


def predictor_nonzeros(data: np.ndarray, abs_eb: float,
                       predictor: str) -> dict:
    """Count nonzero quant-codes for one predictor at one error bound.

    Returns total points, nonzero count, and a small amplitude histogram
    of |q| over {1, 2, 3, 4, >=5} (Fig. 5's color scale).
    """
    if predictor == "lorenzo":
        delta = lorenzo_delta(lorenzo_prequantize(data, abs_eb)).ravel()
        q = np.abs(delta)
        total = delta.size
    else:
        if predictor == "ginterp":
            spec = InterpSpec(anchor_stride=8,
                              window_shape=DEFAULT_WINDOW[data.ndim],
                              alpha=1.0)
        elif predictor == "sz3":
            spec = InterpSpec(anchor_stride=pow2ceil(max(data.shape)),
                              window_shape=None, alpha=1.0)
        else:
            raise ValueError(f"unknown predictor {predictor!r}")
        res = interp_compress(data, spec, abs_eb, LinearQuantizer(RADIUS))
        codes = res.codes.astype(np.int64)
        q = np.abs(np.where(codes == 0, RADIUS, codes) - RADIUS)
        # outliers (code 0) count as the largest bucket
        q[codes == 0] = RADIUS
        total = codes.size
    hist = {
        "1": int(np.count_nonzero(q == 1)),
        "2": int(np.count_nonzero(q == 2)),
        "3": int(np.count_nonzero(q == 3)),
        "4": int(np.count_nonzero(q == 4)),
        ">=5": int(np.count_nonzero(q >= 5)),
    }
    nonzero = int(np.count_nonzero(q))
    return {"total": total, "nonzero": nonzero,
            "fraction": nonzero / total, "amplitude_hist": hist}


@dataclass
class Fig5Result:
    rows: list = field(default_factory=list)

    def format(self) -> str:
        headers = ["eb", "predictor", "nonzero", "total", "frac",
                   "|q|=1", "|q|=2", "|q|>=3"]
        out = []
        for eb, pred, stats in self.rows:
            h = stats["amplitude_hist"]
            out.append([f"{eb:.0e}", pred, str(stats["nonzero"]),
                        str(stats["total"]), f"{stats['fraction']:.4f}",
                        str(h["1"]), str(h["2"]),
                        str(h["3"] + h["4"] + h[">=5"])])
        return format_table(
            headers, out,
            title="Fig. 5 — nonzero quant-codes on Miranda-pressure")


def run(scale: str = "small", ebs=(1e-2, 1e-3)) -> Fig5Result:
    """Regenerate Fig. 5's counts."""
    data = load_field("miranda", "pressure")
    rng = float(data.max() - data.min())
    result = Fig5Result()
    for eb in ebs:
        for pred in ("sz3", "ginterp", "lorenzo"):
            result.rows.append(
                (eb, pred, predictor_nonzeros(data, eb * rng, pred)))
    return result


if __name__ == "__main__":
    print(run().format())
