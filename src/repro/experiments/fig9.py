"""Fig. 9: compression/decompression throughputs on A100 and A40.

Ratios come from real compression runs on the synthetic datasets; kernel
times from the GPU performance model (the hardware substitute — see
DESIGN.md §1). Two error bounds (1e-2, 1e-3) as in the paper, plus the
cuSZ-i-with-GLE variant demonstrating the "negligible overhead" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import load_field
from repro.experiments.harness import format_table, run_codec, scale_fields
from repro.gpu import DEVICES, estimate_throughput

__all__ = ["run", "Fig9Result", "PIPELINES"]

#: (codec, lossless) bars in the figure
PIPELINES = (("cuszi", "none"), ("cuszi", "gle"), ("cusz", "none"),
             ("cuzfp", "none"), ("cuszp", "none"), ("cuszx", "none"),
             ("fzgpu", "none"))


@dataclass
class Fig9Result:
    #: {(device, eb, codec, lossless, direction): GB/s}
    bars: dict = field(default_factory=dict)

    def format(self) -> str:
        parts = []
        for dev in DEVICES:
            for direction in ("compress", "decompress"):
                headers = ["eb"] + [f"{c}{'+gle' if l == 'gle' else ''}"
                                    for c, l in PIPELINES]
                rows = []
                ebs = sorted({k[1] for k in self.bars}, reverse=True)
                for eb in ebs:
                    row = [f"{eb:.0e}"]
                    for c, l in PIPELINES:
                        row.append(
                            f"{self.bars[(dev, eb, c, l, direction)]:.0f}")
                    rows.append(row)
                parts.append(format_table(
                    headers, rows,
                    title=f"Fig. 9 — {direction} GB/s on "
                          f"{DEVICES[dev].name} ({DEVICES[dev].testbed})"))
        return "\n\n".join(parts)


def run(scale: str = "small", ebs=(1e-2, 1e-3)) -> Fig9Result:
    """Regenerate Fig. 9's throughput bars.

    Compressed sizes are measured per dataset field then averaged per
    (codec, eb); the performance model converts them to kernel times at
    the paper's 512^3-scale workload.
    """
    pairs = scale_fields(scale)
    result = Fig9Result()
    n_model = 512 ** 3  # model at the paper's production field size
    for eb in ebs:
        for codec, lossless in PIPELINES:
            # measured aggregate ratio over the evaluation fields
            orig = comp = 0
            for ds, fld in pairs:
                data = load_field(ds, fld)
                if codec == "cuzfp":
                    r = run_codec(codec, data, dataset=ds, field=fld,
                                  eb=None, lossless=lossless, rate=4.0,
                                  verify=False)
                else:
                    r = run_codec(codec, data, dataset=ds, field=fld,
                                  eb=eb, lossless=lossless, verify=False)
                orig += r.original_bytes
                comp += r.compressed_bytes
            cb_model = int(n_model * 4 * comp / orig)
            for dev_key, dev in DEVICES.items():
                for direction in ("compress", "decompress"):
                    t = estimate_throughput(codec, direction, n_model,
                                            cb_model, dev, lossless)
                    result.bars[(dev_key, eb, codec, lossless,
                                 direction)] = t.throughput_gbps
    return result


if __name__ == "__main__":
    print(run().format())
