"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=...)`` returning a result object with the
raw rows plus a ``format()`` text rendering of the paper artifact. The
``small`` scale trims fields/error bounds for quick runs (benchmarks); the
``full`` scale covers every field of every dataset at the paper's settings.

Regenerate everything with ``python -m repro.experiments all``.
"""

from repro.experiments.harness import (
    CompressionRun,
    run_codec,
    scale_fields,
    EB_GRID,
)

__all__ = ["CompressionRun", "run_codec", "scale_fields", "EB_GRID"]
