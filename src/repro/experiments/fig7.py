"""Fig. 7a/7b: rate-distortion curves and the fixed-PSNR bit-rate shift.

7a sweeps error bounds (rates for cuZFP) per compressor per dataset,
recording (bit rate, PSNR) points in two series — without and with the
de-redundancy pass — plus the CPU QoZ reference. 7b isolates the
Bitcomp/GLE effect: for each error bound the PSNR is unchanged and only
the bit rate moves left; the shift is reported per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import load_field
from repro.experiments.harness import format_table, run_codec

__all__ = ["run", "Fig7Result", "EB_SWEEP", "RATE_SWEEP", "EB_CODECS"]

#: relative error bounds swept for eb-mode codecs
EB_SWEEP = (1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4)
#: fixed rates swept for cuZFP (bits/value)
RATE_SWEEP = (0.5, 1.0, 2.0, 4.0, 8.0)
EB_CODECS = ("cusz", "cuszp", "cuszx", "fzgpu", "cuszi", "qoz")


@dataclass
class Fig7Result:
    #: {(dataset, codec, lossless): [(bit_rate, psnr), ...]}
    curves: dict = field(default_factory=dict)

    def shift_rows(self) -> list[tuple]:
        """Fig. 7b: per-point leftward bit-rate change from the extra
        lossless pass (same codec, same eb -> same PSNR)."""
        rows = []
        for (ds, codec, lossless), pts in self.curves.items():
            if lossless != "none":
                continue
            with_pts = self.curves.get((ds, codec, "gle"))
            if not with_pts:
                continue
            for (br0, p0), (br1, p1) in zip(pts, with_pts):
                rows.append((ds, codec, p0, br0, br1, br0 - br1))
        return rows

    def format(self) -> str:
        parts = []
        datasets = sorted({k[0] for k in self.curves})
        for ds in datasets:
            headers = ["codec", "lossless", "points (bit-rate@psnr)"]
            rows = []
            for (d, codec, lossless), pts in sorted(self.curves.items()):
                if d != ds:
                    continue
                pretty = " ".join(f"{br:.2f}@{p:.0f}" for br, p in pts)
                rows.append([codec, lossless, pretty])
            parts.append(format_table(headers, rows,
                                      title=f"Fig. 7a — {ds}"))
        shift = self.shift_rows()
        headers = ["dataset", "codec", "psnr", "br w/o", "br w/", "shift"]
        rows = [[ds, c, f"{p:.1f}", f"{b0:.3f}", f"{b1:.3f}", f"{s:+.3f}"]
                for ds, c, p, b0, b1, s in shift]
        parts.append(format_table(headers, rows,
                                  title="Fig. 7b — fixed-PSNR bit-rate "
                                        "shift from GLE"))
        return "\n\n".join(parts)


def run(scale: str = "small", datasets=None) -> Fig7Result:
    """Regenerate Fig. 7's rate-distortion data."""
    reps = {"jhtdb": "u", "miranda": "density", "nyx": "baryon_density",
            "qmcpack": "einspline", "rtm": "snap1400", "s3d": "CO"}
    if datasets:
        reps = {d: reps[d] for d in datasets}
    ebs = EB_SWEEP if scale == "full" else EB_SWEEP[2:6]
    rates = RATE_SWEEP if scale == "full" else RATE_SWEEP[1:4]
    result = Fig7Result()
    for ds, fld in reps.items():
        data = load_field(ds, fld)
        for lossless in ("none", "gle"):
            for codec in EB_CODECS:
                # QoZ's own lossless stage is part of its design; sweep it
                # only in the "none" series as the CPU reference curve
                if codec == "qoz" and lossless != "none":
                    continue
                pts = []
                for eb in ebs:
                    r = run_codec(codec, data, dataset=ds, field=fld,
                                  eb=eb,
                                  lossless=lossless if codec != "qoz"
                                  else "zlib")
                    pts.append((r.bit_rate, r.psnr))
                result.curves[(ds, codec, lossless)] = pts
            pts = []
            for rate in rates:
                r = run_codec("cuzfp", data, dataset=ds, field=fld,
                              eb=None, lossless=lossless, rate=rate)
                pts.append((r.bit_rate, r.psnr))
            result.curves[(ds, "cuzfp", lossless)] = pts
    return result


if __name__ == "__main__":
    print(run().format())
