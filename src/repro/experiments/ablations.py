"""Ablation studies of cuSZ-i's design choices (DESIGN.md §5).

Quantifies, per dataset field, the contribution of each G-Interp design
element the paper motivates:

* **window confinement** — the accuracy-parallelism tradeoff of §V-A
  (shared 33x9x9 windows vs global CPU-style interpolation);
* **level-wise error bounds** — alpha from Eq. 1 vs uniform (alpha=1);
* **auto-tuning** — profiling-driven spline/axis-order choice vs defaults;
* **anchor spacing** — stride 8 vs coarser grids;
* **lossless synergy** — Huffman-only vs Huffman+GLE;
* **prebuilt codebooks** — the §VI-A "prebuilt Huffman trees" direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import load_field
from repro.experiments.harness import format_table, run_codec

__all__ = ["run", "AblationResult", "VARIANTS"]

#: name -> CuSZi constructor overrides
VARIANTS = {
    "full": {},
    "no-window": {"use_windows": False},
    "alpha=1": {"alpha": 1.0},
    "no-tuning": {"tune": False},
    "anchor-16": {"anchor_stride": 16},
    "anchor-32": {"anchor_stride": 32},
    "huffman-only": {"lossless": "none"},
    "static-codebook": {"codebook": "static"},
}


@dataclass
class AblationResult:
    #: {(dataset, eb, variant): (ratio, psnr)}
    cells: dict = field(default_factory=dict)

    def format(self) -> str:
        headers = ["dataset", "eb", "variant", "CR", "psnr dB"]
        rows = []
        for (ds, eb, var), (cr, p) in sorted(self.cells.items()):
            rows.append([ds, f"{eb:.0e}", var, f"{cr:.1f}", f"{p:.2f}"])
        return format_table(headers, rows,
                            title="cuSZ-i design ablations")


def run(scale: str = "small", ebs=(1e-2, 1e-4)) -> AblationResult:
    """Run every ablation variant on representative fields."""
    reps = [("jhtdb", "u"), ("miranda", "density")]
    if scale == "full":
        reps += [("nyx", "baryon_density"), ("s3d", "CO"),
                 ("qmcpack", "einspline"), ("rtm", "snap1400")]
    result = AblationResult()
    for ds, fld in reps:
        data = load_field(ds, fld)
        for eb in ebs:
            for var, overrides in VARIANTS.items():
                kw = {"lossless": "gle", **overrides}
                lossless = kw.pop("lossless")
                r = run_codec("cuszi", data, dataset=ds, field=fld, eb=eb,
                              lossless=lossless, **kw)
                result.cells[(ds, eb, var)] = (r.ratio, r.psnr)
    return result


if __name__ == "__main__":
    print(run().format())
