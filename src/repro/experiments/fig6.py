"""Fig. 6: PSNR of interpolation vs Lorenzo across RTM snapshots.

One snapshot is sampled per 100 timesteps of the nominal 3700-step RTM run
(initialization excluded), compressed at two fixed relative error bounds,
and the decompression PSNR compared across predictors: G-Interp (cuSZ-i),
CPU interpolation (SZ3), and GPU Lorenzo (cuSZ). The paper's claims to
verify: G-Interp > Lorenzo by ~2.5-10 dB everywhere, and G-Interp >= CPU
interpolation thanks to the anchor points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.registry import rtm_steps
from repro.datasets.synthetic import rtm_field
from repro.experiments.harness import format_table, run_codec

__all__ = ["run", "Fig6Result", "SERIES"]

SERIES = ("cuszi", "sz3", "cusz", "sz14")


@dataclass
class Fig6Result:
    #: {(eb, codec): [(step, psnr), ...]}
    series: dict = field(default_factory=dict)

    def format(self) -> str:
        parts = []
        for eb in sorted({k[0] for k in self.series}, reverse=True):
            headers = ["step"] + [c for c in SERIES] + ["ginterp-lorenzo dB"]
            steps = [s for s, _ in self.series[(eb, SERIES[0])]]
            rows = []
            for i, st in enumerate(steps):
                vals = {c: self.series[(eb, c)][i][1] for c in SERIES}
                rows.append([str(st)]
                            + [f"{vals[c]:.2f}" for c in SERIES]
                            + [f"{vals['cuszi'] - vals['cusz']:+.2f}"])
            parts.append(format_table(
                headers, rows, title=f"Fig. 6 — RTM PSNR at rel eb {eb:.0e}"))
        return "\n\n".join(parts)


def run(scale: str = "small", ebs=(1e-3, 1e-4)) -> Fig6Result:
    """Regenerate Fig. 6's PSNR-vs-snapshot series."""
    n_snap = 8 if scale == "small" else 37
    steps = rtm_steps(n=n_snap)
    result = Fig6Result()
    for eb in ebs:
        for codec in SERIES:
            pts = []
            for st in steps:
                data = rtm_field(step=st)
                r = run_codec(codec, data, dataset="rtm",
                              field=f"snap{st}", eb=eb, lossless="none")
                pts.append((st, r.psnr))
            result.series[(eb, codec)] = pts
    return result


if __name__ == "__main__":
    print(run().format())
