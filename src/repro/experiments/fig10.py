"""Fig. 10: distributed lossy data transmission — transfer time vs PSNR.

For each dataset, each compressor is swept over error bounds (rates for
cuZFP); each point costs compression on the source A100, the compressed
bytes over the ~1 GB/s Globus link, and decompression on the destination,
with the full de-redundancy pipeline applied to every compressor as in the
paper. A curve toward the upper-left (high PSNR, low time) wins; the
reproduction target is cuSZ-i owning the high-quality (PSNR >= 70 dB)
regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import get_dataset, load_field
from repro.experiments.harness import format_table, run_codec
from repro.transfer import THETA_TO_ANVIL, simulate_transfer

__all__ = ["run", "Fig10Result", "EB_SWEEP", "RATE_SWEEP"]

EB_SWEEP = (1e-1, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4)
RATE_SWEEP = (0.5, 1.0, 2.0, 4.0, 8.0)
CODECS = ("cuszi", "cusz", "cuszp", "cuszx", "fzgpu", "cuzfp")


@dataclass
class Fig10Result:
    #: {(dataset, codec): [(psnr, total_s, wire_s), ...]}
    curves: dict = field(default_factory=dict)

    def format(self) -> str:
        parts = []
        for ds in sorted({k[0] for k in self.curves}):
            headers = ["codec", "points (time_s@psnr)"]
            rows = []
            for (d, codec), pts in sorted(self.curves.items()):
                if d != ds:
                    continue
                pretty = " ".join(f"{t:.2f}@{p:.0f}" for p, t, _ in pts)
                rows.append([codec, pretty])
            parts.append(format_table(
                headers, rows,
                title=f"Fig. 10 — transfer time vs PSNR, {ds} "
                      f"(link {THETA_TO_ANVIL.bandwidth_gbps} GB/s)"))
        return "\n\n".join(parts)


def run(scale: str = "small", datasets=None) -> Fig10Result:
    """Regenerate Fig. 10's transfer-time curves."""
    reps = {"jhtdb": "u", "miranda": "density", "nyx": "baryon_density",
            "qmcpack": "einspline", "rtm": "snap1400", "s3d": "CO"}
    if datasets:
        reps = {d: reps[d] for d in datasets}
    elif scale == "small":
        reps = {d: reps[d] for d in ("jhtdb", "qmcpack", "s3d")}
    ebs = EB_SWEEP if scale == "full" else EB_SWEEP[1:5]
    rates = RATE_SWEEP if scale == "full" else RATE_SWEEP[1:4]
    result = Fig10Result()
    for ds, fld in reps.items():
        data = load_field(ds, fld)
        # the paper transfers the whole Table II dataset, not one field
        model_elements = int(get_dataset(ds).paper_total_gb * 1e9 / 4)
        for codec in CODECS:
            knobs = rates if codec == "cuzfp" else ebs
            pts = []
            for knob in knobs:
                if codec == "cuzfp":
                    r = run_codec(codec, data, dataset=ds, field=fld,
                                  eb=None, lossless="gle", rate=knob)
                else:
                    r = run_codec(codec, data, dataset=ds, field=fld,
                                  eb=knob, lossless="gle")
                # scale the measured ratio up to the production volume
                cb_model = int(model_elements * 4
                               * r.compressed_bytes / r.original_bytes)
                plan = simulate_transfer(codec, model_elements, cb_model,
                                         lossless="gle")
                pts.append((r.psnr, plan.total_s, plan.wire_s))
            result.curves[(ds, codec)] = pts
    return result


if __name__ == "__main__":
    print(run().format())
