"""Greyscale image dumps for the Fig. 8 visual case study.

No plotting stack is available offline, so slices are written as binary
PGM (P5) images — viewable anywhere — plus amplified error maps, which is
exactly what the paper's Fig. 8 zoom panels show qualitatively.
"""

from __future__ import annotations

import os

import numpy as np

from repro.common.errors import DataError

__all__ = ["slice_to_pgm", "save_fig8_slices"]


def slice_to_pgm(arr: np.ndarray, path: str, vmin: float | None = None,
                 vmax: float | None = None) -> None:
    """Write a 2D array as an 8-bit binary PGM image.

    Values are linearly mapped from ``[vmin, vmax]`` (defaults: the array
    range) to 0..255; a shared range across images makes them comparable.
    """
    if arr.ndim != 2:
        raise DataError(f"need a 2D slice, got {arr.ndim}D")
    a = arr.astype(np.float64)
    lo = float(a.min()) if vmin is None else float(vmin)
    hi = float(a.max()) if vmax is None else float(vmax)
    if hi <= lo:
        pixels = np.zeros(a.shape, dtype=np.uint8)
    else:
        pixels = np.clip((a - lo) / (hi - lo) * 255.0, 0,
                         255).astype(np.uint8)
    header = f"P5\n{a.shape[1]} {a.shape[0]}\n255\n".encode()
    with open(path, "wb") as f:
        f.write(header + pixels.tobytes())


def save_fig8_slices(result, outdir: str,
                     error_gain: float = 10.0) -> list[str]:
    """Write the Fig. 8 slice set: originals, reconstructions, error maps.

    ``result`` is a :class:`~repro.experiments.fig8.Fig8Result` produced
    with ``save_slices=True``. Error maps are |recon - original| amplified
    by ``error_gain`` relative to the field range, so artifacts pop the way
    the paper's zoom panels do. Returns the written paths.
    """
    if not result.slices:
        raise DataError("result has no slices; rerun fig8.run("
                        "save_slices=True)")
    os.makedirs(outdir, exist_ok=True)
    written = []
    snaps = {k[0] for k in result.slices}
    for snap in snaps:
        original = result.slices[(snap, "original")]
        lo, hi = float(original.min()), float(original.max())
        tag = snap.replace("/", "_")
        path = os.path.join(outdir, f"{tag}_original.pgm")
        slice_to_pgm(original, path, lo, hi)
        written.append(path)
        for (s, codec), sl in result.slices.items():
            if s != snap or codec == "original":
                continue
            path = os.path.join(outdir, f"{tag}_{codec}.pgm")
            slice_to_pgm(sl, path, lo, hi)
            written.append(path)
            err = np.abs(sl.astype(np.float64) - original) * error_gain
            path = os.path.join(outdir, f"{tag}_{codec}_error.pgm")
            slice_to_pgm(err, path, 0.0, hi - lo)
            written.append(path)
    return written
