"""Run paper experiments: ``python -m repro.experiments <name> [options]``.

Names: table3, fig5..fig10, ablations, pareto, all.
``--out DIR`` also writes each rendered artifact to ``DIR/<name>.txt``
(and, for fig8, the reconstruction/error slice images under
``DIR/fig8_slices/``). ``--trace`` records telemetry while each
experiment runs and prints its per-stage breakdown; ``--trace-out DIR``
additionally dumps one ``<name>.trace.jsonl`` per experiment for
``repro trace``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import telemetry
from repro.experiments import (ablations, fig5, fig6, fig7, fig8, fig9,
                               fig10, pareto, table3)
from repro.telemetry import exporters

MODULES = {
    "table3": table3,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "ablations": ablations,
    "pareto": pareto,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("name", choices=sorted(MODULES) + ["all"])
    parser.add_argument("--scale", choices=("small", "full"),
                        default="small",
                        help="small = quick representative subset; "
                             "full = every field at paper settings")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write rendered artifacts (and fig8 "
                             "slice images) under DIR")
    parser.add_argument("--trace", action="store_true",
                        help="record telemetry per experiment and print "
                             "its stage breakdown")
    parser.add_argument("--trace-out", default=None, metavar="DIR",
                        help="with --trace: also dump one "
                             "<name>.trace.jsonl per experiment")
    parser.add_argument("--workers", default=None, metavar="N",
                        help="process-pool size for experiments that "
                             "support batch fan-out ('auto' = all cores; "
                             "default serial)")
    parser.add_argument("--transport", default=None,
                        choices=("shm", "pickle"),
                        help="pool payload transport for fanned-out "
                             "experiments (default: shm arenas when the "
                             "platform supports them)")
    args = parser.parse_args(argv)
    workers = args.workers
    if workers is not None and workers != "auto":
        workers = int(workers)
    if args.transport:
        # the runtime reads REPRO_TRANSPORT at each pooled call, so one
        # env set pins the transport for every experiment in this run
        os.environ["REPRO_TRANSPORT"] = args.transport
    names = sorted(MODULES) if args.name == "all" else [args.name]
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    if args.trace and args.trace_out:
        os.makedirs(args.trace_out, exist_ok=True)
    for name in names:
        t0 = time.time()
        reg = telemetry.Registry() if args.trace else None
        if args.trace:
            telemetry.enable(reg)
        try:
            import inspect
            kwargs = {"scale": args.scale}
            if name == "fig8" and args.out:
                kwargs["save_slices"] = True
            if workers is not None and "workers" in \
                    inspect.signature(MODULES[name].run).parameters:
                kwargs["workers"] = workers
            result = MODULES[name].run(**kwargs)
        finally:
            if args.trace:
                telemetry.disable()
        text = result.format()
        print(text)
        print(f"\n[{name} completed in {time.time() - t0:.1f}s "
              f"at scale={args.scale}]\n")
        if reg is not None:
            print(f"[{name} stage breakdown "
                  f"({len(reg.spans)} spans recorded)]")
            print(exporters.stage_breakdown(reg.spans))
            print()
            if args.trace_out:
                path = os.path.join(args.trace_out,
                                    f"{name}.trace.jsonl")
                with open(path, "w") as f:
                    f.write(exporters.to_jsonl(reg))
                print(f"[{name}: trace -> {path}]")
        if args.out:
            with open(os.path.join(args.out, f"{name}.txt"), "w") as f:
                f.write(text + "\n")
            if name == "fig8":
                from repro.experiments.visualize import save_fig8_slices
                paths = save_fig8_slices(
                    result, os.path.join(args.out, "fig8_slices"))
                print(f"[fig8: wrote {len(paths)} slice images]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
