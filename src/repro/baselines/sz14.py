"""SZ1.4-style classic CPU Lorenzo compressor (the paper's "CPU-Lorenzo").

Unlike cuSZ's dual-quant variant, classic SZ predicts each sample from the
already-*reconstructed* neighbors and quantizes the prediction error — a
loop-carried dependency in all dimensions. The GPU papers cite exactly this
dependency as the reason Lorenzo had to be redesigned (dual-quant) for
parallel hardware; implementing the classic form is what lets Fig. 6
include the CPU-Lorenzo series.

Vectorization here uses the *wavefront* (anti-diagonal) order: all samples
with equal index sum ``i+j+k`` depend only on strictly smaller sums, so the
traversal runs one diagonal plane at a time with vectorized gathers — the
classic way to parallelize a first-order recurrence without changing its
semantics.
"""

from __future__ import annotations

import numpy as np

from repro.common.arrayutils import validate_field
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.common.quantizer import DEFAULT_RADIUS, LinearQuantizer
from repro.core.pipeline import resolve_eb
from repro.huffman import (DEFAULT_CHUNK, HuffmanStream,
                           huffman_decode, huffman_encode)
from repro.registry import register

__all__ = ["SZ14", "wavefront_planes"]


def wavefront_planes(shape: tuple[int, ...]):
    """Yield (flat indices, neighbor flat index arrays) per diagonal.

    For each anti-diagonal ``s = sum(coords)`` (ascending), returns the
    flat indices of its samples plus, per Lorenzo stencil term, the flat
    indices of the (already processed) neighbors with out-of-domain terms
    marked by -1.
    """
    ndim = len(shape)
    coords = np.indices(shape).reshape(ndim, -1)
    sums = coords.sum(axis=0)
    order = np.argsort(sums, kind="stable")
    strides = [1] * ndim
    for ax in range(ndim - 2, -1, -1):
        strides[ax] = strides[ax + 1] * shape[ax + 1]
    strides_arr = np.asarray(strides)
    flat_all = (coords * strides_arr[:, None]).sum(axis=0)

    # Lorenzo stencil: every nonempty subset of axes offset by -1, sign
    # (+1 for odd subsets, -1 for even) — the inclusion-exclusion corner sum
    subsets = []
    for mask in range(1, 1 << ndim):
        axes = [ax for ax in range(ndim) if mask >> ax & 1]
        sign = 1.0 if len(axes) % 2 == 1 else -1.0
        subsets.append((axes, sign))

    boundaries = np.searchsorted(sums[order],
                                 np.arange(int(sums.max()) + 2))
    for s in range(int(sums.max()) + 1):
        sel = order[boundaries[s]:boundaries[s + 1]]
        pts = coords[:, sel]
        neighbor_flats = []
        signs = []
        for axes, sign in subsets:
            moved = pts.copy()
            ok = np.ones(sel.size, dtype=bool)
            for ax in axes:
                moved[ax] = moved[ax] - 1
                ok &= moved[ax] >= 0
            nflat = (moved * strides_arr[:, None]).sum(axis=0)
            nflat[~ok] = -1
            neighbor_flats.append(nflat)
            signs.append(sign)
        yield flat_all[sel], neighbor_flats, signs


@register
class SZ14:
    """Classic (error-feedback) Lorenzo compressor, SZ1.4 style."""

    name = "sz14"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str = "zlib", radius: int = DEFAULT_RADIUS,
                 huffman_chunk: int = DEFAULT_CHUNK):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless
        self.radius = int(radius)
        self.huffman_chunk = int(huffman_chunk)

    def _traverse(self, shape, work_flat, quantizer, abs_eb,
                  orig_flat=None, codes=None, outliers=None):
        """Shared wavefront traversal; compresses when ``orig_flat`` given,
        decompresses otherwise. Returns (codes, outliers) when compressing.
        """
        compressing = orig_flat is not None
        out_codes = [] if compressing else None
        out_vals = [] if compressing else None
        cursor = 0
        out_cursor = 0
        for flat, neighbor_flats, signs in wavefront_planes(shape):
            pred = np.zeros(flat.size, dtype=np.float64)
            for nflat, sign in zip(neighbor_flats, signs):
                safe = np.maximum(nflat, 0)
                vals = work_flat[safe]
                vals = np.where(nflat >= 0, vals, 0.0)
                pred += sign * vals
            if compressing:
                res = quantizer.quantize(orig_flat[flat], pred, abs_eb)
                work_flat[flat] = res.reconstructed
                out_codes.append(res.codes)
                out_vals.append(res.outlier_values)
            else:
                pass_codes = codes[cursor:cursor + flat.size]
                cursor += flat.size
                recon, out_cursor = quantizer.dequantize(
                    pass_codes, pred, abs_eb, outliers, out_cursor)
                work_flat[flat] = recon
        if compressing:
            return (np.concatenate(out_codes),
                    np.concatenate(out_vals) if out_vals else
                    np.empty(0, np.float32))
        return None

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        quantizer = LinearQuantizer(self.radius, value_dtype=data.dtype)
        work = np.zeros(data.size, dtype=np.float64)
        codes, outliers = self._traverse(data.shape, work, quantizer,
                                         abs_eb,
                                         orig_flat=data.astype(
                                             np.float64).ravel())
        stream = huffman_encode(codes, quantizer.n_codes,
                                self.huffman_chunk)
        meta = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "radius": self.radius,
            "n_outliers": int(outliers.size),
        }
        segments = {
            "huffman": stream.to_bytes(),
            "outliers": outliers.tobytes(),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        abs_eb = float(meta["abs_eb"])
        quantizer = LinearQuantizer(int(meta["radius"]), value_dtype=dtype)
        codes = huffman_decode(HuffmanStream.from_bytes(segments["huffman"]))
        outliers = np.frombuffer(segments["outliers"], dtype=dtype)
        if outliers.size != int(meta["n_outliers"]):
            raise CodecError("outlier segment size mismatch")
        work = np.zeros(int(np.prod(shape)), dtype=np.float64)
        self._traverse(shape, work, quantizer, abs_eb, codes=codes,
                       outliers=outliers)
        return work.reshape(shape).astype(dtype)
