"""QoZ CPU reference: anchored, level-tuned interpolation (paper ref [7]).

QoZ extends SZ3 with exactly the two ideas G-Interp then ports to the GPU:
losslessly stored anchor points (spacing 64 here) and level-wise
error-bound reduction (alpha from the same Eq. 1 family, capped by beta).
It remains the rate-distortion upper reference in Fig. 7a: larger
interpolation blocks than G-Interp's 8^3 chunks and a stronger
de-redundancy stage (Zstd role, zlib stand-in).
"""

from __future__ import annotations

from repro.baselines.interp_cpu import InterpCPUBase, pow2ceil
from repro.core.ginterp.autotune import alpha_from_eb
from repro.registry import register

__all__ = ["QoZ"]

#: QoZ's default anchor spacing
ANCHOR_STRIDE = 64
#: QoZ's error-bound reduction cap
BETA = 4.0


@register
class QoZ(InterpCPUBase):
    """The QoZ-style CPU interpolation compressor."""

    name = "qoz"

    def _anchor_stride(self, shape: tuple[int, ...]) -> int:
        return min(ANCHOR_STRIDE, pow2ceil(max(shape)))

    def _level_params(self, rel_eb: float) -> tuple[float, float]:
        return alpha_from_eb(rel_eb), BETA
