"""Shared base for the CPU interpolation references (SZ3 / QoZ).

Both reuse the exact multilevel interpolation engine behind G-Interp but
with the CPU-side geometry the paper contrasts against (§VII-C.2):
*global* interpolation (no shared-window confinement) and much larger
anchor spacing — whole-array for SZ3, 64 for QoZ — plus the Zstd-role
de-redundancy pass (zlib stand-in) on the archive. This is what gives the
CPU compressors their residual ratio advantage over cuSZ-i in Fig. 7a.
"""

from __future__ import annotations

import numpy as np

from repro.common.arrayutils import validate_field
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.common.quantizer import DEFAULT_RADIUS, LinearQuantizer
from repro.core.ginterp.autotune import autotune
from repro.core.ginterp.engine import (InterpSpec, interp_compress,
                                       interp_decompress)
from repro.core.ginterp.plans import get_plan
from repro.core.pipeline import resolve_eb
from repro.huffman import (DEFAULT_CHUNK, HuffmanStream,
                           huffman_decode, huffman_encode)

__all__ = ["InterpCPUBase", "pow2ceil"]


def pow2ceil(n: int) -> int:
    """Smallest power of two >= n (and >= 2)."""
    return 1 << max(1, (int(n) - 1).bit_length())


class InterpCPUBase:
    """Template-method base: subclasses define name + spec policy."""

    name = "interp-cpu"
    lossless_default = "zlib"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str | None = None,
                 radius: int = DEFAULT_RADIUS, tune: bool = True,
                 huffman_chunk: int = DEFAULT_CHUNK):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless if lossless is not None \
            else self.lossless_default
        self.radius = int(radius)
        self.tune = bool(tune)
        self.huffman_chunk = int(huffman_chunk)

    # -- policy hooks -------------------------------------------------------

    def _anchor_stride(self, shape: tuple[int, ...]) -> int:
        raise NotImplementedError

    def _level_params(self, rel_eb: float) -> tuple[float, float]:
        """Return (alpha, beta) for the level-wise error bounds."""
        raise NotImplementedError

    # -- shared pipeline ----------------------------------------------------

    def _build_spec(self, data: np.ndarray, abs_eb: float) -> InterpSpec:
        rng = float(data.max() - data.min())
        rel_eb = abs_eb / rng if rng > 0 else 1.0
        alpha, beta = self._level_params(rel_eb)
        if self.tune:
            report = autotune(data, abs_eb)
            cubic, order = report.cubic_variant, report.axis_order
        else:
            cubic, order = (), ()
        spec = InterpSpec(anchor_stride=self._anchor_stride(data.shape),
                          window_shape=None, cubic_variant=cubic,
                          axis_order=order, alpha=alpha, beta=beta)
        return spec.resolved(data.ndim)

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        quantizer = LinearQuantizer(self.radius, value_dtype=data.dtype)
        spec = self._build_spec(data, abs_eb)
        # CPU references share the same plan LRU as the GPU-path codec:
        # spec differences (stride, no window) key separate entries
        plan = get_plan(data.shape, spec)
        result = interp_compress(data, spec, abs_eb, quantizer, plan=plan)
        stream = huffman_encode(result.codes, quantizer.n_codes,
                                self.huffman_chunk)
        meta = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "radius": self.radius,
            "n_outliers": int(result.outliers.size),
            "spec": spec.to_meta(),
        }
        segments = {
            "huffman": stream.to_bytes(),
            "outliers": result.outliers.tobytes(),
            "anchors": result.anchors.tobytes(),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        abs_eb = float(meta["abs_eb"])
        radius = int(meta["radius"])
        spec = InterpSpec.from_meta(meta["spec"])
        quantizer = LinearQuantizer(radius, value_dtype=dtype)
        codes = huffman_decode(HuffmanStream.from_bytes(segments["huffman"]))
        outliers = np.frombuffer(segments["outliers"], dtype=dtype)
        anchor_shape = tuple(-(-n // spec.anchor_stride) for n in shape)
        anchors = np.frombuffer(segments["anchors"],
                                dtype=dtype).reshape(anchor_shape)
        plan = get_plan(shape, spec.resolved(len(shape)))
        work = interp_decompress(shape, spec, abs_eb, codes, outliers,
                                 anchors, quantizer, plan=plan)
        return work.astype(dtype)
