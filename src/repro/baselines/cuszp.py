"""cuSZp baseline: fused 1D block Lorenzo + per-block fixed-length encoding
(paper §II item 4).

cuSZp trades ratio for end-to-end speed by fusing prediction, quantization
and a simple 1D blockwise encoding into one monolithic kernel. The encoding
is fixed-length per 32-element block: each block stores the bit width of
its largest (zigzagged) quantization delta and then packs all 32 deltas at
that width; all-zero blocks cost only the width byte. No Huffman stage, no
outlier channel — fixed-length packing absorbs any magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lorenzo import lorenzo_prequantize
from repro.common.arrayutils import validate_field
from repro.common.bitpack import (pack_uint, unpack_uint, zigzag_decode,
                                  zigzag_encode, bit_length)
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.core.pipeline import resolve_eb
from repro.registry import register

__all__ = ["CuSZp", "BLOCK"]

#: one GPU thread handles 32 consecutive samples
BLOCK = 32



@register
class CuSZp:
    """The cuSZp compressor (1D blockwise fixed-length)."""

    name = "cuszp"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str = "none"):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        prequant = lorenzo_prequantize(data, abs_eb).ravel()
        delta = np.diff(prequant, prepend=np.int64(0))
        zz = zigzag_encode(delta)

        n = zz.size
        n_blocks = -(-n // BLOCK)
        pad = n_blocks * BLOCK - n
        if pad:
            zz = np.concatenate([zz, np.zeros(pad, np.uint64)])
        blocks = zz.reshape(n_blocks, BLOCK)
        maxima = blocks.max(axis=1)
        widths = bit_length(maxima)

        payload_parts: list[bytes] = []
        for w in range(1, 65):
            sel = widths == w
            if not np.any(sel):
                continue
            payload_parts.append(pack_uint(blocks[sel].ravel(), w).tobytes())
        meta = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "n": n,
        }
        segments = {
            "widths": widths.tobytes(),
            "payload": b"".join(payload_parts),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        abs_eb = float(meta["abs_eb"])
        n = int(meta["n"])
        n_blocks = -(-n // BLOCK)
        widths = np.frombuffer(segments["widths"], dtype=np.uint8)
        if widths.size != n_blocks:
            raise CodecError("width table size mismatch")
        payload = np.frombuffer(segments["payload"], dtype=np.uint8)

        blocks = np.zeros((n_blocks, BLOCK), dtype=np.uint64)
        pos = 0
        for w in range(1, 65):
            sel = widths == w
            cnt = int(sel.sum())
            if cnt == 0:
                continue
            nbytes = -(-cnt * BLOCK * w // 8)
            if pos + nbytes > payload.size:
                raise CodecError("cuSZp payload truncated")
            vals = unpack_uint(payload[pos:pos + nbytes], w, cnt * BLOCK)
            blocks[sel] = vals.reshape(cnt, BLOCK)
            pos += nbytes
        if pos != payload.size:
            raise CodecError("trailing bytes in cuSZp payload")
        zz = blocks.ravel()[:n]
        delta = zigzag_decode(zz)
        prequant = np.cumsum(delta)
        recon = prequant.astype(np.float64) * (2.0 * abs_eb)
        return recon.reshape(shape).astype(dtype)
