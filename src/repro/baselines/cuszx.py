"""cuSZx baseline: monolithic block constant/nonconstant compression
(paper §II item 2).

cuSZx maximizes throughput with a single ultra-simple kernel: the flat
stream is cut into 128-sample blocks; a block whose value range fits inside
``2*eb`` is *constant* and stores only its midpoint; any other block stores
its minimum plus every sample quantized to the block-local ``2*eb`` lattice
at the block's fixed bit width. Ratio is modest except on data with large
flat/zero regions (e.g. RTM wavefields), exactly the regime where the paper
shows cuSZx occasionally leading Table III's left half.
"""

from __future__ import annotations

import numpy as np

from repro.common.arrayutils import validate_field
from repro.common.bitpack import bit_length, pack_uint, unpack_uint
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.core.pipeline import resolve_eb
from repro.registry import register

__all__ = ["CuSZx", "BLOCK"]

#: samples per block (cuSZx processes blocks of up to 128 floats)
BLOCK = 128


@register
class CuSZx:
    """The cuSZx compressor (blockwise constant / fixed-point)."""

    name = "cuszx"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str = "none"):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        flat = data.astype(np.float64).ravel()
        n = flat.size
        n_blocks = -(-n // BLOCK)
        pad = n_blocks * BLOCK - n
        if pad:
            flat = np.concatenate([flat, np.full(pad, flat[-1])])
        blocks = flat.reshape(n_blocks, BLOCK)
        mins = blocks.min(axis=1)
        maxs = blocks.max(axis=1)
        const = (maxs - mins) <= 2.0 * abs_eb

        # constant blocks: midpoint only
        const_vals = ((mins[const] + maxs[const]) * 0.5).astype(np.float32)

        # nonconstant: block-local lattice at a fixed per-block width
        ncb = blocks[~const]
        nc_mins = mins[~const].astype(np.float32)
        q = np.rint((ncb - nc_mins.astype(np.float64)[:, None])
                    / (2.0 * abs_eb)).astype(np.uint64)
        qmax = q.max(axis=1) if q.size else np.empty(0, np.uint64)
        widths = bit_length(qmax)
        payload_parts: list[bytes] = []
        for w in range(1, 65):
            sel = widths == w
            if not np.any(sel):
                continue
            payload_parts.append(pack_uint(q[sel].ravel(), w).tobytes())

        meta = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "n": n,
        }
        segments = {
            "flags": np.packbits(const.astype(np.uint8)).tobytes(),
            "const_vals": const_vals.tobytes(),
            "nc_mins": nc_mins.tobytes(),
            "widths": widths.tobytes(),
            "payload": b"".join(payload_parts),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        abs_eb = float(meta["abs_eb"])
        n = int(meta["n"])
        n_blocks = -(-n // BLOCK)
        const = np.unpackbits(
            np.frombuffer(segments["flags"], np.uint8),
            count=n_blocks).astype(bool)
        const_vals = np.frombuffer(segments["const_vals"], np.float32)
        nc_mins = np.frombuffer(segments["nc_mins"], np.float32)
        widths = np.frombuffer(segments["widths"], np.uint8)
        payload = np.frombuffer(segments["payload"], np.uint8)
        n_nc = int((~const).sum())
        if const_vals.size != n_blocks - n_nc or nc_mins.size != n_nc \
                or widths.size != n_nc:
            raise CodecError("cuSZx segment sizes inconsistent")

        out = np.empty((n_blocks, BLOCK), dtype=np.float64)
        out[const] = const_vals.astype(np.float64)[:, None]
        q = np.zeros((n_nc, BLOCK), dtype=np.uint64)
        pos = 0
        for w in range(1, 65):
            sel = widths == w
            cnt = int(sel.sum())
            if cnt == 0:
                continue
            nbytes = -(-cnt * BLOCK * w // 8)
            vals = unpack_uint(payload[pos:pos + nbytes], w, cnt * BLOCK)
            q[sel] = vals.reshape(cnt, BLOCK)
            pos += nbytes
        if pos != payload.size:
            raise CodecError("trailing bytes in cuSZx payload")
        out[~const] = (nc_mins.astype(np.float64)[:, None]
                       + q.astype(np.float64) * (2.0 * abs_eb))
        return out.ravel()[:n].reshape(shape).astype(dtype)

