"""ZFP's integer decorrelating transform and coefficient ordering.

The forward/inverse lifting pair operates on length-4 vectors and is
applied separably along each block axis. It approximates

    ``1/16 * [[4,4,4,4], [5,1,-1,-5], [-4,4,4,-4], [-2,6,-6,2]]``

with shifts and adds only, exactly as the reference zfp codec. Coefficients
are then visited in total-sequency order (increasing sum of per-axis
frequencies) so the embedded coder sees magnitudes that decay with index.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fwd_lift", "inv_lift", "fwd_transform", "inv_transform",
           "sequency_order"]


def fwd_lift(block: np.ndarray, axis: int) -> None:
    """In-place forward lifting along ``axis`` (length must be 4)."""
    sl = [slice(None)] * block.ndim

    def at(i: int) -> tuple:
        s = list(sl)
        s[axis] = i
        return tuple(s)

    x = block[at(0)].copy()
    y = block[at(1)].copy()
    z = block[at(2)].copy()
    w = block[at(3)].copy()
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1
    block[at(0)] = x
    block[at(1)] = y
    block[at(2)] = z
    block[at(3)] = w


def inv_lift(block: np.ndarray, axis: int) -> None:
    """In-place inverse lifting along ``axis`` (length must be 4)."""
    sl = [slice(None)] * block.ndim

    def at(i: int) -> tuple:
        s = list(sl)
        s[axis] = i
        return tuple(s)

    x = block[at(0)].copy()
    y = block[at(1)].copy()
    z = block[at(2)].copy()
    w = block[at(3)].copy()
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w
    block[at(0)] = x
    block[at(1)] = y
    block[at(2)] = z
    block[at(3)] = w


def fwd_transform(blocks: np.ndarray) -> None:
    """Forward transform of a ``(nb, 4, ..., 4)`` int64 block stack.

    ZFP applies the lifting along x first, then y, then z (fastest-varying
    axis first); block axes here are 1..ndim-1 with the last the fastest.
    """
    for axis in range(blocks.ndim - 1, 0, -1):
        fwd_lift(blocks, axis)


def inv_transform(blocks: np.ndarray) -> None:
    """Inverse of :func:`fwd_transform` (reverse axis order)."""
    for axis in range(1, blocks.ndim):
        inv_lift(blocks, axis)


def sequency_order(ndim: int) -> np.ndarray:
    """Flat coefficient permutation by increasing total sequency.

    Matches zfp's precomputed ``PERM`` tables: sort 4^d multi-indices by
    the sum of their per-axis indices, ties broken by flat index.
    """
    coords = np.indices((4,) * ndim).reshape(ndim, -1)
    total = coords.sum(axis=0)
    flat = np.arange(4 ** ndim)
    return flat[np.lexsort((flat, total))]
