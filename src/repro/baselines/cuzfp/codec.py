"""Fixed-rate ZFP block codec: block floating point + embedded coding.

Each 4^d block spends exactly ``rate * 4^d`` bits: 8 for the block
exponent, the rest on embedded bit planes of the negabinary-mapped
transform coefficients, most-significant plane first. Plane encoding uses
a group-tested layout: the bits of coefficients already known significant
are emitted raw, then a single flag tests whether the remaining (sequency-
ordered) tail holds any new significant coefficient, and only then is the
tail emitted. Leading all-zero planes therefore cost one bit each, which is
what buys ZFP its accuracy at low rates.

All state machines are vectorized across blocks (one GPU thread block per
ZFP block in cuZFP; one lane per block here), iterating over the 32 planes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cuzfp.transform import (fwd_transform, inv_transform,
                                             sequency_order)
from repro.common.arrayutils import validate_field
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError, ConfigError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.common.scan import concat_ranges
from repro.registry import register

__all__ = ["CuZFP"]

_NEGA_MASK = np.int64(0xAAAAAAAA)
_PLANES = 32
#: fixed-point scaling: values in (-2^e, 2^e) map to ~30-bit integers,
#: leaving ZFP's two guard bits for transform range expansion
_FRAC_BITS = 30


def _extract_blocks(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad to multiples of 4 and tile into a ``(nb, 4, .., 4)`` stack."""
    pads = [(0, (-n) % 4) for n in data.shape]
    padded = np.pad(data, pads, mode="edge") if any(
        p[1] for p in pads) else data
    ndim = data.ndim
    counts = tuple(n // 4 for n in padded.shape)
    shape6 = []
    for c in counts:
        shape6.extend((c, 4))
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    blocks = padded.reshape(shape6).transpose(order)
    nb = int(np.prod(counts))
    return blocks.reshape((nb,) + (4,) * ndim).copy(), padded.shape


def _assemble_blocks(blocks: np.ndarray, padded_shape: tuple[int, ...],
                     shape: tuple[int, ...]) -> np.ndarray:
    """Invert :func:`_extract_blocks` and crop back to ``shape``."""
    ndim = len(shape)
    counts = tuple(n // 4 for n in padded_shape)
    stacked = blocks.reshape(counts + (4,) * ndim)
    order = []
    for ax in range(ndim):
        order.extend((ax, ndim + ax))
    padded = stacked.transpose(order).reshape(padded_shape)
    return padded[tuple(slice(0, n) for n in shape)]


#: coefficients per group-test unit in the embedded coder
_GROUP = 8


def _encode_planes(neg: np.ndarray, maxbits: int) -> np.ndarray:
    """Embedded-encode negabinary coefficients into per-block bit rows.

    Per plane: the ``m`` coefficients already known significant are emitted
    raw; the tail is emitted in ``_GROUP``-sized units, each preceded by a
    one-bit test "any significant coefficient at or beyond this group?" —
    a 0 ends the plane, so all-zero planes cost a single bit.
    """
    nb, ncoef = neg.shape
    bitbuf = np.zeros((nb, maxbits), dtype=np.uint8)
    cur = np.zeros(nb, dtype=np.int64)
    m = np.zeros(nb, dtype=np.int64)
    cols = np.arange(ncoef, dtype=np.int64)
    all_rows = np.arange(nb)
    n_groups = -(-ncoef // _GROUP)
    for p in range(_PLANES - 1, -1, -1):
        plane = ((neg >> np.uint64(p)) & np.uint64(1)).astype(np.uint8)
        # significant-prefix bits, raw
        k1 = np.minimum(m, maxbits - cur)
        if int(k1.max(initial=0)) > 0:
            rows = np.repeat(all_rows, k1)
            j = concat_ranges(k1)
            bitbuf[rows, cur[rows] + j] = plane[rows, j]
        cur = cur + k1
        # group-tested tail
        ext = m.copy()            # end of emitted region this plane
        alive = np.ones(nb, dtype=bool)
        for _g in range(n_groups):
            start = ext
            sel = alive & (start < ncoef) & (cur < maxbits)
            if not sel.any():
                break
            has_more = (plane & (cols >= start[:, None])).any(axis=1)
            idx = np.flatnonzero(sel)
            bitbuf[idx, cur[idx]] = has_more[idx]
            cur[sel] += 1
            go = sel & has_more
            glen = np.zeros(nb, dtype=np.int64)
            glen[go] = np.minimum(np.minimum(_GROUP, ncoef - start[go]),
                                  (maxbits - cur)[go])
            if int(glen.max(initial=0)) > 0:
                rows = np.repeat(all_rows, glen)
                j = concat_ranges(glen)
                bitbuf[rows, cur[rows] + j] = plane[rows, start[rows] + j]
            cur = cur + glen
            ext = ext + glen
            alive = go & (glen == _GROUP)
        # significance grows to one past the last emitted 1
        emitted = (cols[None, :] >= m[:, None]) \
            & (cols[None, :] < ext[:, None])
        lastpos = ((plane.astype(np.int64) * emitted)
                   * (cols[None, :] + 1)).max(axis=1)
        m = np.maximum(m, lastpos)
        if bool((cur >= maxbits).all()):
            break
    return bitbuf


def _decode_planes(bitbuf: np.ndarray, ncoef: int) -> np.ndarray:
    """Invert :func:`_encode_planes` back to negabinary coefficients."""
    nb, maxbits = bitbuf.shape
    neg = np.zeros((nb, ncoef), dtype=np.uint64)
    cur = np.zeros(nb, dtype=np.int64)
    m = np.zeros(nb, dtype=np.int64)
    cols = np.arange(ncoef, dtype=np.int64)
    all_rows = np.arange(nb)
    n_groups = -(-ncoef // _GROUP)
    for p in range(_PLANES - 1, -1, -1):
        shift = np.uint64(p)
        k1 = np.minimum(m, maxbits - cur)
        if int(k1.max(initial=0)) > 0:
            rows = np.repeat(all_rows, k1)
            j = concat_ranges(k1)
            bits = bitbuf[rows, cur[rows] + j].astype(np.uint64)
            neg[rows, j] |= bits << shift
        cur = cur + k1
        ext = m.copy()
        alive = np.ones(nb, dtype=bool)
        for _g in range(n_groups):
            start = ext
            sel = alive & (start < ncoef) & (cur < maxbits)
            if not sel.any():
                break
            idx = np.flatnonzero(sel)
            has_more = np.zeros(nb, dtype=bool)
            has_more[idx] = bitbuf[idx, cur[idx]].astype(bool)
            cur[sel] += 1
            go = sel & has_more
            glen = np.zeros(nb, dtype=np.int64)
            glen[go] = np.minimum(np.minimum(_GROUP, ncoef - start[go]),
                                  (maxbits - cur)[go])
            if int(glen.max(initial=0)) > 0:
                rows = np.repeat(all_rows, glen)
                j = concat_ranges(glen)
                bits = bitbuf[rows, cur[rows] + j].astype(np.uint64)
                neg[rows, start[rows] + j] |= bits << shift
            cur = cur + glen
            ext = ext + glen
            alive = go & (glen == _GROUP)
        plane = ((neg >> shift) & np.uint64(1)).astype(np.int64)
        emitted = (cols[None, :] >= m[:, None]) \
            & (cols[None, :] < ext[:, None])
        lastpos = ((plane * emitted) * (cols[None, :] + 1)).max(axis=1)
        m = np.maximum(m, lastpos)
        if bool((cur >= maxbits).all()):
            break
    return neg


@register
class CuZFP:
    """The cuZFP compressor (fixed rate, 1..3D float fields).

    ``rate`` is the bit budget per input value; each 4^d block consumes
    exactly ``rate * 4^d`` bits (8 of which hold the block exponent).
    """

    name = "cuzfp"

    def __init__(self, rate: float = 8.0, lossless: str = "none"):
        self.rate = float(rate)
        self.lossless = lossless
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")

    def _maxbits(self, ndim: int) -> int:
        k = 4 ** ndim
        maxbits = int(round(self.rate * k)) - 8
        if maxbits < 1:
            raise ConfigError(
                f"rate {self.rate} too small for {ndim}D (exponent "
                f"overhead); need rate > {8 / k + 1 / k:.3f}")
        return maxbits

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        ndim = data.ndim
        maxbits = self._maxbits(ndim)
        blocks, padded_shape = _extract_blocks(data.astype(np.float64))
        nb = blocks.shape[0]
        flat = blocks.reshape(nb, -1)

        amax = np.abs(flat).max(axis=1)
        emax = np.zeros(nb, dtype=np.int64)
        nzb = amax > 0
        emax[nzb] = np.frexp(amax[nzb])[1]
        np.clip(emax, -127, 127, out=emax)

        ints = np.rint(np.ldexp(flat, (_FRAC_BITS - emax)[:, None])
                       ).astype(np.int64)
        iblocks = ints.reshape(blocks.shape)
        fwd_transform(iblocks)
        coefs = iblocks.reshape(nb, -1)[:, sequency_order(ndim)]
        neg = (((coefs + _NEGA_MASK) ^ _NEGA_MASK)
               & np.int64(0xFFFFFFFF)).astype(np.uint64)
        bitbuf = _encode_planes(neg, maxbits)
        payload = np.packbits(bitbuf.ravel())

        meta = {
            "shape": list(data.shape),
            "padded_shape": list(padded_shape),
            "dtype": data.dtype.name,
            "rate": self.rate,
            "maxbits": maxbits,
        }
        segments = {
            "emax": (emax + 128).astype(np.uint8).tobytes(),
            "payload": payload.tobytes(),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        padded_shape = tuple(meta["padded_shape"])
        dtype = np.dtype(meta["dtype"])
        maxbits = int(meta["maxbits"])
        ndim = len(shape)
        ncoef = 4 ** ndim
        nb = int(np.prod([n // 4 for n in padded_shape]))

        emax = np.frombuffer(segments["emax"],
                             np.uint8).astype(np.int64) - 128
        if emax.size != nb:
            raise CodecError("exponent table size mismatch")
        payload = np.frombuffer(segments["payload"], np.uint8)
        total_bits = nb * maxbits
        if payload.size * 8 < total_bits:
            raise CodecError("cuZFP payload truncated")
        bitbuf = np.unpackbits(payload, count=total_bits).reshape(
            nb, maxbits)
        neg = _decode_planes(bitbuf, ncoef)
        coefs = ((neg.astype(np.int64) ^ _NEGA_MASK) - _NEGA_MASK)
        perm = sequency_order(ndim)
        unperm = np.empty_like(perm)
        unperm[perm] = np.arange(perm.size)
        iblocks = coefs[:, unperm].reshape((nb,) + (4,) * ndim)
        inv_transform(iblocks)
        vals = np.ldexp(iblocks.reshape(nb, -1).astype(np.float64),
                        (emax - _FRAC_BITS)[:, None])
        blocks = vals.reshape((nb,) + (4,) * ndim)
        return _assemble_blocks(blocks, padded_shape,
                                shape).astype(dtype)
