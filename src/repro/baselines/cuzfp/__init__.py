"""cuZFP baseline: fixed-rate transform coding (paper §II, ref [21, 23]).

ZFP partitions the field into 4^d blocks and spends an identical bit budget
on each: block-floating-point fixed-point conversion, a separable integer
lifting transform, total-sequency coefficient reordering, negabinary
mapping, and embedded bit-plane coding truncated at the rate. cuZFP is the
CUDA port; like it, this implementation only offers the fixed-*rate* mode
(hence the N/A rows for absolute error bounds in Table III).
"""

from repro.baselines.cuzfp.transform import fwd_lift, inv_lift, sequency_order
from repro.baselines.cuzfp.codec import CuZFP

__all__ = ["CuZFP", "fwd_lift", "inv_lift", "sequency_order"]
