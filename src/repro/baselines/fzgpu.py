"""FZ-GPU baseline: Lorenzo + bitshuffle + zero-block dedup
(paper §II item 3).

FZ-GPU keeps cuSZ's dual-quant Lorenzo prediction but replaces the entire
Huffman stage with a cheaper pair of lossless transforms: the 16-bit
quant-codes are bit-shuffled (gathering the almost-always-zero high bit
planes into contiguous zero bytes) and the resulting stream is zero-block
deduplicated. Faster than Huffman, lower ratio — the tradeoff Table III
shows.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lorenzo import (lorenzo_delta, lorenzo_prequantize,
                                     lorenzo_reconstruct)
from repro.common.arrayutils import validate_field
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.common.bitpack import zigzag_decode, zigzag_encode
from repro.core.pipeline import resolve_eb
from repro.lossless.bitshuffle import bitshuffle, bitunshuffle
from repro.lossless.dedup import dedup_zero_blocks, restore_zero_blocks
from repro.registry import register

__all__ = ["FZGPU"]


@register
class FZGPU:
    """The FZ-GPU compressor (Lorenzo + bitshuffle + dedup)."""

    name = "fzgpu"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str = "none", radius: int = 512):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless
        self.radius = int(radius)
        if not 2 <= self.radius <= 32768:
            raise CodecError("fzgpu radius must fit 16-bit codes")

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        prequant = lorenzo_prequantize(data, abs_eb)
        delta = lorenzo_delta(prequant)
        # zigzag instead of cuSZ's +radius offset: the zero-error code must
        # be 0x0000 so the high bit planes dedup away after the shuffle
        flat = delta.ravel()
        bad = np.abs(flat) >= self.radius
        outliers = flat[bad].astype(np.int64)
        zz = zigzag_encode(np.where(bad, 0, flat))
        codes = zz.astype(np.uint16)
        codes[bad] = 2 * self.radius  # reserved outlier marker
        shuffled = bitshuffle(codes)
        payload = dedup_zero_blocks(shuffled.tobytes())
        meta = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "radius": self.radius,
            "n_outliers": int(outliers.size),
        }
        segments = {
            "payload": payload,
            "outliers": outliers.astype(np.int64).tobytes(),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        abs_eb = float(meta["abs_eb"])
        radius = int(meta["radius"])
        n = int(np.prod(shape))
        shuffled = np.frombuffer(restore_zero_blocks(segments["payload"]),
                                 dtype=np.uint8)
        codes = bitunshuffle(shuffled, np.uint16, n)
        outliers = np.frombuffer(segments["outliers"], dtype=np.int64)
        if outliers.size != int(meta["n_outliers"]):
            raise CodecError("outlier segment size mismatch")
        is_out = codes == 2 * radius
        delta = zigzag_decode(np.where(is_out, np.uint16(0), codes))
        if int(is_out.sum()) != outliers.size:
            raise CodecError("outlier count mismatch")
        if outliers.size:
            delta[is_out] = outliers
        delta = delta.reshape(shape)
        recon = lorenzo_reconstruct(delta, abs_eb)
        return recon.astype(dtype)
