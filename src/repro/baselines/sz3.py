"""SZ3 CPU reference: global dynamic-spline multilevel interpolation
(paper refs [4, 6]; the CPU benchmark of Figs. 5-6).

SZ3 interpolates the whole array from a single seed corner — anchor
spacing spans the largest axis, so every level of the pyramid exists and
no anchors beyond the corner are stored. No level-wise error-bound
reduction (that is QoZ's addition); spline and axis-order tuning follow
the dynamic selection of the SZ3 paper. The archive gets the Zstd-role
(zlib) pass.
"""

from __future__ import annotations

from repro.baselines.interp_cpu import InterpCPUBase, pow2ceil
from repro.registry import register

__all__ = ["SZ3"]


@register
class SZ3(InterpCPUBase):
    """The SZ3-style CPU interpolation compressor."""

    name = "sz3"

    def _anchor_stride(self, shape: tuple[int, ...]) -> int:
        return pow2ceil(max(shape))

    def _level_params(self, rel_eb: float) -> tuple[float, float]:
        # uniform error bound across levels
        return 1.0, float("inf")
