"""Baseline compressors evaluated against cuSZ-i in the paper (§VII-A).

GPU baselines (algorithmically faithful NumPy transcriptions):

* :mod:`repro.baselines.cusz`   — cuSZ: dual-quant Lorenzo + chunked Huffman
* :mod:`repro.baselines.cuszp`  — cuSZp: fused 1D block Lorenzo + per-block
  fixed-length encoding
* :mod:`repro.baselines.cuszx`  — cuSZx: constant/nonconstant block splitting
* :mod:`repro.baselines.fzgpu`  — FZ-GPU: Lorenzo + bitshuffle + zero-block
  dedup
* :mod:`repro.baselines.cuzfp`  — cuZFP: fixed-rate transform coding

CPU references (share the interpolation engine with G-Interp):

* :mod:`repro.baselines.sz3` — SZ3-style global multilevel interpolation
* :mod:`repro.baselines.qoz` — QoZ-style anchored/tuned interpolation
"""

from repro.baselines.lorenzo import (lorenzo_prequantize, lorenzo_delta,
                                     lorenzo_reconstruct)
from repro.baselines.cusz import CuSZ
from repro.baselines.cuszp import CuSZp
from repro.baselines.cuszx import CuSZx
from repro.baselines.fzgpu import FZGPU
from repro.baselines.cuzfp import CuZFP
from repro.baselines.sz3 import SZ3
from repro.baselines.sz14 import SZ14
from repro.baselines.qoz import QoZ

__all__ = [
    "lorenzo_prequantize",
    "lorenzo_delta",
    "lorenzo_reconstruct",
    "CuSZ",
    "CuSZp",
    "CuSZx",
    "FZGPU",
    "CuZFP",
    "SZ3",
    "SZ14",
    "QoZ",
]
