"""Dual-quantization Lorenzo prediction (cuSZ's predictor; paper §III-A).

cuSZ's key GPU trick ("dual-quant") removes the loop-carried dependency of
classic Lorenzo prediction: samples are first *pre-quantized* onto the
integer lattice ``round(x / 2eb)``, then the Lorenzo prediction error
becomes an exact integer finite difference — fully parallel in both
directions, since decompression is just an inclusive scan (cumulative sum)
per axis. The reconstruction ``2eb * p`` is within ``eb`` of the original
by construction.

The same primitive backs cuSZ, FZ-GPU, and (in 1D blocked form) cuSZp.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError

__all__ = ["lorenzo_prequantize", "lorenzo_delta", "lorenzo_reconstruct",
           "split_outliers", "merge_outliers"]


def lorenzo_prequantize(data: np.ndarray, abs_eb: float) -> np.ndarray:
    """Pre-quantize onto the ``2*eb`` integer lattice (int64)."""
    if abs_eb <= 0:
        raise ConfigError(f"error bound must be positive, got {abs_eb}")
    return np.rint(data.astype(np.float64) / (2.0 * abs_eb)).astype(np.int64)


def lorenzo_delta(prequant: np.ndarray) -> np.ndarray:
    """N-dimensional Lorenzo prediction error of the pre-quantized lattice.

    Separable: one first difference per axis (zero boundary), the integer
    form of the 1/2/3D Lorenzo stencil.
    """
    delta = prequant
    for ax in range(prequant.ndim):
        delta = np.diff(delta, axis=ax, prepend=0)
    return delta


def lorenzo_reconstruct(delta: np.ndarray, abs_eb: float) -> np.ndarray:
    """Invert :func:`lorenzo_delta` and undo pre-quantization.

    One inclusive scan per axis (the GPU decompression kernel), then scale
    back to values. Returns float64.
    """
    if abs_eb <= 0:
        raise ConfigError(f"error bound must be positive, got {abs_eb}")
    p = delta
    for ax in range(delta.ndim):
        p = np.cumsum(p, axis=ax)
    return p.astype(np.float64) * (2.0 * abs_eb)


def split_outliers(delta: np.ndarray, radius: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Map deltas to the Huffman alphabet with outlier compaction.

    In-alphabet deltas become ``delta + radius`` in ``[1, 2*radius)``; the
    rest get the reserved code 0 and their exact int64 value is compacted
    (cuSZ's outlier side channel). Returns ``(codes uint32, outliers
    int64)``.
    """
    flat = delta.ravel()
    bad = np.abs(flat) >= radius
    codes = np.zeros(flat.size, dtype=np.uint32)
    good = ~bad
    codes[good] = (flat[good] + radius).astype(np.uint32)
    return codes, flat[bad].astype(np.int64)


def merge_outliers(codes: np.ndarray, outliers: np.ndarray,
                   radius: int) -> np.ndarray:
    """Invert :func:`split_outliers` back to the int64 delta stream."""
    codes = np.asarray(codes, dtype=np.int64).ravel()
    delta = codes - radius
    is_out = codes == 0
    n_out = int(is_out.sum())
    if n_out != outliers.size:
        raise ConfigError("outlier count mismatch")
    if n_out:
        delta[is_out] = outliers
    return delta
