"""cuSZ baseline: dual-quant Lorenzo + outlier compaction + chunked Huffman
(paper §II item 1, §III-A).

This is the strongest pre-existing GPU compressor in the paper's comparison
and the design basis of cuSZ-i — identical pipeline shape, with the Lorenzo
predictor where cuSZ-i puts G-Interp, and no de-redundancy pass by default
(the paper's cuSZ has Huffman only; Table III's right half applies the
extra pass to every compressor's output for fairness, which ``lossless=``
reproduces here).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lorenzo import (lorenzo_delta, lorenzo_prequantize,
                                     lorenzo_reconstruct, merge_outliers,
                                     split_outliers)
from repro.common.arrayutils import validate_field
from repro.common.container import build_container, parse_container
from repro.common.errors import CodecError
from repro.common.lossless_wrap import unwrap_lossless, wrap_lossless
from repro.common.quantizer import DEFAULT_RADIUS
from repro.core.pipeline import resolve_eb
from repro.huffman import (DEFAULT_CHUNK, HuffmanStream,
                           huffman_decode, huffman_encode)
from repro.registry import register

__all__ = ["CuSZ"]


@register
class CuSZ:
    """The cuSZ compressor (Lorenzo + Huffman)."""

    name = "cusz"

    def __init__(self, eb: float = 1e-3, mode: str = "rel",
                 lossless: str = "none", radius: int = DEFAULT_RADIUS,
                 huffman_chunk: int = DEFAULT_CHUNK):
        self.eb = float(eb)
        self.mode = mode
        self.lossless = lossless
        self.radius = int(radius)
        self.huffman_chunk = int(huffman_chunk)

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        abs_eb = resolve_eb(data, self.eb, self.mode)
        prequant = lorenzo_prequantize(data, abs_eb)
        delta = lorenzo_delta(prequant)
        codes, outliers = split_outliers(delta, self.radius)
        stream = huffman_encode(codes, 2 * self.radius, self.huffman_chunk)
        meta = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "abs_eb": abs_eb,
            "radius": self.radius,
            "n_outliers": int(outliers.size),
        }
        segments = {
            "huffman": stream.to_bytes(),
            "outliers": outliers.astype(np.int64).tobytes(),
        }
        inner = build_container(self.name, meta, segments)
        return wrap_lossless(inner, self.lossless)

    def decompress(self, blob: bytes) -> np.ndarray:
        inner = unwrap_lossless(blob)
        codec, meta, segments = parse_container(inner)
        if codec != self.name:
            raise CodecError(f"blob codec {codec!r} is not {self.name!r}")
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        abs_eb = float(meta["abs_eb"])
        radius = int(meta["radius"])
        codes = huffman_decode(HuffmanStream.from_bytes(segments["huffman"]))
        outliers = np.frombuffer(segments["outliers"], dtype=np.int64)
        if outliers.size != int(meta["n_outliers"]):
            raise CodecError("outlier segment size mismatch")
        delta = merge_outliers(codes, outliers, radius).reshape(shape)
        recon = lorenzo_reconstruct(delta, abs_eb)
        return recon.astype(dtype)
