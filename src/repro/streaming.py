"""Slab-streaming compression for fields larger than memory.

In-situ producers hand over one z-slab at a time (a few planes of the
eventual 3D snapshot); holding the whole field to compress it defeats the
purpose. :class:`SlabWriter` compresses slabs as they arrive — each slab
is an independent error-bounded archive, so decompression can stream too,
or fetch a single slab (``read_slab``) without touching the rest.

The error bound is enforced per slab in **absolute** terms: a value-range
relative bound would need the global range, which a true stream doesn't
know. ``mode="rel"`` therefore requires the caller to supply the range
(most simulations know their physical bounds a priori).

Slabs of one stream share a shape, so after the first slab every
subsequent compress hits the per-process compiled pass-plan LRU
(:mod:`repro.core.ginterp.plans`) — the traversal geometry is compiled
once per stream, not once per slab.
"""

from __future__ import annotations

import struct

import numpy as np

from repro import telemetry
from repro.common.errors import ConfigError, ContainerError
from repro.registry import decompress_any, get_compressor

__all__ = ["SlabWriter", "SlabReader", "SlabStreamWriter",
           "compress_slabs", "decompress_slabs", "frame_slabs"]

_MAGIC = b"RPST"
_HDR = struct.Struct("<4sI")          # magic, n_slabs
_LEN = struct.Struct("<Q")


def _blob_len(blob) -> int:
    """Byte length of a bytes-like payload (memoryviews included)."""
    return blob.nbytes if isinstance(blob, memoryview) else len(blob)


def frame_slabs(blobs: list) -> bytes:
    """Assemble independently-compressed slab blobs into one stream.

    This is the exact framing :meth:`SlabWriter.finish` emits, exposed so
    the parallel runtime can reassemble worker outputs bit-identically.
    Blobs may be any bytes-like objects (the shm runtime passes
    ``memoryview`` windows into its result arena); ``bytes.join`` copies
    each exactly once into the final stream.
    """
    if not blobs:
        raise ConfigError("no slabs appended")
    parts = [_HDR.pack(_MAGIC, len(blobs))]
    for blob in blobs:
        parts.append(_LEN.pack(_blob_len(blob)))
        parts.append(blob)
    return b"".join(parts)


class SlabStreamWriter:
    """Write the :func:`frame_slabs` framing incrementally to a file.

    The out-of-core tiled path (:mod:`repro.runtime.tiled`) compresses
    one tile at a time and must not hold every blob until the end — this
    writer emits the header up front (``n_slabs`` is known from the tile
    plan) and appends each ``length + blob`` record as it is produced,
    yielding a stream byte-identical to :meth:`SlabWriter.finish` over
    the same blobs.
    """

    def __init__(self, fileobj, n_slabs: int):
        if n_slabs < 1:
            raise ConfigError("no slabs appended")
        self._fp = fileobj
        self.n_slabs = int(n_slabs)
        self._written = 0
        self.bytes_out = self._fp.write(_HDR.pack(_MAGIC, self.n_slabs))

    def append_blob(self, blob) -> int:
        """Append one already-compressed slab blob; returns its size."""
        if self._written >= self.n_slabs:
            raise ConfigError(
                f"stream declared {self.n_slabs} slabs, got more")
        n = _blob_len(blob)
        self._fp.write(_LEN.pack(n))
        self._fp.write(blob)
        self._written += 1
        self.bytes_out += _LEN.size + n
        return n

    def close(self) -> None:
        """Validate the declared slab count was met (does not close the
        underlying file object — the caller owns it)."""
        if self._written != self.n_slabs:
            raise ConfigError(
                f"stream declared {self.n_slabs} slabs, "
                f"got {self._written}")


class SlabWriter:
    """Incrementally compress a field one axis-0 slab at a time.

    The codec configuration is stored as plain ``(codec, eb, kwargs)``
    data — not a closure — so writers (and the per-slab work items the
    parallel runtime derives from them) survive ``pickle`` across process
    boundaries, including spawn-style workers.
    """

    def __init__(self, codec: str = "cuszi", eb: float = 1e-3,
                 mode: str = "abs", value_range: float | None = None,
                 **kwargs):
        if mode == "rel":
            if value_range is None or value_range <= 0:
                raise ConfigError(
                    "streaming with mode='rel' needs the a-priori "
                    "value_range (a stream never sees the global range)")
            eb = eb * value_range
        elif mode != "abs":
            raise ConfigError(f"unknown eb mode {mode!r}")
        self.codec = codec
        self.eb = float(eb)
        self.codec_kwargs = dict(kwargs)
        self._blobs: list[bytes] = []
        self._shape_tail: tuple[int, ...] | None = None

    def _make(self):
        return get_compressor(self.codec, eb=self.eb, mode="abs",
                              **self.codec_kwargs)

    def append(self, slab: np.ndarray) -> int:
        """Compress one slab; returns its compressed size in bytes."""
        if slab.ndim < 1:
            raise ConfigError("slab must be at least 1D")
        tail = slab.shape[1:]
        if self._shape_tail is None:
            self._shape_tail = tail
        elif tail != self._shape_tail:
            raise ConfigError(
                f"slab cross-section {tail} != first slab's "
                f"{self._shape_tail}")
        with telemetry.span("slab.append", index=len(self._blobs),
                            bytes_in=slab.nbytes) as sp:
            blob = self._make().compress(slab)
            sp.set(bytes_out=len(blob))
        self._blobs.append(blob)
        return len(blob)

    @property
    def n_slabs(self) -> int:
        return len(self._blobs)

    def finish(self) -> bytes:
        """Assemble the slab stream."""
        return frame_slabs(self._blobs)


class SlabReader:
    """Random or streaming access to a slab stream.

    ``stream`` may be any bytes-like buffer — ``bytes``, a
    ``memoryview``, or an ``mmap`` of a stream file — so out-of-core
    callers can parse the slab table without materializing the stream.
    """

    def __init__(self, stream):
        if len(stream) < _HDR.size:
            raise ContainerError("truncated slab stream")
        magic, n = _HDR.unpack_from(stream, 0)
        if magic != _MAGIC:
            raise ContainerError("not a slab stream")
        self._offsets: list[tuple[int, int]] = []
        pos = _HDR.size
        for _ in range(n):
            if pos + _LEN.size > len(stream):
                raise ContainerError("slab table truncated")
            (length,) = _LEN.unpack_from(stream, pos)
            pos += _LEN.size
            if pos + length > len(stream):
                raise ContainerError("slab payload truncated")
            self._offsets.append((pos, length))
            pos += length
        if pos != len(stream):
            raise ContainerError("trailing bytes after last slab")
        self._stream = stream

    def __len__(self) -> int:
        return len(self._offsets)

    def slab_span(self, index: int) -> tuple[int, int]:
        """``(offset, length)`` of one slab's blob within the stream —
        the zero-copy address the shm runtime ships to workers."""
        return self._offsets[index]

    def slab_bytes(self, index: int) -> bytes:
        """The still-compressed blob of one slab (no decode)."""
        pos, length = self._offsets[index]
        return bytes(self._stream[pos:pos + length])

    def read_slab(self, index: int) -> np.ndarray:
        """Decompress a single slab by position."""
        pos, length = self._offsets[index]
        with telemetry.span("slab.read", index=index,
                            bytes_in=length) as sp:
            out = decompress_any(bytes(self._stream[pos:pos + length]))
            sp.set(bytes_out=out.nbytes)
        return out

    def __iter__(self):
        for i in range(len(self)):
            yield self.read_slab(i)

    def read_all(self) -> np.ndarray:
        """Reassemble the full field (concatenating along axis 0)."""
        return np.concatenate(list(self), axis=0)


def compress_slabs(data: np.ndarray, slab_planes: int,
                   **writer_kwargs) -> bytes:
    """Convenience: split an in-memory field into axis-0 slabs and stream.

    ``mode="rel"`` is resolved against the full field's range here, since
    it is available.
    """
    if slab_planes < 1:
        raise ConfigError("slab_planes must be >= 1")
    if writer_kwargs.get("mode") == "rel" \
            and "value_range" not in writer_kwargs:
        writer_kwargs["value_range"] = float(data.max() - data.min())
    writer = SlabWriter(**writer_kwargs)
    for start in range(0, data.shape[0], slab_planes):
        writer.append(np.ascontiguousarray(
            data[start:start + slab_planes]))
    return writer.finish()


def decompress_slabs(stream: bytes) -> np.ndarray:
    """Convenience: reassemble a slab stream into one array."""
    return SlabReader(stream).read_all()
