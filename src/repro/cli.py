"""Command-line interface.

``repro compress``/``decompress`` operate on raw binary float dumps (the
SDRBench convention: little-endian float32, C order, dims given on the
command line), ``repro info`` inspects an archive, ``repro gen`` writes a
synthetic dataset field, ``repro trace`` pretty-prints a telemetry trace
(``--trace`` on compress/decompress records one), and ``repro bench``
forwards to the experiment runner.

``repro stats`` aggregates a flight-recorder run ledger (stage latency
percentiles, compression-ratio distribution, throughput vs the modelled
GPU, SLO error budgets) and ``repro doctor`` diagnoses ledger +
environment + cache health — ``--check`` makes structural anomalies exit
nonzero for CI, and ``--slo`` adds error-budget exhaustion to the gate.
``repro analyze`` runs the ledger analytics engine
(:mod:`repro.telemetry.analytics`): fingerprint-keyed cohort baselines,
robust per-run anomaly scores, and change points with stage attribution
(``--json``, ``--save-baseline``/``--baseline`` for persisted
references, ``--check`` to gate). ``repro top`` is a live terminal
dashboard over a growing ledger or an ops server's SSE stream.
``repro serve-ops`` boots the live ops plane
(:mod:`repro.telemetry.opsd`): /metrics, /health, /ready, /runs (+SSE),
/slo, /analytics, /profile over HTTP. See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import compress as api_compress
from repro import decompress as api_decompress
from repro import telemetry
from repro.common.container import parse_container
from repro.common.lossless_wrap import unwrap_lossless
from repro.common.metrics import compression_ratio
from repro.datasets import get_dataset, dataset_names
from repro.registry import available
from repro.telemetry import exporters


def _parse_dims(text: str) -> tuple[int, ...]:
    dims = tuple(int(x) for x in text.split(","))
    if not dims or any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError(f"bad dims {text!r}")
    return dims


def _parse_workers(text: str):
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an int or 'auto', got {text!r}")


def _write_trace(registry, path: str) -> None:
    with open(path, "w") as f:
        f.write(exporters.to_jsonl(registry))
    print(f"trace: {len(registry.spans)} spans -> {path}")


def _cmd_compress(args) -> int:
    if args.tiled or args.tile_planes or args.memory_budget_mb:
        return _cmd_compress_tiled(args)
    data = np.fromfile(args.input, dtype=np.float32)
    n = int(np.prod(args.dims))
    if data.size != n:
        print(f"error: file has {data.size} float32 values, dims give {n}",
              file=sys.stderr)
        return 1
    data = data.reshape(args.dims)
    kwargs = {}
    if args.codec == "cuzfp":
        kwargs["rate"] = args.rate
    else:
        kwargs.update(eb=args.eb, mode=args.mode)
    kwargs["lossless"] = args.lossless
    if args.trace:
        with telemetry.recording() as reg:
            blob = api_compress(data, codec=args.codec, **kwargs)
    else:
        reg = None
        blob = api_compress(data, codec=args.codec, **kwargs)
    with open(args.output, "wb") as f:
        f.write(blob)
    if reg is not None:
        # archive first, trace second: a bad --trace path must not lose
        # the compressed output
        _write_trace(reg, args.trace)
    print(f"{args.input}: {data.nbytes} -> {len(blob)} bytes "
          f"(CR {compression_ratio(data.nbytes, len(blob)):.2f})")
    return 0


def _cmd_compress_tiled(args) -> int:
    """Out-of-core compress: memory-mapped input, bounded peak RSS,
    slab-stream (``RPST``) output ``repro decompress`` auto-detects."""
    from repro.common.errors import ConfigError
    from repro.runtime.tiled import tiled_compress_file
    kwargs = {}
    if args.codec == "cuzfp":
        kwargs["rate"] = args.rate
    else:
        kwargs.update(eb=args.eb, mode=args.mode)
    budget = (int(args.memory_budget_mb * (1 << 20))
              if args.memory_budget_mb else None)
    try:
        info = tiled_compress_file(
            args.input, args.dims, out_path=args.output,
            codec=args.codec, tile_planes=args.tile_planes,
            memory_budget_bytes=budget, **kwargs)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.input}: {info['bytes_in']} -> {info['bytes_out']} "
          f"bytes in {info['n_tiles']} tiles of "
          f"{info['tile_planes']} plane(s) "
          f"(CR {compression_ratio(info['bytes_in'], info['bytes_out']):.2f})")
    return 0


def _cmd_decompress(args) -> int:
    with open(args.input, "rb") as f:
        head = f.read(4)
    if head == b"RPST":
        # a tiled/slab stream: decode out of core, tile by tile
        from repro.runtime.tiled import tiled_decompress_file
        info = tiled_decompress_file(args.input, args.output)
        print(f"{args.input}: reconstructed {info['shape']} "
              f"{np.dtype(info['dtype'])} ({info['n_tiles']} tiles) "
              f"-> {args.output}")
        return 0
    with open(args.input, "rb") as f:
        blob = f.read()
    if args.trace:
        with telemetry.recording() as reg:
            out = api_decompress(blob)
    else:
        reg = None
        out = api_decompress(blob)
    # write the container's recorded dtype verbatim — silently casting a
    # float64 archive to float32 would break the error bound on disk
    out.tofile(args.output)
    if reg is not None:
        _write_trace(reg, args.trace)
    print(f"{args.input}: reconstructed {out.shape} {out.dtype} "
          f"-> {args.output}")
    return 0


def _cmd_trace(args) -> int:
    with open(args.input) as f:
        reg = exporters.from_jsonl(f.read())
    if args.format == "prom":
        print(exporters.to_prometheus(reg), end="")
    else:
        print(exporters.render_tree(reg.spans, max_depth=args.depth))
    if args.crosscheck:
        from repro.common.errors import ConfigError
        from repro.telemetry.crosscheck import crosscheck
        try:
            reports = [crosscheck(reg.spans, device)
                       for device in ("a100", "a40")]
        except ConfigError as exc:
            print(f"error: cannot cross-check this trace: {exc}",
                  file=sys.stderr)
            return 1
        for report in reports:
            print()
            print(report.format())
    return 0


def _cmd_info(args) -> int:
    with open(args.input, "rb") as f:
        blob = f.read()
    inner = unwrap_lossless(blob)
    codec, meta, segments = parse_container(inner)
    print(f"codec:    {codec}")
    for key, val in meta.items():
        print(f"{key}: {val}")
    print("segments:")
    for name, seg in segments.items():
        print(f"  {name}: {len(seg)} bytes")
    return 0


def _cmd_gen(args) -> int:
    info = get_dataset(args.dataset)
    data = info.load(args.field)
    data.tofile(args.output)
    print(f"wrote {args.dataset}/{args.field} {data.shape} float32 "
          f"to {args.output}")
    return 0


def _cmd_pack(args) -> int:
    info = get_dataset(args.dataset)
    fields = {fld: info.load(fld) for fld in info.fields}
    from repro.archive import write_archive
    write_archive(args.output, fields, codec=args.codec, eb=args.eb,
                  mode=args.mode, lossless=args.lossless,
                  workers=args.workers, transport=args.transport)
    from repro.archive import read_archive  # noqa: F401  (symmetry)
    import os
    raw = sum(d.nbytes for d in fields.values())
    comp = os.path.getsize(args.output)
    print(f"packed {len(fields)} fields of {args.dataset}: "
          f"{raw / 1e6:.1f} MB -> {comp / 1e6:.2f} MB "
          f"(CR {raw / comp:.1f})")
    return 0


def _cmd_unpack(args) -> int:
    from repro.archive import read_archive
    fields = read_archive(args.input,
                          fields=args.fields.split(",") if args.fields
                          else None, workers=args.workers,
                          transport=args.transport)
    for name, data in fields.items():
        path = f"{args.prefix}{name}.f32"
        data.astype(np.float32).tofile(path)
        print(f"{name}: {data.shape} -> {path}")
    return 0


def _fmt_pct(entry: dict) -> str:
    return (f"p50 {entry['p50'] * 1e3:9.2f}ms  "
            f"p95 {entry['p95'] * 1e3:9.2f}ms  "
            f"p99 {entry['p99'] * 1e3:9.2f}ms")


def _load_slos(spec: str | None):
    """Resolve a ``--slo`` argument: None -> the default objectives,
    a path -> a declarative objectives file."""
    from repro.telemetry import slo as slomod
    if spec is None or spec == "default":
        return slomod.DEFAULT_SLOS
    return slomod.load_slos(spec)


def _cmd_stats(args) -> int:
    import json as _json
    from repro.telemetry import recorder
    from repro.telemetry import slo as slomod

    try:
        records = recorder.read_ledger(args.ledger)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read ledger {args.ledger!r}: {exc}",
              file=sys.stderr)
        return 1
    if not records:
        # an empty ledger is a diagnosable state, not a crash: say so
        # plainly (or emit an empty-but-valid JSON document) and exit 0
        if args.json:
            print(_json.dumps({"schema": 1, "ledger": args.ledger,
                               "n_records": 0, "groups": {}, "slo": []},
                              indent=2, sort_keys=True))
        else:
            print(f"ledger {args.ledger}: no run records")
        return 0
    try:
        slos = _load_slos(args.slo)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load SLOs from {args.slo!r}: {exc}",
              file=sys.stderr)
        return 1
    groups = recorder.aggregate(records)
    statuses = slomod.evaluate(records, slos)
    sentinel_doc = None
    if args.json:
        doc = {"schema": 1, "ledger": args.ledger,
               "n_records": len(records), "groups": groups,
               "slo": [st.to_dict() for st in statuses]}
        if args.check:
            sentinel_doc = _stats_sentinel(args, as_json=True)
            doc["sentinel"] = sentinel_doc
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    else:
        for label, entry in groups.items():
            head = f"{label}: n={entry['n']}"
            if entry["errors"]:
                head += f" errors={entry['errors']}"
            if "workers" in entry:
                head += f" workers<={entry['workers']}"
            print(head)
            print(f"  wall      {_fmt_pct(entry['wall_s'])}")
            for stage, pct in entry["stages"].items():
                print(f"  {stage:<9} {_fmt_pct(pct)}")
            if "ratio" in entry:
                r = entry["ratio"]
                print(f"  ratio     p50 {r['p50']:.2f}  "
                      f"min {r['min']:.2f}  max {r['max']:.2f}")
            if "throughput_mb_s" in entry:
                t = entry["throughput_mb_s"]
                print(f"  thru MB/s p50 {t['p50']:.1f}  "
                      f"min {t['min']:.1f}  max {t['max']:.1f}")
            if "cache_hit_ratio" in entry:
                print(f"  cache hit ratio {entry['cache_hit_ratio']:.1%}")

    if statuses:
        print("slo error budgets:")
        for line in slomod.format_statuses(statuses):
            print(f"  {line}")

    # modelled-GPU throughput cross-check: flag records whose measured
    # stage shares skew far from the perf-model's kernel shares
    flagged = 0
    modelled = 0
    for rec in records:
        dev = recorder.model_deviation(rec, device=args.device)
        if dev is None:
            continue
        modelled += 1
        if dev["flagged"]:
            flagged += 1
            worst = max(dev["stages"].items(),
                        key=lambda kv: max(kv[1]["skew"],
                                           1 / kv[1]["skew"]
                                           if kv[1]["skew"] else 1))
            print(f"model deviation: {rec.kind}[{rec.codec}] seq="
                  f"{rec.seq} stage {worst[0]} skew "
                  f"{worst[1]['skew']:.2f}x vs modelled {args.device}")
    if modelled:
        print(f"perf model ({args.device}): {modelled} record(s) "
              f"checked, {flagged} flagged for stage-share skew")

    if args.check:
        _stats_sentinel(args, as_json=False)
    return 0


def _stats_sentinel(args, as_json: bool):
    """Run the warn-only wall-time regression sentinel against the
    committed perf trajectory. Text mode prints findings; JSON mode
    returns the evaluation as a document section (satisfying ``repro
    stats --json --check``) and prints nothing."""
    import json
    from repro.telemetry import sentinel

    def emit(line):
        if not as_json:
            print(line)

    try:
        with open(args.bench) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        emit(f"sentinel: cannot read {args.bench}: {exc}")
        return {"status": "no-current", "detail": str(exc),
                "findings": []}
    baseline = sentinel.load_baseline(args.base_ref)
    if baseline is None:
        emit(f"sentinel: no committed BENCH_pipeline.json at "
             f"{args.base_ref}; nothing to compare")
        return {"status": "no-baseline", "base_ref": args.base_ref,
                "findings": []}
    findings = sentinel.check(current, baseline)
    for line in sentinel.format_findings(findings, github=args.github):
        emit(line)
    return {"status": "compared", "base_ref": args.base_ref,
            "n_findings": len(findings),
            "findings": [f.to_dict() if hasattr(f, "to_dict")
                         else vars(f) for f in findings]}


def _cmd_analyze(args) -> int:
    import json as _json
    from repro.telemetry import analytics, recorder

    try:
        records = recorder.read_ledger(args.ledger)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read ledger {args.ledger!r}: {exc}",
              file=sys.stderr)
        return 1
    baseline_doc = None
    if args.baseline:
        try:
            baseline_doc = analytics.load_baselines(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {args.baseline!r}: "
                  f"{exc}", file=sys.stderr)
            return 1
    report = analytics.analyze(records, baseline_doc=baseline_doc)
    if args.save_baseline:
        analytics.save_baselines(report, args.save_baseline)
        if not args.json:
            print(f"baselines for {report['n_cohorts']} cohort(s) "
                  f"saved to {args.save_baseline}")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        if not records:
            print(f"ledger {args.ledger}: no run records")
        else:
            print(analytics.format_report(report))
    if args.check:
        regressed = not report["verdict"]["healthy"] or any(
            f.get("regressed")
            for f in report.get("baseline_comparison") or ())
        if regressed:
            if not args.json:
                print("analyze: drift detected (exit 1)",
                      file=sys.stderr)
            return 1
    return 0


def _cmd_top(args) -> int:
    from repro.telemetry.top import run_top

    if not args.ledger and not args.url:
        print("error: repro top needs a ledger file or --url",
              file=sys.stderr)
        return 2
    return run_top(ledger=args.ledger, url=args.url,
                   interval=args.interval, frames=args.frames,
                   once=args.once)


def _cmd_doctor(args) -> int:
    from repro.telemetry import caches, doctor, recorder

    env = doctor.environment_report()
    print("environment: " + "  ".join(f"{k}={v}"
                                      for k, v in env.items()))
    snap = caches.snapshot()
    print("caches (this process):")
    for name, entry in snap.items():
        print(f"  {name}: {entry['hits']}h/{entry['misses']}m/"
              f"{entry['evictions']}e size={entry['size']}/"
              f"{entry['limit']} {entry['size_bytes']}B")

    if args.ledger:
        try:
            records = recorder.read_ledger(args.ledger)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read ledger {args.ledger!r}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        records = recorder.records()
    threshold = (doctor.WARM_HIT_THRESHOLD
                 if args.warm_hit_threshold is None
                 else args.warm_hit_threshold)
    slos = None
    if args.slo is not None:
        try:
            slos = _load_slos(args.slo)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load SLOs from {args.slo!r}: {exc}",
                  file=sys.stderr)
            return 1
    diag = doctor.diagnose(records, warm_hit_threshold=threshold,
                           slos=slos)
    print(diag.format())
    if args.check and not diag.healthy:
        return 1
    return 0


def _cmd_serve_ops(args) -> int:
    import time as _time
    from repro.telemetry import opsd, recorder

    try:
        slos = _load_slos(args.slo)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load SLOs from {args.slo!r}: {exc}",
              file=sys.stderr)
        return 1
    base = []
    if args.ledger:
        try:
            base = recorder.read_ledger(args.ledger)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read ledger {args.ledger!r}: {exc}",
                  file=sys.stderr)
            return 1
    port = opsd.DEFAULT_PORT if args.port is None else args.port
    keep = (recorder.DEFAULT_LEDGER_KEEP if args.persist_keep is None
            else args.persist_keep)
    try:
        server = opsd.start_ops_server(
            args.host, port, slos=slos, base_records=base,
            persist_path=args.persist,
            persist_max_bytes=args.persist_max_bytes,
            persist_keep=keep,
            warm_hit_threshold=args.warm_hit_threshold)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"ops server on {server.url} "
          f"({len(base)} ledger record(s) loaded; endpoints: /metrics "
          f"/health /ready /runs /runs/stream /slo /analytics /profile)",
          flush=True)
    try:
        if args.for_seconds is not None:
            _time.sleep(args.for_seconds)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print("ops server stopped")
    return 0


def _cmd_list(args) -> int:
    print("compressors:", ", ".join(available()))
    print("datasets:")
    for name in dataset_names():
        info = get_dataset(name)
        print(f"  {name} {info.default_shape}: {', '.join(info.fields)}")
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments.__main__ import main as exp_main
    return exp_main([args.name, "--scale", args.scale])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="cuSZ-i reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a raw float32 dump")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--dims", type=_parse_dims, required=True,
                   help="comma-separated C-order dims, e.g. 512,512,512")
    p.add_argument("--codec", default="cuszi", choices=available())
    p.add_argument("--eb", type=float, default=1e-3)
    p.add_argument("--mode", choices=("rel", "abs"), default="rel")
    p.add_argument("--rate", type=float, default=4.0,
                   help="bits/value for cuzfp")
    p.add_argument("--lossless", default="auto",
                   choices=("none", "gle", "zlib", "auto"))
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="record a JSONL telemetry trace of the run")
    p.add_argument("--tiled", action="store_true",
                   help="out-of-core: memory-map the input and compress "
                        "axis-0 tiles with bounded peak RSS (output is "
                        "a slab stream; decompress auto-detects it)")
    p.add_argument("--tile-planes", type=int, default=None, metavar="N",
                   help="planes per tile for --tiled")
    p.add_argument("--memory-budget-mb", type=float, default=None,
                   metavar="MB",
                   help="pick the tile size from a peak-RSS budget "
                        "(implies --tiled)")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress an archive")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="record a JSONL telemetry trace of the run")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("trace", help="pretty-print a JSONL telemetry "
                                     "trace (see docs/OBSERVABILITY.md)")
    p.add_argument("input")
    p.add_argument("--format", choices=("tree", "prom"), default="tree")
    p.add_argument("--depth", type=int, default=None,
                   help="limit the span tree depth")
    p.add_argument("--crosscheck", action="store_true",
                   help="compare measured stage shares against the "
                        "modelled A100/A40 kernel inventories")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("info", help="inspect an archive header")
    p.add_argument("input")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("gen", help="generate a synthetic dataset field")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("field")
    p.add_argument("output")
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("pack", help="compress a whole synthetic dataset "
                                    "into one archive")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("output")
    p.add_argument("--codec", default="cuszi", choices=available())
    p.add_argument("--eb", type=float, default=1e-3)
    p.add_argument("--mode", choices=("rel", "abs"), default="rel")
    p.add_argument("--lossless", default="auto",
                   choices=("none", "gle", "zlib", "auto"))
    p.add_argument("--workers", type=_parse_workers, default=None,
                   metavar="N",
                   help="compress fields across N worker processes "
                        "('auto' = all cores; default serial)")
    p.add_argument("--transport", default=None,
                   choices=("shm", "pickle"),
                   help="pool payload transport (default: shm arenas "
                        "when the platform supports them)")
    p.set_defaults(func=_cmd_pack)

    p = sub.add_parser("unpack", help="extract fields from an archive")
    p.add_argument("input")
    p.add_argument("--prefix", default="",
                   help="output filename prefix")
    p.add_argument("--fields", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--workers", type=_parse_workers, default=None,
                   metavar="N",
                   help="decompress fields across N worker processes "
                        "('auto' = all cores; default serial)")
    p.add_argument("--transport", default=None,
                   choices=("shm", "pickle"),
                   help="pool payload transport (default: shm arenas "
                        "when the platform supports them)")
    p.set_defaults(func=_cmd_unpack)

    p = sub.add_parser("stats", help="aggregate a flight-recorder run "
                                     "ledger (percentiles, CR, model "
                                     "cross-check)")
    p.add_argument("ledger", help="JSONL run ledger "
                                  "(repro.telemetry.recorder ledger)")
    p.add_argument("--json", action="store_true",
                   help="emit the aggregation as JSON")
    p.add_argument("--device", default="a100",
                   help="modelled device for the throughput cross-check")
    p.add_argument("--check", action="store_true",
                   help="also run the warn-only regression sentinel "
                        "against the committed BENCH_pipeline.json")
    p.add_argument("--bench", default="BENCH_pipeline.json",
                   help="fresh perf trajectory for --check")
    p.add_argument("--base-ref", default="HEAD",
                   help="git ref holding the baseline trajectory")
    p.add_argument("--github", action="store_true",
                   help="render sentinel findings as ::warning:: "
                        "annotations")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="SLO objectives file for the error-budget "
                        "section ('default' or omitted = built-ins)")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("analyze",
                       help="ledger analytics: cohort baselines, "
                            "anomaly scores, drift change points with "
                            "stage attribution")
    p.add_argument("ledger", help="JSONL run ledger "
                                  "(repro.telemetry.recorder ledger)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("--save-baseline", metavar="FILE", default=None,
                   help="persist the cohort baselines for later "
                        "--baseline comparison")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="compare cohort medians against a saved "
                        "baseline file")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero on a latency regression, quality "
                        "drift, or regressed baseline comparison")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("top",
                       help="live terminal dashboard over a growing "
                            "run ledger or an ops server stream")
    p.add_argument("ledger", nargs="?", default=None,
                   help="JSONL run ledger to follow (tail -f style, "
                        "rotation-aware)")
    p.add_argument("--url", default=None, metavar="URL",
                   help="follow an ops server instead (its "
                        "/runs/stream SSE endpoint)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh interval in seconds (default 1)")
    p.add_argument("--frames", type=int, default=None, metavar="N",
                   help="render N frames then exit (default: until "
                        "interrupted)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no screen "
                        "clearing; script/CI friendly)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("doctor", help="diagnose ledger + environment + "
                                      "cache health")
    p.add_argument("ledger", nargs="?", default=None,
                   help="JSONL run ledger (default: this process's "
                        "in-memory ring)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero when a structural anomaly is "
                        "found (the CI gate)")
    p.add_argument("--warm-hit-threshold", type=float,
                   default=None,
                   help="minimum acceptable warm cache hit ratio")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="evaluate SLO error budgets as health checks "
                        "('default' = built-in objectives); an "
                        "exhausted budget fails --check")
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser("serve-ops",
                       help="serve the live ops plane over HTTP "
                            "(/metrics /health /ready /runs /profile)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default 9178; 0 = ephemeral)")
    p.add_argument("--ledger", default=None, metavar="FILE",
                   help="seed the server with an existing JSONL run "
                        "ledger")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="SLO objectives file ('default' or omitted = "
                        "built-ins)")
    p.add_argument("--persist", default=None, metavar="FILE",
                   help="append every new run record to this JSONL "
                        "ledger")
    p.add_argument("--persist-max-bytes", type=int, default=None,
                   metavar="N",
                   help="rotate the persisted ledger at N bytes")
    p.add_argument("--persist-keep", type=int, default=None,
                   metavar="K",
                   help="rotated segments to keep (default 4)")
    p.add_argument("--warm-hit-threshold", type=float, default=None,
                   help="minimum acceptable warm cache hit ratio for "
                        "/health")
    p.add_argument("--for-seconds", type=float, default=None,
                   metavar="S",
                   help="serve for S seconds then exit (default: "
                        "until interrupted)")
    p.set_defaults(func=_cmd_serve_ops)

    p = sub.add_parser("list", help="list codecs and datasets")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("bench", help="run a paper experiment")
    p.add_argument("name")
    p.add_argument("--scale", choices=("small", "full"), default="small")
    p.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
