"""Multi-field archives.

Scientific snapshots are bundles of fields (Table II's datasets are 1-37
files each); this module packs many compressed fields into one
self-describing archive blob, each field independently decodable with its
own codec/settings — the unit the distributed-transfer case study ships.
"""

from __future__ import annotations

import numpy as np

from repro.common.container import build_container, parse_container
from repro.common.errors import ConfigError, ContainerError
from repro.registry import decompress_any  # noqa: F401  (re-export compat)
from repro.telemetry import recorder

__all__ = ["save_archive", "load_archive", "archive_info",
           "write_archive", "read_archive"]

_ARCHIVE_CODEC = "field-archive"


def save_archive(fields: dict[str, np.ndarray], codec: str = "cuszi",
                 per_field: dict[str, dict] | None = None,
                 workers: int | str | None = None,
                 transport: str | None = None,
                 **kwargs) -> bytes:
    """Compress a named set of fields into one archive blob.

    ``kwargs`` configure the codec for every field; ``per_field`` maps a
    field name to overrides (including ``"codec"``), e.g. compress a
    rough field with a different bound than the rest. Fields are
    independent archives, so ``workers`` fans them out across processes
    (:mod:`repro.runtime`) with byte-identical output; ``transport``
    pins the pool's payload transport (``"shm"``/``"pickle"``, default
    auto).
    """
    if not fields:
        raise ConfigError("archive needs at least one field")
    from repro.runtime import map_compress, resolve_workers
    per_field = per_field or {}
    names = list(fields)
    overrides = [dict(per_field.get(name, {})) for name in names]
    codecs = [ov.pop("codec", codec) for name, ov in zip(names, overrides)]
    with recorder.capture("archive.save", n_fields=len(names),
                          workers=resolve_workers(workers)) as cap:
        with cap.stage("fields"):
            blobs = map_compress([fields[name] for name in names], codec,
                                 workers=workers, transport=transport,
                                 per_item=[{"codec": c, **ov}
                                           for c, ov in zip(codecs,
                                                            overrides)],
                                 **kwargs)
        segments = dict(zip(names, blobs))
        meta_fields = {}
        for name, field_codec, blob in zip(names, codecs, blobs):
            data = fields[name]
            meta_fields[name] = {
                "codec": field_codec,
                "shape": list(data.shape),
                "dtype": data.dtype.name,
                "raw_nbytes": int(data.nbytes),
                "compressed_nbytes": len(blob),
            }
        with cap.stage("container"):
            out = build_container(_ARCHIVE_CODEC, {"fields": meta_fields},
                                  segments)
        cap.set(bytes_in=sum(fields[n].nbytes for n in names),
                bytes_out=len(out))
    return out


def load_archive(blob: bytes,
                 fields: list[str] | None = None,
                 workers: int | str | None = None,
                 transport: str | None = None) -> dict[str, np.ndarray]:
    """Decompress (a subset of) an archive back into named arrays."""
    from repro.runtime import map_decompress, resolve_workers
    with recorder.capture("archive.load", bytes_in=len(blob),
                          workers=resolve_workers(workers)) as cap:
        with cap.stage("container"):
            codec, meta, segments = parse_container(blob)
        if codec != _ARCHIVE_CODEC:
            raise ContainerError(f"not a field archive (codec {codec!r})")
        wanted = fields if fields is not None else list(segments)
        for name in wanted:
            if name not in segments:
                raise ConfigError(f"archive has no field {name!r}; "
                                  f"contains {sorted(segments)}")
        with cap.stage("fields"):
            arrays = map_decompress([segments[name] for name in wanted],
                                    workers=workers, transport=transport)
        cap.set(n_fields=len(wanted),
                bytes_out=sum(a.nbytes for a in arrays))
    return dict(zip(wanted, arrays))


def archive_info(blob: bytes) -> dict:
    """Per-field metadata (codec, shape, sizes) without decompressing."""
    codec, meta, segments = parse_container(blob)
    if codec != _ARCHIVE_CODEC:
        raise ContainerError(f"not a field archive (codec {codec!r})")
    info = dict(meta["fields"])
    total_raw = sum(f["raw_nbytes"] for f in info.values())
    total_comp = sum(f["compressed_nbytes"] for f in info.values())
    return {"fields": info, "total_raw_nbytes": total_raw,
            "total_compressed_nbytes": total_comp,
            "ratio": total_raw / total_comp}


def write_archive(path: str, fields: dict[str, np.ndarray],
                  codec: str = "cuszi", **kwargs) -> None:
    """Save an archive to disk."""
    with open(path, "wb") as f:
        f.write(save_archive(fields, codec=codec, **kwargs))


def read_archive(path: str,
                 fields: list[str] | None = None,
                 workers: int | str | None = None,
                 transport: str | None = None) -> dict[str, np.ndarray]:
    """Load (a subset of) an archive from disk."""
    with open(path, "rb") as f:
        return load_archive(f.read(), fields, workers=workers,
                            transport=transport)
